"""Unit tests for the coarse-grained DAG generators."""

from __future__ import annotations

import pytest

from repro.core import DagError
from repro.dagdb import (
    COARSE_GENERATORS,
    apply_paper_weight_rule,
    build_bicgstab_coarse,
    build_cg_coarse,
    build_kmeans_coarse,
    build_knn_coarse,
    build_label_propagation_coarse,
    build_pagerank_coarse,
    build_sparse_nn_inference_coarse,
)
from repro.core import ComputationalDAG


class TestAllGenerators:
    @pytest.mark.parametrize("name", sorted(COARSE_GENERATORS))
    def test_acyclic_and_connected(self, name):
        dag = COARSE_GENERATORS[name](4)
        assert dag.is_acyclic()
        assert dag.num_nodes > 4
        assert len(dag.weakly_connected_components()) == 1

    @pytest.mark.parametrize("name", sorted(COARSE_GENERATORS))
    def test_node_count_grows_linearly_with_iterations(self, name):
        builder = COARSE_GENERATORS[name]
        n2, n4, n6 = (builder(k).num_nodes for k in (2, 4, 6))
        assert n4 - n2 == n6 - n4 > 0

    @pytest.mark.parametrize("name", sorted(COARSE_GENERATORS))
    def test_paper_weight_rule(self, name):
        dag = COARSE_GENERATORS[name](3)
        for v in dag.nodes():
            expected = 1.0 if dag.in_degree(v) == 0 else max(dag.in_degree(v) - 1, 1)
            assert dag.work(v) == expected
            assert dag.comm(v) == 1.0

    @pytest.mark.parametrize("name", sorted(COARSE_GENERATORS))
    def test_invalid_iterations_rejected(self, name):
        with pytest.raises(DagError):
            COARSE_GENERATORS[name](0)


class TestSpecificStructures:
    def test_cg_coarse_iteration_size(self):
        """One CG iteration adds 8 container operations."""
        assert build_cg_coarse(2).num_nodes - build_cg_coarse(1).num_nodes == 8

    def test_bicgstab_larger_than_cg(self):
        assert build_bicgstab_coarse(5).num_nodes > build_cg_coarse(5).num_nodes

    def test_pagerank_has_five_ops_per_iteration(self):
        assert build_pagerank_coarse(3).num_nodes - build_pagerank_coarse(2).num_nodes == 5

    def test_kmeans_scales_with_clusters(self):
        small = build_kmeans_coarse(3, clusters=2)
        large = build_kmeans_coarse(3, clusters=6)
        assert large.num_nodes > small.num_nodes
        with pytest.raises(DagError):
            build_kmeans_coarse(2, clusters=0)

    def test_knn_coarse_depth_grows(self):
        assert build_knn_coarse(6).depth() > build_knn_coarse(2).depth()

    def test_label_propagation_names(self):
        dag = build_label_propagation_coarse(2, name="custom")
        assert dag.name == "custom"

    def test_sparse_nn_layers(self):
        dag = build_sparse_nn_inference_coarse(4)
        # per layer: 2 sources + 3 ops, plus the initial activation source
        assert dag.num_nodes == 1 + 4 * 5
        assert dag.depth() == 1 + 3 * 4


class TestWeightRuleHelper:
    def test_apply_paper_weight_rule(self):
        dag = ComputationalDAG(3, [9, 9, 9], [9, 9, 9])
        dag.add_edges([(0, 2), (1, 2)])
        apply_paper_weight_rule(dag)
        assert dag.work(0) == 1.0
        assert dag.work(2) == 1.0  # indeg 2 -> 1
        assert dag.comm(1) == 1.0

    def test_pass_through_node_gets_unit_work(self):
        dag = ComputationalDAG(2)
        dag.add_edge(0, 1)
        apply_paper_weight_rule(dag)
        assert dag.work(1) == 1.0  # floor of indeg-1 at 1
