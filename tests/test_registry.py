"""Unit tests for the scheduler registry and the top-level package API."""

from __future__ import annotations

import pytest

import repro
from repro.core import BspMachine, ConfigurationError
from repro.schedulers import Scheduler, available_schedulers, create_scheduler

from conftest import assert_valid_schedule, random_dag


class TestRegistry:
    def test_expected_names_present(self):
        names = available_schedulers()
        for expected in (
            "cilk", "bl_est", "etf", "hdagg", "bsp_greedy", "source",
            "ilp_init", "framework", "multilevel", "trivial",
        ):
            assert expected in names

    def test_create_scheduler_returns_scheduler_instances(self):
        for name in ("cilk", "hdagg", "bsp_greedy", "source", "trivial", "round_robin"):
            scheduler = create_scheduler(name)
            assert isinstance(scheduler, Scheduler)

    def test_create_scheduler_forwards_kwargs(self):
        cilk = create_scheduler("cilk", seed=42)
        assert cilk.seed == 42

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(ConfigurationError, match="available"):
            create_scheduler("does_not_exist")

    def test_created_schedulers_produce_valid_schedules(self):
        dag = random_dag(20, 0.2, seed=1)
        machine = BspMachine.uniform(4, g=1, latency=2)
        for name in ("cilk", "bl_est", "etf", "hdagg", "bsp_greedy", "source", "trivial"):
            assert_valid_schedule(create_scheduler(name).schedule(dag, machine))


class TestTopLevelApi:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_docstring_pattern_works(self):
        from repro import BspMachine, SchedulingPipeline
        from repro.dagdb import SparseMatrixPattern, build_spmv_dag

        dag = build_spmv_dag(SparseMatrixPattern.random(6, 0.4, seed=1)).dag
        machine = BspMachine.uniform(4, g=1, latency=5)
        schedule = SchedulingPipeline.heuristics_only(0.2).schedule(dag, machine)
        assert schedule.cost() > 0
