"""Unit tests for the baseline schedulers: trivial, round-robin, Cilk, BL-EST, ETF."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BspMachine, ComputationalDAG
from repro.schedulers import (
    BlEstScheduler,
    CilkScheduler,
    EtfScheduler,
    RoundRobinScheduler,
    TrivialScheduler,
)

from conftest import (
    assert_valid_schedule,
    build_chain_dag,
    build_diamond_dag,
    build_fork_join_dag,
    build_paper_example_dag,
    random_dag,
)

ALL_BASELINES = [
    TrivialScheduler,
    RoundRobinScheduler,
    CilkScheduler,
    BlEstScheduler,
    EtfScheduler,
]


class TestAllBaselinesProduceValidSchedules:
    @pytest.mark.parametrize("scheduler_cls", ALL_BASELINES)
    @pytest.mark.parametrize("num_procs", [1, 2, 4])
    def test_valid_on_small_dags(self, scheduler_cls, num_procs):
        machine = BspMachine.uniform(num_procs, g=2, latency=3)
        for dag in (
            build_chain_dag(6),
            build_diamond_dag(),
            build_fork_join_dag(5),
            build_paper_example_dag(),
        ):
            schedule = scheduler_cls().schedule(dag, machine)
            assert_valid_schedule(schedule)
            assert schedule.dag is dag

    @pytest.mark.parametrize("scheduler_cls", ALL_BASELINES)
    def test_valid_on_random_dags(self, scheduler_cls):
        machine = BspMachine.uniform(4, g=1, latency=1)
        for seed in range(3):
            dag = random_dag(30, 0.15, seed=seed)
            assert_valid_schedule(scheduler_cls().schedule(dag, machine))

    @pytest.mark.parametrize("scheduler_cls", ALL_BASELINES)
    def test_empty_dag(self, scheduler_cls):
        machine = BspMachine.uniform(2)
        dag = ComputationalDAG(0)
        schedule = scheduler_cls().schedule(dag, machine)
        assert schedule.cost() == 0.0

    @pytest.mark.parametrize("scheduler_cls", ALL_BASELINES)
    def test_numa_machine(self, scheduler_cls, numa_machine8):
        dag = random_dag(25, 0.2, seed=4)
        assert_valid_schedule(scheduler_cls().schedule(dag, numa_machine8))


class TestTrivial:
    def test_cost_equals_serial_work_plus_latency(self):
        dag = random_dag(20, 0.2, seed=0)
        machine = BspMachine.uniform(8, g=5, latency=7)
        schedule = TrivialScheduler().schedule(dag, machine)
        assert schedule.cost() == dag.total_work + machine.latency
        assert schedule.num_supersteps == 1


class TestCilk:
    def test_deterministic_with_seed(self, spmv_dag, machine4):
        a = CilkScheduler(seed=1).schedule(spmv_dag, machine4)
        b = CilkScheduler(seed=1).schedule(spmv_dag, machine4)
        assert a.cost() == b.cost()
        assert np.array_equal(a.procs, b.procs)

    def test_work_stealing_spreads_independent_work(self):
        """With plenty of independent tasks, more than one processor gets used."""
        dag = build_fork_join_dag(16)
        machine = BspMachine.uniform(4, g=0, latency=0)
        schedule = CilkScheduler(seed=0).schedule(dag, machine)
        assert len(set(schedule.procs)) > 1

    def test_classical_schedule_no_idle_when_work_available(self):
        """Greedy work stealing keeps the makespan near total_work / P for wide DAGs."""
        dag = build_fork_join_dag(32)
        classical = CilkScheduler(seed=0).classical_schedule(dag, 4)
        classical.validate()
        lower_bound = dag.total_work / 4
        assert classical.makespan <= 2 * lower_bound + 2

    def test_chain_stays_on_one_processor(self):
        dag = build_chain_dag(10)
        classical = CilkScheduler(seed=0).classical_schedule(dag, 4)
        # a chain has no parallelism: every node should run on the processor
        # that finished its predecessor (no steal can happen on an empty stack)
        assert len(set(classical.procs.tolist())) == 1

    def test_zero_work_nodes_handled(self):
        dag = ComputationalDAG(4, [0, 0, 1, 1])
        dag.add_edges([(0, 1), (1, 2), (2, 3)])
        machine = BspMachine.uniform(2)
        assert_valid_schedule(CilkScheduler().schedule(dag, machine))


class TestListSchedulers:
    def test_bl_est_priority_is_bottom_level(self):
        """The node with the longest outgoing path is scheduled first."""
        dag = ComputationalDAG(4, [1, 1, 5, 1])
        dag.add_edges([(0, 2), (1, 3)])
        dag.set_work(2, 5)  # branch through node 2 is heavier
        classical = BlEstScheduler().classical_schedule(dag, BspMachine.uniform(1))
        assert classical.start_times[0] < classical.start_times[1]

    def test_etf_picks_globally_earliest_start(self):
        dag = build_fork_join_dag(4)
        machine = BspMachine.uniform(2, g=1)
        classical = EtfScheduler().classical_schedule(dag, machine)
        classical.validate()

    def test_est_accounts_for_communication_volume(self):
        """With huge comm weights, both successors of a node stay on its processor."""
        dag = ComputationalDAG(3, [1, 1, 1], [100, 1, 1])
        dag.add_edges([(0, 1), (0, 2)])
        machine = BspMachine.uniform(2, g=10)
        for scheduler in (BlEstScheduler(), EtfScheduler()):
            classical = scheduler.classical_schedule(dag, machine)
            assert classical.procs[1] == classical.procs[0]
            assert classical.procs[2] == classical.procs[0]

    def test_est_ignores_communication_when_free(self):
        """With g = 0 the successors can spread across processors."""
        dag = build_fork_join_dag(8)
        machine = BspMachine.uniform(4, g=0)
        classical = EtfScheduler().classical_schedule(dag, machine)
        assert len(set(classical.procs.tolist())) > 1

    def test_numa_average_multiplier_used(self):
        dag = ComputationalDAG(2, [1, 1], [10, 1])
        dag.add_edge(0, 1)
        numa = BspMachine.numa_hierarchy(4, delta=4, g=1)
        classical = BlEstScheduler().classical_schedule(dag, numa)
        # the communication penalty (10 * avg lambda > 10) far exceeds any
        # waiting time, so node 1 is co-located with node 0
        assert classical.procs[1] == classical.procs[0]
