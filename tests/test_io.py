"""Unit tests for hyperDAG I/O, DOT export and text rendering."""

from __future__ import annotations

import pytest

from repro.core import BspMachine, BspSchedule, ComputationalDAG, DagError
from repro.io import (
    dag_to_dot,
    dumps_hyperdag,
    loads_hyperdag,
    read_hyperdag,
    render_cost_table,
    render_schedule_text,
    schedule_to_dot,
    write_dot,
    write_hyperdag,
)

from conftest import build_diamond_dag, random_dag


class TestHyperDagFormat:
    def test_roundtrip_in_memory(self):
        dag = build_diamond_dag()
        dag.set_work(1, 7)
        dag.set_comm(2, 3)
        text = dumps_hyperdag(dag)
        back = loads_hyperdag(text)
        assert back.num_nodes == dag.num_nodes
        assert back.num_edges == dag.num_edges
        assert back.work(1) == 7.0
        assert back.comm(2) == 3.0
        assert {(e.source, e.target) for e in back.edges()} == {
            (e.source, e.target) for e in dag.edges()
        }

    def test_roundtrip_on_disk(self, tmp_path):
        dag = random_dag(20, 0.2, seed=5)
        path = tmp_path / "example.hdag"
        write_hyperdag(dag, path)
        back = read_hyperdag(path)
        assert back.num_nodes == dag.num_nodes
        assert back.num_edges == dag.num_edges
        assert list(back.work_weights) == list(dag.work_weights)

    def test_name_preserved(self):
        dag = ComputationalDAG(2, name="my_computation")
        dag.add_edge(0, 1)
        assert loads_hyperdag(dumps_hyperdag(dag)).name == "my_computation"

    def test_one_hyperedge_per_non_sink(self):
        dag = build_diamond_dag()
        text = dumps_hyperdag(dag)
        assert "hyperedges 3" in text  # nodes 0, 1, 2 have successors; node 3 is a sink

    def test_comments_and_blank_lines_ignored(self):
        text = (
            "%% HyperDAG test\n"
            "% a comment\n"
            "\n"
            "nodes 2\n"
            "1 1\n"
            "2 1\n"
            "% another comment\n"
            "hyperedges 1\n"
            "0 1\n"
        )
        dag = loads_hyperdag(text)
        assert dag.num_nodes == 2
        assert dag.has_edge(0, 1)

    def test_malformed_header_rejected(self):
        with pytest.raises(DagError):
            loads_hyperdag("vertices 3\n")

    def test_truncated_file_rejected(self):
        with pytest.raises(DagError):
            loads_hyperdag("nodes 2\n1 1\n")

    def test_cyclic_hyperdag_rejected(self):
        text = "nodes 2\n1 1\n1 1\nhyperedges 2\n0 1\n1 0\n"
        with pytest.raises(DagError):
            loads_hyperdag(text)

    def test_hyperedge_without_successor_rejected(self):
        text = "nodes 1\n1 1\nhyperedges 1\n0\n"
        with pytest.raises(DagError):
            loads_hyperdag(text)


class TestDotExport:
    def test_dag_to_dot_mentions_all_nodes_and_edges(self):
        dag = build_diamond_dag()
        dot = dag_to_dot(dag)
        assert dot.startswith("digraph")
        for v in dag.nodes():
            assert f"n{v} [" in dot
        assert "n0 -> n1;" in dot

    def test_schedule_to_dot_clusters_by_superstep(self):
        dag = build_diamond_dag()
        machine = BspMachine.uniform(2, latency=1)
        schedule = BspSchedule(dag, machine, [0, 0, 1, 0], [0, 1, 1, 2])
        dot = schedule_to_dot(schedule)
        assert "cluster_superstep_0" in dot
        assert "cluster_superstep_2" in dot

    def test_write_dot(self, tmp_path):
        dag = build_diamond_dag()
        path = tmp_path / "dag.dot"
        write_dot(dag_to_dot(dag), path)
        assert path.read_text().startswith("digraph")


class TestTextRendering:
    def test_render_schedule_text(self):
        dag = build_diamond_dag()
        machine = BspMachine.uniform(2, g=2, latency=1)
        schedule = BspSchedule(dag, machine, [0, 0, 1, 0], [0, 1, 1, 2])
        text = render_schedule_text(schedule)
        assert "superstep 0" in text
        assert "proc 0" in text
        assert "total cost" in text
        assert "p1->p0" in text or "p0->p1" in text

    def test_render_schedule_truncates_long_cells(self):
        dag = ComputationalDAG(30)
        machine = BspMachine.uniform(1, latency=0)
        schedule = BspSchedule.trivial(dag, machine)
        text = render_schedule_text(schedule, max_nodes_per_cell=5)
        assert "(+25)" in text

    def test_render_cost_table(self):
        dag = build_diamond_dag()
        machine = BspMachine.uniform(2, latency=1)
        schedules = {
            "trivial": BspSchedule.trivial(dag, machine),
            "split": BspSchedule(dag, machine, [0, 0, 1, 0], [0, 1, 1, 2]),
        }
        table = render_cost_table(schedules)
        assert "trivial" in table
        assert "split" in table
        assert "cost" in table
