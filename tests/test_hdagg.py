"""Unit tests for the HDagg wavefront-aggregation baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BspMachine, ComputationalDAG
from repro.schedulers import HDaggScheduler

from conftest import (
    assert_valid_schedule,
    build_chain_dag,
    build_fork_join_dag,
    build_paper_example_dag,
    random_dag,
)
from repro.dagdb import SparseMatrixPattern, build_spmv_dag


class TestValidity:
    @pytest.mark.parametrize("num_procs", [1, 2, 4, 8])
    def test_valid_on_various_dags(self, num_procs):
        machine = BspMachine.uniform(num_procs, g=2, latency=3)
        for dag in (
            build_chain_dag(8),
            build_fork_join_dag(10),
            build_paper_example_dag(),
            random_dag(40, 0.1, seed=2),
        ):
            assert_valid_schedule(HDaggScheduler().schedule(dag, machine))

    def test_empty_dag(self):
        machine = BspMachine.uniform(4)
        schedule = HDaggScheduler().schedule(ComputationalDAG(0), machine)
        assert schedule.cost() == 0.0

    def test_sptrsv_style_input(self):
        """HDagg's home turf: a lower-triangular system's dependency DAG."""
        pattern = SparseMatrixPattern.lower_triangular_random(30, 0.15, seed=3)
        dag = ComputationalDAG(30)
        for i in range(30):
            for j in pattern.row(i):
                if j != i:
                    dag.add_edge(j, i)
        machine = BspMachine.uniform(4, g=1, latency=2)
        assert_valid_schedule(HDaggScheduler().schedule(dag, machine))


class TestWavefrontStructure:
    def test_supersteps_follow_levels_without_aggregation(self):
        """A wide DAG needs no aggregation: supersteps equal topological levels."""
        dag = build_fork_join_dag(16)
        machine = BspMachine.uniform(2)
        schedule = HDaggScheduler().schedule(dag, machine)
        levels = dag.levels()
        # superstep order respects level order
        for edge in dag.edges():
            assert schedule.superstep_of(edge.source) <= schedule.superstep_of(edge.target)
        assert schedule.num_supersteps <= int(levels.max()) + 1

    def test_thin_wavefronts_are_aggregated(self):
        """A pure chain exposes no parallelism: HDagg merges its wavefronts."""
        dag = build_chain_dag(20)
        machine = BspMachine.uniform(4)
        schedule = HDaggScheduler(max_group_levels=50).schedule(dag, machine)
        assert schedule.num_supersteps < 20

    def test_aggregation_respects_max_group_levels(self):
        dag = build_chain_dag(30)
        machine = BspMachine.uniform(4)
        schedule = HDaggScheduler(max_group_levels=5).schedule(dag, machine)
        assert schedule.num_supersteps >= 6

    def test_intra_superstep_dependencies_stay_on_one_processor(self):
        dag = random_dag(50, 0.08, seed=9)
        machine = BspMachine.uniform(4)
        schedule = HDaggScheduler().schedule(dag, machine)
        for edge in dag.edges():
            if schedule.superstep_of(edge.source) == schedule.superstep_of(edge.target):
                assert schedule.proc_of(edge.source) == schedule.proc_of(edge.target)


class TestLoadBalancing:
    def test_independent_units_are_spread(self):
        """Many equal independent chains should use every processor."""
        dag = ComputationalDAG(16)
        for c in range(8):
            dag.add_edge(2 * c, 2 * c + 1)
        machine = BspMachine.uniform(4, g=0, latency=0)
        schedule = HDaggScheduler().schedule(dag, machine)
        assert len(set(schedule.procs.tolist())) == 4

    def test_work_balance_within_factor(self):
        dag = build_fork_join_dag(32)
        machine = BspMachine.uniform(4, g=0, latency=0)
        schedule = HDaggScheduler(balance_factor=1.2).schedule(dag, machine)
        middle = [v for v in dag.nodes() if 1 <= v <= 32]
        loads = np.zeros(4)
        for v in middle:
            loads[schedule.proc_of(v)] += dag.work(v)
        assert loads.max() <= 1.5 * loads.mean()

    def test_fat_wavefront_not_serialised_by_thin_neighbours(self):
        """A 1-wide source must not drag a 32-wide wavefront onto one processor."""
        dag = build_fork_join_dag(32)
        machine = BspMachine.uniform(4, g=0, latency=0)
        schedule = HDaggScheduler().schedule(dag, machine)
        middle_procs = {schedule.proc_of(v) for v in range(1, 33)}
        assert len(middle_procs) == 4

    def test_locality_preferred_when_affordable(self):
        """A successor whose predecessor communication is heavy follows its predecessor."""
        dag = ComputationalDAG(4, [1, 1, 1, 1], [50, 1, 1, 1])
        dag.add_edge(0, 2)
        dag.add_edge(1, 3)
        machine = BspMachine.uniform(2, g=5)
        schedule = HDaggScheduler().schedule(dag, machine)
        if schedule.superstep_of(2) != schedule.superstep_of(0):
            assert schedule.proc_of(2) == schedule.proc_of(0)


class TestAgainstSimpleBounds:
    def test_better_than_worst_case_on_spmv(self):
        dag = build_spmv_dag(SparseMatrixPattern.random(10, 0.3, seed=5)).dag
        machine = BspMachine.uniform(4, g=1, latency=2)
        schedule = HDaggScheduler().schedule(dag, machine)
        # sanity: no worse than serialising everything with maximum latency
        assert schedule.cost() <= dag.total_work + dag.total_comm * machine.g + \
            machine.latency * dag.num_nodes
