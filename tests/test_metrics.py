"""Unit tests for the aggregation metrics."""

from __future__ import annotations

import math

import pytest

from repro.analysis import (
    communication_to_computation_ratio,
    cost_ratio,
    geometric_mean,
    improvement,
    improvement_from_ratios,
    mean_cost_ratio,
)
from repro.core import BspMachine, ComputationalDAG


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        assert geometric_mean([2, 2, 2]) == pytest.approx(2.0)

    def test_empty_is_nan(self):
        assert math.isnan(geometric_mean([]))

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([-1.0])

    def test_less_sensitive_to_outliers_than_arithmetic_mean(self):
        ratios = [0.5, 0.5, 0.5, 4.0]
        geo = geometric_mean(ratios)
        arith = sum(ratios) / len(ratios)
        assert geo < arith


class TestRatiosAndImprovements:
    def test_cost_ratio(self):
        assert cost_ratio(50, 100) == 0.5
        assert cost_ratio(10, 0) == math.inf
        assert cost_ratio(0, 0) == 1.0

    def test_mean_cost_ratio(self):
        assert mean_cost_ratio([50, 25], [100, 100]) == pytest.approx(
            math.sqrt(0.5 * 0.25)
        )
        with pytest.raises(ValueError):
            mean_cost_ratio([1], [1, 2])

    def test_improvement_matches_paper_convention(self):
        """A mean ratio of 0.56 is reported as a 44% cost reduction (§7.1)."""
        assert improvement_from_ratios([0.56]) == pytest.approx(0.44)
        assert improvement([56.0], [100.0]) == pytest.approx(0.44)

    def test_negative_improvement_when_worse(self):
        assert improvement([120.0], [100.0]) < 0


class TestCcr:
    def test_plain_definition(self):
        dag = ComputationalDAG(4, [1, 1, 1, 1], [2, 2, 2, 2])
        assert communication_to_computation_ratio(dag) == pytest.approx(2.0)

    def test_machine_extension_scales_with_g_and_numa(self):
        dag = ComputationalDAG(4, [1, 1, 1, 1], [2, 2, 2, 2])
        uniform = BspMachine.uniform(4, g=3)
        numa = BspMachine.numa_hierarchy(4, delta=4, g=3)
        plain = communication_to_computation_ratio(dag)
        with_uniform = communication_to_computation_ratio(dag, uniform)
        with_numa = communication_to_computation_ratio(dag, numa)
        assert with_uniform == pytest.approx(plain * 3)
        assert with_numa > with_uniform

    def test_zero_work(self):
        dag = ComputationalDAG(2, [0, 0], [1, 1])
        assert communication_to_computation_ratio(dag) == math.inf
