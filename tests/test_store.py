"""Tests for the persistent scheduling service (repro.store).

Covers the three layers of the subsystem and their crash-recovery
guarantees:

* the filesystem primitives (atomic publish, tolerant reads, atomic claim),
* the content-addressed result store (round trips, DAG deduplication,
  corrupt entries reading as missing and being recomputed),
* the durable work queue + dispatcher (lease expiry after simulated worker
  death, terminal failures, a killed-and-restarted fleet completing a
  queued grid with no lost or duplicated results),
* resumable experiments (a warm store answers a whole re-run with zero
  scheduler invocations and byte-identical tables).
"""

from __future__ import annotations

import time
from dataclasses import replace

import pytest

from repro.analysis.experiments import ExperimentRunner, enqueue_grid, run_grid
from repro.analysis.tables import table1_no_numa_improvements
from repro.api import (
    MachineSpec,
    ScheduleRequest,
    SchedulerSpec,
    SchedulingService,
)
from repro.core import load_schedule
from repro.core.exceptions import ReproError
from repro.dagdb import build_dataset
from repro.schedulers.pipeline import PipelineConfig
from repro.store import Dispatcher, ResultStore, WorkQueue, dag_dict_fingerprint
from repro.store.fsio import atomic_write_json, claim_rename, read_json_tolerant

from conftest import build_diamond_dag, random_dag

#: budget-free: every scheduler is deterministic, replays are bit-identical
BUDGET_FREE = PipelineConfig(
    use_ilp=False, use_comm_ilp=False, local_search_seconds=None
)


def make_request(seed=0, scheduler="cilk", dag=None, procs=4, g=1.0):
    return ScheduleRequest(
        dag=dag if dag is not None else random_dag(16, 0.25, seed=3),
        machine=MachineSpec(procs, g, 5.0),
        scheduler=SchedulerSpec(scheduler),
        seed=seed,
    )


class FakeClock:
    """Injectable epoch-seconds source for deterministic lease expiry."""

    def __init__(self, now=1000.0):
        self.now = float(now)

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += float(seconds)


# ---------------------------------------------------------------------- #
# filesystem primitives
# ---------------------------------------------------------------------- #
class TestFsio:
    def test_atomic_json_round_trip(self, tmp_path):
        path = tmp_path / "a" / "b.json"
        atomic_write_json(path, {"x": 1})
        assert read_json_tolerant(path) == {"x": 1}
        assert not list(path.parent.glob("*.tmp"))  # no orphan temporaries

    def test_missing_and_corrupt_read_as_none(self, tmp_path):
        assert read_json_tolerant(tmp_path / "absent.json") is None
        truncated = tmp_path / "truncated.json"
        truncated.write_text('{"x": [1, 2')
        assert read_json_tolerant(truncated) is None

    def test_claim_rename_exactly_one_winner(self, tmp_path):
        source = tmp_path / "pending" / "entry.json"
        atomic_write_json(source, {"fingerprint": "f"})
        target = tmp_path / "leased" / "entry.json"
        assert claim_rename(source, target) is True
        # the losing racer observes the source gone and backs off
        assert claim_rename(source, tmp_path / "leased2" / "entry.json") is False
        assert read_json_tolerant(target) == {"fingerprint": "f"}


# ---------------------------------------------------------------------- #
# content-addressed result store
# ---------------------------------------------------------------------- #
class TestResultStore:
    def test_round_trip_is_canonical(self, tmp_path):
        request = make_request()
        result = SchedulingService(cache_size=0).solve(request)
        store = ResultStore(tmp_path)
        assert store.put(request.fingerprint(), result) is True
        loaded = store.get(request.fingerprint())
        assert loaded is not None
        assert loaded.canonical_dict() == result.canonical_dict()
        assert loaded.to_schedule().is_valid()

    def test_missing_reads_as_none(self, tmp_path):
        assert ResultStore(tmp_path).get("0" * 64) is None
        assert ResultStore(tmp_path).contains("0" * 64) is False

    def test_dag_stored_once_across_results(self, tmp_path):
        dag = random_dag(16, 0.25, seed=3)
        service = SchedulingService(cache_size=0, store=tmp_path)
        for scheduler in ("cilk", "hdagg", "bsp_greedy"):
            service.solve(make_request(dag=dag, scheduler=scheduler))
        stats = ResultStore(tmp_path).stats()
        assert stats == {"results": 3, "dags": 1, "trials": 3}

    def test_put_same_fingerprint_idempotent(self, tmp_path):
        request = make_request()
        result = SchedulingService(cache_size=0).solve(request)
        store = ResultStore(tmp_path)
        assert store.put(request.fingerprint(), result) is True
        assert store.put(request.fingerprint(), result) is False  # kept as-is
        assert len(store) == 1

    def test_corrupt_entry_reads_as_missing_and_is_overwritten(self, tmp_path):
        request = make_request()
        result = SchedulingService(cache_size=0).solve(request)
        store = ResultStore(tmp_path)
        store.put(request.fingerprint(), result)
        store.result_path(request.fingerprint()).write_text("{ not json")
        assert store.get(request.fingerprint()) is None
        # a re-put repairs the corrupt entry instead of skipping it
        assert store.put(request.fingerprint(), result) is True
        assert store.get(request.fingerprint()) is not None

    def test_unresolvable_dag_ref_raises(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ReproError, match="dag_ref"):
            store.load_dag_dict("deadbeef")

    def test_put_dag_deduplicates(self, tmp_path):
        store = ResultStore(tmp_path)
        dag = build_diamond_dag()
        path1 = store.put_dag(dag)
        path2 = store.put_dag(dag)
        assert path1 == path2
        assert store.stats()["dags"] == 1
        ref = path1.stem
        assert dag_dict_fingerprint(store.load_dag_dict(ref)) == ref

    def test_load_schedule_reads_store_entries(self, tmp_path):
        """The back-compat loader resolves dag_ref files sitting in a store."""
        request = make_request()
        service = SchedulingService(cache_size=0, store=tmp_path)
        result = service.solve(request)
        stored_file = ResultStore(tmp_path).result_path(request.fingerprint())
        assert '"dag_ref"' in stored_file.read_text()
        loaded = load_schedule(stored_file)  # store root inferred from path
        assert loaded.is_valid()
        assert loaded.cost() == pytest.approx(result.cost)


# ---------------------------------------------------------------------- #
# service store tier
# ---------------------------------------------------------------------- #
class TestServiceStoreTier:
    def test_cache_info_without_store_unchanged(self):
        service = SchedulingService()
        assert service.cache_info() == {"hits": 0, "misses": 0, "size": 0}

    def test_store_hit_across_service_instances(self, tmp_path):
        request = make_request()
        first = SchedulingService(cache_size=0, store=tmp_path)
        computed = first.solve(request)
        assert first.cache_info()["misses"] == 1

        second = SchedulingService(cache_size=0, store=tmp_path)
        replayed = second.solve(request)
        info = second.cache_info()
        assert info["misses"] == 0
        assert info["store_hits"] == 1
        assert replayed.cache_hit is True
        assert replayed.canonical_dict() == computed.canonical_dict()

    def test_store_populates_memory_tier(self, tmp_path):
        request = make_request()
        SchedulingService(cache_size=0, store=tmp_path).solve(request)
        service = SchedulingService(cache_size=4, store=tmp_path)
        service.solve(request)
        service.solve(request)
        info = service.cache_info()
        assert info["store_hits"] == 1
        assert info["memory_hits"] == 1
        assert info["misses"] == 0

    def test_resume_skips_exactly_the_stored_fingerprints(self, tmp_path):
        """The resume contract: misses == requests not already stored."""
        requests = [make_request(seed=s) for s in range(4)]
        warmup = SchedulingService(cache_size=0, store=tmp_path)
        warmup.solve_many(requests[:2], workers=1)
        assert warmup.cache_info()["misses"] == 2

        resumed = SchedulingService(cache_size=0, store=tmp_path)
        results = resumed.solve_many(requests, workers=1)
        info = resumed.cache_info()
        assert info["misses"] == 2  # only the two new fingerprints
        assert info["store_hits"] == 2
        assert [r.cache_hit for r in results] == [True, True, False, False]

    def test_corrupt_store_entry_recomputed(self, tmp_path):
        request = make_request()
        service = SchedulingService(cache_size=0, store=tmp_path)
        computed = service.solve(request)
        path = ResultStore(tmp_path).result_path(request.fingerprint())
        path.write_text(path.read_text()[: 40])  # truncate mid-payload

        fresh = SchedulingService(cache_size=0, store=tmp_path)
        replayed = fresh.solve(request)
        assert fresh.cache_info()["misses"] == 1  # recomputed, not wedged
        assert replayed.canonical_dict() == computed.canonical_dict()
        # and the recompute repaired the entry on disk
        assert ResultStore(tmp_path).contains(request.fingerprint())


# ---------------------------------------------------------------------- #
# durable work queue
# ---------------------------------------------------------------------- #
class TestWorkQueue:
    def test_submit_deduplicates(self, tmp_path):
        queue = WorkQueue(tmp_path)
        wire = make_request().to_dict()
        assert queue.submit("f1", wire) is True
        assert queue.submit("f1", wire) is False
        assert queue.stats() == {"pending": 1, "leased": 0, "failed": 0}

    def test_lease_partitions_between_workers(self, tmp_path):
        queue = WorkQueue(tmp_path)
        wire = make_request().to_dict()
        for i in range(4):
            queue.submit(f"f{i}", wire)
        a = queue.lease("worker-a", limit=2)
        b = queue.lease("worker-b")
        assert len(a) == 2 and len(b) == 2
        assert {t.fingerprint for t in a} | {t.fingerprint for t in b} == {
            "f0", "f1", "f2", "f3"
        }
        assert queue.lease("worker-c") == []  # nothing left to claim

    def test_lease_expiry_after_simulated_worker_death(self, tmp_path):
        clock = FakeClock()
        queue = WorkQueue(tmp_path, clock=clock)
        queue.submit("f1", make_request().to_dict())
        [task] = queue.lease("doomed-worker", lease_seconds=300)
        assert task.attempts == 1
        # the worker dies; nothing renews the lease
        clock.advance(301)
        requeued, failed = queue.expire_leases(max_attempts=3, lease_seconds=300)
        assert requeued == ["f1"] and failed == []
        # the entry is claimable again, with its attempt counter preserved
        [retry] = queue.lease("successor-worker", lease_seconds=300)
        assert retry.attempts == 2
        assert retry.request == task.request

    def test_live_lease_not_expired(self, tmp_path):
        clock = FakeClock()
        queue = WorkQueue(tmp_path, clock=clock)
        queue.submit("f1", make_request().to_dict())
        queue.lease("alive-worker", lease_seconds=300)
        clock.advance(200)
        assert queue.expire_leases(lease_seconds=300) == ([], [])
        assert queue.renew("f1", "alive-worker", lease_seconds=300) is True
        clock.advance(200)  # 400s total, but renewed at 200s
        assert queue.expire_leases(lease_seconds=300) == ([], [])

    def test_renew_rejects_non_owner(self, tmp_path):
        queue = WorkQueue(tmp_path)
        queue.submit("f1", make_request().to_dict())
        queue.lease("worker-a")
        assert queue.renew("f1", "worker-b") is False

    def test_terminal_failure_after_max_attempts(self, tmp_path):
        clock = FakeClock()
        queue = WorkQueue(tmp_path, clock=clock)
        queue.submit("f1", make_request().to_dict())
        for _ in range(3):
            queue.lease("crashy-worker", lease_seconds=10)
            clock.advance(11)
            queue.expire_leases(max_attempts=3, lease_seconds=10)
        assert queue.pending() == [] and queue.leased() == []
        failures = queue.failures()
        assert list(failures) == ["f1"]
        assert "presumed dead" in failures["f1"]
        # terminal failures can be requeued explicitly
        assert queue.retry_failed() == ["f1"]
        assert queue.stats() == {"pending": 1, "leased": 0, "failed": 0}

    def test_complete_drops_entry(self, tmp_path):
        queue = WorkQueue(tmp_path)
        queue.submit("f1", make_request().to_dict())
        queue.lease("worker-a")
        queue.complete("f1")
        assert queue.stats() == {"pending": 0, "leased": 0, "failed": 0}


# ---------------------------------------------------------------------- #
# dispatcher + worker fleet
# ---------------------------------------------------------------------- #
class TestDispatcher:
    def _enqueue(self, root, seeds=(0, 1, 2)):
        store = ResultStore(root)
        queue = WorkQueue(root)
        fingerprints = []
        for seed in seeds:
            request = make_request(seed=seed)
            fingerprint = request.fingerprint()
            dag_path = store.put_dag(request.resolve_dag())
            wire = replace(
                request, dag=str(dag_path), _resolved_dag=None, _fingerprint=fingerprint
            ).to_dict()
            queue.submit(fingerprint, wire)
            fingerprints.append(fingerprint)
        return fingerprints

    def test_drain_completes_queue_into_store(self, tmp_path):
        fingerprints = self._enqueue(tmp_path)
        report = Dispatcher(tmp_path, workers=1).drain()
        assert sorted(report.completed) == sorted(fingerprints)
        assert report.failed == {}
        store = ResultStore(tmp_path)
        assert store.fingerprints() == sorted(fingerprints)
        assert WorkQueue(tmp_path).stats() == {"pending": 0, "leased": 0, "failed": 0}

    def test_killed_fleet_restart_loses_and_duplicates_nothing(self, tmp_path):
        """A worker dies mid-batch; a restarted fleet finishes the grid.

        The dead worker is simulated at the two dangerous points: after
        persisting a result but before completing its queue entry, and
        before persisting anything.  The restarted dispatcher must complete
        every fingerprint exactly once — the persisted one without
        recomputation.
        """
        clock = FakeClock()
        fingerprints = self._enqueue(tmp_path)
        queue = WorkQueue(tmp_path, clock=clock)
        store = ResultStore(tmp_path)

        # the doomed worker leases the whole grid ...
        tasks = queue.lease("doomed-worker", lease_seconds=300)
        assert len(tasks) == len(fingerprints)
        # ... persists exactly one result, then crashes (entries stay leased)
        done = tasks[0]
        result = SchedulingService(cache_size=0).solve(
            ScheduleRequest.from_dict(done.request)
        )
        store.put(done.fingerprint, result)
        clock.advance(301)  # the fleet is restarted after the leases expired

        restarted = Dispatcher(tmp_path, workers=1, lease_seconds=300, clock=clock)
        report = restarted.drain()
        # nothing lost: every fingerprint ended in the store exactly once
        assert store.fingerprints() == sorted(fingerprints)
        assert sorted(report.requeued) == sorted(fingerprints)
        # nothing duplicated: the persisted result was completed, not re-run
        assert report.skipped == [done.fingerprint]
        assert sorted(report.completed) == sorted(
            f for f in fingerprints if f != done.fingerprint
        )
        assert report.failed == {}
        assert queue.stats() == {"pending": 0, "leased": 0, "failed": 0}

    def test_poisoned_request_fails_terminally_without_wedging(self, tmp_path):
        good = make_request(seed=0)
        queue = WorkQueue(tmp_path)
        queue.submit(good.fingerprint(), good.to_dict())
        bad_wire = make_request(seed=1).to_dict()
        bad_wire["scheduler"] = {"name": "no_such_scheduler", "params": {}}
        queue.submit("bad-entry", bad_wire)

        report = Dispatcher(tmp_path, workers=1).drain(max_batches=4)
        assert report.completed == [good.fingerprint()]
        assert set(report.failed) == {"bad-entry"}
        failures = WorkQueue(tmp_path).failures()
        assert "bad-entry" in failures
        assert ResultStore(tmp_path).fingerprints() == [good.fingerprint()]

    def test_run_once_skips_already_stored(self, tmp_path):
        [fingerprint] = self._enqueue(tmp_path, seeds=(5,))
        request = ScheduleRequest.from_dict(WorkQueue(tmp_path).request_dict(fingerprint))
        ResultStore(tmp_path).put(
            fingerprint, SchedulingService(cache_size=0).solve(request)
        )
        report = Dispatcher(tmp_path, workers=1).run_once()
        assert report.skipped == [fingerprint]
        assert report.completed == []


# ---------------------------------------------------------------------- #
# resumable experiments
# ---------------------------------------------------------------------- #
class TestResumableExperiments:
    def _grid(self, root):
        runner = ExperimentRunner(config=BUDGET_FREE, store=root)
        instances = build_dataset("tiny", scale="bench", include_coarse=False)[:2]
        specs = [MachineSpec(4, 1, 5), MachineSpec(4, 5, 5)]
        return runner, instances, specs

    def test_warm_store_rerun_zero_invocations_byte_identical(self, tmp_path):
        runner, instances, specs = self._grid(tmp_path)
        cold = run_grid(runner, instances, specs)
        cold_info = runner.service.cache_info()
        assert cold_info["misses"] > 0
        assert cold_info["store_size"] == cold_info["misses"]

        warm_runner, _, _ = self._grid(tmp_path)
        warm = run_grid(warm_runner, instances, specs)
        warm_info = warm_runner.service.cache_info()
        assert warm_info["misses"] == 0  # zero scheduler invocations
        assert warm_info["store_hits"] == cold_info["misses"]

        _, cold_text = table1_no_numa_improvements(cold)
        _, warm_text = table1_no_numa_improvements(warm)
        assert warm_text.encode() == cold_text.encode()

    def test_partial_store_resumes_only_the_missing_points(self, tmp_path):
        runner, instances, specs = self._grid(tmp_path)
        run_grid(runner, instances, specs[:1])
        first = runner.service.cache_info()["misses"]

        resumed_runner, _, _ = self._grid(tmp_path)
        run_grid(resumed_runner, instances, specs)
        info = resumed_runner.service.cache_info()
        assert info["store_hits"] == first
        assert info["misses"] == first  # the second machine point only

    def test_enqueue_grid_then_fleet_then_assembly(self, tmp_path):
        runner, instances, specs = self._grid(tmp_path)
        fingerprints = enqueue_grid(runner, instances, specs, tmp_path)
        assert len(fingerprints) == len(set(fingerprints))
        # one shared DAG payload per instance, not per request
        assert ResultStore(tmp_path).stats()["dags"] == len(instances)
        # re-enqueueing is a no-op (still pending)
        assert enqueue_grid(runner, instances, specs, tmp_path) == []

        report = Dispatcher(tmp_path, workers=1).drain()
        assert sorted(report.completed) == sorted(fingerprints)

        assembly_runner, _, _ = self._grid(tmp_path)
        records = run_grid(assembly_runner, instances, specs)
        assert assembly_runner.service.cache_info()["misses"] == 0
        direct_runner = ExperimentRunner(config=BUDGET_FREE)
        direct = run_grid(direct_runner, instances, specs)
        assert [r.costs for r in records] == [r.costs for r in direct]

    def test_enqueue_skips_already_stored(self, tmp_path):
        runner, instances, specs = self._grid(tmp_path)
        run_grid(runner, instances, specs[:1])  # store the first point
        fingerprints = enqueue_grid(runner, instances, specs, tmp_path)
        stored = set(ResultStore(tmp_path).fingerprints())
        assert stored.isdisjoint(fingerprints)
        assert len(fingerprints) > 0


# ---------------------------------------------------------------------- #
# lease heartbeat
# ---------------------------------------------------------------------- #
class TestLeaseHeartbeat:
    def _leased_queue(self, tmp_path, clock, lease_seconds=100.0):
        queue = WorkQueue(tmp_path, clock=clock)
        queue.submit("fp", {"x": 1})
        tasks = queue.lease("w1", lease_seconds=lease_seconds)
        assert [t.fingerprint for t in tasks] == ["fp"]
        return queue

    def test_renewal_keeps_long_solve_leased(self, tmp_path):
        from repro.store import LeaseHeartbeat

        clock = FakeClock()
        queue = self._leased_queue(tmp_path, clock)
        heartbeat = LeaseHeartbeat(
            queue, "fp", "w1", lease_seconds=100.0, interval=30.0, clock=clock
        )
        # a solve running well past the original deadline, beating as it goes
        for _ in range(6):
            clock.advance(40.0)
            assert heartbeat.maybe_beat()
        requeued, failed = queue.expire_leases(lease_seconds=100.0)
        assert requeued == [] and failed == []
        assert heartbeat.renewals == 6
        assert queue.leased() == ["fp"]

    def test_interval_gates_renewals(self, tmp_path):
        from repro.store import LeaseHeartbeat

        clock = FakeClock()
        queue = self._leased_queue(tmp_path, clock)
        heartbeat = LeaseHeartbeat(
            queue, "fp", "w1", lease_seconds=100.0, interval=30.0, clock=clock
        )
        clock.advance(10.0)
        assert heartbeat.maybe_beat() and heartbeat.renewals == 0  # too soon
        clock.advance(25.0)
        assert heartbeat.maybe_beat() and heartbeat.renewals == 1

    def test_without_heartbeat_the_lease_expires(self, tmp_path):
        clock = FakeClock()
        queue = self._leased_queue(tmp_path, clock)
        clock.advance(150.0)
        requeued, _ = queue.expire_leases(lease_seconds=100.0)
        assert requeued == ["fp"]

    def test_lost_lease_detected_and_renewals_stop(self, tmp_path):
        from repro.store import LeaseHeartbeat

        clock = FakeClock()
        queue = self._leased_queue(tmp_path, clock)
        # the worker goes silent; another dispatcher expires and re-claims
        clock.advance(150.0)
        queue.expire_leases(lease_seconds=100.0)
        queue.lease("w2", lease_seconds=100.0)
        heartbeat = LeaseHeartbeat(
            queue, "fp", "w1", lease_seconds=100.0, interval=1.0, clock=clock
        )
        clock.advance(5.0)
        assert not heartbeat.maybe_beat()
        assert heartbeat.lost and heartbeat.renewals == 0
        clock.advance(5.0)
        assert not heartbeat.maybe_beat()  # stays lost, no further attempts

    def test_threaded_mode_renews_in_real_time(self, tmp_path):
        from repro.store import LeaseHeartbeat

        queue = WorkQueue(tmp_path)
        queue.submit("fp", {"x": 1})
        queue.lease("w1", lease_seconds=60.0)
        with LeaseHeartbeat(
            queue, "fp", "w1", lease_seconds=60.0, interval=0.02
        ) as heartbeat:
            deadline = time.time() + 5.0
            while heartbeat.renewals == 0 and time.time() < deadline:
                time.sleep(0.01)
        assert heartbeat.renewals >= 1 and not heartbeat.lost

    def test_dispatcher_long_solve_is_not_requeued(self, tmp_path, monkeypatch):
        """A solve longer than the lease completes exactly once under heartbeat."""
        import repro.store.dispatcher as dispatcher_mod

        request = make_request(scheduler="cilk")
        queue = WorkQueue(tmp_path)
        queue.submit(request.fingerprint(), request.to_dict())

        original = dispatcher_mod._worker_service

        class SlowService:
            def __init__(self, inner):
                self._inner = inner

            def solve(self, req):
                time.sleep(0.3)  # several lease periods long
                return self._inner.solve(req)

        monkeypatch.setattr(
            dispatcher_mod,
            "_worker_service",
            lambda root: SlowService(original(root)),
        )
        dispatcher = Dispatcher(
            tmp_path, workers=1, executor="thread", lease_seconds=0.1
        )
        report = dispatcher.run_once()
        assert report.completed == [request.fingerprint()]
        # the heartbeat kept the lease: nothing left to expire or requeue
        requeued, failed = queue.expire_leases(lease_seconds=0.1)
        assert requeued == [] and failed == []
        assert queue.stats() == {"pending": 0, "leased": 0, "failed": 0}


# ---------------------------------------------------------------------- #
# store garbage collection
# ---------------------------------------------------------------------- #
class TestStoreGc:
    def _stored(self, tmp_path, **kwargs):
        request = make_request(**kwargs)
        SchedulingService(cache_size=0, store=tmp_path).solve(request)
        return ResultStore(tmp_path), request.fingerprint()

    def test_clean_store_is_untouched(self, tmp_path):
        store, fingerprint = self._stored(tmp_path)
        report = store.gc()
        assert report == {
            "removed_results": [],
            "removed_dags": [],
            "removed_tmp": [],
            "dropped_trials": 0,
            "dropped_experiments": 0,
        }
        assert store.contains(fingerprint)

    def test_dangling_result_removed(self, tmp_path):
        store, fingerprint = self._stored(tmp_path)
        payload = read_json_tolerant(store.result_path(fingerprint))
        ref = payload["schedule"]["dag_ref"]
        store.dag_path(ref).unlink()  # simulate a hand-pruned payload
        report = store.gc()
        assert report["removed_results"] == [fingerprint]
        assert not store.result_path(fingerprint).exists()

    def test_orphaned_dag_payload_removed(self, tmp_path):
        store, fingerprint = self._stored(tmp_path)
        orphan = store.put_dag({"orphan": True})
        report = store.gc()
        assert report["removed_dags"] == [orphan.stem]
        assert not orphan.exists()
        assert store.contains(fingerprint)  # live entry and its DAG survive

    def test_queued_request_keeps_its_dag_payload(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put_dag({"queued": True})
        WorkQueue(tmp_path).submit("fp", {"dag_ref": str(path), "machine": {}})
        assert store.gc()["removed_dags"] == []
        assert path.exists()

    def test_tmp_grace_period(self, tmp_path):
        import os

        store, _ = self._stored(tmp_path)
        clock = FakeClock(now=10_000.0)
        stale = store.results_dir / ".a.json.deadbeef.tmp"
        fresh = store.dags_dir / ".b.json.cafebabe.tmp"
        for path, age in ((stale, 7200.0), (fresh, 60.0)):
            path.write_text("partial")
            os.utime(path, (clock.now - age, clock.now - age))
        report = store.gc(tmp_grace_seconds=3600.0, clock=clock)
        assert report["removed_tmp"] == ["results/.a.json.deadbeef.tmp"]
        assert fresh.exists() and not stale.exists()

    def test_cli_gc_commands(self, tmp_path, capsys):
        from repro.cli import main

        store, _ = self._stored(tmp_path)
        orphan = store.put_dag({"orphan": True})
        assert main(["store", "--root", str(tmp_path), "gc"]) == 0
        assert not orphan.exists()
        assert "1 orphaned DAG payload" in capsys.readouterr().out
        assert main(["queue", "--root", str(tmp_path), "gc"]) == 0

    def test_gc_then_resolve_recomputes(self, tmp_path):
        """A gc'd dangling entry is simply recomputed by the next solve."""
        store, fingerprint = self._stored(tmp_path)
        payload = read_json_tolerant(store.result_path(fingerprint))
        store.dag_path(payload["schedule"]["dag_ref"]).unlink()
        store.gc()
        result = SchedulingService(cache_size=0, store=tmp_path).solve(make_request())
        assert result.cache_hit is False
        assert store.contains(fingerprint)


# ---------------------------------------------------------------------- #
# the trial/experiment metadata tables
# ---------------------------------------------------------------------- #
class TestTrialRecords:
    def _requests(self, schedulers=("cilk", "bsp_greedy"), seeds=(0,)):
        dag = random_dag(16, 0.25, seed=3)
        dag.name = "erdos_16"
        return [
            make_request(dag=dag, scheduler=scheduler, seed=seed)
            for scheduler in schedulers
            for seed in seeds
        ]

    def test_solve_records_one_trial_per_actual_invocation(self, tmp_path):
        service = SchedulingService(cache_size=0, store=tmp_path)
        request = self._requests()[0]
        service.solve(request)
        trials = ResultStore(tmp_path).trials.trials()
        assert len(trials) == 1
        record = trials[0]
        assert record.fingerprint == request.fingerprint()
        assert record.scheduler == "cilk"
        assert record.family == "erdos"
        assert record.num_nodes == 16
        assert record.machine["num_procs"] == 4
        assert record.cost > 0
        assert record.created_at > 0

    def test_cache_and_store_hits_record_nothing(self, tmp_path):
        """Trials mean scheduler invocations, not lookups."""
        request = self._requests()[0]
        SchedulingService(cache_size=0, store=tmp_path).solve(request)
        warm = SchedulingService(store=tmp_path)
        warm.solve(request)  # store hit
        warm.solve(request)  # memory hit
        assert len(ResultStore(tmp_path).trials) == 1

    def test_solve_many_records_unique_misses_only(self, tmp_path):
        requests = self._requests(seeds=(0, 1))
        duplicated = requests + [requests[0]]
        SchedulingService(cache_size=0, store=tmp_path).solve_many(
            duplicated, workers=1
        )
        trials = ResultStore(tmp_path).trials.trials()
        assert len(trials) == len(requests)
        assert {t.fingerprint for t in trials} == {
            r.fingerprint() for r in requests
        }

    def test_dispatcher_fleet_populates_the_table(self, tmp_path):
        store = ResultStore(tmp_path)
        queue = WorkQueue(tmp_path)
        for request in self._requests():
            queue.submit(request.fingerprint(), request.to_dict())
        Dispatcher(tmp_path, workers=1, executor="thread").drain()
        assert len(store.trials) == 2
        assert {t.scheduler for t in store.trials.trials()} == {
            "cilk",
            "bsp_greedy",
        }

    def test_torn_line_skipped_not_fatal(self, tmp_path):
        service = SchedulingService(cache_size=0, store=tmp_path)
        service.solve(self._requests()[0])
        log = ResultStore(tmp_path).trials
        with open(log.trials_path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "trial", "fingerprint"')  # dying writer
        assert len(log.trials()) == 1

    def test_named_experiment_recorded(self, tmp_path):
        runner = ExperimentRunner(config=BUDGET_FREE, store=tmp_path)
        instances = build_dataset("tiny", scale="bench", include_coarse=False)[:1]
        specs = [MachineSpec(4, 1, 5)]
        run_grid(runner, instances, specs, experiment="smoke-grid")
        experiments = ResultStore(tmp_path).trials.experiments()
        assert [record.name for record in experiments] == ["smoke-grid"]
        # on a cold store the batch is exactly the recorded trials
        stored = {f for record in experiments for f in record.fingerprints}
        trials = {t.fingerprint for t in ResultStore(tmp_path).trials.trials()}
        assert stored == trials
        # an unnamed grid records no experiment row
        run_grid(
            ExperimentRunner(config=BUDGET_FREE, store=tmp_path),
            instances,
            specs,
        )
        assert len(ResultStore(tmp_path).trials.experiments()) == 1

    def test_stats_count_trials(self, tmp_path):
        SchedulingService(cache_size=0, store=tmp_path).solve_many(
            self._requests(), workers=1
        )
        stats = ResultStore(tmp_path).stats()
        assert stats["trials"] == 2
        assert stats["results"] == 2


class TestGcTrialPreservation:
    """gc never orphans a trial record from its result, nor vice versa."""

    def _populated(self, tmp_path):
        dag = random_dag(16, 0.25, seed=3)
        dag.name = "erdos_16"
        requests = [
            make_request(dag=dag, scheduler=s) for s in ("cilk", "bsp_greedy")
        ]
        SchedulingService(cache_size=0, store=tmp_path).solve_many(
            requests, workers=1
        )
        return ResultStore(tmp_path), requests

    def test_default_gc_never_touches_the_tables(self, tmp_path):
        store, requests = self._populated(tmp_path)
        store.trials.record_experiment(
            "grid", [r.fingerprint() for r in requests]
        )
        # even with every result dangling, the history survives a plain gc
        for path in store.dags_dir.glob("*.json"):
            path.unlink()
        report = store.gc()
        assert len(report["removed_results"]) == 2
        assert report["dropped_trials"] == 0
        assert len(store.trials) == 2
        assert len(store.trials.experiments()) == 1

    def test_prune_drops_exactly_the_recordless_results(self, tmp_path):
        store, requests = self._populated(tmp_path)
        store.trials.record_experiment(
            "grid", [r.fingerprint() for r in requests]
        )
        gone = requests[0].fingerprint()
        store.result_path(gone).unlink()
        report = store.gc(prune_trials=True)
        assert report["dropped_trials"] == 1
        assert report["dropped_experiments"] == 0
        survivors = {t.fingerprint for t in store.trials.trials()}
        assert survivors == {requests[1].fingerprint()}
        # invariant both ways: every record has a result...
        for fingerprint in survivors:
            assert store.contains(fingerprint)
        # ...and the experiment references only surviving trials
        experiment = store.trials.experiments()[0]
        assert experiment.fingerprints == [requests[1].fingerprint()]

    def test_prune_drops_experiments_left_empty(self, tmp_path):
        store, requests = self._populated(tmp_path)
        store.trials.record_experiment("grid", [requests[0].fingerprint()])
        store.result_path(requests[0].fingerprint()).unlink()
        report = store.gc(prune_trials=True)
        assert report["dropped_experiments"] == 1
        assert store.trials.experiments() == []

    def test_prune_collapses_duplicate_records(self, tmp_path):
        """A crashed worker's recompute appends a second row; prune dedups."""
        store, requests = self._populated(tmp_path)
        duplicate = store.trials.trials()[0]
        store.trials.append_trial(duplicate)
        assert len(store.trials) == 3
        report = store.gc(prune_trials=True)
        assert report["dropped_trials"] == 1  # the duplicate, nothing else
        assert len(store.trials) == 2

    def test_cli_prune_flag(self, tmp_path, capsys):
        from repro.cli import main

        store, requests = self._populated(tmp_path)
        store.result_path(requests[0].fingerprint()).unlink()
        assert main(["store", "--root", str(tmp_path), "gc"]) == 0
        assert "pruned" not in capsys.readouterr().out
        assert len(store.trials) == 2  # untouched without the flag
        code = main(["store", "--root", str(tmp_path), "gc", "--prune-trials"])
        assert code == 0
        assert "pruned 1 trial record(s)" in capsys.readouterr().out
        assert len(store.trials) == 1
