"""Differential tests pinning the batched HC/HCcs to the retained seed walkers.

The vectorized refiners must reproduce the seed probe-and-rollback walkers
*move for move*: identical accepted-move sequences (greedy first/best
improvement over the same scan order) and identical final schedules — not
merely equal costs.  The fuzz instances use integer weights and integer
machine parameters, where the two evaluation orders are bit-identical;
:func:`_assert_pinned`'s ``rel_tol`` knob additionally admits the float
drift of real-valued weights (move sequences stay exact, only the scalar
cost comparison widens).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BspMachine, BspSchedule, ComputationalDAG
from repro.schedulers import CommScheduleHillClimbing, HillClimbingImprover
from repro.schedulers.hill_climbing import LazyCostTracker
from repro.schedulers.reference import (
    CommScheduleHillClimbingReference,
    HillClimbingImproverReference,
)
from repro.schedulers.trivial import RoundRobinScheduler

from conftest import assert_valid_schedule, random_dag


def _random_machine(rng: np.random.Generator) -> BspMachine:
    if rng.random() < 0.5:
        return BspMachine.uniform(
            int(rng.integers(1, 7)),
            g=int(rng.integers(1, 6)),
            latency=int(rng.integers(0, 6)),
        )
    return BspMachine.numa_hierarchy(
        int(2 ** rng.integers(1, 4)),
        delta=int(rng.integers(2, 5)),
        g=int(rng.integers(1, 4)),
        latency=int(rng.integers(0, 4)),
    )


def _real_weight_dag(num_nodes: int, edge_prob: float, seed: int) -> ComputationalDAG:
    """Random DAG with *real-valued* (non-dyadic) node weights."""
    rng = np.random.default_rng(seed)
    works = rng.uniform(0.5, 5.0, size=num_nodes)
    comms = rng.uniform(0.5, 3.0, size=num_nodes)
    dag = ComputationalDAG(num_nodes, works, comms, name=f"real_{seed}")
    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            if rng.random() < edge_prob:
                dag.add_edge(i, j)
    return dag


def _assert_pinned(reference, batched, start, rel_tol: float = 0.0):
    """Run both improvers on ``start`` and assert move-for-move pinning.

    Accepted-move sequences are always compared exactly.  ``rel_tol=0``
    (the integer/dyadic regime) compares the final costs at pytest's
    default tolerance; a positive ``rel_tol`` widens only that scalar cost
    comparison for real-valued weights, where the batched and the
    probe-and-rollback evaluation orders accumulate different rounding.
    Returns ``(reference_result, batched_result)``.
    """
    ref_result = reference.improve(start)
    vec_result = batched.improve(start)
    assert reference.last_moves == batched.last_moves
    assert vec_result.cost() == pytest.approx(
        ref_result.cost(), rel=rel_tol if rel_tol > 0 else None
    )
    return ref_result, vec_result


class TestCandidateDeltas:
    def test_deltas_match_apply_move(self):
        """Every valid candidate's batched delta equals the mutating probe's."""
        rng = np.random.default_rng(5)
        for seed in range(6):
            dag = random_dag(22, 0.2, seed=seed)
            machine = _random_machine(rng)
            schedule = RoundRobinScheduler().schedule(dag, machine)
            tracker = LazyCostTracker(dag, machine, schedule.procs, schedule.supersteps)
            for v in range(dag.num_nodes):
                deltas, valid = tracker.candidate_deltas(v)
                s0 = int(tracker.supersteps[v])
                for i in range(3):
                    for q in range(machine.num_procs):
                        s = s0 - 1 + i
                        expected_valid = tracker.is_valid_move(v, q, s) and (
                            (q, s) != (int(tracker.procs[v]), s0)
                        )
                        assert bool(valid[i, q]) == expected_valid, (seed, v, q, s)
                        if not expected_valid:
                            continue
                        probe = tracker.apply_move(v, q, s)
                        tracker.apply_move(v, int(schedule.procs[v]), s0)
                        assert deltas[i, q] == probe, (seed, v, q, s)

    def test_validity_mask_matches_is_valid_move(self):
        dag = random_dag(18, 0.25, seed=9)
        machine = BspMachine.uniform(3, g=1, latency=1)
        schedule = RoundRobinScheduler().schedule(dag, machine)
        tracker = LazyCostTracker(dag, machine, schedule.procs, schedule.supersteps)
        for v in range(dag.num_nodes):
            mask = tracker.candidate_validity(v)
            s0 = int(tracker.supersteps[v])
            p0 = int(tracker.procs[v])
            for i in range(3):
                for q in range(machine.num_procs):
                    expected = tracker.is_valid_move(v, q, s0 - 1 + i) and (
                        (q, s0 - 1 + i) != (p0, s0)
                    )
                    assert bool(mask[i, q]) == expected


class TestHillClimbingDifferential:
    def test_identical_move_sequences_and_schedules(self):
        """Random DAGs x machines x seeds: the batched path is pinned move-for-move."""
        for seed in range(12):
            rng = np.random.default_rng(seed)
            dag = random_dag(
                int(rng.integers(5, 45)), float(rng.uniform(0.05, 0.3)), seed=seed
            )
            machine = _random_machine(rng)
            start = RoundRobinScheduler().schedule(dag, machine)
            reference = HillClimbingImproverReference(record_moves=True)
            batched = HillClimbingImprover(record_moves=True)
            ref_result, vec_result = _assert_pinned(reference, batched, start)
            assert np.array_equal(ref_result.procs, vec_result.procs), seed
            assert np.array_equal(ref_result.supersteps, vec_result.supersteps), seed
            assert_valid_schedule(vec_result)

    def test_identical_under_max_steps(self):
        for seed in range(4):
            dag = random_dag(30, 0.15, seed=40 + seed)
            machine = BspMachine.uniform(4, g=3, latency=2)
            start = RoundRobinScheduler().schedule(dag, machine)
            for max_steps in (1, 3, 7):
                reference = HillClimbingImproverReference(
                    max_steps=max_steps, record_moves=True
                )
                batched = HillClimbingImprover(max_steps=max_steps, record_moves=True)
                ref_result = reference.improve(start)
                vec_result = batched.improve(start)
                assert reference.last_moves == batched.last_moves
                assert np.array_equal(ref_result.procs, vec_result.procs)
                assert np.array_equal(ref_result.supersteps, vec_result.supersteps)

    def test_max_steps_respected_mid_pass(self):
        """Regression: the accepted-move cap must cut a pass short, not finish it.

        A round-robin chain schedule has an improving move at almost every
        node, so an uncapped first pass accepts far more moves than the cap;
        the capped run must stop at exactly ``max_steps`` accepted moves.
        """
        dag = ComputationalDAG(12)
        for i in range(11):
            dag.add_edge(i, i + 1)
        machine = BspMachine.uniform(4, g=5, latency=1)
        start = RoundRobinScheduler().schedule(dag, machine)
        unlimited = HillClimbingImprover(record_moves=True)
        unlimited.improve(start)
        assert len(unlimited.last_moves) > 2
        capped = HillClimbingImprover(max_steps=2, record_moves=True)
        capped_result = capped.improve(start)
        assert len(capped.last_moves) == 2
        assert capped.last_moves == unlimited.last_moves[:2]
        assert capped_result.cost() <= start.cost()


class TestCommHillClimbingDifferential:
    def test_identical_move_sequences_and_schedules(self):
        for seed in range(12):
            rng = np.random.default_rng(100 + seed)
            dag = random_dag(
                int(rng.integers(6, 50)), float(rng.uniform(0.05, 0.3)), seed=seed
            )
            machine = _random_machine(rng)
            start = RoundRobinScheduler().schedule(dag, machine)
            reference = CommScheduleHillClimbingReference(record_moves=True)
            batched = CommScheduleHillClimbing(record_moves=True)
            ref_result, vec_result = _assert_pinned(reference, batched, start)
            assert ref_result.comm_schedule == vec_result.comm_schedule, seed
            assert_valid_schedule(vec_result)

    def test_identical_from_explicit_start(self):
        """A second HCcs run starts from the first run's explicit schedule."""
        dag = random_dag(30, 0.2, seed=77)
        machine = BspMachine.uniform(4, g=2, latency=1)
        start = RoundRobinScheduler().schedule(dag, machine)
        first = CommScheduleHillClimbing().improve(start)
        reference = CommScheduleHillClimbingReference(record_moves=True)
        batched = CommScheduleHillClimbing(record_moves=True)
        ref_result = reference.improve(first)
        vec_result = batched.improve(first)
        assert reference.last_moves == batched.last_moves
        assert ref_result.comm_schedule == vec_result.comm_schedule


class TestRealValuedWeightsDifferential:
    """Pinning under real-valued weights via the ``rel_tol`` knob.

    With non-dyadic float weights the batched and probe-and-rollback
    evaluation orders are no longer bit-identical; candidate deltas can
    drift by a few ulp.  On these fixed seeds every delta gap is far above
    that drift, so the accepted-move sequences still agree exactly and only
    the scalar cost comparison needs the widened tolerance.
    """

    REL_TOL = 1e-9

    def test_hc_pinned_on_real_weights(self):
        for seed in range(8):
            rng = np.random.default_rng(200 + seed)
            dag = _real_weight_dag(
                int(rng.integers(8, 40)), float(rng.uniform(0.08, 0.25)), seed=seed
            )
            machine = _random_machine(rng)
            start = RoundRobinScheduler().schedule(dag, machine)
            reference = HillClimbingImproverReference(record_moves=True)
            batched = HillClimbingImprover(record_moves=True)
            ref_result, vec_result = _assert_pinned(
                reference, batched, start, rel_tol=self.REL_TOL
            )
            assert np.array_equal(ref_result.procs, vec_result.procs), seed
            assert np.array_equal(ref_result.supersteps, vec_result.supersteps), seed
            assert_valid_schedule(vec_result)

    def test_hccs_pinned_on_real_weights(self):
        for seed in range(8):
            rng = np.random.default_rng(300 + seed)
            dag = _real_weight_dag(
                int(rng.integers(8, 45)), float(rng.uniform(0.08, 0.25)), seed=seed
            )
            machine = _random_machine(rng)
            start = RoundRobinScheduler().schedule(dag, machine)
            reference = CommScheduleHillClimbingReference(record_moves=True)
            batched = CommScheduleHillClimbing(record_moves=True)
            ref_result, vec_result = _assert_pinned(
                reference, batched, start, rel_tol=self.REL_TOL
            )
            assert ref_result.comm_schedule == vec_result.comm_schedule, seed
            assert_valid_schedule(vec_result)


class TestTrackerReuse:
    def test_refine_assignment_reuses_tracker(self):
        dag = random_dag(25, 0.2, seed=3)
        machine = BspMachine.uniform(4, g=2, latency=2)
        schedule = RoundRobinScheduler().schedule(dag, machine)
        improver = HillClimbingImprover(max_steps=3)
        tracker, accepted = improver.refine_assignment(
            dag, machine, schedule.procs, schedule.supersteps
        )
        assert accepted <= 3
        cost_after_first = tracker.cost()
        again, _ = improver.refine_assignment(
            dag, machine, tracker.procs, tracker.supersteps, tracker=tracker
        )
        assert again is tracker  # reused, not rebuilt
        assert tracker.cost() <= cost_after_first
        procs, steps = tracker.assignment()
        assert BspSchedule(dag, machine, procs, steps).is_valid()

    def test_refine_assignment_rebuilds_on_caller_edit(self):
        """An assignment edit between bursts must not be silently discarded."""
        dag = random_dag(25, 0.2, seed=3)
        machine = BspMachine.uniform(4, g=2, latency=2)
        schedule = RoundRobinScheduler().schedule(dag, machine)
        improver = HillClimbingImprover(max_steps=2)
        tracker, accepted = improver.refine_assignment(
            dag, machine, schedule.procs, schedule.supersteps
        )
        assert accepted > 0  # the tracker state has moved off the input arrays
        # hand the original (now stale) arrays back with the moved tracker:
        # the mismatch must force a rebuild from the given arrays
        rebuilt, _ = improver.refine_assignment(
            dag, machine, schedule.procs, schedule.supersteps, tracker=tracker
        )
        assert rebuilt is not tracker

    def test_refine_assignment_matches_reference_burst(self):
        """One burst on arrays == the reference improver's accepted prefix."""
        dag = random_dag(25, 0.2, seed=8)
        machine = BspMachine.uniform(4, g=3, latency=2)
        schedule = RoundRobinScheduler().schedule(dag, machine)
        improver = HillClimbingImprover(max_steps=5, record_moves=True)
        tracker, _ = improver.refine_assignment(
            dag, machine, schedule.procs, schedule.supersteps
        )
        reference = HillClimbingImproverReference(max_steps=5, record_moves=True)
        reference.improve(schedule)
        assert improver.last_moves == reference.last_moves
        assert tracker.cost() <= LazyCostTracker(
            dag, machine, schedule.procs, schedule.supersteps
        ).cost()


class TestCompactedAssignment:
    def test_tracker_compaction_matches_schedule_compacted(self):
        """Tracker-side compaction equals BspSchedule.compacted() renumbering."""
        for seed in range(6):
            dag = random_dag(24, 0.2, seed=60 + seed)
            machine = BspMachine.uniform(4, g=2, latency=3)
            schedule = RoundRobinScheduler().schedule(dag, machine)
            tracker = LazyCostTracker(dag, machine, schedule.procs, schedule.supersteps)
            # empty a superstep by climbing a few moves
            HillClimbingImprover(max_steps=8).climb(tracker)
            procs, steps, num_used = tracker.compacted_assignment()
            expected = BspSchedule(
                dag, machine, tracker.procs, tracker.supersteps, validate=False
            ).compacted()
            assert np.array_equal(procs, expected.procs)
            assert np.array_equal(steps, expected.supersteps)
            assert num_used == expected.num_supersteps

    def test_multilevel_levels_are_compacted_between_bursts(self):
        """The uncoarsening loop must not accumulate empty supersteps."""
        from repro.schedulers import BspGreedyScheduler, MultilevelScheduler

        dag = random_dag(60, 0.08, seed=21)
        machine = BspMachine.uniform(4, g=4, latency=3)
        scheduler = MultilevelScheduler(
            base_scheduler=BspGreedyScheduler(), coarsening_ratios=(0.3,)
        )
        schedule = scheduler.schedule(dag, machine)
        assert_valid_schedule(schedule)
        # every superstep of the result carries computation or communication
        used = set(schedule.supersteps.tolist())
        used |= {step.superstep for step in schedule.comm_schedule}
        assert used == set(range(schedule.num_supersteps))
