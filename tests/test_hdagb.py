"""Tests for the out-of-core DAG pipeline (.hdagb + streaming generation).

Covers the binary format end to end:

* write/read round trips (structure, weights, CSR orders, name,
  fingerprint read from the header vs recomputed from the buffers),
* rejection of truncated, corrupted and foreign files,
* copy-on-write semantics of the memory-mapped DAG (reads are zero-copy
  views into the file; the first mutation copies, and the file is never
  touched),
* streaming-writer output bit-identical to writing the in-memory builder's
  DAG, across every streamable generator family and weight model,
* the acceptance surfaces: ``load_dag`` dispatch, ``ScheduleRequest`` file
  references, ``load_schedule`` dag_ref paths, the CLI, and the curated
  SuiteSparse recipe.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.api import MachineSpec, ScheduleRequest, SchedulerSpec, SchedulingService
from repro.api.request import dag_fingerprint
from repro.core import ComputationalDAG, save_schedule, load_schedule
from repro.core.exceptions import ConfigurationError, DagError
from repro.dagdb import (
    SparseMatrixPattern,
    build_fft_dag,
    build_rcm_elimination_dag,
    build_stencil_dag,
    build_suitesparse_elimination,
    find_suitesparse_matrix,
    load_suitesparse_pattern,
    stream_generate,
)
from repro.io import (
    MappedDag,
    StreamingDagWriter,
    is_hdagb,
    load_dag,
    read_hdagb,
    write_hdagb,
    write_hyperdag,
)
from repro.io.mtx import write_matrix_market_pattern

from conftest import random_dag


def canonical(dag: ComputationalDAG) -> ComputationalDAG:
    """The canonical-edge-order reconstruction a round trip converges to."""
    sources, targets = dag.edge_arrays()
    return ComputationalDAG.from_edge_arrays(
        dag.num_nodes,
        sources,
        targets,
        dag.work_weights,
        dag.comm_weights,
        name=dag.name,
    )


class TestRoundTrip:
    def test_structure_weights_and_name_survive(self, tmp_path):
        dag = random_dag(200, 0.05, seed=11)
        dag.set_work(3, 7.5)
        dag.set_comm(5, 0.25)
        dag.name = "roundtrip_dag"
        write_hdagb(dag, tmp_path / "d.hdagb")
        loaded = read_hdagb(tmp_path / "d.hdagb")
        reference = canonical(dag)
        assert loaded.num_nodes == dag.num_nodes
        assert loaded.num_edges == dag.num_edges
        assert loaded.name == "roundtrip_dag"
        assert np.array_equal(loaded.work_weights, dag.work_weights)
        assert np.array_equal(loaded.comm_weights, dag.comm_weights)
        assert np.array_equal(loaded.succ_indptr, reference.succ_indptr)
        assert np.array_equal(loaded.succ_indices, reference.succ_indices)
        assert np.array_equal(loaded.pred_indptr, reference.pred_indptr)
        assert np.array_equal(loaded.pred_indices, reference.pred_indices)

    def test_fingerprint_from_header_matches_recompute(self, tmp_path):
        dag = random_dag(120, 0.08, seed=2)
        written = write_hdagb(dag, tmp_path / "d.hdagb")
        assert written == dag_fingerprint(dag)
        loaded = read_hdagb(tmp_path / "d.hdagb")
        # memoized straight from the header: no recompute needed...
        assert loaded._content_fingerprint == written
        assert dag_fingerprint(loaded) == written
        # ...and an honest recompute over the mapped buffers agrees
        loaded._content_fingerprint = None
        assert dag_fingerprint(loaded) == written

    def test_graph_queries_work_on_mapped_dag(self, tmp_path):
        dag = build_fft_dag(16).dag
        write_hdagb(dag, tmp_path / "d.hdagb")
        loaded = read_hdagb(tmp_path / "d.hdagb")
        assert loaded.depth() == dag.depth()
        assert list(loaded.successors(0)) == list(dag.successors(0))
        # pred rows come back in canonical (source-major) order, which may
        # differ from the in-memory insertion order within a row
        assert sorted(loaded.predecessors(dag.num_nodes - 1)) == sorted(
            dag.predecessors(dag.num_nodes - 1)
        )
        assert np.array_equal(loaded.topological_order(), dag.topological_order())

    def test_succ_csr_is_zero_copy_and_read_only(self, tmp_path):
        dag = random_dag(64, 0.1, seed=4)
        write_hdagb(dag, tmp_path / "d.hdagb")
        loaded = read_hdagb(tmp_path / "d.hdagb")
        indptr = loaded.succ_indptr
        assert not indptr.flags.writeable
        assert isinstance(indptr.base, np.ndarray)  # a view into the mapping
        with pytest.raises((ValueError, RuntimeError)):
            loaded.succ_indices[0] = 0

    def test_empty_dag_round_trip(self, tmp_path):
        dag = ComputationalDAG(0)
        dag.name = "empty"
        write_hdagb(dag, tmp_path / "e.hdagb")
        loaded = read_hdagb(tmp_path / "e.hdagb")
        assert loaded.num_nodes == 0 and loaded.num_edges == 0

    def test_pickle_materializes_with_fingerprint(self, tmp_path):
        dag = random_dag(50, 0.1, seed=9)
        fingerprint = write_hdagb(dag, tmp_path / "d.hdagb")
        loaded = read_hdagb(tmp_path / "d.hdagb")
        clone = pickle.loads(pickle.dumps(loaded))
        assert type(clone) is ComputationalDAG  # not a MappedDag
        assert dag_fingerprint(clone) == fingerprint
        assert np.array_equal(clone.succ_indices, loaded.succ_indices)


class TestRejection:
    def test_truncated_header(self, tmp_path):
        path = tmp_path / "t.hdagb"
        dag = random_dag(30, 0.1, seed=1)
        write_hdagb(dag, path)
        path.write_bytes(path.read_bytes()[:40])
        with pytest.raises(DagError):
            read_hdagb(path)

    def test_truncated_payload(self, tmp_path):
        path = tmp_path / "t.hdagb"
        write_hdagb(random_dag(30, 0.1, seed=1), path)
        path.write_bytes(path.read_bytes()[:-8])
        with pytest.raises(DagError):
            read_hdagb(path)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "t.hdagb"
        write_hdagb(random_dag(30, 0.1, seed=1), path)
        raw = bytearray(path.read_bytes())
        raw[0] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(DagError, match="magic"):
            read_hdagb(path)

    def test_unknown_version(self, tmp_path):
        path = tmp_path / "t.hdagb"
        write_hdagb(random_dag(30, 0.1, seed=1), path)
        raw = bytearray(path.read_bytes())
        raw[8] = 99  # version field, little-endian u32 at offset 8
        path.write_bytes(bytes(raw))
        with pytest.raises(DagError, match="version"):
            read_hdagb(path)

    def test_checksum_flip_caught_by_verify(self, tmp_path):
        path = tmp_path / "t.hdagb"
        write_hdagb(random_dag(30, 0.1, seed=1), path)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0x01  # flip one payload byte
        path.write_bytes(bytes(raw))
        read_hdagb(path)  # structural load alone does not checksum
        with pytest.raises(DagError, match="checksum"):
            read_hdagb(path, verify=True)

    def test_is_hdagb_and_magic_sniffing(self, tmp_path):
        dag = random_dag(20, 0.1, seed=3)
        binary = tmp_path / "d.hdagb"
        text = tmp_path / "d.hdag"
        write_hdagb(dag, binary)
        write_hyperdag(dag, text)
        assert is_hdagb(binary) and not is_hdagb(text)
        assert not is_hdagb(tmp_path / "missing.hdagb")
        # a binary file under a text extension is sniffed by magic bytes
        disguised = tmp_path / "disguised.hdag"
        disguised.write_bytes(binary.read_bytes())
        assert isinstance(load_dag(disguised), MappedDag)
        assert isinstance(load_dag(text), ComputationalDAG)
        assert dag_fingerprint(load_dag(disguised)) == dag_fingerprint(dag)


class TestCopyOnWrite:
    def test_weight_mutation_copies_and_file_unaffected(self, tmp_path):
        path = tmp_path / "d.hdagb"
        dag = random_dag(40, 0.1, seed=6)
        write_hdagb(dag, path)
        before = path.read_bytes()
        loaded = read_hdagb(path)
        loaded.set_work(0, 99.0)
        assert loaded.work_weights[0] == 99.0
        assert path.read_bytes() == before
        # the mutation dropped the memoized fingerprint
        assert dag_fingerprint(loaded) != dag_fingerprint(dag)
        # a fresh read still sees the original content
        assert read_hdagb(path).work_weights[0] == dag.work_weights[0]

    def test_structural_mutation_reallocates(self, tmp_path):
        path = tmp_path / "d.hdagb"
        dag = random_dag(40, 0.1, seed=6)
        write_hdagb(dag, path)
        before = path.read_bytes()
        loaded = read_hdagb(path)
        v = loaded.add_node(work=2.0)
        loaded.add_edge(0, v)
        assert loaded.num_nodes == dag.num_nodes + 1
        assert loaded.num_edges == dag.num_edges + 1
        assert v in list(loaded.successors(0))
        assert path.read_bytes() == before
        # CSR rebuilt off the mapping after mutation, and valid
        assert len(loaded.topological_order()) == loaded.num_nodes


class TestStreamingWriter:
    def test_bit_identity_with_odd_blocks(self, tmp_path):
        dag = random_dag(300, 0.03, seed=7)
        sources, targets = dag.edge_arrays()
        write_hdagb(canonical(dag), tmp_path / "mem.hdagb")
        with StreamingDagWriter(
            tmp_path / "st.hdagb", name=dag.name, block_edges=257
        ) as writer:
            writer.add_nodes_array(dag.work_weights, dag.comm_weights)
            for start in range(0, len(sources), 173):
                writer.add_edges_array(
                    sources[start : start + 173], targets[start : start + 173]
                )
            writer.finalize()
        assert (tmp_path / "st.hdagb").read_bytes() == (
            tmp_path / "mem.hdagb"
        ).read_bytes()

    def test_duplicate_edge_rejected_at_finalize(self, tmp_path):
        with StreamingDagWriter(tmp_path / "dup.hdagb", name="dup") as writer:
            writer.add_node_block(3)
            writer.add_edges_array([0, 1, 0], [1, 2, 1])
            with pytest.raises(DagError, match="duplicate"):
                writer.finalize()
        assert not (tmp_path / "dup.hdagb").exists()
        assert list(tmp_path.iterdir()) == []  # spills and tmp cleaned up

    def test_abort_cleans_up(self, tmp_path):
        writer = StreamingDagWriter(tmp_path / "a.hdagb", name="a")
        writer.add_node_block(5)
        writer.add_edge(0, 1)
        writer.abort()
        assert list(tmp_path.iterdir()) == []

    def test_invalid_edges_rejected_eagerly(self, tmp_path):
        with StreamingDagWriter(tmp_path / "b.hdagb", name="b") as writer:
            writer.add_node_block(4)
            with pytest.raises(DagError):
                writer.add_edge(2, 2)  # self-loop
            with pytest.raises(DagError):
                writer.add_edges_array([0], [7])  # out of range


class TestStreamGenerate:
    @pytest.mark.parametrize(
        "generator,params,builder",
        [
            ("fft", {"points": 16}, lambda: build_fft_dag(16).dag),
            (
                "stencil2d",
                {"side": 6, "steps": 2},
                lambda: build_stencil_dag((6, 6), 2).dag,
            ),
            (
                "stencil3d",
                {"side": 4, "steps": 2},
                lambda: build_stencil_dag((4, 4, 4), 2).dag,
            ),
        ],
    )
    def test_streamed_equals_in_memory(self, tmp_path, generator, params, builder):
        fingerprint = stream_generate(tmp_path / "s.hdagb", generator, **params)
        dag = builder()
        write_hdagb(dag, tmp_path / "m.hdagb")
        assert (tmp_path / "s.hdagb").read_bytes() == (tmp_path / "m.hdagb").read_bytes()
        assert fingerprint == dag_fingerprint(dag)

    def test_cholesky_orderings_match(self, tmp_path):
        pattern = SparseMatrixPattern.random(50, 0.12, seed=5, ensure_diagonal=True)
        stream_generate(tmp_path / "s.hdagb", "cholesky_rcm", pattern=pattern)
        write_hdagb(build_rcm_elimination_dag(pattern).dag, tmp_path / "m.hdagb")
        assert (tmp_path / "s.hdagb").read_bytes() == (tmp_path / "m.hdagb").read_bytes()

    @pytest.mark.parametrize("model", ["paper", "indegree", "unit"])
    def test_weight_models_match_in_memory(self, tmp_path, model):
        from repro.dagdb import apply_weight_model

        fingerprint = stream_generate(
            tmp_path / "s.hdagb", "fft", points=8, weight_model=model
        )
        dag = build_fft_dag(8).dag  # builders apply the paper model
        if model != "paper":
            apply_weight_model(dag, model)
            dag._content_fingerprint = None
        assert fingerprint == dag_fingerprint(dag)

    def test_unknown_generator_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="streaming emitter"):
            stream_generate(tmp_path / "x.hdagb", "spmv", size=8)


class TestAcceptanceSurfaces:
    def test_request_fingerprint_identical_to_in_memory(self, tmp_path):
        dag = build_fft_dag(16).dag
        write_hdagb(dag, tmp_path / "d.hdagb")
        spec = dict(
            machine=MachineSpec(num_procs=4), scheduler=SchedulerSpec("cilk")
        )
        by_file = ScheduleRequest(dag=str(tmp_path / "d.hdagb"), **spec)
        by_object = ScheduleRequest(dag=dag, **spec)
        assert by_file.fingerprint() == by_object.fingerprint()

    def test_service_solves_hdagb_reference(self, tmp_path):
        stream_generate(tmp_path / "d.hdagb", "stencil2d", side=5, steps=2)
        request = ScheduleRequest(
            dag=str(tmp_path / "d.hdagb"),
            machine=MachineSpec(num_procs=2),
            scheduler=SchedulerSpec("cilk"),
        )
        result = SchedulingService().solve(request)
        assert result.cost > 0
        result.to_schedule().validate()

    def test_load_schedule_resolves_hdagb_dag_ref(self, tmp_path):
        dag = build_fft_dag(8).dag
        write_hdagb(dag, tmp_path / "d.hdagb")
        request = ScheduleRequest(
            dag=str(tmp_path / "d.hdagb"),
            machine=MachineSpec(num_procs=2),
            scheduler=SchedulerSpec("cilk"),
        )
        result = SchedulingService().solve(request)
        out = tmp_path / "sched.json"
        out.write_text(result.to_json())
        schedule = load_schedule(out)
        schedule.validate()
        assert schedule.dag.num_nodes == dag.num_nodes

    def test_load_schedule_still_reads_plain_payloads(self, tmp_path):
        dag = build_fft_dag(8).dag
        request = ScheduleRequest(
            dag=dag, machine=MachineSpec(num_procs=2), scheduler=SchedulerSpec("cilk")
        )
        schedule = SchedulingService().solve(request).to_schedule()
        save_schedule(schedule, tmp_path / "s.json")
        load_schedule(tmp_path / "s.json").validate()


class TestSuiteSparseRecipe:
    def test_recipe_lookup_and_urls(self):
        entry = find_suitesparse_matrix("bcsstk17")
        assert entry.group == "HB"
        assert find_suitesparse_matrix("HB/bcsstk17") is entry
        from repro.dagdb.suitesparse import matrix_url

        assert matrix_url(entry).endswith("/MM/HB/bcsstk17.tar.gz")
        with pytest.raises(ConfigurationError, match="unknown"):
            find_suitesparse_matrix("no_such_matrix")

    def test_local_file_to_streamed_elimination_dag(self, tmp_path):
        # a synthetic stand-in laid out like an extracted SuiteSparse tarball
        pattern = SparseMatrixPattern.random(60, 0.1, seed=5, ensure_diagonal=True)
        matrix_dir = tmp_path / "bcsstk17"
        matrix_dir.mkdir()
        write_matrix_market_pattern(pattern, matrix_dir / "bcsstk17.mtx")
        loaded = load_suitesparse_pattern(tmp_path, "bcsstk17")
        assert loaded.size == 60
        fingerprint = build_suitesparse_elimination(
            tmp_path, "bcsstk17", ordering="rcm", out=tmp_path / "s.hdagb"
        )
        reference = build_suitesparse_elimination(tmp_path, "bcsstk17", ordering="rcm")
        write_hdagb(reference.dag, tmp_path / "m.hdagb")
        assert (tmp_path / "s.hdagb").read_bytes() == (tmp_path / "m.hdagb").read_bytes()
        assert fingerprint == dag_fingerprint(reference.dag)


class TestCli:
    def test_generate_stream_matches_in_memory(self, tmp_path, capsys):
        from repro.cli import main

        streamed = tmp_path / "s.hdagb"
        in_memory = tmp_path / "m.hdagb"
        base = ["generate", "--generator", "stencil2d", "--size", "8",
                "--iterations", "2"]
        assert main(base + ["--stream", "--output", str(streamed)]) == 0
        assert main(
            base + ["--out-format", "hdagb", "--output", str(in_memory)]
        ) == 0
        assert streamed.read_bytes() == in_memory.read_bytes()
        assert "streamed" in capsys.readouterr().out

    def test_generate_stream_requires_streamable_generator(self, tmp_path):
        from repro.cli import main

        with pytest.raises(ConfigurationError, match="streaming emitter"):
            main(
                ["generate", "--generator", "spmv", "--stream",
                 "--output", str(tmp_path / "x.hdagb")]
            )

    def test_schedule_and_compare_accept_hdagb(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "d.hdagb"
        write_hdagb(build_fft_dag(8).dag, path)
        assert main(["schedule", str(path), "--scheduler", "cilk"]) == 0
        assert main(["compare", str(path), "--schedulers", "cilk", "hdagg"]) == 0
        out = capsys.readouterr().out
        assert "cilk" in out and "hdagg" in out
