"""Tests for the experiment harness (runner, grids, drivers)."""

from __future__ import annotations

import pytest

from repro.analysis import (
    ExperimentRunner,
    MachineSpec,
    aggregate_improvement,
    aggregate_ratio,
    no_numa_machine_grid,
    numa_machine_grid,
    run_initializer_comparison,
    run_no_numa_grid,
    run_numa_grid,
)
from repro.dagdb import build_dataset
from repro.schedulers import PipelineConfig


#: heuristics-only configuration so harness tests stay fast
FAST_HEURISTIC = PipelineConfig(use_ilp=False, use_comm_ilp=False, local_search_seconds=0.2)


class TestMachineSpecs:
    def test_build_uniform_and_numa(self):
        uniform = MachineSpec(4, g=3, latency=5).build()
        assert uniform.num_procs == 4 and uniform.is_uniform
        numa = MachineSpec(8, g=1, latency=5, numa_delta=3).build()
        assert not numa.is_uniform
        assert numa.max_numa_multiplier == 9

    def test_labels(self):
        assert MachineSpec(4, 3, 5).label() == "P=4,g=3,l=5"
        assert "D=2" in MachineSpec(8, 1, 5, 2).label()

    def test_grids_match_paper(self):
        no_numa = no_numa_machine_grid()
        assert len(no_numa) == 9  # P in {4,8,16} x g in {1,3,5}
        assert all(spec.numa_delta is None for spec in no_numa)
        numa = numa_machine_grid()
        assert len(numa) == 6  # P in {8,16} x delta in {2,3,4}
        assert all(spec.g == 1 for spec in numa)


class TestExperimentRunner:
    @pytest.fixture(scope="class")
    def records(self):
        runner = ExperimentRunner(config=FAST_HEURISTIC, include_trivial=True)
        instances = build_dataset("tiny", scale="bench", include_coarse=False)[:2]
        specs = [MachineSpec(4, 1, 5), MachineSpec(4, 5, 5)]
        return runner.run(instances, specs)

    def test_record_structure(self, records):
        assert len(records) == 4
        for record in records:
            assert record.dataset == "tiny"
            assert record.num_nodes > 0
            for key in ("cilk", "hdagg", "init", "hccs", "ilp", "final", "trivial"):
                assert key in record.costs
                assert record.costs[key] > 0

    def test_stage_costs_monotone(self, records):
        for record in records:
            assert record.costs["init"] >= record.costs["hccs"] - 1e-9
            assert record.costs["hccs"] >= record.costs["final"] - 1e-9

    def test_ratio_helper(self, records):
        record = records[0]
        assert record.ratio("final", "cilk") == pytest.approx(
            record.costs["final"] / record.costs["cilk"]
        )

    def test_aggregations(self, records):
        ratio = aggregate_ratio(records, "final", "cilk")
        improvement = aggregate_improvement(records, "final", "cilk")
        assert 0 < ratio <= 1.2
        assert improvement == pytest.approx(1 - ratio)

    def test_list_baselines_included_on_demand(self):
        runner = ExperimentRunner(config=FAST_HEURISTIC, include_list_baselines=True)
        instance = build_dataset("tiny", scale="bench", include_coarse=False)[0]
        record = runner.run_instance(instance, MachineSpec(2, 1, 5))
        assert "etf" in record.costs and "bl_est" in record.costs


class TestDrivers:
    def test_run_no_numa_grid_small(self):
        records = run_no_numa_grid(
            datasets=("tiny",),
            procs=(4,),
            g_values=(1, 5),
            config=FAST_HEURISTIC,
            max_instances_per_dataset=2,
        )
        assert len(records) == 4
        assert {record.spec.g for record in records} == {1, 5}

    def test_run_numa_grid_small(self):
        records = run_numa_grid(
            datasets=("tiny",),
            procs=(8,),
            deltas=(4,),
            config=FAST_HEURISTIC,
            max_instances_per_dataset=2,
        )
        assert len(records) == 2
        assert all(record.spec.numa_delta == 4 for record in records)

    def test_framework_beats_cilk_on_average(self):
        """The qualitative headline of §7.1 holds even for the heuristic-only pipeline."""
        records = run_no_numa_grid(
            datasets=("tiny",),
            procs=(4,),
            g_values=(5,),
            config=FAST_HEURISTIC,
            max_instances_per_dataset=4,
        )
        assert aggregate_improvement(records, "final", "cilk") > 0

    @pytest.mark.slow
    def test_initializer_comparison_counts(self):
        wins = run_initializer_comparison(
            procs=(4,), g_values=(1,), ilp_init_time=0.5, scale="bench"
        )
        assert len(wins) == 10  # 10 training instances x 1 machine point
        assert all(w.winner in w.costs for w in wins)
        assert all(w.costs[w.winner] == min(w.costs.values()) for w in wins)


#: budget-free configuration: without wall-clock limits every scheduler is
#: fully deterministic, so parallel grids must equal serial ones exactly
BUDGET_FREE = PipelineConfig(use_ilp=False, use_comm_ilp=False, local_search_seconds=None)


class TestParallelGrid:
    """The process-parallel grid must reproduce the serial path bit-for-bit."""

    def _grid(self, workers):
        from repro.analysis import run_grid

        runner = ExperimentRunner(config=BUDGET_FREE, include_trivial=True)
        instances = build_dataset("tiny", scale="bench", include_coarse=False)[:2]
        specs = [MachineSpec(4, 1, 5), MachineSpec(4, 5, 5)]
        return run_grid(runner, instances, specs, workers=workers)

    def test_parallel_records_identical_to_serial(self):
        serial = self._grid(workers=1)
        parallel = self._grid(workers=4)
        assert len(serial) == len(parallel) == 4
        for a, b in zip(serial, parallel):
            assert a.instance == b.instance
            assert a.spec == b.spec
            assert a.costs == b.costs  # exact float equality, not approx

    def test_parallel_table_rows_byte_identical(self):
        from repro.analysis.tables import table1_no_numa_improvements

        serial_rows, serial_text = table1_no_numa_improvements(self._grid(workers=1))
        parallel_rows, parallel_text = table1_no_numa_improvements(self._grid(workers=4))
        assert serial_rows == parallel_rows
        assert serial_text.encode() == parallel_text.encode()

    def test_workers_env_default(self, monkeypatch):
        from repro.analysis.experiments import _default_workers

        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert _default_workers() == 1
        monkeypatch.setenv("REPRO_WORKERS", "6")
        assert _default_workers() == 6
        monkeypatch.setenv("REPRO_WORKERS", "nope")
        with pytest.warns(UserWarning):
            assert _default_workers() == 1

    def test_specs_iterator_not_drained(self):
        """A one-shot iterator of specs must still yield the full grid."""
        from repro.analysis import run_grid

        runner = ExperimentRunner(config=FAST_HEURISTIC)
        instances = build_dataset("tiny", scale="bench", include_coarse=False)[:2]
        specs = iter([MachineSpec(2, 1, 5), MachineSpec(4, 1, 5)])
        records = run_grid(runner, instances, specs, workers=1)
        assert len(records) == 4  # 2 instances x 2 specs, not 2
