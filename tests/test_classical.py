"""Unit tests for classical (time-indexed) schedules and BSP conversion."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BspMachine, ClassicalSchedule, ScheduleError, classical_to_bsp

from conftest import assert_valid_schedule, build_chain_dag, build_diamond_dag


class TestClassicalSchedule:
    def test_finish_times_default_to_start_plus_work(self):
        dag = build_chain_dag(3, work=2.0)
        classical = ClassicalSchedule(
            dag, num_procs=1, procs=np.zeros(3, int), start_times=np.array([0.0, 2.0, 4.0])
        )
        assert list(classical.finish_times) == [2.0, 4.0, 6.0]
        assert classical.makespan == 6.0

    def test_validate_accepts_correct_schedule(self):
        dag = build_diamond_dag()
        classical = ClassicalSchedule(
            dag,
            num_procs=2,
            procs=np.array([0, 0, 1, 0]),
            start_times=np.array([0.0, 1.0, 1.0, 2.0]),
        )
        classical.validate()

    def test_validate_rejects_precedence_violation(self):
        dag = build_chain_dag(2)
        classical = ClassicalSchedule(
            dag, num_procs=1, procs=np.zeros(2, int), start_times=np.array([1.0, 0.0])
        )
        with pytest.raises(ScheduleError):
            classical.validate()

    def test_validate_rejects_overlap_on_processor(self):
        dag = build_diamond_dag()
        classical = ClassicalSchedule(
            dag,
            num_procs=1,
            procs=np.zeros(4, int),
            start_times=np.array([0.0, 0.5, 1.0, 2.0]),
        )
        with pytest.raises(ScheduleError):
            classical.validate()

    def test_wrong_length_rejected(self):
        dag = build_chain_dag(3)
        with pytest.raises(ScheduleError):
            ClassicalSchedule(dag, 1, np.zeros(2, int), np.zeros(2))

    def test_empty_dag_makespan(self):
        from repro.core import ComputationalDAG

        dag = ComputationalDAG(0)
        classical = ClassicalSchedule(dag, 1, np.zeros(0, int), np.zeros(0))
        assert classical.makespan == 0.0


class TestConversionToBsp:
    def test_single_processor_gives_single_superstep(self):
        dag = build_chain_dag(4)
        classical = ClassicalSchedule(
            dag, num_procs=1, procs=np.zeros(4, int), start_times=np.arange(4, dtype=float)
        )
        machine = BspMachine.uniform(1, latency=1)
        schedule = classical_to_bsp(classical, machine)
        assert schedule.num_supersteps == 1
        assert_valid_schedule(schedule)

    def test_cross_processor_dependency_opens_superstep(self):
        dag = build_chain_dag(2)
        classical = ClassicalSchedule(
            dag, num_procs=2, procs=np.array([0, 1]), start_times=np.array([0.0, 1.0])
        )
        machine = BspMachine.uniform(2, latency=1)
        schedule = classical_to_bsp(classical, machine)
        assert schedule.superstep_of(0) == 0
        assert schedule.superstep_of(1) == 1
        assert_valid_schedule(schedule)

    def test_diamond_two_processors(self):
        dag = build_diamond_dag()
        classical = ClassicalSchedule(
            dag,
            num_procs=2,
            procs=np.array([0, 0, 1, 0]),
            start_times=np.array([0.0, 1.0, 1.0, 2.0]),
        )
        machine = BspMachine.uniform(2, latency=1)
        schedule = classical_to_bsp(classical, machine)
        assert_valid_schedule(schedule)
        # node 2 depends on cross-processor node 0 -> must be in a later superstep
        assert schedule.superstep_of(2) > schedule.superstep_of(0)
        # node 3 depends on cross-processor node 2 -> again a later superstep
        assert schedule.superstep_of(3) > schedule.superstep_of(2)

    def test_processor_assignment_preserved(self):
        dag = build_diamond_dag()
        procs = np.array([1, 0, 1, 0])
        classical = ClassicalSchedule(
            dag, num_procs=2, procs=procs, start_times=np.array([0.0, 1.0, 1.0, 2.0])
        )
        schedule = classical_to_bsp(classical, BspMachine.uniform(2))
        assert np.array_equal(schedule.procs, procs)

    def test_machine_with_fewer_processors_rejected(self):
        dag = build_chain_dag(2)
        classical = ClassicalSchedule(
            dag, num_procs=4, procs=np.array([0, 3]), start_times=np.array([0.0, 1.0])
        )
        with pytest.raises(ScheduleError):
            classical_to_bsp(classical, BspMachine.uniform(2))

    def test_supersteps_monotone_in_start_time(self):
        dag = build_diamond_dag()
        classical = ClassicalSchedule(
            dag,
            num_procs=2,
            procs=np.array([0, 1, 0, 1]),
            start_times=np.array([0.0, 1.0, 1.0, 2.0]),
        )
        schedule = classical_to_bsp(classical, BspMachine.uniform(2))
        order = sorted(dag.nodes(), key=lambda v: classical.start_times[v])
        steps = [schedule.superstep_of(v) for v in order]
        assert steps == sorted(steps)
