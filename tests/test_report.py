"""Tests for the experiment report subsystem (:mod:`repro.analysis`).

Covers the three layers and the CLI gate:

* aggregation — trial dedup, comparison groups, per-family cost profiles,
  rank tables (tie handling, complete-block selection, the Nemenyi
  critical difference) and pairwise win matrices,
* regression flags — injected speedup/cost drift fires, drift within
  tolerance does not, and "previous" is gap-tolerant per row,
* the HTML renderer — the golden property (two independently built stores
  holding the same trials render byte-identical HTML), the empty-store
  page, family pages, flags reaching the page,
* the ``repro report`` CLI — writes the file, and ``--fail-on-regression``
  exits non-zero exactly when a flag fired.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.aggregate import (
    _ranks,
    comparison_groups,
    dedup_trials,
    family_profiles,
    rank_table,
    regression_flags,
    trajectory_summary,
)
from repro.analysis.report import build_report, render_family_html, render_html
from repro.api import (
    MachineSpec,
    ScheduleRequest,
    SchedulerSpec,
    SchedulingService,
)
from repro.cli import main
from repro.store import ResultStore, TrialRecord

from conftest import random_dag


def make_trial(
    fingerprint,
    scheduler,
    cost,
    dag_name="erdos_1",
    dag_fingerprint="d1",
    seed=0,
    created_at=1.0,
    num_nodes=16,
):
    return TrialRecord(
        fingerprint=fingerprint,
        scheduler=scheduler,
        family=dag_name.split("_", 1)[0],
        dag_name=dag_name,
        dag_fingerprint=dag_fingerprint,
        num_nodes=num_nodes,
        num_edges=2 * num_nodes,
        machine={"num_procs": 4, "g": 1.0, "latency": 5.0, "numa_delta": None},
        budget=None,
        seed=seed,
        cost=float(cost),
        breakdown={"total": float(cost)},
        num_supersteps=3,
        timings={"solve_seconds": 0.01},
        created_at=created_at,
    )


def grid_trials():
    """Three schedulers on three instances over two families (complete)."""
    trials = []
    for index, dag in enumerate(["erdos_1", "erdos_2", "grid_1"]):
        for scheduler, cost in [
            ("bsp", 8.0 + index),
            ("cilk", 10.0 + index),
            ("etf", 12.0 + index),
        ]:
            trials.append(
                make_trial(
                    f"fp-{dag}-{scheduler}",
                    scheduler,
                    cost,
                    dag_name=dag,
                    dag_fingerprint=f"dag-{index}",
                )
            )
    return trials


def _write_record(root, pr, benchmarks):
    payload = {"schema_version": 1, "pr": pr, "benchmarks": benchmarks}
    (root / f"BENCH_{pr}.json").write_text(json.dumps(payload), encoding="utf-8")


# ---------------------------------------------------------------------- #
# aggregation
# ---------------------------------------------------------------------- #
class TestAggregation:
    def test_dedup_keeps_latest_per_fingerprint(self):
        first = make_trial("fp", "bsp", 10.0, created_at=1.0)
        recomputed = make_trial("fp", "bsp", 10.0, created_at=2.0)
        deduped = dedup_trials([first, recomputed])
        assert len(deduped) == 1
        assert deduped[0].created_at == 2.0

    def test_comparison_groups_split_by_problem_identity(self):
        trials = grid_trials()
        groups = comparison_groups(trials)
        assert len(groups) == 3  # one per instance
        for _, by_scheduler in groups:
            assert sorted(by_scheduler) == ["bsp", "cilk", "etf"]
        # a different seed is a different group, not a contender
        trials.append(make_trial("fp-seeded", "bsp", 1.0, seed=7))
        assert len(comparison_groups(trials)) == 4

    def test_family_profiles(self):
        profiles = family_profiles(grid_trials())
        assert [p.family for p in profiles] == ["erdos", "grid"]
        erdos = profiles[0]
        assert erdos.num_instances == 2
        assert erdos.num_trials == 6
        by_name = {s.scheduler: s for s in erdos.schedulers}
        assert by_name["bsp"].wins == 2
        assert by_name["bsp"].geomean_ratio_to_best == pytest.approx(1.0)
        assert by_name["etf"].geomean_ratio_to_best > by_name[
            "cilk"
        ].geomean_ratio_to_best
        assert by_name["cilk"].wins == 0

    def test_tied_costs_share_an_averaged_rank(self):
        assert _ranks({"a": 1.0, "b": 1.0, "c": 2.0}) == {
            "a": 1.5,
            "b": 1.5,
            "c": 3.0,
        }

    def test_rank_table_orders_by_mean_rank(self):
        table = rank_table(grid_trials())
        assert [e.scheduler for e in table.entries] == ["bsp", "cilk", "etf"]
        assert [e.mean_rank for e in table.entries] == [1.0, 2.0, 3.0]
        assert table.num_blocks == 3
        assert table.critical_difference == pytest.approx(
            2.343 * (4 * 3 / (6 * 3)) ** 0.5
        )
        # bsp beats etf by the full rank span over 3 blocks: significant
        assert ("bsp", "etf") in table.significant_pairs
        assert table.wins["bsp"] == {"cilk": 3, "etf": 3}

    def test_rank_table_uses_largest_complete_block_signature(self):
        trials = grid_trials()
        # a lone two-scheduler group must not shrink the 3-scheduler blocks
        trials.append(
            make_trial("x1", "bsp", 1.0, dag_name="tri_1", dag_fingerprint="t")
        )
        trials.append(
            make_trial("x2", "cilk", 2.0, dag_name="tri_1", dag_fingerprint="t")
        )
        table = rank_table(trials)
        assert len(table.entries) == 3
        assert table.num_blocks == 3
        # ...but it still feeds the pairwise win matrix
        assert table.wins["bsp"]["cilk"] == 4

    def test_rank_table_empty_without_comparisons(self):
        solo = [make_trial("a", "bsp", 1.0)]
        table = rank_table(solo)
        assert table.entries == []
        assert table.critical_difference is None

    def test_trajectory_summary_is_per_pr_geomean(self):
        summary = trajectory_summary({7: {"a": 4.0, "b": 1.0}, 3: {"a": 2.0}})
        assert summary == [(3, 2.0), (7, pytest.approx(2.0))]


# ---------------------------------------------------------------------- #
# regression flags
# ---------------------------------------------------------------------- #
class TestRegressionFlags:
    def test_speedup_drop_beyond_tolerance_fires(self, tmp_path):
        _write_record(tmp_path, 1, {"kern": {"speedup": 10.0}})
        _write_record(tmp_path, 2, {"kern": {"speedup": 4.0}})
        flags = regression_flags(tmp_path, speedup_tolerance=0.5)
        assert len(flags) == 1
        flag = flags[0]
        assert flag.kind == "kernel_speedup"
        assert flag.label == "kern"
        assert (flag.previous_pr, flag.current_pr) == (1, 2)
        assert flag.drift == pytest.approx(-0.6)
        assert "fell" in flag.describe()

    def test_drift_within_tolerance_is_quiet(self, tmp_path):
        _write_record(tmp_path, 1, {"kern": {"speedup": 10.0}})
        _write_record(tmp_path, 2, {"kern": {"speedup": 6.0}})
        assert regression_flags(tmp_path, speedup_tolerance=0.5) == []

    def test_cost_rise_beyond_tolerance_fires(self, tmp_path):
        _write_record(tmp_path, 1, {"case": {"final_cost": 100.0}})
        _write_record(tmp_path, 2, {"case": {"final_cost": 120.0}})
        flags = regression_flags(tmp_path, cost_tolerance=0.05)
        assert [f.kind for f in flags] == ["benchmark_cost"]
        assert flags[0].drift == pytest.approx(0.2)
        assert "rose" in flags[0].describe()

    def test_cost_improvement_never_flags(self, tmp_path):
        _write_record(tmp_path, 1, {"case": {"final_cost": 100.0}})
        _write_record(tmp_path, 2, {"case": {"final_cost": 50.0}})
        assert regression_flags(tmp_path, cost_tolerance=0.05) == []

    def test_previous_value_is_gap_tolerant_per_row(self, tmp_path):
        """A row's baseline may live several PRs back (no BENCH_5 exists)."""
        _write_record(tmp_path, 4, {"kern": {"speedup": 10.0}})
        _write_record(tmp_path, 6, {"other": {"speedup": 3.0}})
        _write_record(
            tmp_path, 7, {"kern": {"speedup": 1.0}, "other": {"speedup": 3.0}}
        )
        flags = regression_flags(tmp_path, speedup_tolerance=0.5)
        assert [(f.label, f.previous_pr, f.current_pr) for f in flags] == [
            ("kern", 4, 7)
        ]

    def test_rows_only_in_history_flag_nothing(self, tmp_path):
        """A retired benchmark row must not raise a flag forever after."""
        _write_record(tmp_path, 1, {"old": {"speedup": 10.0}})
        _write_record(tmp_path, 2, {"new": {"speedup": 2.0}})
        assert regression_flags(tmp_path, speedup_tolerance=0.0) == []

    def test_repo_bench_history_is_clean_at_default_tolerances(self):
        """Acceptance: the committed BENCH records gate CI without noise."""
        from pathlib import Path

        assert regression_flags(Path(__file__).parent.parent) == []


# ---------------------------------------------------------------------- #
# the HTML report
# ---------------------------------------------------------------------- #
def _populate_store(root):
    """A small real grid solved into a store (the seeded mini-store)."""
    requests = []
    for seed in (1, 2):
        dag = random_dag(16, 0.25, seed=seed)
        dag.name = f"erdos_{seed}"
        for scheduler in ("cilk", "bsp_greedy", "etf"):
            requests.append(
                ScheduleRequest(
                    dag=dag,
                    machine=MachineSpec(4, 1.0, 5.0),
                    scheduler=SchedulerSpec(scheduler),
                    seed=0,
                )
            )
    SchedulingService(store=ResultStore(root)).solve_many(requests, workers=1)


class TestHtmlReport:
    def test_golden_byte_identical_across_independent_stores(self, tmp_path):
        """Same trials, different stores, different wall-clocks: same bytes."""
        first, second = tmp_path / "a", tmp_path / "b"
        _populate_store(first)
        _populate_store(second)
        html_a = render_html(build_report(first, bench_root=None))
        html_b = render_html(build_report(second, bench_root=None))
        assert html_a == html_b
        assert html_a.startswith("<!DOCTYPE html>")

    def test_report_carries_every_section(self, tmp_path):
        _populate_store(tmp_path)
        _write_record(tmp_path, 1, {"kern": {"speedup": 2.0}})
        html = render_html(build_report(tmp_path, bench_root=tmp_path))
        for heading in (
            "Overview",
            "Cost profiles by family",
            "Scheduler ranking",
            "Kernel speedup trajectory",
            "Regression flags",
        ):
            assert heading in html
        assert "erdos" in html
        assert "<svg" in html  # inline charts, no external assets
        assert "http" not in html.split("</title>")[1]  # self-contained

    def test_volatile_fields_never_rendered(self, tmp_path):
        _populate_store(tmp_path)
        report = build_report(tmp_path)
        html = render_html(report)
        assert "solve_seconds" not in html
        assert "created_at" not in html

    def test_empty_store_renders_no_trials_yet(self, tmp_path):
        html = render_html(build_report(tmp_path, bench_root=None))
        assert "no trials yet" in html
        assert html.startswith("<!DOCTYPE html>")

    def test_family_page_and_unknown_family(self, tmp_path):
        _populate_store(tmp_path)
        report = build_report(tmp_path)
        page = render_family_html(report, "erdos")
        assert page is not None and "erdos" in page
        assert render_family_html(report, "absent") is None

    def test_flags_reach_the_page(self, tmp_path):
        _write_record(tmp_path, 1, {"kern": {"speedup": 10.0}})
        _write_record(tmp_path, 2, {"kern": {"speedup": 1.0}})
        report = build_report(None, bench_root=tmp_path)
        assert report.has_regressions
        html = render_html(report)
        assert "kernel_speedup" in html
        assert 'class="flag"' in html


# ---------------------------------------------------------------------- #
# the CLI gate
# ---------------------------------------------------------------------- #
class TestReportCli:
    def test_writes_report_html(self, tmp_path, capsys):
        _populate_store(tmp_path / "store")
        out = tmp_path / "report.html"
        code = main(
            [
                "report",
                "--store", str(tmp_path / "store"),
                "--bench-root", "none",
                "--out", str(out),
            ]
        )
        assert code == 0
        assert out.read_text(encoding="utf-8").startswith("<!DOCTYPE html>")
        assert "6 trial(s)" in capsys.readouterr().out

    def test_fail_on_regression_exits_nonzero_on_injected_drift(
        self, tmp_path, capsys
    ):
        _write_record(tmp_path, 1, {"kern": {"speedup": 10.0}})
        _write_record(tmp_path, 2, {"kern": {"speedup": 1.0}})
        code = main(
            [
                "report",
                "--bench-root", str(tmp_path),
                "--out", str(tmp_path / "report.html"),
                "--fail-on-regression",
            ]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.err
        # the report is still written before the gate trips
        assert (tmp_path / "report.html").exists()

    def test_fail_on_regression_passes_when_clean(self, tmp_path):
        _write_record(tmp_path, 1, {"kern": {"speedup": 10.0}})
        _write_record(tmp_path, 2, {"kern": {"speedup": 9.9}})
        code = main(
            [
                "report",
                "--bench-root", str(tmp_path),
                "--out", str(tmp_path / "report.html"),
                "--fail-on-regression",
            ]
        )
        assert code == 0
