"""Differential tests: block-emitting generators vs the seed per-op references.

The vectorized builders in :mod:`repro.dagdb.fine` and
:mod:`repro.dagdb.coarse` must produce DAGs *identical* to the retained
per-nonzero / per-op implementations in :mod:`repro.dagdb.reference`: same
node ids, same role labels, same CSR neighbour orders (which schedulers
tie-break on), same weights.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dagdb import (
    COARSE_GENERATORS,
    FINE_GENERATORS,
    SparseMatrixPattern,
)
from repro.dagdb import reference as ref


def dag_signature(dag):
    return (
        dag.num_nodes,
        dag.num_edges,
        dag.name,
        [dag.successors(v) for v in range(dag.num_nodes)],
        [dag.predecessors(v) for v in range(dag.num_nodes)],
        dag.work_weights.tolist(),
        dag.comm_weights.tolist(),
    )


def assert_identical(new_result, ref_result):
    assert new_result.roles == ref_result.roles
    assert dag_signature(new_result.dag) == dag_signature(ref_result.dag)


def patterns():
    return [
        SparseMatrixPattern.from_coordinates(2, [(0, 0), (1, 0), (1, 1)]),
        SparseMatrixPattern.from_coordinates(3, [(0, 0), (0, 1), (1, 1), (2, 1), (2, 2)]),
        SparseMatrixPattern.from_coordinates(3, [(0, 0)]),  # vanishing support
        SparseMatrixPattern.from_coordinates(2, [(0, 1)]),  # product dies out
        SparseMatrixPattern.from_coordinates(4, [(1, 0), (2, 1), (3, 2)]),  # chain
        SparseMatrixPattern.random(12, 0.25, seed=3, ensure_diagonal=True),
        SparseMatrixPattern.random(9, 0.15, seed=8),
        SparseMatrixPattern.random(20, 0.4, seed=1, ensure_diagonal=True),
        SparseMatrixPattern.tridiagonal(10),
    ]


class TestFineGeneratorsMatchReference:
    @pytest.mark.parametrize("index", range(len(patterns())))
    @pytest.mark.parametrize("iterations", [1, 2, 4])
    def test_all_families(self, index, iterations):
        pattern = patterns()[index]
        for name, new_gen in FINE_GENERATORS.items():
            ref_gen = ref.FINE_GENERATORS_REFERENCE[name]
            try:
                expected = ref_gen(pattern, iterations)
            except Exception as exc:  # both sides must fail identically
                with pytest.raises(type(exc)):
                    new_gen(pattern, iterations)
                continue
            assert_identical(new_gen(pattern, iterations), expected)

    def test_roles_can_be_skipped(self):
        from repro.dagdb import build_spmv_dag

        pattern = SparseMatrixPattern.random(8, 0.3, seed=2, ensure_diagonal=True)
        tracked = build_spmv_dag(pattern)
        untracked = build_spmv_dag(pattern, track_roles=False)
        assert untracked.roles == {}
        assert dag_signature(untracked.dag) == dag_signature(tracked.dag)


class TestCoarseGeneratorsMatchReference:
    @pytest.mark.parametrize("name", sorted(COARSE_GENERATORS))
    @pytest.mark.parametrize("iterations", [1, 2, 3, 8])
    def test_all_families(self, name, iterations):
        new_dag = COARSE_GENERATORS[name](iterations)
        ref_dag = ref.COARSE_GENERATORS_REFERENCE[name](iterations)
        assert dag_signature(new_dag) == dag_signature(ref_dag)
        # the internal edge buffers are byte-identical too (tiling preserves
        # the reference emission order exactly)
        new_edges = new_dag.edge_arrays()
        ref_edges = ref_dag.edge_arrays()
        assert np.array_equal(new_edges[0], ref_edges[0])
        assert np.array_equal(new_edges[1], ref_edges[1])

    @pytest.mark.parametrize("clusters", [1, 2, 6])
    def test_kmeans_cluster_knob(self, clusters):
        new_dag = COARSE_GENERATORS["kmeans"](3, clusters=clusters)
        ref_dag = ref.COARSE_GENERATORS_REFERENCE["kmeans"](3, clusters=clusters)
        assert dag_signature(new_dag) == dag_signature(ref_dag)
