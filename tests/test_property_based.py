"""Property-based tests (hypothesis) for the core data structures and invariants.

These cover the load-bearing invariants of the framework:

* every scheduler always produces a *valid* BSP schedule on arbitrary DAGs;
* the incremental cost tracker agrees with the from-scratch cost evaluation;
* improvers never increase the cost;
* coarsening preserves acyclicity and total weights at every level;
* the hyperDAG file format round-trips exactly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import BspMachine, BspSchedule, ComputationalDAG
from repro.io import dumps_hyperdag, loads_hyperdag
from repro.schedulers import (
    BspGreedyScheduler,
    CilkScheduler,
    CommScheduleHillClimbing,
    EtfScheduler,
    HDaggScheduler,
    HillClimbingImprover,
    LazyCostTracker,
    SourceScheduler,
)
from repro.schedulers.multilevel import coarsen_dag
from repro.schedulers.trivial import RoundRobinScheduler

from conftest import assert_valid_schedule


# ---------------------------------------------------------------------- #
# strategies
# ---------------------------------------------------------------------- #
@st.composite
def dags(draw, max_nodes: int = 24):
    """Random weighted DAGs with edges oriented from lower to higher index."""
    num_nodes = draw(st.integers(min_value=1, max_value=max_nodes))
    works = draw(
        st.lists(st.integers(1, 9), min_size=num_nodes, max_size=num_nodes)
    )
    comms = draw(
        st.lists(st.integers(1, 5), min_size=num_nodes, max_size=num_nodes)
    )
    dag = ComputationalDAG(num_nodes, [float(w) for w in works], [float(c) for c in comms])
    density = draw(st.floats(0.0, 0.5))
    rng_seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(rng_seed)
    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            if rng.random() < density:
                dag.add_edge(i, j)
    return dag


@st.composite
def machines(draw):
    kind = draw(st.sampled_from(["uniform", "numa"]))
    g = draw(st.sampled_from([0.0, 1.0, 3.0, 5.0]))
    latency = draw(st.sampled_from([0.0, 1.0, 5.0]))
    if kind == "uniform":
        procs = draw(st.sampled_from([1, 2, 3, 4, 8]))
        return BspMachine.uniform(procs, g=g, latency=latency)
    procs = draw(st.sampled_from([2, 4, 8]))
    delta = draw(st.sampled_from([2.0, 3.0, 4.0]))
    return BspMachine.numa_hierarchy(procs, delta=delta, g=g, latency=latency)


COMMON_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


# ---------------------------------------------------------------------- #
# schedulers always produce valid schedules
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "scheduler_factory",
    [
        lambda: CilkScheduler(seed=0),
        EtfScheduler,
        HDaggScheduler,
        BspGreedyScheduler,
        SourceScheduler,
        RoundRobinScheduler,
    ],
    ids=["cilk", "etf", "hdagg", "bsp_greedy", "source", "round_robin"],
)
@COMMON_SETTINGS
@given(dag=dags(), machine=machines())
def test_schedulers_always_produce_valid_schedules(scheduler_factory, dag, machine):
    schedule = scheduler_factory().schedule(dag, machine)
    assert_valid_schedule(schedule)
    assert schedule.cost() >= 0
    # crude sanity upper bound: every node is computed once, every value is
    # sent to at most P-1 other processors at the worst NUMA multiplier, and
    # there are at most n+1 supersteps
    worst_fanout = max(machine.num_procs - 1, 1)
    assert schedule.cost() <= dag.total_work + machine.g * (
        dag.total_comm * worst_fanout * max(machine.max_numa_multiplier, 1.0)
    ) + machine.latency * (dag.num_nodes + 1)


# ---------------------------------------------------------------------- #
# cost model invariants
# ---------------------------------------------------------------------- #
@COMMON_SETTINGS
@given(dag=dags(), machine=machines())
def test_tracker_cost_matches_schedule_cost(dag, machine):
    schedule = RoundRobinScheduler().schedule(dag, machine)
    tracker = LazyCostTracker(dag, machine, schedule.procs, schedule.supersteps)
    assert tracker.cost() == pytest.approx(schedule.cost())


@COMMON_SETTINGS
@given(dag=dags(max_nodes=16), machine=machines(), data=st.data())
def test_tracker_moves_stay_consistent(dag, machine, data):
    schedule = RoundRobinScheduler().schedule(dag, machine)
    tracker = LazyCostTracker(dag, machine, schedule.procs, schedule.supersteps)
    for _ in range(10):
        v = data.draw(st.integers(0, dag.num_nodes - 1))
        p = data.draw(st.integers(0, machine.num_procs - 1))
        s = int(tracker.supersteps[v]) + data.draw(st.integers(-1, 1))
        if tracker.is_valid_move(v, p, s):
            tracker.apply_move(v, p, s)
    reference = LazyCostTracker(
        dag, machine, tracker.procs, tracker.supersteps, tracker.num_supersteps
    )
    assert tracker.cost() == pytest.approx(reference.cost())
    rebuilt = BspSchedule(dag, machine, tracker.procs, tracker.supersteps, validate=False)
    assert rebuilt.is_valid()


@COMMON_SETTINGS
@given(dag=dags(max_nodes=18), machine=machines())
def test_improvers_never_increase_cost(dag, machine):
    start = RoundRobinScheduler().schedule(dag, machine)
    hc = HillClimbingImprover(max_passes=3).improve(start)
    assert hc.cost() <= start.cost() + 1e-9
    assert_valid_schedule(hc)
    hccs = CommScheduleHillClimbing(max_passes=3).improve(hc)
    assert hccs.cost() <= hc.cost() + 1e-9
    assert_valid_schedule(hccs)


@COMMON_SETTINGS
@given(dag=dags(), machine=machines())
def test_lazy_schedule_at_least_as_good_without_explicit_comm(dag, machine):
    """The compacted trivial schedule is a universal upper bound on the framework output."""
    schedule = BspGreedyScheduler().schedule(dag, machine)
    improved = HillClimbingImprover(max_passes=2).improve(schedule)
    trivial = BspSchedule.trivial(dag, machine)
    # the framework keeps the better of its own result and what it started from,
    # so it can be worse than trivial, but never worse than its own start
    assert improved.cost() <= schedule.cost() + 1e-9
    assert trivial.cost() == dag.total_work + machine.latency


# ---------------------------------------------------------------------- #
# coarsening invariants
# ---------------------------------------------------------------------- #
@COMMON_SETTINGS
@given(dag=dags(max_nodes=20), ratio=st.sampled_from([0.25, 0.5, 0.75]))
def test_coarsening_preserves_structure(dag, ratio):
    target = max(1, int(dag.num_nodes * ratio))
    sequence = coarsen_dag(dag, target_nodes=target)
    quotient = sequence.quotient()
    assert quotient.dag.is_acyclic()
    assert quotient.dag.total_work == pytest.approx(dag.total_work)
    assert quotient.dag.total_comm == pytest.approx(dag.total_comm)
    # intermediate levels are consistent as well
    mid = sequence.num_contractions // 2
    mid_quotient = sequence.quotient(mid)
    assert mid_quotient.dag.is_acyclic()
    assert mid_quotient.dag.num_nodes == dag.num_nodes - mid
    # representative map is idempotent (every node maps onto a live representative)
    rep = sequence.representative_map()
    assert all(rep[rep[v]] == rep[v] for v in dag.nodes())


# ---------------------------------------------------------------------- #
# file format round trip
# ---------------------------------------------------------------------- #
@COMMON_SETTINGS
@given(dag=dags())
def test_hyperdag_roundtrip(dag):
    back = loads_hyperdag(dumps_hyperdag(dag))
    assert back.num_nodes == dag.num_nodes
    assert back.num_edges == dag.num_edges
    assert np.allclose(back.work_weights, dag.work_weights)
    assert np.allclose(back.comm_weights, dag.comm_weights)
    assert {(e.source, e.target) for e in back.edges()} == {
        (e.source, e.target) for e in dag.edges()
    }
