"""Tests for the dashboard server (:mod:`repro.web.server`).

The WSGI app is exercised both in-process (route matching, status codes,
content types) and over a real socket: a ``wsgiref`` server on an
ephemeral port in a background thread, hit with ``urllib`` — the same
shape as ``repro web serve``.
"""

from __future__ import annotations

import threading
import urllib.error
import urllib.request

import pytest

from repro.api import (
    MachineSpec,
    ScheduleRequest,
    SchedulerSpec,
    SchedulingService,
)
from repro.store import ResultStore
from repro.web import make_app, serve
from repro.web.server import _match

from conftest import random_dag


def _populate_store(root):
    dag = random_dag(16, 0.25, seed=1)
    dag.name = "erdos_1"
    requests = [
        ScheduleRequest(
            dag=dag,
            machine=MachineSpec(4, 1.0, 5.0),
            scheduler=SchedulerSpec(scheduler),
            seed=0,
        )
        for scheduler in ("cilk", "bsp_greedy")
    ]
    SchedulingService(store=ResultStore(root)).solve_many(requests, workers=1)


class TestRouteMatching:
    def test_literal_routes(self):
        assert _match("/report", "/report") == {}
        assert _match("/report", "/healthz") is None
        assert _match("/healthz", "/healthz/extra") is None

    def test_placeholder_captures_one_segment(self):
        assert _match("/families/<name>", "/families/erdos") == {"name": "erdos"}
        assert _match("/families/<name>", "/families") is None
        assert _match("/families/<name>", "/families/a/b") is None


def _call(app, path, method="GET"):
    """Invoke the WSGI app directly; returns (status, headers, body)."""
    captured = {}

    def start_response(status, headers):
        captured["status"] = status
        captured["headers"] = dict(headers)

    body = b"".join(
        app({"PATH_INFO": path, "REQUEST_METHOD": method}, start_response)
    )
    return captured["status"], captured["headers"], body


class TestWsgiApp:
    def test_healthz(self, tmp_path):
        status, headers, body = _call(make_app(tmp_path), "/healthz")
        assert status == "200 OK"
        assert headers["Content-Type"].startswith("text/plain")
        assert body == b"ok\n"

    def test_root_redirects_to_report(self, tmp_path):
        status, headers, _ = _call(make_app(tmp_path), "/")
        assert status == "302 Found"
        assert headers["Location"] == "/report"

    def test_report_from_empty_store_is_valid(self, tmp_path):
        """An empty store must render the "no trials yet" page, not 500."""
        status, headers, body = _call(make_app(tmp_path), "/report")
        assert status == "200 OK"
        assert headers["Content-Type"] == "text/html; charset=utf-8"
        text = body.decode("utf-8")
        assert text.startswith("<!DOCTYPE html>")
        assert "no trials yet" in text

    def test_report_reflects_store_contents(self, tmp_path):
        _populate_store(tmp_path)
        _, _, body = _call(make_app(tmp_path), "/report")
        text = body.decode("utf-8")
        assert "erdos" in text
        assert "bsp_greedy" in text

    def test_family_route(self, tmp_path):
        _populate_store(tmp_path)
        status, _, body = _call(make_app(tmp_path), "/families/erdos")
        assert status == "200 OK"
        assert "erdos" in body.decode("utf-8")
        status, _, _ = _call(make_app(tmp_path), "/families/absent")
        assert status == "404 Not Found"

    def test_unknown_path_404(self, tmp_path):
        status, _, _ = _call(make_app(tmp_path), "/nope")
        assert status == "404 Not Found"

    def test_post_rejected(self, tmp_path):
        status, headers, _ = _call(make_app(tmp_path), "/report", method="POST")
        assert status == "405 Method Not Allowed"
        assert headers["Allow"] == "GET, HEAD"


@pytest.fixture
def live_server(tmp_path):
    """A real wsgiref server on an ephemeral port, in a daemon thread."""
    server = serve(make_app(tmp_path), port=0, quiet=True)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{server.server_port}", tmp_path
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


class TestLiveServer:
    def test_healthz_and_report_over_the_wire(self, live_server):
        base, _ = live_server
        with urllib.request.urlopen(f"{base}/healthz", timeout=10) as response:
            assert response.status == 200
            assert response.read() == b"ok\n"
        with urllib.request.urlopen(f"{base}/report", timeout=10) as response:
            assert response.status == 200
            assert response.headers["Content-Type"] == "text/html; charset=utf-8"
            assert b"no trials yet" in response.read()

    def test_report_refreshes_as_the_store_fills(self, live_server):
        """The dashboard rebuilds per request: new trials appear on refresh."""
        base, store_root = live_server
        _populate_store(store_root)
        with urllib.request.urlopen(f"{base}/report", timeout=10) as response:
            assert b"erdos" in response.read()

    def test_unknown_family_404_over_the_wire(self, live_server):
        base, _ = live_server
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(f"{base}/families/absent", timeout=10)
        assert exc_info.value.code == 404
