"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BspMachine, BspSchedule, ComputationalDAG
from repro.dagdb import SparseMatrixPattern, build_spmv_dag


def build_diamond_dag() -> ComputationalDAG:
    """A 4-node diamond: 0 -> {1, 2} -> 3, unit weights."""
    dag = ComputationalDAG(4)
    dag.add_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
    return dag


def build_chain_dag(length: int = 5, work: float = 1.0, comm: float = 1.0) -> ComputationalDAG:
    """A simple path 0 -> 1 -> ... -> length-1."""
    dag = ComputationalDAG(length, [work] * length, [comm] * length)
    dag.add_edges([(i, i + 1) for i in range(length - 1)])
    return dag


def build_fork_join_dag(width: int = 4) -> ComputationalDAG:
    """One source fanning out to ``width`` nodes that join into one sink."""
    dag = ComputationalDAG(width + 2)
    for i in range(1, width + 1):
        dag.add_edge(0, i)
        dag.add_edge(i, width + 1)
    return dag


def build_paper_example_dag() -> ComputationalDAG:
    """A small two-layer DAG in the spirit of Figure 1 of the paper."""
    dag = ComputationalDAG(12)
    # first layer: 0..5 sources feeding 6..8, second layer: 9..11
    edges = [
        (0, 6), (1, 6), (1, 7), (2, 7), (3, 7), (4, 8), (5, 8),
        (6, 9), (7, 9), (7, 10), (8, 10), (8, 11),
    ]
    dag.add_edges(edges)
    return dag


def random_dag(num_nodes: int, edge_prob: float, seed: int) -> ComputationalDAG:
    """Random DAG: edge (i, j) for i < j with the given probability, random weights."""
    rng = np.random.default_rng(seed)
    works = rng.integers(1, 6, size=num_nodes).astype(float)
    comms = rng.integers(1, 4, size=num_nodes).astype(float)
    dag = ComputationalDAG(num_nodes, works, comms, name=f"random_{seed}")
    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            if rng.random() < edge_prob:
                dag.add_edge(i, j)
    return dag


def assert_valid_schedule(schedule: BspSchedule) -> None:
    """Assert the schedule satisfies every BSP validity condition."""
    violations = schedule.violations()
    assert not violations, "invalid schedule:\n" + "\n".join(violations)


@pytest.fixture
def random_dag_factory():
    """The :func:`random_dag` helper as a fixture.

    Lets test modules use the helper without a ``from conftest import ...``
    statement, which is fragile when several conftest modules are on
    ``sys.path`` (the benchmarks directory has its own conftest).
    """
    return random_dag


@pytest.fixture
def diamond_dag() -> ComputationalDAG:
    return build_diamond_dag()


@pytest.fixture
def chain_dag() -> ComputationalDAG:
    return build_chain_dag()


@pytest.fixture
def fork_join_dag() -> ComputationalDAG:
    return build_fork_join_dag()


@pytest.fixture
def paper_example_dag() -> ComputationalDAG:
    return build_paper_example_dag()


@pytest.fixture
def spmv_dag() -> ComputationalDAG:
    pattern = SparseMatrixPattern.random(8, 0.35, seed=3, ensure_diagonal=True)
    return build_spmv_dag(pattern).dag


@pytest.fixture
def machine2() -> BspMachine:
    return BspMachine.uniform(2, g=1, latency=2)


@pytest.fixture
def machine4() -> BspMachine:
    return BspMachine.uniform(4, g=2, latency=5)


@pytest.fixture
def numa_machine8() -> BspMachine:
    return BspMachine.numa_hierarchy(8, delta=3, g=1, latency=5)
