"""Unit tests for the MILP backend wrapper."""

from __future__ import annotations

import pytest

from repro.core import SolverError
from repro.schedulers import MilpProblem


class TestModelBuilding:
    def test_variable_counting(self):
        problem = MilpProblem()
        x = problem.add_binary(objective=1.0)
        y = problem.add_continuous(0, 10, objective=2.0)
        assert (x, y) == (0, 1)
        assert problem.num_variables == 2
        assert problem.num_constraints == 0

    def test_constraint_validation(self):
        problem = MilpProblem()
        with pytest.raises(SolverError):
            problem.add_constraint({}, 0, 1)
        with pytest.raises(SolverError):
            problem.add_constraint({5: 1.0}, 0, 1)

    def test_empty_model_solves(self):
        solution = MilpProblem().solve()
        assert solution.objective == 0.0


class TestSolving:
    def test_simple_binary_knapsack(self):
        """max 3a + 2b + 2c subject to a + b + c <= 2 (as minimisation)."""
        problem = MilpProblem()
        a = problem.add_binary(objective=-3)
        b = problem.add_binary(objective=-2)
        c = problem.add_binary(objective=-2)
        problem.add_le({a: 1, b: 1, c: 1}, 2)
        solution = problem.solve()
        assert solution.feasible
        assert solution.objective == pytest.approx(-5)
        assert solution.is_one(a)
        assert solution.is_one(b) != solution.is_one(c)

    def test_equality_and_ge_constraints(self):
        problem = MilpProblem()
        x = problem.add_continuous(0, 10, objective=1.0)
        y = problem.add_continuous(0, 10, objective=1.0)
        problem.add_eq({x: 1, y: 1}, 6)
        problem.add_ge({x: 1}, 2)
        solution = problem.solve()
        assert solution.feasible
        assert solution.objective == pytest.approx(6)
        assert solution.value(x) >= 2 - 1e-6

    def test_mixed_integer_rounding(self):
        """Integrality forces the binary away from the LP optimum."""
        problem = MilpProblem()
        x = problem.add_binary(objective=1.0)
        y = problem.add_continuous(0, 1, objective=0.4)
        # x + y >= 1.5  -> with x binary the best is x=1, y=0.5
        problem.add_ge({x: 1, y: 1}, 1.5)
        solution = problem.solve()
        assert solution.feasible
        assert solution.is_one(x)
        assert solution.value(y) == pytest.approx(0.5)

    def test_infeasible_model_reports_not_feasible(self):
        problem = MilpProblem()
        x = problem.add_binary()
        problem.add_ge({x: 1}, 2)
        solution = problem.solve()
        assert not solution.feasible

    def test_time_limit_does_not_crash(self):
        problem = MilpProblem()
        variables = [problem.add_binary(objective=-(i % 7 + 1)) for i in range(60)]
        problem.add_le({v: 1 for v in variables}, 10)
        solution = problem.solve(time_limit=0.2)
        # with such a tiny model HiGHS still finds the optimum, but the call
        # must honour the option without blowing up
        assert solution.feasible
