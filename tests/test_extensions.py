"""Unit tests for the framework extensions: clustering baseline, simulated annealing,
serialization, MatrixMarket loading and the ablation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BspMachine,
    ComputationalDAG,
    ReproError,
    dag_from_dict,
    dag_to_dict,
    load_schedule,
    machine_from_dict,
    machine_to_dict,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.core import DagError
from repro.io import loads_matrix_market_pattern, read_matrix_market_pattern
from repro.schedulers import (
    BspGreedyScheduler,
    CilkScheduler,
    LinearClusteringScheduler,
    SimulatedAnnealingImprover,
)
from repro.schedulers.trivial import RoundRobinScheduler

from conftest import assert_valid_schedule, build_chain_dag, build_fork_join_dag, random_dag
from repro.dagdb import SparseMatrixPattern, build_spmv_dag


class TestLinearClusteringScheduler:
    @pytest.mark.parametrize("num_procs", [1, 2, 4, 8])
    def test_valid_on_various_dags(self, num_procs):
        machine = BspMachine.uniform(num_procs, g=2, latency=3)
        for dag in (
            build_chain_dag(8),
            build_fork_join_dag(10),
            random_dag(35, 0.12, seed=1),
            build_spmv_dag(SparseMatrixPattern.random(8, 0.3, seed=2)).dag,
        ):
            assert_valid_schedule(LinearClusteringScheduler().schedule(dag, machine))

    def test_empty_dag(self):
        schedule = LinearClusteringScheduler().schedule(
            ComputationalDAG(0), BspMachine.uniform(2)
        )
        assert schedule.cost() == 0.0

    def test_chain_stays_in_one_cluster(self):
        dag = build_chain_dag(10, comm=5.0)
        machine = BspMachine.uniform(4, g=3, latency=1)
        schedule = LinearClusteringScheduler().schedule(dag, machine)
        assert len(set(schedule.procs.tolist())) == 1
        assert schedule.cost_breakdown().comm == 0.0

    def test_independent_chains_are_spread(self):
        dag = ComputationalDAG(12)
        for c in range(4):
            dag.add_edge(3 * c, 3 * c + 1)
            dag.add_edge(3 * c + 1, 3 * c + 2)
        machine = BspMachine.uniform(4, g=1, latency=1)
        schedule = LinearClusteringScheduler().schedule(dag, machine)
        assert len(set(schedule.procs.tolist())) == 4

    def test_outperformed_by_framework_with_communication(self):
        """The paper's observation: clustering baselines lose once comm matters."""
        from repro.schedulers import SourceScheduler

        dag = build_spmv_dag(SparseMatrixPattern.random(10, 0.3, seed=4)).dag
        machine = BspMachine.uniform(4, g=5, latency=5)
        clustering = LinearClusteringScheduler().schedule(dag, machine)
        source = SourceScheduler().schedule(dag, machine)
        assert source.cost() <= clustering.cost() * 1.1


class TestSimulatedAnnealing:
    def test_never_worse_and_valid(self, machine4):
        for seed in range(3):
            dag = random_dag(25, 0.15, seed=seed)
            start = RoundRobinScheduler().schedule(dag, machine4)
            improved = SimulatedAnnealingImprover(seed=seed).improve(start)
            assert improved.cost() <= start.cost()
            assert_valid_schedule(improved)

    def test_improves_bad_schedules(self, machine4):
        dag = random_dag(30, 0.2, seed=7)
        start = RoundRobinScheduler().schedule(dag, machine4)
        improved = SimulatedAnnealingImprover(sweeps=30, seed=1).improve(start)
        assert improved.cost() < start.cost()

    def test_deterministic_for_fixed_seed(self, machine4):
        dag = random_dag(20, 0.2, seed=3)
        start = RoundRobinScheduler().schedule(dag, machine4)
        a = SimulatedAnnealingImprover(seed=5).improve(start)
        b = SimulatedAnnealingImprover(seed=5).improve(start)
        assert a.cost() == b.cost()

    def test_rejects_bad_cooling(self):
        with pytest.raises(ValueError):
            SimulatedAnnealingImprover(cooling=1.5)

    def test_empty_schedule_noop(self, machine4):
        start = RoundRobinScheduler().schedule(ComputationalDAG(0), machine4)
        assert SimulatedAnnealingImprover().improve(start).cost() == 0.0

    def test_can_escape_local_minima_sometimes(self):
        """On average over seeds, annealing is at least as good as pure HC start."""
        from repro.schedulers import HillClimbingImprover

        dag = random_dag(25, 0.2, seed=11)
        machine = BspMachine.uniform(4, g=4, latency=2)
        start = BspGreedyScheduler().schedule(dag, machine)
        hc = HillClimbingImprover().improve(start)
        annealed = SimulatedAnnealingImprover(sweeps=40, seed=2).improve(hc)
        assert annealed.cost() <= hc.cost()


class TestSerialization:
    def test_dag_roundtrip(self):
        dag = random_dag(15, 0.2, seed=2)
        back = dag_from_dict(dag_to_dict(dag))
        assert back.num_nodes == dag.num_nodes
        assert back.num_edges == dag.num_edges
        assert np.allclose(back.work_weights, dag.work_weights)

    def test_machine_roundtrip(self):
        machine = BspMachine.numa_hierarchy(8, delta=3, g=2, latency=7)
        back = machine_from_dict(machine_to_dict(machine))
        assert back.num_procs == 8
        assert back.g == 2 and back.latency == 7
        assert np.array_equal(back.numa, machine.numa)

    def test_schedule_roundtrip_lazy_and_explicit(self, machine4):
        dag = random_dag(12, 0.25, seed=4)
        schedule = BspGreedyScheduler().schedule(dag, machine4)
        back = schedule_from_dict(schedule_to_dict(schedule))
        assert back.cost() == pytest.approx(schedule.cost())
        explicit = schedule.with_comm_schedule(schedule.comm_schedule)
        back_explicit = schedule_from_dict(schedule_to_dict(explicit))
        assert back_explicit.cost() == pytest.approx(explicit.cost())
        assert not back_explicit.uses_lazy_comm

    def test_file_roundtrip(self, tmp_path, machine4):
        dag = random_dag(10, 0.3, seed=5)
        schedule = CilkScheduler(seed=0).schedule(dag, machine4)
        path = tmp_path / "schedule.json"
        save_schedule(schedule, path)
        loaded = load_schedule(path)
        assert loaded.cost() == pytest.approx(schedule.cost())
        assert loaded.is_valid()

    def test_malformed_data_rejected(self):
        with pytest.raises(ReproError):
            dag_from_dict({"num_nodes": 2, "work": [1], "comm": [1, 1], "edges": []})
        with pytest.raises(ReproError):
            dag_from_dict(
                {"num_nodes": 2, "work": [1, 1], "comm": [1, 1], "edges": [[0, 1], [1, 0]]}
            )
        with pytest.raises(ReproError):
            machine_from_dict({"num_procs": 2})


MTX_GENERAL = """%%MatrixMarket matrix coordinate real general
% a comment
3 3 4
1 1 1.0
2 1 2.0
2 2 -1.0
3 2 0.5
"""

MTX_SYMMETRIC = """%%MatrixMarket matrix coordinate pattern symmetric
3 3 3
1 1
2 1
3 2
"""


class TestMatrixMarket:
    def test_general_pattern(self):
        pattern = loads_matrix_market_pattern(MTX_GENERAL)
        assert pattern.size == 3
        assert pattern.nnz == 4
        assert pattern.row(1) == (0, 1)

    def test_symmetric_expansion(self):
        pattern = loads_matrix_market_pattern(MTX_SYMMETRIC)
        # off-diagonal entries mirrored: (1,0)->(0,1) and (2,1)->(1,2)
        assert pattern.nnz == 5
        assert 1 in pattern.row(0)
        assert 2 in pattern.row(1)

    def test_file_reading_and_dag_generation(self, tmp_path):
        path = tmp_path / "matrix.mtx"
        path.write_text(MTX_GENERAL)
        pattern = read_matrix_market_pattern(path)
        dag = build_spmv_dag(pattern).dag
        assert dag.num_nodes > 0
        assert dag.is_acyclic()

    def test_rejects_malformed_inputs(self):
        with pytest.raises(DagError):
            loads_matrix_market_pattern("not a matrix\n1 1 1\n")
        with pytest.raises(DagError):
            loads_matrix_market_pattern("%%MatrixMarket matrix array real general\n3 3\n")
        with pytest.raises(DagError):
            loads_matrix_market_pattern("%%MatrixMarket matrix coordinate real general\n2 3 1\n1 1 1\n")
        with pytest.raises(DagError):
            loads_matrix_market_pattern("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1\n")


class TestAblationHelpers:
    @pytest.fixture(scope="class")
    def instances(self):
        from repro.dagdb import build_dataset

        return build_dataset("tiny", scale="bench", include_coarse=False)[:2]

    def test_local_search_components(self, instances):
        from repro.analysis import local_search_component_ablation

        machine = BspMachine.uniform(4, g=3, latency=5)
        ratios, text = local_search_component_ablation(instances, machine)
        assert ratios["init"] == pytest.approx(1.0)
        assert ratios["hc"] <= 1.0 + 1e-9
        assert ratios["hc+hccs"] <= ratios["hc"] + 1e-9
        assert "Ablation" in text

    def test_bspg_idle_fraction(self, instances):
        from repro.analysis import bspg_idle_fraction_ablation

        machine = BspMachine.uniform(4, g=2, latency=5)
        ratios, text = bspg_idle_fraction_ablation(instances, machine, fractions=(0.25, 0.5))
        assert ratios[0.5] == pytest.approx(1.0)
        assert set(ratios) == {0.25, 0.5}

    def test_comm_schedule_policy(self, instances):
        from repro.analysis import comm_schedule_policy_ablation

        machine = BspMachine.uniform(4, g=5, latency=5)
        ratios, text = comm_schedule_policy_ablation(instances, machine)
        assert ratios["lazy"] == pytest.approx(1.0)
        assert ratios["hccs"] <= 1.0 + 1e-9
        assert ratios["eager"] > 0

    def test_multilevel_refinement(self, instances):
        from repro.analysis import multilevel_refinement_ablation

        machine = BspMachine.numa_hierarchy(4, delta=3, g=1, latency=5)
        ratios, text = multilevel_refinement_ablation(instances, machine, intervals=(5, 20))
        assert ratios[5] == pytest.approx(1.0)
        assert 20 in ratios
