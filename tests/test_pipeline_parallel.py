"""Determinism of the threaded initialiser fan-out (PR 9 tentpole a).

The pipeline fans its per-initialiser HC + HCcs runs over a thread pool
(``PipelineConfig.init_workers`` / ``REPRO_INIT_WORKERS``).  The contract:
the fan-out changes wall-clock only — at any width the produced schedule,
the stage trace and the service-level canonical payload are byte-identical
to the serial run (deterministic winner selection via ``min``'s stable
first-wins tie-break over the fixed initialiser registry order).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import MachineSpec, ScheduleRequest, SchedulerSpec, SchedulingService
from repro.core import BspMachine
from repro.schedulers import (
    ENV_INIT_WORKERS,
    PipelineConfig,
    SchedulingPipeline,
    resolve_init_workers,
)
from repro.schedulers.base import Scheduler
from repro.schedulers.bsp_greedy import BspGreedyScheduler

from conftest import random_dag

#: deterministic config for the exact-comparison runs: no wall-clock
#: budgets, no ILP stages — every knob that could make two runs diverge for
#: reasons unrelated to the fan-out is pinned
_DET_CONFIG = dict(use_ilp=False, use_comm_ilp=False, local_search_seconds=None)


class TestResolveInitWorkers:
    def test_explicit_value_wins(self, monkeypatch):
        monkeypatch.setenv(ENV_INIT_WORKERS, "7")
        assert resolve_init_workers(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(ENV_INIT_WORKERS, "4")
        assert resolve_init_workers(None) == 4

    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv(ENV_INIT_WORKERS, raising=False)
        assert resolve_init_workers(None) == 1

    def test_clamped_to_one(self, monkeypatch):
        monkeypatch.setenv(ENV_INIT_WORKERS, "0")
        assert resolve_init_workers(None) == 1
        assert resolve_init_workers(-2) == 1

    def test_garbage_env_warns_and_stays_serial(self, monkeypatch):
        monkeypatch.setenv(ENV_INIT_WORKERS, "many")
        with pytest.warns(UserWarning, match="REPRO_INIT_WORKERS"):
            assert resolve_init_workers(None) == 1


class TestConfigWireForm:
    def test_to_dict_excludes_init_workers(self):
        data = PipelineConfig(init_workers=8).to_dict()
        assert "init_workers" not in data

    def test_from_dict_still_accepts_init_workers(self):
        config = PipelineConfig.from_dict({"init_workers": 6})
        assert config.init_workers == 6

    def test_roundtrip_resets_to_default(self):
        restored = PipelineConfig.from_dict(PipelineConfig(init_workers=8).to_dict())
        assert restored.init_workers is None

    def test_wire_form_identical_across_widths(self):
        serial = PipelineConfig(init_workers=None, **_DET_CONFIG)
        wide = PipelineConfig(init_workers=16, **_DET_CONFIG)
        assert serial.to_dict() == wide.to_dict()


def _pipeline_specs():
    """Every registry pipeline, configured for deterministic comparison."""
    return [
        SchedulerSpec("framework", {"config": PipelineConfig(**_DET_CONFIG)}),
        SchedulerSpec("framework_heuristics", {"local_search_seconds": None}),
        SchedulerSpec("multilevel", {"config": PipelineConfig(**_DET_CONFIG)}),
    ]


class TestFanOutDeterminism:
    def test_canonical_payload_identical_across_widths(self, monkeypatch):
        """init_workers=4 vs serial: byte-identical canonical service payload."""
        dag = random_dag(60, 0.12, seed=13)
        machine = MachineSpec(num_procs=4, g=2.0, latency=5.0)
        for spec in _pipeline_specs():
            request = ScheduleRequest(dag=dag, machine=machine, scheduler=spec)
            payloads = {}
            for workers in ("", "4"):
                if workers:
                    monkeypatch.setenv(ENV_INIT_WORKERS, workers)
                else:
                    monkeypatch.delenv(ENV_INIT_WORKERS, raising=False)
                result = SchedulingService().solve(request)
                payloads[workers] = json.dumps(
                    result.canonical_dict(), sort_keys=True
                )
            assert payloads[""] == payloads["4"], spec.name

    def test_stage_traces_identical_across_widths(self):
        dag = random_dag(50, 0.15, seed=29)
        machine = BspMachine.uniform(3, g=2, latency=4)
        traces = []
        for workers in (1, 4):
            config = PipelineConfig(init_workers=workers, **_DET_CONFIG)
            result = SchedulingPipeline(config).schedule_with_stages(dag, machine)
            traces.append(
                (result.stages.to_dict(), result.schedule.procs.tolist(),
                 result.schedule.supersteps.tolist())
            )
        assert traces[0] == traces[1]


class _ExplodingScheduler(Scheduler):
    name = "exploding"

    def schedule(self, dag, machine, budget=None):
        raise RuntimeError("initialiser exploded")


class _RecordingScheduler(BspGreedyScheduler):
    def __init__(self, calls):
        super().__init__()
        self._calls = calls

    def schedule(self, dag, machine, budget=None):
        self._calls.append(self.name)
        return super().schedule(dag, machine, budget)


class TestFanOutErrorPropagation:
    """A crashing initialiser fails the solve at every width.

    ``parallel_map``'s thread path cancels the outstanding tasks and
    re-raises the task error; the serial path raises at the failing task
    without starting later ones.
    """

    def _pipeline(self, initializers, workers):
        config = PipelineConfig(init_workers=workers, **_DET_CONFIG)
        pipeline = SchedulingPipeline(config)
        pipeline._initializers = lambda machine: initializers
        return pipeline

    def test_serial_error_propagates_and_skips_later_tasks(self):
        dag = random_dag(20, 0.2, seed=3)
        machine = BspMachine.uniform(3, g=2, latency=2)
        calls: list[str] = []
        pipeline = self._pipeline(
            [_ExplodingScheduler(), _RecordingScheduler(calls)], workers=1
        )
        with pytest.raises(RuntimeError, match="initialiser exploded"):
            pipeline.schedule_with_stages(dag, machine)
        assert calls == []  # the serial walk stops at the failing task

    def test_threaded_error_propagates(self):
        dag = random_dag(20, 0.2, seed=3)
        machine = BspMachine.uniform(3, g=2, latency=2)
        pipeline = self._pipeline(
            [_ExplodingScheduler(), BspGreedyScheduler()], workers=4
        )
        with pytest.raises(RuntimeError, match="initialiser exploded"):
            pipeline.schedule_with_stages(dag, machine)
