"""Unit tests for the ComputationalDAG container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ComputationalDAG, CycleError, DagError

from conftest import build_chain_dag, build_diamond_dag, build_fork_join_dag


class TestConstruction:
    def test_empty_dag(self):
        dag = ComputationalDAG(0)
        assert dag.num_nodes == 0
        assert dag.num_edges == 0
        assert dag.total_work == 0.0
        assert dag.topological_order() == []
        assert dag.depth() == 0
        assert dag.critical_path_length() == 0.0

    def test_default_weights_are_one(self):
        dag = ComputationalDAG(3)
        assert dag.work(0) == 1.0
        assert dag.comm(2) == 1.0
        assert dag.total_work == 3.0
        assert dag.total_comm == 3.0

    def test_explicit_weights(self):
        dag = ComputationalDAG(3, [1, 2, 3], [4, 5, 6])
        assert dag.work(1) == 2.0
        assert dag.comm(2) == 6.0
        assert dag.total_work == 6.0
        assert dag.total_comm == 15.0

    def test_weight_length_mismatch_rejected(self):
        with pytest.raises(DagError):
            ComputationalDAG(3, work_weights=[1, 2])

    def test_negative_weights_rejected(self):
        with pytest.raises(DagError):
            ComputationalDAG(2, work_weights=[1, -1])
        dag = ComputationalDAG(2)
        with pytest.raises(DagError):
            dag.set_work(0, -3)
        with pytest.raises(DagError):
            dag.set_comm(1, -1)

    def test_negative_node_count_rejected(self):
        with pytest.raises(DagError):
            ComputationalDAG(-1)

    def test_add_node_returns_index(self):
        dag = ComputationalDAG(2)
        new = dag.add_node(work=7, comm=3)
        assert new == 2
        assert dag.num_nodes == 3
        assert dag.work(2) == 7.0
        assert dag.comm(2) == 3.0

    def test_add_nodes_bulk(self):
        dag = ComputationalDAG(0)
        indices = dag.add_nodes(5, work=2)
        assert indices == [0, 1, 2, 3, 4]
        assert dag.total_work == 10.0

    def test_set_weights(self):
        dag = ComputationalDAG(2)
        dag.set_work(0, 9)
        dag.set_comm(1, 4)
        assert dag.work(0) == 9.0
        assert dag.comm(1) == 4.0

    def test_weight_views_are_read_only(self):
        dag = ComputationalDAG(2)
        with pytest.raises(ValueError):
            dag.work_weights[0] = 5


class TestEdges:
    def test_add_edge_and_neighbourhoods(self):
        dag = build_diamond_dag()
        assert dag.num_edges == 4
        assert sorted(dag.successors(0)) == [1, 2]
        assert dag.predecessors(3) == [1, 2]
        assert dag.out_degree(0) == 2
        assert dag.in_degree(3) == 2
        assert dag.has_edge(0, 1)
        assert not dag.has_edge(1, 0)

    def test_duplicate_edge_rejected(self):
        dag = ComputationalDAG(2)
        dag.add_edge(0, 1)
        with pytest.raises(DagError):
            dag.add_edge(0, 1)

    def test_self_loop_rejected(self):
        dag = ComputationalDAG(1)
        with pytest.raises(CycleError):
            dag.add_edge(0, 0)

    def test_unknown_node_rejected(self):
        dag = ComputationalDAG(2)
        with pytest.raises(DagError):
            dag.add_edge(0, 5)

    def test_check_cycle_flag(self):
        dag = build_chain_dag(3)
        with pytest.raises(CycleError):
            dag.add_edge(2, 0, check_cycle=True)

    def test_cycle_detected_lazily(self):
        dag = ComputationalDAG(2)
        dag.add_edge(0, 1)
        dag.add_edge(1, 0)  # no eager check
        assert not dag.is_acyclic()
        with pytest.raises(CycleError):
            dag.topological_order()

    def test_edges_iteration(self):
        dag = build_diamond_dag()
        edges = {(e.source, e.target) for e in dag.edges()}
        assert edges == {(0, 1), (0, 2), (1, 3), (2, 3)}


class TestDynamicOrderCycleChecks:
    """``add_edge(check_cycle=True)`` via the Pearce–Kelly dynamic order.

    The incremental order must give exactly the accept/reject decisions of
    a from-scratch reachability check, across long random insertion
    sequences mixed with node growth and unchecked inserts.
    """

    def test_checked_inserts_match_reachability_oracle(self):
        for trial in range(10):
            rng = np.random.default_rng(trial)
            n = 25
            dag = ComputationalDAG(n)
            oracle = ComputationalDAG(n)
            for _ in range(120):
                u = int(rng.integers(0, n))
                v = int(rng.integers(0, n))
                if u == v:
                    continue
                # oracle decision: from-scratch path check on a copy that
                # only ever holds accepted (acyclic) edges
                creates_cycle = oracle.has_path(v, u)
                duplicate = any(w == v for w in oracle.successors(u))
                if duplicate:
                    continue
                if creates_cycle:
                    with pytest.raises(CycleError):
                        dag.add_edge(u, v, check_cycle=True)
                else:
                    dag.add_edge(u, v, check_cycle=True)
                    oracle.add_edge(u, v)
            assert {(e.source, e.target) for e in dag.edges()} == {
                (e.source, e.target) for e in oracle.edges()
            }
            order = dag.topological_order()
            position = {node: i for i, node in enumerate(order)}
            assert all(
                position[e.source] < position[e.target] for e in dag.edges()
            )

    def test_rejection_leaves_structure_usable(self):
        dag = build_chain_dag(5)
        for _ in range(3):
            with pytest.raises(CycleError):
                dag.add_edge(4, 0, check_cycle=True)
        # the rejected edge was not recorded; further checked inserts work
        dag.add_edge(0, 4, check_cycle=True)
        assert dag.is_acyclic()

    def test_unchecked_insert_then_checked_rebuilds(self):
        dag = ComputationalDAG(4)
        dag.add_edge(0, 1, check_cycle=True)
        dag.add_edge(1, 2)  # unchecked: drops the incremental order
        dag.add_edge(2, 3, check_cycle=True)  # forces a rebuild
        with pytest.raises(CycleError):
            dag.add_edge(3, 0, check_cycle=True)
        assert dag.is_acyclic()

    def test_checked_insert_on_cyclic_graph_falls_back(self):
        # an unchecked pair already closed a cycle: there is no topological
        # order to maintain, so checked inserts fall back to reachability
        dag = ComputationalDAG(3)
        dag.add_edge(0, 1)
        dag.add_edge(1, 0)
        dag.add_edge(1, 2, check_cycle=True)  # harmless edge still accepted
        with pytest.raises(CycleError):
            dag.add_edge(2, 0, check_cycle=True)  # would extend the cycle

    def test_add_nodes_interleaved_with_checked_inserts(self):
        dag = ComputationalDAG(3)
        dag.add_edge(0, 1, check_cycle=True)
        dag.add_edge(1, 2, check_cycle=True)
        new = dag.add_nodes(2)
        dag.add_edge(2, new[0], check_cycle=True)
        dag.add_edge(new[0], new[1], check_cycle=True)
        with pytest.raises(CycleError):
            dag.add_edge(new[1], 0, check_cycle=True)
        order = dag.topological_order()
        position = {node: i for i, node in enumerate(order)}
        assert all(position[e.source] < position[e.target] for e in dag.edges())

    def test_sources_and_sinks(self):
        dag = build_fork_join_dag(3)
        assert dag.sources() == [0]
        assert dag.sinks() == [4]


class TestStructuralAlgorithms:
    def test_topological_order_respects_edges(self):
        dag = build_diamond_dag()
        order = dag.topological_order()
        position = {v: i for i, v in enumerate(order)}
        for edge in dag.edges():
            assert position[edge.source] < position[edge.target]

    def test_levels(self):
        dag = build_diamond_dag()
        levels = dag.levels()
        assert list(levels) == [0, 1, 1, 2]
        assert dag.depth() == 3

    def test_bottom_levels_unit_weights(self):
        dag = build_chain_dag(4)
        assert list(dag.bottom_levels()) == [4, 3, 2, 1]
        assert dag.critical_path_length() == 4.0

    def test_bottom_levels_weighted(self):
        dag = ComputationalDAG(3, [1, 10, 2])
        dag.add_edges([(0, 1), (0, 2)])
        assert list(dag.bottom_levels()) == [11, 10, 2]

    def test_has_path(self):
        dag = build_diamond_dag()
        assert dag.has_path(0, 3)
        assert dag.has_path(1, 3)
        assert not dag.has_path(1, 2)
        assert dag.has_path(2, 2)

    def test_descendants_and_ancestors(self):
        dag = build_diamond_dag()
        assert dag.descendants(0) == {1, 2, 3}
        assert dag.ancestors(3) == {0, 1, 2}
        assert dag.descendants(3) == set()
        assert dag.ancestors(0) == set()

    def test_weakly_connected_components(self):
        dag = ComputationalDAG(5)
        dag.add_edge(0, 1)
        dag.add_edge(2, 3)
        components = dag.weakly_connected_components()
        assert sorted(map(tuple, components)) == [(0, 1), (2, 3), (4,)]

    def test_largest_connected_component(self):
        dag = ComputationalDAG(6, [1, 2, 3, 4, 5, 6])
        dag.add_edges([(0, 1), (1, 2), (3, 4)])
        sub = dag.largest_connected_component()
        assert sub.num_nodes == 3
        assert sub.num_edges == 2
        # weights carried over
        assert sub.total_work == 1 + 2 + 3

    def test_induced_subgraph_relabels(self):
        dag = build_diamond_dag()
        sub = dag.induced_subgraph([0, 1, 3])
        assert sub.num_nodes == 3
        assert {(e.source, e.target) for e in sub.edges()} == {(0, 1), (1, 2)}

    def test_cache_invalidation_after_mutation(self):
        dag = build_chain_dag(3)
        assert dag.depth() == 3
        v = dag.add_node()
        dag.add_edge(2, v)
        assert dag.depth() == 4


class TestConversions:
    def test_networkx_roundtrip(self):
        dag = build_diamond_dag()
        dag.set_work(1, 7)
        graph = dag.to_networkx()
        back = ComputationalDAG.from_networkx(graph)
        assert back.num_nodes == dag.num_nodes
        assert back.num_edges == dag.num_edges
        assert back.work(1) == 7.0
        assert {(e.source, e.target) for e in back.edges()} == {
            (e.source, e.target) for e in dag.edges()
        }

    def test_from_networkx_rejects_cycles(self):
        import networkx as nx

        graph = nx.DiGraph([(0, 1), (1, 0)])
        with pytest.raises(CycleError):
            ComputationalDAG.from_networkx(graph)

    def test_copy_is_independent(self):
        dag = build_diamond_dag()
        clone = dag.copy()
        clone.add_edge(1, 2)
        assert dag.num_edges == 4
        assert clone.num_edges == 5
        assert np.array_equal(dag.work_weights, clone.work_weights)
