"""Unit and integration tests for the framework pipelines (Figures 3 and 4)."""

from __future__ import annotations

import pytest

from repro.core import BspMachine
from repro.schedulers import (
    CilkScheduler,
    HDaggScheduler,
    MultilevelPipeline,
    PipelineConfig,
    SchedulingPipeline,
    TimeBudget,
    best_schedule,
)

from conftest import assert_valid_schedule, random_dag
from repro.dagdb import SparseMatrixPattern, build_cg_dag, build_spmv_dag


FAST = PipelineConfig.fast()


@pytest.fixture(scope="module")
def spmv_instance():
    pattern = SparseMatrixPattern.random(7, 0.35, seed=5, ensure_diagonal=True)
    return build_spmv_dag(pattern).dag


class TestPipelineConfig:
    def test_fast_config_is_smaller_than_default(self):
        default = PipelineConfig()
        fast = PipelineConfig.fast()
        assert fast.local_search_seconds < default.local_search_seconds
        assert fast.ilp_full_seconds < default.ilp_full_seconds
        assert fast.use_ilp and fast.use_comm_ilp

    def test_heuristics_only_factory(self):
        pipeline = SchedulingPipeline.heuristics_only()
        assert not pipeline.config.use_ilp
        assert not pipeline.config.use_comm_ilp

    def test_ilp_init_only_for_small_proc_counts(self):
        pipeline = SchedulingPipeline(PipelineConfig(ilp_init_max_procs=4))
        small = pipeline._initializers(BspMachine.uniform(4))
        large = pipeline._initializers(BspMachine.uniform(8))
        assert any(init.name == "ilp_init" for init in small)
        assert not any(init.name == "ilp_init" for init in large)

    def test_refinement_budget_threads_into_local_search(self):
        """The per-grid-point refinement caps reach the HC/HCcs improvers."""
        config = PipelineConfig(hc_max_passes=7, hc_max_steps=11, hccs_max_passes=3)
        hill_climb, comm_climb = SchedulingPipeline(config)._local_search()
        assert hill_climb.max_passes == 7
        assert hill_climb.max_steps == 11
        assert comm_climb.max_passes == 3

    def test_runner_refinement_budget_overrides_config(self):
        from repro.analysis.experiments import ExperimentRunner

        runner = ExperimentRunner(hc_max_steps=5, hc_max_passes=2, hccs_max_passes=4)
        assert runner.config.hc_max_steps == 5
        assert runner.config.hc_max_passes == 2
        assert runner.config.hccs_max_passes == 4
        untouched = ExperimentRunner()
        assert untouched.config.hc_max_steps is None


class TestBasePipeline:
    @pytest.mark.slow
    def test_stage_costs_monotonically_improve(self, spmv_instance):
        machine = BspMachine.uniform(4, g=3, latency=5)
        result = SchedulingPipeline(FAST).schedule_with_stages(spmv_instance, machine)
        stages = result.stages
        assert stages.best_init >= stages.after_local_search - 1e-9
        assert stages.after_local_search >= stages.after_ilp_assignment - 1e-9
        assert stages.after_ilp_assignment >= stages.after_comm_ilp - 1e-9
        assert result.schedule.cost() == pytest.approx(stages.final)
        assert_valid_schedule(result.schedule)

    @pytest.mark.slow
    def test_records_every_initializer(self, spmv_instance):
        machine = BspMachine.uniform(4, g=1, latency=5)
        result = SchedulingPipeline(FAST).schedule_with_stages(spmv_instance, machine)
        assert "bsp_greedy" in result.stages.initial
        assert "source" in result.stages.initial
        assert "ilp_init" in result.stages.initial  # P = 4 -> ILPinit runs
        assert result.stages.best_init == pytest.approx(min(result.stages.initial.values()))

    @pytest.mark.slow
    def test_beats_cilk_and_hdagg_on_comm_heavy_instance(self, spmv_instance):
        """The paper's core claim (§7.1): the framework beats both baselines."""
        machine = BspMachine.uniform(4, g=5, latency=5)
        ours = SchedulingPipeline(FAST).schedule(spmv_instance, machine)
        cilk = CilkScheduler(seed=0).schedule(spmv_instance, machine)
        hdagg = HDaggScheduler().schedule(spmv_instance, machine)
        assert ours.cost() <= cilk.cost()
        assert ours.cost() <= hdagg.cost()

    def test_heuristics_only_pipeline_valid(self, spmv_instance):
        machine = BspMachine.uniform(8, g=3, latency=5)
        schedule = SchedulingPipeline.heuristics_only(0.5).schedule(spmv_instance, machine)
        assert_valid_schedule(schedule)

    def test_single_processor_machine(self, spmv_instance):
        machine = BspMachine.uniform(1, g=3, latency=5)
        schedule = SchedulingPipeline(FAST).schedule(spmv_instance, machine)
        assert schedule.cost() == pytest.approx(spmv_instance.total_work + machine.latency)

    def test_respects_overall_time_budget(self, spmv_instance):
        machine = BspMachine.uniform(4, g=1, latency=5)
        budget = TimeBudget(0.0)  # everything already expired
        schedule = SchedulingPipeline(FAST).schedule(spmv_instance, machine, budget)
        assert_valid_schedule(schedule)


class TestMultilevelPipeline:
    @pytest.mark.slow
    def test_valid_and_reasonable_under_numa(self):
        dag = build_cg_dag(
            SparseMatrixPattern.random(5, 0.35, seed=2, ensure_diagonal=True), 2
        ).dag
        machine = BspMachine.numa_hierarchy(8, delta=4, g=1, latency=5)
        ml = MultilevelPipeline(FAST).schedule(dag, machine)
        assert_valid_schedule(ml)
        # it must at least beat Cilk in this communication-dominated setting
        cilk = CilkScheduler(seed=0).schedule(dag, machine)
        assert ml.cost() <= cilk.cost()

    @pytest.mark.slow
    def test_custom_coarsening_ratio(self):
        dag = random_dag(40, 0.1, seed=3)
        machine = BspMachine.numa_hierarchy(8, delta=3, g=1, latency=5)
        ml = MultilevelPipeline(FAST, coarsening_ratios=(0.3,)).schedule(dag, machine)
        assert_valid_schedule(ml)


class TestBestSchedule:
    def test_best_schedule_selects_minimum(self, spmv_instance):
        machine = BspMachine.uniform(2, g=1, latency=1)
        a = CilkScheduler(seed=0).schedule(spmv_instance, machine)
        b = HDaggScheduler().schedule(spmv_instance, machine)
        assert best_schedule(a, b).cost() == min(a.cost(), b.cost())
        assert best_schedule(a, None) is a

    def test_best_schedule_requires_input(self):
        with pytest.raises(ValueError):
            best_schedule(None)
