"""Tests for the per-PR benchmark trajectory report (``benchmarks/bench_report.py``)."""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "benchmarks"))

from bench_report import (  # noqa: E402
    collect_backends,
    collect_store_hit_rates,
    collect_trajectory,
    main,
    render_markdown,
)

REPO_ROOT = Path(__file__).parent.parent


def _write_record(root: Path, pr: int, benchmarks: dict) -> None:
    payload = {"schema_version": 1, "pr": pr, "benchmarks": benchmarks}
    (root / f"BENCH_{pr}.json").write_text(json.dumps(payload), encoding="utf-8")


class TestCollectTrajectory:
    def test_collects_speedups_per_pr(self, tmp_path):
        _write_record(
            tmp_path,
            1,
            {"kernels": {"levels": {"seed_s": 1.0, "csr_s": 0.1, "speedup": 10.0}}},
        )
        _write_record(
            tmp_path,
            2,
            {"kernels": {"levels": {"seed_s": 1.0, "csr_s": 0.05, "speedup": 20.0}}},
        )
        trajectory = collect_trajectory(tmp_path)
        assert sorted(trajectory) == [1, 2]
        assert trajectory[1] == {"kernels/levels": 10.0}
        assert trajectory[2] == {"kernels/levels": 20.0}

    def test_list_entries_labelled_by_identity_fields(self, tmp_path):
        cases = [
            {"num_nodes": 100, "speedup": 2.0},
            {"num_nodes": 1000, "speedup": 4.0},
        ]
        _write_record(tmp_path, 3, {"hc": {"cases": cases}})
        trajectory = collect_trajectory(tmp_path)
        assert trajectory[3] == {
            "hc/cases[num_nodes=100]": 2.0,
            "hc/cases[num_nodes=1000]": 4.0,
        }

    def test_duplicate_labels_get_index_suffix(self, tmp_path):
        """Two cases sharing the identity field must not hide a row."""
        cases = [
            {"num_nodes": 100, "max_steps": 10, "speedup": 2.0},
            {"num_nodes": 100, "max_steps": 50, "speedup": 4.0},
            {"num_nodes": 1000, "speedup": 8.0},
        ]
        _write_record(tmp_path, 5, {"hc": {"cases": cases}})
        trajectory = collect_trajectory(tmp_path)
        assert trajectory[5] == {
            "hc/cases[num_nodes=100#0]": 2.0,
            "hc/cases[num_nodes=100#1]": 4.0,
            "hc/cases[num_nodes=1000]": 8.0,  # unique labels stay unchanged
        }

    def test_ignores_malformed_and_foreign_files(self, tmp_path):
        (tmp_path / "BENCH_9.json").write_text("not json", encoding="utf-8")
        (tmp_path / "BENCH_x.json").write_text("{}", encoding="utf-8")
        (tmp_path / "BENCH_8.json").write_text(
            json.dumps({"schema_version": 99}), encoding="utf-8"
        )
        assert collect_trajectory(tmp_path) == {}


class TestRenderMarkdown:
    def test_rows_align_across_prs(self, tmp_path):
        _write_record(tmp_path, 1, {"a": {"speedup": 3.0}})
        _write_record(tmp_path, 2, {"a": {"speedup": 6.0}, "b": {"speedup": 1.5}})
        table = render_markdown(collect_trajectory(tmp_path))
        lines = table.splitlines()
        assert "| kernel | PR 1 | PR 2 |" in lines
        assert "| a | 3.0x | 6.0x |" in lines
        assert "| b | — | 1.5x |" in lines  # missing cell rendered as a dash

    def test_empty_root(self, tmp_path):
        assert "No BENCH_*.json" in render_markdown(collect_trajectory(tmp_path))

    def test_backend_row(self, tmp_path):
        _write_record(tmp_path, 1, {"a": {"speedup": 3.0}})
        _write_record(
            tmp_path, 2, {"a": {"kernel_backend": "numba", "speedup": 6.0}}
        )
        backends = collect_backends(tmp_path)
        assert backends == {2: "numba"}  # PR 1 predates the dispatch layer
        table = render_markdown(collect_trajectory(tmp_path), backends)
        assert "| *(kernel backend)* | — | numba |" in table.splitlines()

    def test_store_hit_rate_row(self, tmp_path):
        _write_record(tmp_path, 1, {"a": {"speedup": 3.0}})
        _write_record(
            tmp_path,
            2,
            {
                "a": {"speedup": 6.0},
                "store_resume": {"speedup": 40.0, "hit_rate": 1.0},
            },
        )
        rates = collect_store_hit_rates(tmp_path)
        assert rates == {2: 1.0}  # PR 1 predates the persistent store
        table = render_markdown(
            collect_trajectory(tmp_path), store_hit_rates=rates
        )
        assert "| *(warm-store hit rate)* | — | 100% |" in table.splitlines()
        # the resume speedup itself is an ordinary trajectory row
        assert "| store_resume | — | 40.0x |" in table.splitlines()


class TestImportableParser:
    """The walkers live in repro.analysis.benchdata; the script re-exports."""

    def test_script_uses_the_library_functions(self):
        from repro.analysis import benchdata

        assert collect_trajectory is benchdata.collect_trajectory
        assert collect_backends is benchdata.collect_backends
        assert collect_store_hit_rates is benchdata.collect_store_hit_rates

    def test_collect_metric_shares_the_label_scheme(self, tmp_path):
        """Rows for different fields from one case carry the same label."""
        from repro.analysis.benchdata import collect_metric

        _write_record(
            tmp_path,
            1,
            {"hc": {"cases": [{"num_nodes": 50, "speedup": 2.0, "final_cost": 9.0}]}},
        )
        label = "hc/cases[num_nodes=50]"
        assert collect_metric(tmp_path, "speedup")[1] == {label: 2.0}
        assert collect_metric(tmp_path, "final_cost")[1] == {label: 9.0}


class TestGapTolerantNumbering:
    """PR numbers with gaps (there is no BENCH_5.json) are a feature."""

    def test_missing_pr_number_yields_no_column(self, tmp_path):
        _write_record(tmp_path, 4, {"a": {"speedup": 2.0}})
        _write_record(tmp_path, 6, {"a": {"speedup": 4.0}})
        trajectory = collect_trajectory(tmp_path)
        assert sorted(trajectory) == [4, 6]  # 5 absent, not empty
        table = render_markdown(trajectory)
        assert "PR 4" in table and "PR 6" in table and "PR 5" not in table

    def test_adjacent_recorded_prs_pair_across_the_gap(self, tmp_path):
        """Drift detection compares recorded neighbours, not n-1 vs n."""
        from repro.analysis.aggregate import regression_flags

        _write_record(tmp_path, 4, {"a": {"speedup": 10.0}})
        _write_record(tmp_path, 6, {"a": {"speedup": 1.0}})
        flags = regression_flags(tmp_path, speedup_tolerance=0.5)
        assert [(f.previous_pr, f.current_pr) for f in flags] == [(4, 6)]

    def test_repo_has_the_gap(self):
        """The committed history itself skips PR 5 — keep relying on it."""
        from repro.analysis.benchdata import bench_records

        records = bench_records(REPO_ROOT)
        assert 4 in records and 6 in records and 5 not in records


class TestRepoRecords:
    def test_repo_trajectory_covers_committed_records(self):
        """Acceptance: the committed records BENCH_3/4/6/7 all report."""
        trajectory = collect_trajectory(REPO_ROOT)
        assert {3, 4, 6, 7} <= set(trajectory)
        assert trajectory[3], "BENCH_3.json contributed no speedups"
        assert trajectory[4], "BENCH_4.json contributed no speedups"
        # the tentpole record: HC refinement at 100k nodes in BENCH_4
        assert any("hc_refinement" in k and "100000" in k for k in trajectory[4])
        # PR 6: the dispatched refinement plus the thread-executor batch
        assert any("hc_refinement" in k and "100000" in k for k in trajectory[6])
        assert any("solve_many" in k for k in trajectory[6])
        assert collect_backends(REPO_ROOT).get(6) in ("numpy", "numba")
        # PR 7: the persistent-store resume record (100% warm hit rate)
        assert any("store_resume" in k for k in trajectory[7])
        assert collect_store_hit_rates(REPO_ROOT).get(7) == 1.0
        table = render_markdown(
            trajectory, collect_backends(REPO_ROOT), collect_store_hit_rates(REPO_ROOT)
        )
        assert "PR 3" in table and "PR 4" in table and "PR 6" in table
        assert "*(kernel backend)*" in table
        assert "*(warm-store hit rate)*" in table

    def test_main_prints_table(self, capsys):
        assert main([str(REPO_ROOT)]) == 0
        out = capsys.readouterr().out
        assert "Kernel speedup trajectory" in out
