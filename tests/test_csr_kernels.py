"""Differential tests: CSR kernels vs. the pure-Python reference implementations.

Random DAGs across a density sweep (plus the degenerate shapes: empty,
single node, disconnected components, chains and fan-out/fan-in) are run
through both the vectorized CSR kernels backing :class:`ComputationalDAG`
and the seed list-of-lists implementations in :mod:`repro.core.reference`;
every derived quantity must agree exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ComputationalDAG, CycleError
from repro.core import reference as ref
from repro.core.csr import build_csr, gather_rows, topological_levels

from conftest import (
    build_chain_dag,
    build_diamond_dag,
    build_fork_join_dag,
    random_dag,
)


def _edge_list(dag: ComputationalDAG) -> list[tuple[int, int]]:
    return [(e.source, e.target) for e in dag.edges()]


def _adjacency(dag: ComputationalDAG):
    return ref.adjacency_from_edges(dag.num_nodes, _edge_list(dag))


def _disconnected_dag() -> ComputationalDAG:
    dag = ComputationalDAG(9, name="disconnected")
    dag.add_edges([(0, 1), (1, 2), (4, 5), (4, 6)])  # nodes 3, 7, 8 isolated
    return dag


CASES = [
    lambda: ComputationalDAG(0, name="empty"),
    lambda: ComputationalDAG(1, name="single"),
    _disconnected_dag,
    lambda: build_chain_dag(17),
    build_diamond_dag,
    lambda: build_fork_join_dag(8),
]
DENSITIES = [0.0, 0.03, 0.15, 0.4, 0.9]
SIZES = [2, 7, 23, 60]
for _size in SIZES:
    for _density in DENSITIES:
        CASES.append(
            lambda n=_size, p=_density: random_dag(n, p, seed=int(n * 1000 + p * 100))
        )


@pytest.fixture(params=range(len(CASES)), ids=lambda i: f"case{i}")
def case_dag(request) -> ComputationalDAG:
    return CASES[request.param]()


class TestKernelEquivalence:
    def test_topological_order_matches_reference(self, case_dag):
        succ, pred = _adjacency(case_dag)
        assert case_dag.topological_order() == ref.topological_order_ref(succ, pred)

    def test_levels_match_reference(self, case_dag):
        succ, pred = _adjacency(case_dag)
        assert case_dag.levels().tolist() == ref.levels_ref(succ, pred)

    def test_bottom_levels_match_reference(self, case_dag):
        succ, pred = _adjacency(case_dag)
        expected = ref.bottom_levels_ref(succ, pred, case_dag.work_weights)
        assert case_dag.bottom_levels().tolist() == expected

    def test_reachability_matches_reference(self, case_dag):
        succ, pred = _adjacency(case_dag)
        for v in case_dag.nodes():
            assert case_dag.descendants(v) == ref.descendants_ref(succ, v)
            assert case_dag.ancestors(v) == ref.ancestors_ref(pred, v)

    def test_induced_subgraph_matches_reference(self, case_dag):
        succ, _ = _adjacency(case_dag)
        rng = np.random.default_rng(7)
        n = case_dag.num_nodes
        if n == 0:
            sub = case_dag.induced_subgraph([])
            assert sub.num_nodes == 0 and sub.num_edges == 0
            return
        nodes = [int(v) for v in rng.permutation(n)[: max(1, n // 2)]]
        sub = case_dag.induced_subgraph(nodes)
        assert _edge_list(sub) == ref.induced_edges_ref(succ, nodes)
        assert sub.work_weights.tolist() == [case_dag.work(v) for v in nodes]
        assert sub.comm_weights.tolist() == [case_dag.comm(v) for v in nodes]

    def test_neighbourhoods_match_reference(self, case_dag):
        succ, pred = _adjacency(case_dag)
        for v in case_dag.nodes():
            assert case_dag.successors(v) == succ[v]
            assert case_dag.predecessors(v) == pred[v]
            assert case_dag.succ(v).tolist() == succ[v]
            assert case_dag.pred(v).tolist() == pred[v]
            assert case_dag.out_degree(v) == len(succ[v])
            assert case_dag.in_degree(v) == len(pred[v])


class TestCsrPrimitives:
    def test_build_csr_preserves_insertion_order(self):
        sources = np.array([2, 0, 2, 1, 2], dtype=np.int64)
        targets = np.array([3, 1, 0, 3, 4], dtype=np.int64)
        indptr, indices = build_csr(5, sources, targets)
        assert indptr.tolist() == [0, 1, 2, 5, 5, 5]
        assert indices.tolist() == [1, 3, 3, 0, 4]  # row 2 keeps 3, 0, 4 order

    def test_gather_rows_ragged(self):
        indptr = np.array([0, 2, 2, 5], dtype=np.int64)
        indices = np.array([10, 11, 12, 13, 14], dtype=np.int64)
        values, offsets = gather_rows(indptr, indices, np.array([2, 0, 1]))
        assert values.tolist() == [12, 13, 14, 10, 11]
        assert offsets.tolist() == [0, 3, 5, 5]

    def test_gather_rows_empty_frontier(self):
        indptr = np.array([0, 1], dtype=np.int64)
        indices = np.array([0], dtype=np.int64)
        values, offsets = gather_rows(indptr, indices, np.empty(0, dtype=np.int64))
        assert values.size == 0
        assert offsets.tolist() == [0]

    def test_topological_levels_detects_cycles(self):
        dag = ComputationalDAG(3)
        dag.add_edges([(0, 1), (1, 2)])
        dag.add_edge(2, 0)
        with pytest.raises(CycleError):
            topological_levels(3, dag.succ_indptr, dag.succ_indices, dag.pred_indptr)

    def test_csr_views_are_read_only(self):
        dag = build_diamond_dag()
        with pytest.raises(ValueError):
            dag.succ_indices[0] = 99
        with pytest.raises(ValueError):
            dag.succ(0)[0] = 99

    def test_lazy_rebuild_after_mutation(self):
        dag = build_diamond_dag()
        assert dag.succ(0).tolist() == [1, 2]
        v = dag.add_node()
        dag.add_edge(3, v)
        assert dag.succ(3).tolist() == [v]
        assert dag.levels().tolist() == [0, 1, 1, 2, 3]
        assert dag.depth() == 4


class TestGroupedHelpers:
    """The PR-4 grouped helpers backing the batched hill-climbing evaluation."""

    def test_group_min_table_matches_bruteforce(self):
        from repro.core.csr import NO_ENTRY, group_min_table

        rng = np.random.default_rng(3)
        rows = rng.integers(0, 4, size=30).astype(np.int64)
        cols = rng.integers(0, 5, size=30).astype(np.int64)
        values = rng.integers(0, 100, size=30).astype(np.int64)
        table = group_min_table(rows, cols, values, 4, 5)
        for r in range(4):
            for c in range(5):
                members = values[(rows == r) & (cols == c)]
                expected = members.min() if members.size else NO_ENTRY
                assert table[r, c] == expected

    def test_group_min_table_empty(self):
        from repro.core.csr import NO_ENTRY, group_min_table

        empty = np.empty(0, dtype=np.int64)
        table = group_min_table(empty, empty, empty, 3, 2)
        assert (table == NO_ENTRY).all()

    def test_row_max_excluding(self):
        from repro.core.csr import row_max_excluding

        values = np.array([3.0, 9.0, 5.0, 9.0])
        out = row_max_excluding(values)
        expected = [
            max(np.delete(values, i)) for i in range(values.size)
        ]
        assert out.tolist() == expected

    def test_row_max_excluding_single(self):
        from repro.core.csr import row_max_excluding

        assert row_max_excluding(np.array([4.0])).tolist() == [-np.inf]
