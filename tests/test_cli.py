"""Tests for the command-line interface (python -m repro ...)."""

from __future__ import annotations

import json

import pytest

from repro.api import ScheduleResult
from repro.cli import build_parser, main
from repro.core import load_schedule
from repro.io import read_hyperdag, write_hyperdag

from conftest import random_dag


@pytest.fixture
def hyperdag_file(tmp_path):
    dag = random_dag(20, 0.2, seed=3)
    path = tmp_path / "instance.hdag"
    write_hyperdag(dag, path)
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_arguments(self):
        args = build_parser().parse_args(
            ["generate", "--generator", "cg", "--size", "6", "--output", "x.hdag"]
        )
        assert args.command == "generate"
        assert args.generator == "cg"
        assert args.size == 6

    def test_schedule_defaults(self):
        args = build_parser().parse_args(["schedule", "input.hdag"])
        assert args.scheduler == "framework"
        assert args.procs == 4
        assert args.numa_delta is None

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["schedule", "x.hdag", "--scheduler", "nope"])


class TestGenerate:
    @pytest.mark.parametrize("generator", ["spmv", "cg", "pagerank"])
    def test_generates_hyperdag_files(self, tmp_path, generator, capsys):
        output = tmp_path / f"{generator}.hdag"
        code = main(
            [
                "generate",
                "--generator", generator,
                "--size", "5",
                "--density", "0.4",
                "--iterations", "2",
                "--output", str(output),
            ]
        )
        assert code == 0
        dag = read_hyperdag(output)
        assert dag.num_nodes > 0
        assert "wrote" in capsys.readouterr().out


class TestSchedule:
    def test_schedule_with_fast_heuristic(self, hyperdag_file, capsys):
        code = main(
            [
                "schedule", str(hyperdag_file),
                "--scheduler", "bsp_greedy",
                "--procs", "4", "--g", "2", "--latency", "3",
                "--render",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cost" in out
        assert "superstep 0" in out

    def test_schedule_with_numa_and_json_output(self, hyperdag_file, tmp_path, capsys):
        output = tmp_path / "schedule.json"
        code = main(
            [
                "schedule", str(hyperdag_file),
                "--scheduler", "hdagg",
                "--procs", "8", "--numa-delta", "3",
                "--output", str(output),
            ]
        )
        assert code == 0
        # the emitted payload is the ScheduleResult wire format ...
        payload = json.loads(output.read_text())
        assert payload["scheduler"] == "hdagg"
        assert payload["schedule"]["machine"]["num_procs"] == 8
        result = ScheduleResult.from_dict(payload)
        assert result.to_dict() == payload  # lossless round-trip
        assert result.to_schedule().is_valid()
        # ... and load_schedule understands it too (back-compat loader)
        loaded = load_schedule(output)
        assert loaded.is_valid()
        assert loaded.machine.num_procs == 8


class TestKernelsCommand:
    def test_lists_every_registered_kernel(self, capsys):
        from repro.core import kernels

        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        assert "active backend:" in out
        for name, summary in kernels.KERNELS.items():
            assert name in out
            assert summary in out


class TestInitWorkersFlag:
    def test_flag_sets_environment_knob(self, hyperdag_file, capsys, monkeypatch):
        from repro.schedulers import ENV_INIT_WORKERS

        # setenv (not delenv) so teardown rolls back the value main() writes
        monkeypatch.setenv(ENV_INIT_WORKERS, "1")
        import os

        code = main(
            [
                "schedule", str(hyperdag_file),
                "--scheduler", "framework_heuristics",
                "--procs", "2",
                "--init-workers", "3",
            ]
        )
        assert code == 0
        assert os.environ[ENV_INIT_WORKERS] == "3"
        assert "cost" in capsys.readouterr().out


class TestCompare:
    def test_compare_prints_cost_table(self, hyperdag_file, capsys):
        code = main(
            [
                "compare", str(hyperdag_file),
                "--procs", "4", "--g", "3",
                "--schedulers", "cilk", "hdagg", "source",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        for name in ("cilk", "hdagg", "source"):
            assert name in out


class TestPersistentStore:
    def test_schedule_store_answers_second_run_from_disk(
        self, hyperdag_file, tmp_path, capsys
    ):
        store = tmp_path / "store"
        argv = [
            "schedule", str(hyperdag_file),
            "--scheduler", "hdagg",
            "--store", str(store),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "[from store]" not in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "[from store]" in second
        # identical cost line, just flagged as replayed
        assert second.startswith(first.rstrip("\n"))

    def test_compare_fills_store(self, hyperdag_file, tmp_path, capsys):
        store = tmp_path / "store"
        code = main(
            [
                "compare", str(hyperdag_file),
                "--schedulers", "cilk", "hdagg",
                "--store", str(store),
            ]
        )
        assert code == 0
        capsys.readouterr()
        assert main(["queue", "--root", str(store), "status"]) == 0
        out = capsys.readouterr().out
        assert "2 result(s)" in out


class TestQueueWorkflow:
    def test_submit_serve_and_status(self, hyperdag_file, tmp_path, capsys):
        from repro.api import MachineSpec, ScheduleRequest, SchedulerSpec

        root = tmp_path / "root"
        request = ScheduleRequest(
            dag=str(hyperdag_file),
            machine=MachineSpec(4, 1.0, 5.0),
            scheduler=SchedulerSpec("cilk"),
            seed=0,
        )
        request_file = tmp_path / "request.json"
        request_file.write_text(request.to_json(indent=2))

        assert main(["queue", "--root", str(root), "submit", str(request_file)]) == 0
        assert "enqueued" in capsys.readouterr().out
        # double submission is reported and rejected
        assert main(["queue", "--root", str(root), "submit", str(request_file)]) == 1
        capsys.readouterr()

        assert main(["queue", "--root", str(root), "status"]) == 0
        assert "pending: 1" in capsys.readouterr().out

        assert main(["serve-worker", "--root", str(root), "--workers", "1"]) == 0
        assert "1 completed" in capsys.readouterr().out

        assert main(["queue", "--root", str(root), "status"]) == 0
        out = capsys.readouterr().out
        assert "pending: 0" in out
        assert "1 result(s)" in out

        # the drained result now answers a plain schedule run from disk
        assert (
            main(
                [
                    "schedule", str(hyperdag_file),
                    "--scheduler", "cilk",
                    "--store", str(root),
                ]
            )
            == 0
        )
        assert "[from store]" in capsys.readouterr().out

    def test_failures_and_retry(self, tmp_path, capsys):
        from repro.store import WorkQueue

        root = tmp_path / "root"
        queue = WorkQueue(root)
        queue.submit("f1", {"broken": True})
        # a failed entry is reported via the exit code
        assert main(["serve-worker", "--root", str(root), "--once"]) == 1
        capsys.readouterr()
        assert main(["queue", "--root", str(root), "failures"]) == 0
        out = capsys.readouterr().out
        assert "f1" in out and "1 terminal failure(s)" in out
        assert main(["queue", "--root", str(root), "retry"]) == 0
        assert "requeued 1" in capsys.readouterr().out
