"""Tests for the table/figure formatters, using synthetic records (no scheduling runs)."""

from __future__ import annotations

import pytest

from repro.analysis import (
    InstanceRecord,
    MachineSpec,
    figure5_series,
    figure6_series,
    figure7_series,
    format_grid,
    table1_no_numa_improvements,
    table2_numa_improvements,
    table3_multilevel_improvements,
    table4_5_initializer_wins,
    table6_detailed_no_numa,
    table7_algorithm_ratios,
    table8_vs_etf,
    table9_latency,
    table10_numa_detailed,
    table11_12_huge,
    table13_multilevel_vs_baselines,
    table14_multilevel_vs_base,
)
from repro.analysis.experiments import InitializerWin


def _record(dataset, p, g, delta=None, latency=5.0, **costs) -> InstanceRecord:
    base = {
        "cilk": 100.0,
        "hdagg": 80.0,
        "init": 70.0,
        "hccs": 65.0,
        "ilp": 60.0,
        "final": 60.0,
    }
    base.update(costs)
    return InstanceRecord(
        instance=f"{dataset}_x",
        dataset=dataset,
        generator="spmv",
        num_nodes=50,
        spec=MachineSpec(p, g, latency, delta),
        costs=base,
    )


@pytest.fixture
def no_numa_records():
    return [
        _record("tiny", 4, 1, etf=90.0, bl_est=110.0),
        _record("tiny", 4, 5, etf=95.0, bl_est=120.0, final=50.0),
        _record("small", 8, 1, etf=90.0, bl_est=115.0),
        _record("small", 8, 5, etf=85.0, bl_est=125.0, final=40.0),
    ]


@pytest.fixture
def numa_records():
    return [
        _record("small", 8, 1, delta=2, multilevel=70.0, ml_c15=75.0, ml_c30=72.0, ml_copt=70.0),
        _record("small", 8, 1, delta=4, multilevel=40.0, ml_c15=45.0, ml_c30=42.0, ml_copt=40.0),
        _record("medium", 16, 1, delta=2, multilevel=65.0, ml_c15=68.0, ml_c30=66.0, ml_copt=65.0),
        _record("medium", 16, 1, delta=4, multilevel=25.0, ml_c15=30.0, ml_c30=28.0, ml_copt=25.0),
    ]


class TestNoNumaTables:
    def test_table1_structure(self, no_numa_records):
        rows, text = table1_no_numa_improvements(no_numa_records)
        assert "by_g_and_P" in rows and "by_g_and_dataset" in rows
        assert "P=4" in rows["by_g_and_P"]
        assert "g=1" in rows["by_g_and_P"]["P=4"]
        assert "Table 1" in text
        # 40% improvement vs cilk for the (P=4, g=1) cell
        assert "40%" in rows["by_g_and_P"]["P=4"]["g=1"]

    def test_table6_has_all_cells(self, no_numa_records):
        rows, text = table6_detailed_no_numa(no_numa_records)
        assert rows["tiny"]["g=1,P=4"]
        assert rows["small"]["g=5,P=8"]
        assert "Table 6" in text

    def test_figure5_normalised_to_cilk(self, no_numa_records):
        series, text = figure5_series(no_numa_records)
        assert series["g=1"]["Cilk"] == pytest.approx(1.0)
        assert series["g=1"]["HDagg"] == pytest.approx(0.8)
        assert series["g=5"]["ILP"] < series["g=5"]["HCcs"]
        assert "Figure 5" in text

    def test_table7_includes_list_baselines(self, no_numa_records):
        series, text = table7_algorithm_ratios(no_numa_records, g=5)
        assert series["tiny"]["BL-EST"] == pytest.approx(1.2)
        assert series["tiny"]["ETF"] == pytest.approx(0.95)
        assert "Table 7" in text

    def test_table8_vs_etf(self, no_numa_records):
        values, text = table8_vs_etf(no_numa_records, dataset="tiny")
        assert values[(4, 5)] == pytest.approx(1 - 50.0 / 95.0)
        assert "Table 8" in text

    def test_table9_latency(self):
        records = [
            _record("medium", 8, 1, latency=2.0, final=70.0),
            _record("medium", 8, 1, latency=20.0, final=40.0),
        ]
        values, text = table9_latency(records)
        assert values[2.0][0] == pytest.approx(0.30)
        assert values[20.0][0] == pytest.approx(0.60)
        assert "Table 9" in text


class TestNumaTables:
    def test_table2(self, numa_records):
        rows, text = table2_numa_improvements(numa_records)
        assert "P=8" in rows and "D=4" in rows["P=8"]
        assert "Table 2" in text

    def test_table3_multilevel(self, numa_records):
        rows, text = table3_multilevel_improvements(numa_records)
        # ML improvement vs cilk at P=16, D=4 is 75%
        assert "75%" in rows["P=16"]["D=4"]
        assert "Table 3" in text

    def test_table10_detailed(self, numa_records):
        rows, text = table10_numa_detailed(numa_records)
        assert rows["small"]["P=8,D=2"]
        assert "Table 10" in text

    def test_figure6_includes_ml_column(self, numa_records):
        series, text = figure6_series(numa_records)
        assert series["P=8,D=4"]["ML"] == pytest.approx(0.4)
        assert "ILP" in series["P=8,D=2"]
        assert "Figure 6" in text

    def test_table13_and_14(self, numa_records):
        values13, text13 = table13_multilevel_vs_baselines(numa_records)
        assert values13["ml_copt"]["P=16,D=4"][0] == pytest.approx(0.75)
        assert "Table 13" in text13
        values14, text14 = table14_multilevel_vs_base(numa_records)
        # multilevel/base ratio at P=16, D=4: ml_copt 25 over the base final cost 60
        assert values14["ml_copt"]["P=16,D=4"] == pytest.approx(25.0 / 60.0)
        assert values14["ml_c15"]["P=8,D=2"] == pytest.approx(75.0 / 60.0)
        assert "Table 14" in text14


class TestHugeAndInitializerTables:
    def test_table11_12(self):
        records = [
            _record("huge", 4, 1, final=80.0),
            _record("huge", 4, 3, final=70.0),
            _record("huge", 8, 1, delta=2, final=65.0),
        ]
        rows, text = table11_12_huge(records)
        assert "g=1" in rows["P=4"]
        assert "D=2" in rows["P=8"]
        assert "11/12" in text

    def test_figure7(self):
        records = [_record("huge", 4, 1), _record("huge", 16, 1, final=55.0)]
        series, text = figure7_series(records)
        assert series["P=4"]["Cilk"] == pytest.approx(1.0)
        assert series["P=16"]["HCcs"] == pytest.approx(0.65)
        assert "Figure 7" in text

    def test_table4_5_counts(self):
        wins = [
            InitializerWin("a", "spmv", 40, MachineSpec(4, 1, 5), "source", {"source": 1.0}),
            InitializerWin("b", "spmv", 40, MachineSpec(4, 1, 5), "bsp_greedy", {"bsp_greedy": 1.0}),
            InitializerWin("c", "cg", 40, MachineSpec(8, 1, 5), "ilp_init", {"ilp_init": 1.0}),
            InitializerWin("d", "cg", 400, MachineSpec(8, 1, 5), "bsp_greedy", {"bsp_greedy": 1.0}),
        ]
        rows, text = table4_5_initializer_wins(wins)
        assert rows["table4"]["P=4"]["source"] == 1
        assert rows["table4"]["P=4"]["bsp_greedy"] == 1
        assert "Table 4" in text and "Table 5" in text


class TestFormatGrid:
    def test_format_grid_alignment_and_missing_cells(self):
        rows = {"row1": {"a": "1", "b": "2"}, "row2": {"a": "3"}}
        text = format_grid(rows, "name", "Title")
        assert text.startswith("Title")
        assert "row2" in text
        assert "-" in text.splitlines()[-1]  # missing cell rendered as '-'
