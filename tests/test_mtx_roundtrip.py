"""Round-trip and malformed-input tests for the MatrixMarket pattern I/O."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DagError
from repro.dagdb import SparseMatrixPattern
from repro.io import (
    dumps_matrix_market_pattern,
    loads_matrix_market_pattern,
    read_matrix_market_pattern,
    write_matrix_market_pattern,
)


def _patterns():
    return [
        SparseMatrixPattern(0, ()),
        SparseMatrixPattern.from_coordinates(3, []),
        SparseMatrixPattern.from_coordinates(3, [(0, 1), (2, 0), (1, 1)]),
        SparseMatrixPattern.tridiagonal(7),
        SparseMatrixPattern.random(25, 0.2, seed=4),
        SparseMatrixPattern.random(40, 0.05, seed=9, ensure_diagonal=True),
        SparseMatrixPattern.lower_triangular_random(15, 0.3, seed=2),
        SparseMatrixPattern.dense(5),
    ]


class TestRoundTrip:
    @pytest.mark.parametrize("index", range(len(_patterns())))
    def test_dumps_loads_identity(self, index):
        pattern = _patterns()[index]
        back = loads_matrix_market_pattern(dumps_matrix_market_pattern(pattern))
        assert back.size == pattern.size
        assert np.array_equal(back.indptr, pattern.indptr)
        assert np.array_equal(back.indices, pattern.indices)

    def test_write_read_identity_on_disk(self, tmp_path):
        pattern = SparseMatrixPattern.random(30, 0.15, seed=11)
        path = tmp_path / "pattern.mtx"
        write_matrix_market_pattern(pattern, path)
        back = read_matrix_market_pattern(path)
        assert back == pattern  # CSR arrays compared exactly
        # a second round-trip is byte-stable
        assert dumps_matrix_market_pattern(back) == dumps_matrix_market_pattern(pattern)

    def test_written_header_is_pattern_general(self):
        text = dumps_matrix_market_pattern(SparseMatrixPattern.tridiagonal(3))
        assert text.splitlines()[0] == "%%MatrixMarket matrix coordinate pattern general"
        assert text.splitlines()[1] == "3 3 7"

    def test_symmetric_input_round_trips_expanded(self):
        text = (
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 3\n"
            "1 1 1.5\n"
            "2 1 2.5\n"
            "3 2 3.5\n"
        )
        pattern = loads_matrix_market_pattern(text)
        assert sorted(pattern.coordinates()) == [(0, 0), (0, 1), (1, 0), (1, 2), (2, 1)]
        back = loads_matrix_market_pattern(dumps_matrix_market_pattern(pattern))
        assert back == pattern


class TestMalformedInputs:
    @pytest.mark.parametrize(
        "text",
        [
            "",  # empty file
            "just some text\n",
            "%%MatrixMarket tensor coordinate real general\n2 2 0\n",
            "%%MatrixMarket matrix\n2 2 0\n",  # truncated header
            "%%MatrixMarket matrix array real general\n3 3\n",  # dense layout
            "%%MatrixMarket matrix coordinate real general\n",  # no size line
            "%%MatrixMarket matrix coordinate real general\n2 2\n",  # short size line
            "%%MatrixMarket matrix coordinate real general\nx y z\n",  # non-numeric
            "%%MatrixMarket matrix coordinate real general\n2 3 1\n1 1 1\n",  # rectangular
            "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1\n",  # count short
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1\n2 2 1\n",  # count long
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n",  # out of bounds
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n1\n",  # short entry
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 oops\n",  # bad field
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n1.7 2 1\n",  # non-integer coord
        ],
    )
    def test_raises_clean_dag_error(self, text):
        with pytest.raises(DagError):
            loads_matrix_market_pattern(text)
