"""Unit tests for the BSP(+NUMA) machine model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BspMachine, MachineError


class TestUniformMachine:
    def test_basic_properties(self):
        machine = BspMachine.uniform(4, g=3, latency=7)
        assert machine.num_procs == 4
        assert machine.g == 3
        assert machine.latency == 7
        assert machine.is_uniform

    def test_default_numa_matrix(self):
        machine = BspMachine.uniform(3)
        expected = np.ones((3, 3)) - np.eye(3)
        assert np.array_equal(machine.numa, expected)

    def test_single_processor(self):
        machine = BspMachine.uniform(1)
        assert machine.average_numa_multiplier == 0.0
        assert machine.comm_multiplier(0, 0) == 0.0

    def test_average_multiplier_uniform(self):
        machine = BspMachine.uniform(8)
        assert machine.average_numa_multiplier == pytest.approx(1.0)

    def test_invalid_parameters(self):
        with pytest.raises(MachineError):
            BspMachine.uniform(0)
        with pytest.raises(MachineError):
            BspMachine.uniform(2, g=-1)
        with pytest.raises(MachineError):
            BspMachine.uniform(2, latency=-0.5)

    def test_numa_matrix_is_read_only(self):
        machine = BspMachine.uniform(2)
        with pytest.raises(ValueError):
            machine.numa[0, 1] = 5


class TestNumaHierarchy:
    def test_paper_example_p8_delta3(self):
        """Section 6: P=8, Δ=3 gives λ(1,2)=1, λ(1,{3,4})=3, λ(1,{5..8})=9."""
        machine = BspMachine.numa_hierarchy(8, delta=3)
        assert machine.comm_multiplier(0, 1) == 1
        assert machine.comm_multiplier(0, 2) == 3
        assert machine.comm_multiplier(0, 3) == 3
        for p in (4, 5, 6, 7):
            assert machine.comm_multiplier(0, p) == 9

    def test_max_multiplier_p16_delta4(self):
        """Section 7.3: λ(1,16) = Δ^(log2 P - 1) = 4^3 = 64."""
        machine = BspMachine.numa_hierarchy(16, delta=4)
        assert machine.max_numa_multiplier == 64
        assert machine.comm_multiplier(0, 15) == 64

    def test_symmetry_and_zero_diagonal(self):
        machine = BspMachine.numa_hierarchy(8, delta=2)
        assert np.array_equal(machine.numa, machine.numa.T)
        assert np.all(np.diag(machine.numa) == 0)

    def test_not_uniform(self):
        machine = BspMachine.numa_hierarchy(4, delta=2)
        assert not machine.is_uniform

    def test_requires_power_of_two(self):
        with pytest.raises(MachineError):
            BspMachine.numa_hierarchy(6, delta=2)
        with pytest.raises(MachineError):
            BspMachine.numa_hierarchy(1, delta=2)

    def test_requires_positive_delta(self):
        with pytest.raises(MachineError):
            BspMachine.numa_hierarchy(4, delta=0)

    def test_delta_one_is_uniform(self):
        machine = BspMachine.numa_hierarchy(8, delta=1)
        assert machine.is_uniform


class TestExplicitNuma:
    def test_from_numa_matrix(self):
        numa = np.array([[0.0, 2.0], [3.0, 0.0]])
        machine = BspMachine.from_numa_matrix(numa, g=2, latency=1)
        assert machine.num_procs == 2
        assert machine.comm_multiplier(0, 1) == 2.0
        assert machine.comm_multiplier(1, 0) == 3.0
        assert machine.average_numa_multiplier == pytest.approx(2.5)

    def test_rejects_bad_shapes_and_values(self):
        with pytest.raises(MachineError):
            BspMachine(num_procs=2, numa=np.zeros((3, 3)))
        with pytest.raises(MachineError):
            BspMachine(num_procs=2, numa=np.array([[0, -1], [1, 0]]))
        with pytest.raises(MachineError):
            BspMachine(num_procs=2, numa=np.array([[1.0, 1], [1, 0]]))

    def test_matrix_copied_from_input(self):
        numa = np.array([[0.0, 2.0], [3.0, 0.0]])
        machine = BspMachine.from_numa_matrix(numa)
        numa[0, 1] = 99
        assert machine.comm_multiplier(0, 1) == 2.0


class TestHelpers:
    def test_with_params(self):
        machine = BspMachine.numa_hierarchy(8, delta=3, g=1, latency=5)
        changed = machine.with_params(g=4)
        assert changed.g == 4
        assert changed.latency == 5
        assert np.array_equal(changed.numa, machine.numa)
        changed2 = machine.with_params(latency=9)
        assert changed2.latency == 9
        assert changed2.g == 1

    def test_describe_mentions_kind(self):
        assert "uniform" in BspMachine.uniform(2).describe()
        assert "NUMA" in BspMachine.numa_hierarchy(4, delta=2).describe()
