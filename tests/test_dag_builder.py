"""Tests for :class:`DagBuilder` and the amortized-growth mutation path."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import ComputationalDAG, CycleError, DagBuilder, DagError


class TestDagBuilder:
    def test_freeze_matches_incremental_construction(self):
        incremental = ComputationalDAG(4, [1, 2, 3, 4], [4, 3, 2, 1], name="x")
        incremental.add_edges([(0, 1), (0, 2), (1, 3), (2, 3)])

        builder = DagBuilder(4, [1, 2, 3, 4], [4, 3, 2, 1], name="x")
        builder.add_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
        frozen = builder.freeze()

        assert frozen.name == incremental.name
        assert frozen.num_nodes == incremental.num_nodes
        assert frozen.num_edges == incremental.num_edges
        assert np.array_equal(frozen.work_weights, incremental.work_weights)
        assert np.array_equal(frozen.comm_weights, incremental.comm_weights)
        for v in frozen.nodes():
            assert frozen.successors(v) == incremental.successors(v)
            assert frozen.predecessors(v) == incremental.predecessors(v)
        assert frozen.topological_order() == incremental.topological_order()
        assert frozen.levels().tolist() == incremental.levels().tolist()

    def test_add_nodes_and_arrays(self):
        builder = DagBuilder(name="bulk")
        first = builder.add_node(work=2, comm=3)
        rest = builder.add_nodes(3, work=5)
        arr = builder.add_nodes_array([7.0, 8.0], [1.0, 2.0])
        assert first == 0
        assert rest == [1, 2, 3]
        assert arr.tolist() == [4, 5]
        dag = builder.freeze()
        assert dag.work_weights.tolist() == [2, 5, 5, 5, 7, 8]
        assert dag.comm_weights.tolist() == [3, 1, 1, 1, 1, 2]

    def test_add_edges_array_bulk(self):
        builder = DagBuilder(5)
        builder.add_edges_array(np.array([0, 0, 1, 2]), np.array([1, 2, 3, 4]))
        dag = builder.freeze()
        assert dag.num_edges == 4
        assert dag.successors(0) == [1, 2]
        assert dag.predecessors(4) == [2]

    def test_builder_rejects_bad_edges(self):
        builder = DagBuilder(3)
        with pytest.raises(DagError):
            builder.add_edge(0, 5)
        with pytest.raises(DagError):
            builder.add_edges_array([0], [9])
        with pytest.raises(CycleError):
            builder.add_edge(1, 1)
        with pytest.raises(CycleError):
            builder.add_edges_array([0, 2], [1, 2])

    def test_freeze_detects_duplicates(self):
        builder = DagBuilder(3)
        builder.add_edge(0, 1)
        builder.add_edge(0, 1)  # builder does not check; freeze must
        with pytest.raises(DagError, match=r"duplicate edge \(0, 1\)"):
            builder.freeze()

    def test_builder_reusable_after_freeze(self):
        builder = DagBuilder(2)
        builder.add_edge(0, 1)
        small = builder.freeze()
        builder.add_node()
        builder.add_edge(1, 2)
        large = builder.freeze()
        assert small.num_nodes == 2 and small.num_edges == 1
        assert large.num_nodes == 3 and large.num_edges == 2
        # the frozen DAG owns its buffers: mutating it cannot affect the builder
        small.add_node()
        assert builder.num_nodes == 3

    def test_builder_rejects_negative_weights(self):
        builder = DagBuilder()
        with pytest.raises(DagError):
            builder.add_node(work=-1)
        with pytest.raises(DagError):
            builder.add_nodes(2, comm=-1)
        with pytest.raises(DagError):
            builder.add_nodes_array([1.0, -1.0])

    def test_from_edge_arrays_classmethod(self):
        dag = ComputationalDAG.from_edge_arrays(
            4, [0, 1, 2], [1, 2, 3], work_weights=[1, 2, 3, 4], name="direct"
        )
        assert dag.topological_order() == [0, 1, 2, 3]
        assert dag.total_work == 10
        with pytest.raises(DagError):
            ComputationalDAG.from_edge_arrays(2, [0, 0], [1, 1])
        with pytest.raises(CycleError):
            ComputationalDAG.from_edge_arrays(2, [1], [1])


class TestLegacyMutationPathScales:
    """Regression guard: the append-per-node path must stay amortized O(1).

    The seed implementation rebuilt the weight vectors with ``np.append`` on
    every ``add_node`` (O(n) per call, O(n²) per build) — a 50k-node build
    took tens of seconds.  With capacity-doubling buffers it is well under a
    second even on slow CI machines.
    """

    @staticmethod
    def _timed_build(num_nodes: int) -> tuple[float, ComputationalDAG]:
        start = time.perf_counter()
        dag = ComputationalDAG(0, name="big")
        previous = None
        for i in range(num_nodes):
            v = dag.add_node(work=1 + (i % 3), comm=1 + (i % 2))
            if previous is not None and i % 2 == 0:
                dag.add_edge(previous, v)
            previous = v
        return time.perf_counter() - start, dag

    def test_50k_node_incremental_build(self):
        # best-of-2 timings so a transient load spike on a shared CI box
        # cannot distort the ratio
        small_time = min(self._timed_build(5_000)[0] for _ in range(2))
        big_time, dag = min(
            (self._timed_build(50_000) for _ in range(2)), key=lambda pair: pair[0]
        )
        assert dag.num_nodes == 50_000
        assert dag.num_edges == 24_999
        assert dag.work(49_999) == 1 + (49_999 % 3)
        # asymptotic guard instead of a wall-clock bound (CI-throttle proof):
        # 10x the nodes must cost ~10x the time; the O(n²) np.append seed
        # path showed a ~100x ratio here
        ratio = big_time / max(small_time, 1e-9)
        assert ratio < 50, f"incremental build scales superlinearly: {ratio:.0f}x"

    def test_interleaved_mutation_and_queries_stay_correct(self):
        dag = ComputationalDAG(1)
        for _ in range(200):
            v = dag.add_node()
            dag.add_edge(v - 1, v)
            assert dag.out_degree(v - 1) == 1  # forces a CSR rebuild mid-build
        assert dag.depth() == 201


class TestInducedSubgraphValidation:
    def test_duplicate_node_ids_rejected(self):
        dag = ComputationalDAG(3)
        dag.add_edge(0, 1)
        with pytest.raises(DagError, match="duplicate node ids"):
            dag.induced_subgraph([0, 1, 1])
