"""End-to-end integration tests reproducing the qualitative claims of the paper."""

from __future__ import annotations

import pytest

from repro.analysis import aggregate_improvement, run_no_numa_grid, run_numa_grid
from repro.core import BspMachine, BspSchedule
from repro.dagdb import SparseMatrixPattern, build_cg_dag, build_iterated_spmv_dag
from repro.schedulers import (
    CilkScheduler,
    HDaggScheduler,
    MultilevelPipeline,
    PipelineConfig,
    SchedulingPipeline,
)

from conftest import assert_valid_schedule


FAST = PipelineConfig.fast()
FAST_HEURISTIC = PipelineConfig(use_ilp=False, use_comm_ilp=False, local_search_seconds=0.3)


@pytest.fixture(scope="module")
def exp_dag():
    pattern = SparseMatrixPattern.random(8, 0.3, seed=5, ensure_diagonal=True)
    return build_iterated_spmv_dag(pattern, 3).dag


class TestSection71NoNuma:
    """Qualitative reproduction of §7.1: the framework beats Cilk and HDagg."""

    def test_framework_beats_baselines_on_single_instance(self, exp_dag):
        machine = BspMachine.uniform(8, g=3, latency=5)
        result = SchedulingPipeline(FAST).schedule_with_stages(exp_dag, machine)
        cilk = CilkScheduler(seed=0).schedule(exp_dag, machine)
        hdagg = HDaggScheduler().schedule(exp_dag, machine)
        assert result.schedule.cost() < cilk.cost()
        assert result.schedule.cost() <= hdagg.cost()
        assert_valid_schedule(result.schedule)

    def test_improvement_grows_with_g(self):
        """Table 1 trend: the gap to Cilk widens as g grows."""
        records = run_no_numa_grid(
            datasets=("tiny",),
            procs=(8,),
            g_values=(1, 5),
            config=FAST_HEURISTIC,
            max_instances_per_dataset=4,
        )
        low_g = [r for r in records if r.spec.g == 1]
        high_g = [r for r in records if r.spec.g == 5]
        assert aggregate_improvement(high_g, "final", "cilk") >= aggregate_improvement(
            low_g, "final", "cilk"
        ) - 0.05

    @pytest.mark.slow
    def test_stagewise_improvements(self, exp_dag):
        """Figure 5 shape: Init <= HDagg-ish region, HCcs and ILP improve further."""
        machine = BspMachine.uniform(4, g=5, latency=5)
        result = SchedulingPipeline(FAST).schedule_with_stages(exp_dag, machine)
        cilk_cost = CilkScheduler(seed=0).schedule(exp_dag, machine).cost()
        stages = result.stages
        assert stages.best_init < cilk_cost
        assert stages.after_local_search <= stages.best_init
        assert stages.final <= stages.after_local_search


class TestSection72Numa:
    """Qualitative reproduction of §7.2: larger gains under NUMA effects."""

    def test_numa_improvement_larger_than_uniform(self):
        no_numa = run_no_numa_grid(
            datasets=("tiny",),
            procs=(8,),
            g_values=(1,),
            config=FAST_HEURISTIC,
            max_instances_per_dataset=3,
        )
        numa = run_numa_grid(
            datasets=("tiny",),
            procs=(8,),
            deltas=(4,),
            config=FAST_HEURISTIC,
            max_instances_per_dataset=3,
        )
        uniform_gain = aggregate_improvement(no_numa, "final", "cilk")
        numa_gain = aggregate_improvement(numa, "final", "cilk")
        assert numa_gain > uniform_gain

    def test_improvement_grows_with_delta(self):
        records = run_numa_grid(
            datasets=("tiny",),
            procs=(8,),
            deltas=(2, 4),
            config=FAST_HEURISTIC,
            max_instances_per_dataset=3,
        )
        low = [r for r in records if r.spec.numa_delta == 2]
        high = [r for r in records if r.spec.numa_delta == 4]
        assert aggregate_improvement(high, "final", "cilk") >= aggregate_improvement(
            low, "final", "cilk"
        ) - 0.05


class TestSection73Multilevel:
    """Qualitative reproduction of §7.3: multilevel wins when communication dominates."""

    @pytest.mark.slow
    def test_multilevel_beats_base_under_extreme_numa(self):
        dag = build_cg_dag(
            SparseMatrixPattern.random(6, 0.3, seed=3, ensure_diagonal=True), 3
        ).dag
        machine = BspMachine.numa_hierarchy(16, delta=4, g=1, latency=5)
        base = SchedulingPipeline(FAST_HEURISTIC).schedule(dag, machine)
        ml = MultilevelPipeline(FAST_HEURISTIC).schedule(dag, machine)
        assert ml.cost() <= base.cost()
        assert_valid_schedule(ml)

    def test_multilevel_not_needed_without_numa(self):
        """Without NUMA the base scheduler is competitive with (or better than) ML."""
        dag = build_iterated_spmv_dag(
            SparseMatrixPattern.random(6, 0.35, seed=2, ensure_diagonal=True), 2
        ).dag
        machine = BspMachine.uniform(4, g=1, latency=5)
        base = SchedulingPipeline(FAST_HEURISTIC).schedule(dag, machine)
        ml = MultilevelPipeline(FAST_HEURISTIC).schedule(dag, machine)
        assert base.cost() <= ml.cost() * 1.3

    @pytest.mark.slow
    def test_multilevel_close_to_trivial_in_pathological_regime(self):
        dag = build_cg_dag(
            SparseMatrixPattern.random(5, 0.3, seed=9, ensure_diagonal=True), 2
        ).dag
        machine = BspMachine.numa_hierarchy(16, delta=4, g=1, latency=5)
        ml = MultilevelPipeline(FAST_HEURISTIC).schedule(dag, machine)
        trivial = BspSchedule.trivial(dag, machine)
        assert ml.cost() <= 1.25 * trivial.cost()
