"""Unit tests for DAG coarsening and the multilevel scheduler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BspMachine, BspSchedule, ComputationalDAG, DagError
from repro.schedulers import BspGreedyScheduler, MultilevelScheduler
from repro.schedulers.multilevel import (
    ContractionRecord,
    coarsen_dag,
    coarsen_dag_reference,
    project_to_original,
    restrict_to_quotient,
)

from conftest import assert_valid_schedule, build_chain_dag, build_diamond_dag, random_dag
from repro.dagdb import SparseMatrixPattern, build_cg_dag


class TestCoarsening:
    def test_coarsens_to_target_size(self):
        dag = random_dag(40, 0.12, seed=1)
        sequence = coarsen_dag(dag, target_nodes=10)
        quotient = sequence.quotient()
        assert quotient.dag.num_nodes <= 12
        assert sequence.num_contractions == dag.num_nodes - quotient.dag.num_nodes

    def test_quotient_remains_acyclic_at_every_level(self):
        dag = random_dag(30, 0.15, seed=2)
        sequence = coarsen_dag(dag, target_nodes=5)
        for level in range(0, sequence.num_contractions + 1, 5):
            assert sequence.quotient(level).dag.is_acyclic()

    def test_weights_are_conserved(self):
        dag = random_dag(25, 0.15, seed=3)
        sequence = coarsen_dag(dag, target_nodes=6)
        quotient = sequence.quotient()
        assert quotient.dag.total_work == pytest.approx(dag.total_work)
        assert quotient.dag.total_comm == pytest.approx(dag.total_comm)

    def test_zero_contractions_is_identity(self):
        dag = build_diamond_dag()
        sequence = coarsen_dag(dag, target_nodes=dag.num_nodes)
        assert sequence.num_contractions == 0
        quotient = sequence.quotient()
        assert quotient.dag.num_nodes == dag.num_nodes
        assert quotient.dag.num_edges == dag.num_edges

    def test_chain_coarsens_fully(self):
        dag = build_chain_dag(10)
        sequence = coarsen_dag(dag, target_nodes=1)
        assert sequence.quotient().dag.num_nodes == 1

    def test_contraction_prefers_light_nodes_with_heavy_outputs(self):
        """The selection rule merges the light/heavy-output edge first."""
        dag = ComputationalDAG(4, [1, 1, 10, 10], [9, 1, 1, 1])
        dag.add_edge(0, 1)   # light nodes, source with heavy output
        dag.add_edge(2, 3)   # heavy nodes
        sequence = coarsen_dag(dag, target_nodes=3)
        assert sequence.num_contractions == 1
        record = sequence.records[0]
        assert (record.kept, record.removed) == (0, 1)

    def test_contraction_never_creates_cycles(self):
        """Edge (u,v) with an alternative u->v path must not be contracted first."""
        dag = ComputationalDAG(3)
        dag.add_edge(0, 1)
        dag.add_edge(1, 2)
        dag.add_edge(0, 2)  # transitive edge: contracting it would create a cycle
        sequence = coarsen_dag(dag, target_nodes=2)
        quotient = sequence.quotient()
        assert quotient.dag.is_acyclic()

    def test_representative_map_bounds(self):
        dag = build_chain_dag(5)
        sequence = coarsen_dag(dag, target_nodes=2)
        with pytest.raises(DagError):
            sequence.representative_map(sequence.num_contractions + 1)
        assert list(sequence.representative_map(0)) == list(range(5))

    def test_target_validation(self):
        with pytest.raises(DagError):
            coarsen_dag(build_chain_dag(3), target_nodes=0)

    def test_disconnected_graph_stops_at_no_edges(self):
        dag = ComputationalDAG(4)  # no edges at all
        sequence = coarsen_dag(dag, target_nodes=1)
        assert sequence.quotient().dag.num_nodes == 4


class TestBucketQueueCoarsening:
    """The bucketed lazy priority structure vs the retained seed coarsener."""

    def test_identical_records_on_distinct_buckets(self):
        """With almost-surely distinct merged work weights every bucket is a
        singleton, so the whole-bucket tie rule coincides with the seed's
        cutoff, and on an out-tree every edge is contractable, so the (by
        design different) fallback order never engages: both implementations
        must produce identical histories."""
        for seed in range(5):
            rng = np.random.default_rng(seed)
            n = 40
            dag = ComputationalDAG(
                n,
                work_weights=rng.random(n) + 0.5,
                comm_weights=rng.random(n) + 0.5,
            )
            for child in range(1, n):
                dag.add_edge(int(rng.integers(0, child)), child)
            fast = coarsen_dag(dag, target_nodes=5)
            slow = coarsen_dag_reference(dag, target_nodes=5)
            assert fast.records == slow.records

    def test_same_progress_as_reference_on_integer_weights(self):
        for seed in range(4):
            dag = random_dag(30, 0.12, seed=80 + seed)
            fast = coarsen_dag(dag, target_nodes=8)
            slow = coarsen_dag_reference(dag, target_nodes=8)
            assert fast.num_contractions == slow.num_contractions
            assert fast.quotient().dag.is_acyclic()
            assert fast.quotient().dag.total_work == pytest.approx(dag.total_work)

    def test_fallback_uses_comm_weight_order(self):
        """Satellite bugfix: when the light third has no contractable edge the
        fallback follows the paper's largest-c(u) rule, not ascending work.

        Edge (0, 1) is the lightest but transitive (0 -> 2 -> 1 exists), so
        selection falls through to the two heavier edges; the source with the
        larger communication weight (node 2) must win even though the seed's
        work-then-edge-id order would have picked (0, 2) first.
        """
        dag = ComputationalDAG(3, work_weights=[1, 1, 10], comm_weights=[1, 1, 5])
        dag.add_edge(0, 2)
        dag.add_edge(2, 1)
        dag.add_edge(0, 1)  # transitive, merged work 2: the whole light third
        sequence = coarsen_dag(dag, target_nodes=2)
        assert sequence.records[0] == ContractionRecord(kept=2, removed=1)
        # the seed picked the first heavier edge in work order instead
        seed_sequence = coarsen_dag_reference(dag, target_nodes=2)
        assert seed_sequence.records[0] == ContractionRecord(kept=0, removed=2)

    def test_search_budget_is_conservative_but_safe(self):
        dag = random_dag(40, 0.15, seed=13)
        exact = coarsen_dag(dag, target_nodes=10)
        budgeted = coarsen_dag(dag, target_nodes=10, search_budget=2)
        assert budgeted.num_contractions <= exact.num_contractions
        assert budgeted.quotient().dag.is_acyclic()
        for level in range(0, budgeted.num_contractions + 1, 7):
            assert budgeted.quotient(level).dag.is_acyclic()

    def test_zero_budget_still_contracts_via_fast_paths(self):
        # a chain needs no DFS at all: u is always v's only predecessor
        dag = build_chain_dag(12)
        sequence = coarsen_dag(dag, target_nodes=1, search_budget=0)
        assert sequence.quotient().dag.num_nodes == 1


class TestPearceKellyCoarsening:
    """The PK dynamic-order path is decision-identical to the exact DFS."""

    def test_pk_and_dfs_identical_records(self):
        for seed in range(8):
            dag = random_dag(60, 0.1, seed=400 + seed)
            dfs = coarsen_dag(dag, target_nodes=12, method="dfs")
            pk = coarsen_dag(dag, target_nodes=12, method="pk")
            auto = coarsen_dag(dag, target_nodes=12)
            assert pk.records == dfs.records, seed
            assert auto.records == dfs.records, seed
            assert pk.quotient().dag.is_acyclic()

    def test_auto_with_budget_uses_dfs(self):
        # search_budget is a DFS-node budget, so auto must route to DFS
        dag = random_dag(40, 0.15, seed=13)
        budgeted = coarsen_dag(dag, target_nodes=10, search_budget=2)
        auto = coarsen_dag(dag, target_nodes=10, search_budget=2, method="auto")
        assert auto.records == budgeted.records

    def test_unknown_method_rejected(self):
        dag = build_chain_dag(6)
        with pytest.raises(DagError, match="unknown coarsening method"):
            coarsen_dag(dag, target_nodes=2, method="bogus")

    def test_pk_with_search_budget_rejected(self):
        dag = build_chain_dag(6)
        with pytest.raises(DagError, match="search_budget"):
            coarsen_dag(dag, target_nodes=2, search_budget=8, method="pk")

    def test_pk_dense_dag_stays_acyclic_at_every_level(self):
        dag = random_dag(50, 0.35, seed=91)
        sequence = coarsen_dag(dag, target_nodes=5, method="pk")
        for level in range(0, sequence.num_contractions + 1, 5):
            assert sequence.quotient(level).dag.is_acyclic()


class TestProjection:
    def test_project_and_restrict_roundtrip(self):
        dag = random_dag(30, 0.15, seed=5)
        machine = BspMachine.uniform(4, g=1, latency=2)
        sequence = coarsen_dag(dag, target_nodes=8)
        quotient = sequence.quotient()
        coarse_schedule = BspGreedyScheduler().schedule(quotient.dag, machine)
        procs, steps = project_to_original(quotient, coarse_schedule)
        projected = BspSchedule(dag, machine, procs, steps)
        assert_valid_schedule(projected)
        # restricting back to the quotient reproduces the coarse assignment
        back = restrict_to_quotient(quotient, machine, procs, steps)
        assert np.array_equal(back.procs, coarse_schedule.procs)
        assert np.array_equal(back.supersteps, coarse_schedule.supersteps)

    def test_projection_valid_at_intermediate_levels(self):
        dag = random_dag(25, 0.2, seed=6)
        machine = BspMachine.uniform(2, g=1, latency=1)
        sequence = coarsen_dag(dag, target_nodes=6)
        full_quotient = sequence.quotient()
        coarse_schedule = BspGreedyScheduler().schedule(full_quotient.dag, machine)
        procs, steps = project_to_original(full_quotient, coarse_schedule)
        # at every intermediate level the cluster-constant assignment is valid
        for level in range(0, sequence.num_contractions + 1, 4):
            quotient = sequence.quotient(level)
            restricted = restrict_to_quotient(quotient, machine, procs, steps)
            assert_valid_schedule(restricted)


class TestMultilevelScheduler:
    @pytest.mark.slow
    def test_valid_schedule_on_original_dag(self):
        dag = build_cg_dag(
            SparseMatrixPattern.random(5, 0.35, seed=4, ensure_diagonal=True), 2
        ).dag
        machine = BspMachine.numa_hierarchy(8, delta=4, g=1, latency=5)
        scheduler = MultilevelScheduler(base_scheduler=BspGreedyScheduler())
        schedule = scheduler.schedule(dag, machine)
        assert schedule.dag is dag
        assert_valid_schedule(schedule)

    def test_small_instances_fall_back_to_base(self):
        dag = build_diamond_dag()
        machine = BspMachine.uniform(2, g=1, latency=1)
        scheduler = MultilevelScheduler(base_scheduler=BspGreedyScheduler(), min_nodes=16)
        base = BspGreedyScheduler().schedule(dag, machine)
        schedule = scheduler.schedule(dag, machine)
        assert schedule.cost() == pytest.approx(base.cost())

    @pytest.mark.slow
    def test_competitive_with_trivial_when_communication_dominates(self):
        """§7.3: with huge NUMA costs ML stays close to the trivial schedule's cost
        (the paper reports it beats it in all but a handful of cases) while the
        conventional baselines blow up by integer factors."""
        dag = build_cg_dag(
            SparseMatrixPattern.random(6, 0.3, seed=1, ensure_diagonal=True), 3
        ).dag
        machine = BspMachine.numa_hierarchy(8, delta=4, g=1, latency=5)
        scheduler = MultilevelScheduler(base_scheduler=BspGreedyScheduler())
        schedule = scheduler.schedule(dag, machine)
        trivial_cost = BspSchedule.trivial(dag, machine).cost()
        from repro.schedulers import CilkScheduler, HDaggScheduler

        cilk_cost = CilkScheduler(seed=0).schedule(dag, machine).cost()
        hdagg_cost = HDaggScheduler().schedule(dag, machine).cost()
        assert schedule.cost() <= 1.25 * trivial_cost
        assert schedule.cost() < 0.75 * hdagg_cost
        assert schedule.cost() < 0.5 * cilk_cost

    def test_single_ratio_configuration(self):
        dag = random_dag(40, 0.1, seed=9)
        machine = BspMachine.numa_hierarchy(4, delta=3, g=1, latency=3)
        scheduler = MultilevelScheduler(
            base_scheduler=BspGreedyScheduler(), coarsening_ratios=(0.3,)
        )
        assert_valid_schedule(scheduler.schedule(dag, machine))
