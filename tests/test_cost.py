"""Unit tests for the BSP(+NUMA) cost model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BspMachine, BspSchedule, CommStep, ComputationalDAG, evaluate_cost

from conftest import build_diamond_dag


class TestWorkCost:
    def test_single_superstep_max_over_procs(self):
        dag = ComputationalDAG(4, [3, 1, 2, 5])
        machine = BspMachine.uniform(2, g=1, latency=0)
        procs = np.array([0, 0, 1, 1])
        steps = np.zeros(4, dtype=int)
        breakdown = evaluate_cost(dag, machine, procs, steps, [])
        # proc 0 does 3+1=4, proc 1 does 2+5=7 -> max 7
        assert breakdown.work == 7.0
        assert breakdown.comm == 0.0
        assert breakdown.total == 7.0

    def test_work_summed_over_supersteps(self):
        dag = ComputationalDAG(4, [3, 1, 2, 5])
        machine = BspMachine.uniform(2, g=1, latency=0)
        procs = np.array([0, 1, 0, 1])
        steps = np.array([0, 0, 1, 1])
        breakdown = evaluate_cost(dag, machine, procs, steps, [])
        assert breakdown.work_per_superstep == (3.0, 5.0)
        assert breakdown.work == 8.0


class TestCommCost:
    def test_h_relation_max_of_send_and_receive(self):
        dag = ComputationalDAG(3, [1, 1, 1], [4, 2, 1])
        machine = BspMachine.uniform(3, g=2, latency=0)
        procs = np.array([0, 1, 2])
        steps = np.array([0, 0, 1])
        comm = [CommStep(0, 0, 2, 0), CommStep(1, 1, 2, 0)]
        breakdown = evaluate_cost(dag, machine, procs, steps, comm)
        # send: proc0=4, proc1=2; recv: proc2=6 -> h-relation 6; times g=2
        assert breakdown.comm_per_superstep[0] == 6.0
        assert breakdown.comm == 12.0

    def test_numa_multiplier_applied(self):
        dag = ComputationalDAG(2, [1, 1], [5, 1])
        machine = BspMachine.numa_hierarchy(4, delta=3, g=1, latency=0)
        procs = np.array([0, 2])
        steps = np.array([0, 1])
        comm = [CommStep(0, 0, 2, 0)]
        breakdown = evaluate_cost(dag, machine, procs, steps, comm)
        # c(0)=5 times lambda(0,2)=3 -> 15
        assert breakdown.comm == 15.0

    def test_send_and_receive_counted_separately_per_processor(self):
        dag = ComputationalDAG(2, [1, 1], [3, 3])
        machine = BspMachine.uniform(2, g=1, latency=0)
        procs = np.array([0, 1])
        steps = np.array([0, 0])
        # both values exchanged in phase 0 (not needed by anyone, but legal)
        comm = [CommStep(0, 0, 1, 0), CommStep(1, 1, 0, 0)]
        breakdown = evaluate_cost(dag, machine, procs, steps, comm)
        # each proc sends 3 and receives 3 -> h-relation is 3, not 6
        assert breakdown.comm_per_superstep[0] == 3.0


class TestLatency:
    def test_latency_per_superstep(self):
        dag = build_diamond_dag()
        machine = BspMachine.uniform(2, g=1, latency=7)
        procs = np.zeros(4, dtype=int)
        steps = np.array([0, 1, 1, 2])
        breakdown = evaluate_cost(dag, machine, procs, steps, [])
        assert breakdown.latency == 21.0
        assert breakdown.num_supersteps == 3

    def test_empty_supersteps_still_pay_latency(self):
        dag = ComputationalDAG(2)
        machine = BspMachine.uniform(1, latency=5)
        procs = np.array([0, 0])
        steps = np.array([0, 3])
        breakdown = evaluate_cost(dag, machine, procs, steps, [])
        assert breakdown.num_supersteps == 4
        assert breakdown.latency == 20.0


class TestTotals:
    def test_total_combines_components(self):
        dag = build_diamond_dag()
        machine = BspMachine.uniform(2, g=3, latency=2)
        schedule = BspSchedule(
            dag, machine, np.array([0, 0, 1, 0]), np.array([0, 1, 1, 2])
        )
        breakdown = schedule.cost_breakdown()
        assert breakdown.total == pytest.approx(
            breakdown.work + breakdown.comm + breakdown.latency
        )
        assert float(breakdown) == breakdown.total
        assert schedule.cost() == breakdown.total

    def test_empty_dag_zero_cost(self):
        dag = ComputationalDAG(0)
        machine = BspMachine.uniform(2, latency=5)
        breakdown = evaluate_cost(dag, machine, np.zeros(0, int), np.zeros(0, int), [])
        assert breakdown.total == 0.0

    def test_trivial_schedule_cost_is_serial_work_plus_latency(self):
        dag = ComputationalDAG(5, [2, 3, 4, 5, 6])
        machine = BspMachine.uniform(4, g=10, latency=3)
        trivial = BspSchedule.trivial(dag, machine)
        assert trivial.cost() == dag.total_work + machine.latency

    def test_explicit_num_supersteps(self):
        dag = ComputationalDAG(1)
        machine = BspMachine.uniform(1, latency=1)
        breakdown = evaluate_cost(
            dag, machine, np.array([0]), np.array([0]), [], num_supersteps=3
        )
        assert breakdown.latency == 3.0
