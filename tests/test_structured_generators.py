"""Unit tests for the structured workload families (elimination, FFT, stencil)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BspMachine, ConfigurationError, DagError
from repro.core.validation import schedule_violations
from repro.dagdb import (
    STRUCTURED_GENERATORS,
    SparseMatrixPattern,
    WEIGHT_MODELS,
    apply_weight_model,
    amd_ordering,
    build_amd_elimination_dag,
    build_elimination_dag,
    build_fft4_dag,
    build_fft_dag,
    build_rcm_elimination_dag,
    build_stencil2d_dag,
    build_stencil2d_rect_dag,
    build_stencil3d_dag,
    build_stencil_dag,
    rcm_ordering,
)
from repro.dagdb.structured import symbolic_fill_structure
from repro.schedulers import SchedulingPipeline, create_scheduler


class TestEliminationDag:
    def test_tridiagonal_has_no_fill(self):
        """A tridiagonal matrix factors without fill: the DAG is the chain."""
        result = build_elimination_dag(SparseMatrixPattern.tridiagonal(8))
        assert result.dag.num_nodes == 8
        assert result.dag.num_edges == 7
        assert result.dag.depth() == 8

    def test_fill_structure_matches_dense_elimination(self):
        """The symbolic structures equal a brute-force elimination on the dense graph."""
        pattern = SparseMatrixPattern.random(14, 0.2, seed=5, ensure_diagonal=True)
        structures, parents = symbolic_fill_structure(pattern)
        adj = pattern.symmetrized().to_dense().astype(bool)
        n = pattern.size
        for j in range(n):
            higher = set(np.flatnonzero(adj[j]).tolist()) - set(range(j + 1))
            # brute force: eliminating j connects its remaining neighbours
            for i in sorted(higher):
                adj[i, list(higher - {i})] = True
                adj[list(higher - {i}), i] = True
            assert structures[j].tolist() == sorted(higher), j
            expected_parent = min(higher) if higher else -1
            assert parents[j] == expected_parent

    def test_arrowhead_fills_completely(self):
        """Row/column 0 dense: eliminating column 0 connects everything."""
        n = 6
        coords = [(0, j) for j in range(n)] + [(i, 0) for i in range(n)]
        coords += [(i, i) for i in range(n)]
        pattern = SparseMatrixPattern.from_coordinates(n, coords)
        result = build_elimination_dag(pattern)
        assert result.dag.num_edges == n * (n - 1) // 2  # complete fill
        assert result.dag.depth() == n

    def test_kind_validation_and_roles(self):
        pattern = SparseMatrixPattern.tridiagonal(4)
        lu = build_elimination_dag(pattern, kind="lu")
        assert set(lu.roles.values()) == {"eliminate:lu"}
        with pytest.raises(DagError):
            build_elimination_dag(pattern, kind="qr")

    def test_empty_and_diagonal_patterns(self):
        empty = build_elimination_dag(SparseMatrixPattern(0, ()))
        assert empty.dag.num_nodes == 0
        diag = build_elimination_dag(
            SparseMatrixPattern.from_coordinates(5, [(i, i) for i in range(5)])
        )
        assert diag.dag.num_nodes == 5
        assert diag.dag.num_edges == 0


class TestFftDag:
    def test_structure(self):
        result = build_fft_dag(8)
        dag = result.dag
        assert dag.num_nodes == 8 * 4  # 3 stages + inputs
        assert dag.num_edges == 8 * 3 * 2
        assert dag.depth() == 4
        assert len(result.nodes_with_role("input:x")) == 8
        assert len(result.nodes_with_role("butterfly")) == 24
        # every butterfly node combines exactly two operands
        indeg = dag.in_degrees()
        assert (indeg[8:] == 2).all()

    def test_butterfly_partners(self):
        dag = build_fft_dag(4).dag
        # stage 1, lane 0 reads lanes 0 and 1 of the inputs
        assert sorted(dag.predecessors(4)) == [0, 1]
        # stage 2, lane 0 reads lanes 0 and 2 of stage 1
        assert sorted(dag.predecessors(8)) == [4, 6]

    @pytest.mark.parametrize("bad", [0, 1, 3, 6, 12])
    def test_rejects_non_powers_of_two(self, bad):
        with pytest.raises(DagError):
            build_fft_dag(bad)


class TestStencilDag:
    def test_2d_structure(self):
        result = build_stencil_dag((3, 4), 2)
        dag = result.dag
        assert dag.num_nodes == 12 * 3
        assert dag.depth() == 3
        # interior cell of a 3x4 grid: self + 4 face neighbours
        interior = 12 + 1 * 4 + 1  # layer 1, cell (1, 1)
        assert dag.in_degree(interior) == 5
        # corner cell: self + 2 neighbours
        corner = 12 + 0
        assert dag.in_degree(corner) == 3

    def test_3d_structure(self):
        dag = build_stencil3d_dag(3, 1).dag
        assert dag.num_nodes == 27 * 2
        center = 27 + 13  # cell (1,1,1) of layer 1
        assert dag.in_degree(center) == 7

    def test_validation(self):
        with pytest.raises(DagError):
            build_stencil_dag((4,), 1)  # 1D unsupported
        with pytest.raises(DagError):
            build_stencil_dag((2, 2, 2, 2), 1)
        with pytest.raises(DagError):
            build_stencil_dag((0, 3), 1)
        with pytest.raises(DagError):
            build_stencil_dag((3, 3), 0)

    def test_wrappers(self):
        assert build_stencil2d_dag(4, 2).dag.num_nodes == 16 * 3
        assert build_stencil3d_dag(2, 2).dag.num_nodes == 8 * 3


class TestWeightModels:
    def test_registry_contents(self):
        assert {"paper", "unit", "indegree"} <= set(WEIGHT_MODELS)

    def test_unit_model(self):
        dag = build_fft_dag(4, weight_model="unit").dag
        assert (dag.work_weights == 1.0).all()
        assert (dag.comm_weights == 1.0).all()

    def test_indegree_model(self):
        dag = build_fft_dag(4, weight_model="indegree").dag
        assert (dag.work_weights[4:] == 2.0).all()
        assert (dag.work_weights[:4] == 1.0).all()

    def test_paper_model_default(self):
        dag = build_stencil2d_dag(3, 1).dag
        indeg = dag.in_degrees()
        expected = np.where(indeg == 0, 1.0, np.maximum(indeg - 1, 1))
        assert np.array_equal(dag.work_weights, expected)

    def test_unknown_model_rejected(self):
        dag = build_fft_dag(4).dag
        with pytest.raises(ConfigurationError):
            apply_weight_model(dag, "quadratic")


class TestSchedulableEndToEnd:
    """Acceptance: every new family schedules cleanly with >= 2 schedulers."""

    def instances(self):
        pattern = SparseMatrixPattern.random(20, 0.15, seed=6, ensure_diagonal=True)
        yield build_elimination_dag(pattern).dag
        yield build_rcm_elimination_dag(pattern).dag
        yield build_amd_elimination_dag(pattern).dag
        yield build_fft_dag(16).dag
        yield build_fft4_dag(16).dag
        yield build_stencil2d_dag(4, 3).dag
        yield build_stencil2d_rect_dag(6, 3, 2).dag
        yield build_stencil3d_dag(3, 2).dag

    @pytest.mark.parametrize("scheduler_name", ["bsp_greedy", "hdagg", "cilk", "bl_est"])
    def test_schedules_validate(self, scheduler_name):
        machine = BspMachine.uniform(4, g=1, latency=2)
        for dag in self.instances():
            scheduler = create_scheduler(scheduler_name)
            schedule = scheduler.schedule(dag, machine)
            violations = schedule_violations(
                dag, machine, schedule.procs, schedule.supersteps,
                sorted(schedule.comm_schedule),
            )
            assert violations == [], (scheduler_name, dag.name, violations)

    def test_pipeline_end_to_end(self):
        machine = BspMachine.uniform(2, g=1, latency=2)
        pipeline = SchedulingPipeline.heuristics_only(local_search_seconds=0.2)
        for dag in self.instances():
            schedule = pipeline.schedule(dag, machine)
            assert schedule.cost() > 0
            violations = schedule_violations(
                dag, machine, schedule.procs, schedule.supersteps,
                sorted(schedule.comm_schedule),
            )
            assert violations == [], dag.name

    def test_registry_names(self):
        assert set(STRUCTURED_GENERATORS) == {
            "cholesky",
            "cholesky_amd",
            "cholesky_rcm",
            "fft",
            "fft4",
            "stencil2d",
            "stencil2d_rect",
            "stencil3d",
        }


class TestScenarioVariants:
    """The PR-4 diversity additions: radix-4 FFT, rectangular stencils, RCM."""

    def test_fft4_structure(self):
        result = build_fft4_dag(64)
        stages = 3  # log4(64)
        assert result.dag.num_nodes == 64 * (stages + 1)
        assert result.dag.num_edges == 64 * stages * 4  # four-way fan-in
        assert result.dag.depth() == stages + 1
        assert result.dag.is_acyclic()

    def test_fft4_rejects_non_power_of_four(self):
        for bad in (2, 8, 32, 12):
            with pytest.raises(DagError):
                build_fft4_dag(bad)

    def test_fft_radix2_unchanged_by_radix_parameter(self):
        base = build_fft_dag(16)
        explicit = build_fft_dag(16, radix=2)
        assert np.array_equal(base.dag.succ_indptr, explicit.dag.succ_indptr)
        assert np.array_equal(base.dag.succ_indices, explicit.dag.succ_indices)
        assert base.roles == explicit.roles

    def test_rect_stencil_aspect_ratio(self):
        result = build_stencil2d_rect_dag(8, 2, 3)
        assert result.dag.num_nodes == 8 * 2 * 4
        assert result.dag.is_acyclic()
        # a 1 x n strip degenerates to coupled chains and must still build
        strip = build_stencil2d_rect_dag(5, 1, 2)
        assert strip.dag.num_nodes == 5 * 3
        assert strip.dag.is_acyclic()

    def test_rcm_ordering_is_permutation_and_reduces_band_fill(self):
        band = SparseMatrixPattern.banded(40, 2)
        scramble = np.random.default_rng(1).permutation(40)
        scrambled = band.permuted(scramble)
        order = rcm_ordering(scrambled)
        assert sorted(order.tolist()) == list(range(40))
        natural = build_elimination_dag(scrambled)
        rcm = build_rcm_elimination_dag(scrambled)
        assert rcm.dag.num_nodes == natural.dag.num_nodes == 40
        # RCM restores a narrow band, so the fill graph has far fewer edges
        assert rcm.dag.num_edges < natural.dag.num_edges

    def test_rcm_deterministic(self):
        pattern = SparseMatrixPattern.random(25, 0.15, seed=4, ensure_diagonal=True)
        first = build_rcm_elimination_dag(pattern)
        second = build_rcm_elimination_dag(pattern)
        assert np.array_equal(first.dag.succ_indptr, second.dag.succ_indptr)
        assert np.array_equal(first.dag.succ_indices, second.dag.succ_indices)

    def test_elimination_ordering_validation(self):
        pattern = SparseMatrixPattern.tridiagonal(5)
        with pytest.raises(DagError):
            build_elimination_dag(pattern, ordering="colamd")

    def test_amd_ordering_is_permutation_and_reduces_fill(self):
        pattern = SparseMatrixPattern.random(40, 0.15, seed=9, ensure_diagonal=True)
        order = amd_ordering(pattern)
        assert sorted(order.tolist()) == list(range(40))
        natural = build_elimination_dag(pattern)
        amd = build_amd_elimination_dag(pattern)
        assert amd.dag.num_nodes == natural.dag.num_nodes == 40
        # minimum degree greedily suppresses fill; on a random pattern it
        # must not do worse than the natural order
        assert amd.dag.num_edges <= natural.dag.num_edges
        assert amd.dag.is_acyclic()

    def test_amd_deterministic(self):
        pattern = SparseMatrixPattern.random(25, 0.2, seed=2, ensure_diagonal=True)
        first = build_amd_elimination_dag(pattern)
        second = build_amd_elimination_dag(pattern)
        assert np.array_equal(first.dag.succ_indptr, second.dag.succ_indptr)
        assert np.array_equal(first.dag.succ_indices, second.dag.succ_indices)

    def test_amd_handles_disconnected_and_tiny_patterns(self):
        # a diagonal-only pattern has no fill under any ordering
        diag = SparseMatrixPattern.from_coordinates(4, [(i, i) for i in range(4)])
        assert sorted(amd_ordering(diag).tolist()) == list(range(4))
        assert build_amd_elimination_dag(diag).dag.num_edges == 0
        empty = SparseMatrixPattern(0)
        assert amd_ordering(empty).size == 0

    def test_permuted_validates_order(self):
        pattern = SparseMatrixPattern.tridiagonal(4)
        with pytest.raises(DagError):
            pattern.permuted([0, 1, 1, 2])
        identity = pattern.permuted([0, 1, 2, 3])
        assert identity == pattern
