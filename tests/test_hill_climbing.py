"""Unit tests for the HC local search and its incremental cost tracker."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BspMachine, BspSchedule, ComputationalDAG
from repro.schedulers import BspGreedyScheduler, HillClimbingImprover, LazyCostTracker, TimeBudget
from repro.schedulers.trivial import RoundRobinScheduler

from conftest import assert_valid_schedule, build_diamond_dag, build_fork_join_dag, random_dag


class TestLazyCostTracker:
    def _make(self, dag, machine, procs, steps):
        return LazyCostTracker(dag, machine, np.array(procs), np.array(steps))

    def test_initial_cost_matches_schedule_cost(self):
        dag = build_diamond_dag()
        machine = BspMachine.uniform(2, g=2, latency=3)
        schedule = BspSchedule(dag, machine, [0, 0, 1, 0], [0, 1, 1, 2])
        tracker = self._make(dag, machine, [0, 0, 1, 0], [0, 1, 1, 2])
        assert tracker.cost() == pytest.approx(schedule.cost())

    def test_initial_cost_matches_for_random_schedules(self):
        machine = BspMachine.numa_hierarchy(4, delta=2, g=3, latency=5)
        for seed in range(5):
            dag = random_dag(25, 0.15, seed=seed)
            schedule = RoundRobinScheduler().schedule(dag, machine)
            tracker = LazyCostTracker(dag, machine, schedule.procs, schedule.supersteps)
            assert tracker.cost() == pytest.approx(schedule.cost())

    def test_apply_move_delta_matches_full_reevaluation(self):
        machine = BspMachine.uniform(3, g=2, latency=1)
        dag = random_dag(20, 0.2, seed=3)
        schedule = RoundRobinScheduler().schedule(dag, machine)
        tracker = LazyCostTracker(dag, machine, schedule.procs, schedule.supersteps)
        rng = np.random.default_rng(0)
        moves_checked = 0
        for _ in range(200):
            v = int(rng.integers(dag.num_nodes))
            new_proc = int(rng.integers(machine.num_procs))
            new_step = int(tracker.supersteps[v]) + int(rng.integers(-1, 2))
            if not tracker.is_valid_move(v, new_proc, new_step):
                continue
            before = tracker.cost()
            delta = tracker.apply_move(v, new_proc, new_step)
            after = tracker.cost()
            assert after == pytest.approx(before + delta)
            # the tracker must agree with a from-scratch evaluation
            fresh = BspSchedule(
                dag, machine, tracker.procs, tracker.supersteps, validate=False
            )
            # compare against the exact cost restricted to the same number of supersteps
            expected = LazyCostTracker(
                dag, machine, tracker.procs, tracker.supersteps, tracker.num_supersteps
            ).cost()
            assert after == pytest.approx(expected)
            assert fresh.is_valid()
            moves_checked += 1
        assert moves_checked > 20

    def test_inverse_move_restores_cost(self):
        machine = BspMachine.uniform(2, g=1, latency=2)
        dag = build_fork_join_dag(6)
        schedule = RoundRobinScheduler().schedule(dag, machine)
        tracker = LazyCostTracker(dag, machine, schedule.procs, schedule.supersteps)
        original = tracker.cost()
        for v in dag.nodes():
            p, s = int(tracker.procs[v]), int(tracker.supersteps[v])
            for q in range(machine.num_procs):
                if q == p or not tracker.is_valid_move(v, q, s):
                    continue
                tracker.apply_move(v, q, s)
                tracker.apply_move(v, p, s)
                assert tracker.cost() == pytest.approx(original)

    def test_is_valid_move_respects_dependencies(self):
        dag = build_diamond_dag()
        machine = BspMachine.uniform(2, g=1, latency=1)
        tracker = self._make(dag, machine, [0, 0, 1, 0], [0, 1, 1, 2])
        # moving node 3 into superstep 1 would tie it with its cross-processor
        # predecessor 2 -> invalid
        assert not tracker.is_valid_move(3, 0, 1)
        # moving node 1 onto processor 1 in superstep 1 is fine
        assert tracker.is_valid_move(1, 1, 1)
        # moving node 0 after its successors is invalid
        assert not tracker.is_valid_move(0, 0, 2)
        # out-of-range supersteps/processors are invalid
        assert not tracker.is_valid_move(0, 0, -1)
        assert not tracker.is_valid_move(0, 0, 3)
        assert not tracker.is_valid_move(0, 5, 0)

    def test_moves_with_numa_costs(self):
        machine = BspMachine.numa_hierarchy(4, delta=3, g=1, latency=0)
        dag = build_diamond_dag()
        tracker = self._make(dag, machine, [0, 0, 3, 0], [0, 1, 1, 2])
        base = tracker.cost()
        # moving node 2 next to its predecessor removes the expensive transfer
        delta = tracker.apply_move(2, 0, 1)
        assert delta < 0
        assert tracker.cost() == pytest.approx(base + delta)


class TestHillClimbingImprover:
    def test_never_worse_and_valid(self, machine4):
        for seed in range(4):
            dag = random_dag(30, 0.15, seed=seed)
            start = RoundRobinScheduler().schedule(dag, machine4)
            improved = HillClimbingImprover().improve(start)
            assert improved.cost() <= start.cost()
            assert_valid_schedule(improved)

    def test_improves_obviously_bad_schedule(self):
        """A round-robin schedule of a chain is terrible; HC must fix most of it."""
        dag = ComputationalDAG(10)
        for i in range(9):
            dag.add_edge(i, i + 1)
        machine = BspMachine.uniform(4, g=5, latency=1)
        start = RoundRobinScheduler().schedule(dag, machine)
        improved = HillClimbingImprover().improve(start)
        assert improved.cost() < start.cost()

    def test_respects_max_steps(self, machine4):
        dag = random_dag(30, 0.15, seed=1)
        start = RoundRobinScheduler().schedule(dag, machine4)
        limited = HillClimbingImprover(max_steps=1).improve(start)
        unlimited = HillClimbingImprover().improve(start)
        assert unlimited.cost() <= limited.cost() <= start.cost()

    def test_respects_time_budget(self, machine4):
        dag = random_dag(40, 0.1, seed=2)
        start = RoundRobinScheduler().schedule(dag, machine4)
        # an already-expired budget must still return a schedule no worse than the input
        budget = TimeBudget(0.0)
        improved = HillClimbingImprover().improve(start, budget)
        assert improved.cost() <= start.cost()

    def test_local_minimum_is_fixed_point(self, machine4):
        dag = random_dag(20, 0.2, seed=5)
        start = BspGreedyScheduler().schedule(dag, machine4)
        once = HillClimbingImprover().improve(start)
        twice = HillClimbingImprover().improve(once)
        assert twice.cost() == pytest.approx(once.cost())

    def test_single_node_and_empty_dag(self, machine4):
        empty = RoundRobinScheduler().schedule(ComputationalDAG(0), machine4)
        assert HillClimbingImprover().improve(empty).cost() == 0.0
        single = RoundRobinScheduler().schedule(ComputationalDAG(1), machine4)
        improved = HillClimbingImprover().improve(single)
        assert improved.cost() <= single.cost()
