"""Tests for the kernel-dispatch layer (``repro.core.kernels``).

Two concerns live here:

* **dispatch** — backend selection honours ``REPRO_KERNEL_BACKEND``, fails
  loudly on an impossible request (unknown name, numba forced where it is
  not importable), and degrades silently only on the *automatic* path;
* **parity** — every backend must drive the HC/HCcs refiners, the
  coarsener and the symbolic factorisation to identical results.  The
  ``loops`` backend runs the exact uncompiled loop bodies numba compiles,
  so this suite pins the compiled backend's semantics even on machines
  without numba; when numba is importable the jitted backend is tested
  directly as a third parametrization.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import MachineSpec, ScheduleRequest, SchedulerSpec, SchedulingService
from repro.core import BspMachine
from repro.core.kernels import (
    ENV_VAR,
    KernelBackendError,
    available_backends,
    backend_info,
    get_backend,
    numba_impl,
    warmup,
)
from repro.core.parallel import parallel_map
from repro.dagdb import SparseMatrixPattern
from repro.dagdb.structured import symbolic_fill_structure
from repro.schedulers import CommScheduleHillClimbing, HillClimbingImprover
from repro.schedulers.multilevel.coarsen import coarsen_dag
from repro.schedulers.reference import (
    CommScheduleHillClimbingReference,
    HillClimbingImproverReference,
)
from repro.schedulers.trivial import RoundRobinScheduler

from conftest import random_dag

#: every backend the parity suite can exercise in this interpreter
PARITY_BACKENDS = ["numpy", "loops"] + (["numba"] if numba_impl.available() else [])


# ---------------------------------------------------------------------- #
# dispatch
# ---------------------------------------------------------------------- #
class TestBackendSelection:
    def test_default_backend(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        expected = "numba" if numba_impl.available() else "numpy"
        assert get_backend() == expected

    def test_forced_numpy(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy")
        assert get_backend() == "numpy"

    def test_blank_override_means_automatic(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "   ")
        expected = "numba" if numba_impl.available() else "numpy"
        assert get_backend() == expected

    def test_unknown_backend_raises(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "fortran")
        with pytest.raises(KernelBackendError) as excinfo:
            get_backend()
        message = str(excinfo.value)
        assert "fortran" in message
        assert ENV_VAR in message
        assert "numpy" in message and "numba" in message

    def test_forced_numba_unavailable_raises(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numba")
        monkeypatch.setattr(numba_impl, "available", lambda: False)
        monkeypatch.setattr(
            numba_impl, "unavailable_reason", lambda: "not importable"
        )
        with pytest.raises(KernelBackendError) as excinfo:
            get_backend()
        assert "speed" in str(excinfo.value)

    def test_available_backends_always_has_numpy(self):
        names = available_backends()
        assert "numpy" in names
        assert ("numba" in names) == numba_impl.available()

    def test_backend_info_shape(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        info = backend_info()
        assert info["error"] is None
        assert info["active"] in ("numpy", "numba")
        assert info["forced"] is None
        assert "numpy" in info["available"]
        assert info["numba_available"] == numba_impl.available()

    def test_backend_info_reports_error_instead_of_raising(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "bogus")
        info = backend_info()
        assert info["active"] is None
        assert "bogus" in info["error"]

    def test_warmup_is_noop_without_numba(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy")
        assert warmup() == 0.0


# ---------------------------------------------------------------------- #
# backend parity
# ---------------------------------------------------------------------- #
@pytest.fixture(params=PARITY_BACKENDS)
def backend(request, monkeypatch):
    monkeypatch.setenv(ENV_VAR, request.param)
    return request.param


class TestBackendParity:
    def test_hc_moves_match_seed_reference(self, backend):
        for seed in range(4):
            dag = random_dag(28, 0.18, seed=200 + seed)
            machine = BspMachine.uniform(4, g=3, latency=2)
            start = RoundRobinScheduler().schedule(dag, machine)
            reference = HillClimbingImproverReference(record_moves=True)
            dispatched = HillClimbingImprover(record_moves=True)
            ref_result = reference.improve(start)
            result = dispatched.improve(start)
            assert reference.last_moves == dispatched.last_moves, (backend, seed)
            assert np.array_equal(ref_result.procs, result.procs)
            assert np.array_equal(ref_result.supersteps, result.supersteps)

    def test_hc_max_steps_cut_mid_pass(self, backend):
        dag = random_dag(30, 0.15, seed=41)
        machine = BspMachine.uniform(4, g=3, latency=2)
        start = RoundRobinScheduler().schedule(dag, machine)
        unlimited = HillClimbingImprover(record_moves=True)
        unlimited.improve(start)
        assert len(unlimited.last_moves) > 2
        capped = HillClimbingImprover(max_steps=2, record_moves=True)
        capped.improve(start)
        assert capped.last_moves == unlimited.last_moves[:2]

    def test_hccs_moves_match_seed_reference(self, backend):
        for seed in range(4):
            dag = random_dag(32, 0.2, seed=300 + seed)
            machine = BspMachine.numa_hierarchy(4, delta=3, g=2, latency=1)
            start = RoundRobinScheduler().schedule(dag, machine)
            reference = CommScheduleHillClimbingReference(record_moves=True)
            dispatched = CommScheduleHillClimbing(record_moves=True)
            ref_result = reference.improve(start)
            result = dispatched.improve(start)
            assert reference.last_moves == dispatched.last_moves, (backend, seed)
            assert ref_result.comm_schedule == result.comm_schedule

    def test_coarsen_contractions_are_backend_independent(self, backend, monkeypatch):
        dag = random_dag(60, 0.08, seed=17)
        monkeypatch.setenv(ENV_VAR, "numpy")
        baseline = coarsen_dag(dag, 15, search_budget=64)
        monkeypatch.setenv(ENV_VAR, backend)
        sequence = coarsen_dag(dag, 15, search_budget=64)
        assert sequence.records == baseline.records

    def test_symbolic_fill_is_backend_independent(self, backend, monkeypatch):
        pattern = SparseMatrixPattern.random(40, 0.15, seed=5, ensure_diagonal=True)
        monkeypatch.setenv(ENV_VAR, "numpy")
        base_structures, base_parents = symbolic_fill_structure(pattern)
        monkeypatch.setenv(ENV_VAR, backend)
        structures, parents = symbolic_fill_structure(pattern)
        assert np.array_equal(parents, base_parents)
        assert len(structures) == len(base_structures)
        for got, expected in zip(structures, base_structures):
            assert np.array_equal(got, expected)

    def test_pk_coarsen_is_backend_independent(self, backend, monkeypatch):
        # no search_budget -> the auto method routes through the pk_order
        # kernel on every backend
        for seed in (17, 23):
            dag = random_dag(60, 0.1, seed=seed)
            monkeypatch.setenv(ENV_VAR, "numpy")
            baseline = coarsen_dag(dag, 15)
            monkeypatch.setenv(ENV_VAR, backend)
            sequence = coarsen_dag(dag, 15)
            assert sequence.records == baseline.records, (backend, seed)

    def test_hccs_fronts_match_serial_pass(self, backend):
        """Direct front-vs-serial pin on a state with genuinely large fronts.

        The windows use narrow feasible intervals scattered over many
        traffic rows in shuffled scan order, so the conflict scan extracts
        fronts well above the serial-tail guard — the batched kernel call
        is really exercised, and its accepted moves (and final row state)
        must equal the serial walk's exactly.
        """
        from repro.core import kernels

        def synthetic_state(rng, num_rows=64, num_windows=400, procs=4):
            lo = rng.integers(0, num_rows - 4, size=num_windows)
            hi = lo + rng.integers(1, 4, size=num_windows)
            srcs = rng.integers(0, procs, size=num_windows)
            tgts = (srcs + 1 + rng.integers(0, procs - 1, size=num_windows)) % procs
            volumes = rng.integers(1, 5, size=num_windows).astype(np.float64)
            choices = hi.copy()
            send = np.zeros((num_rows, procs))
            recv = np.zeros((num_rows, procs))
            np.add.at(send, (choices, srcs), volumes)
            np.add.at(recv, (choices, tgts), volumes)
            return kernels.HccsState(
                send=send,
                recv=recv,
                comm_max=np.maximum(send, recv).max(axis=1),
                choices=choices,
                movable=np.arange(num_windows, dtype=np.int64),
                srcs=srcs,
                tgts=tgts,
                earliest=lo,
                latest=hi,
                volumes=volumes,
            )

        from repro.core.kernels import numpy_impl as ni

        for seed in range(4):
            rng = np.random.default_rng(700 + seed)
            serial_state = synthetic_state(rng)
            rng = np.random.default_rng(700 + seed)
            front_state = synthetic_state(rng)
            mask = ni.hccs_front_mask(
                front_state.earliest, front_state.latest, front_state.send.shape[0]
            )
            n = front_state.movable.size
            assert mask.sum() > max(8, n // 64)  # fronts genuinely batch
            got_s, serial_moves = kernels.hccs_pass(
                serial_state, 0, n, -1, 1e-9
            )
            got_f, front_moves = kernels.hccs_pass_fronts(front_state, 1e-9)
            assert front_moves == serial_moves, (backend, seed)
            assert got_f == got_s
            assert np.array_equal(front_state.choices, serial_state.choices)
            assert np.allclose(front_state.send, serial_state.send)
            assert np.allclose(front_state.recv, serial_state.recv)
            assert np.allclose(front_state.comm_max, serial_state.comm_max)


# ---------------------------------------------------------------------- #
# thread executor
# ---------------------------------------------------------------------- #
def _square(payload, task):
    return payload + task * task


def _explode(payload, task):
    if task == 2:
        raise ValueError("boom")
    return task


class TestThreadExecutor:
    def test_thread_results_in_task_order(self):
        tasks = list(range(20))
        expected = [_square(10, task) for task in tasks]
        got = parallel_map(_square, 10, tasks, workers=4, executor="thread")
        assert got == expected

    def test_unknown_executor_rejected_even_when_serial(self):
        # validation must precede the workers<=1 serial shortcut: a typo
        # in the executor name fails loudly instead of silently serialising
        with pytest.raises(ValueError, match="unknown executor"):
            parallel_map(_square, 0, [1], workers=1, executor="threads")

    def test_thread_task_error_propagates(self):
        with pytest.raises(ValueError, match="boom"):
            parallel_map(_explode, None, [0, 1, 2, 3], workers=2, executor="thread")

    def test_solve_many_thread_matches_serial(self):
        dag = random_dag(40, 0.15, seed=23)
        machine = MachineSpec(num_procs=4, g=2, latency=3)
        requests = [
            ScheduleRequest(
                dag=dag, machine=machine, scheduler=SchedulerSpec("cilk"), seed=seed
            )
            for seed in range(6)
        ]
        serial = SchedulingService(cache_size=0).solve_many(requests, workers=1)
        threaded = SchedulingService(cache_size=0).solve_many(
            requests, workers=3, executor="thread"
        )
        assert [r.canonical_dict() for r in threaded] == [
            r.canonical_dict() for r in serial
        ]
        # the thread path keeps the live schedule object (nothing crossed a
        # pickle boundary, so there is nothing to rebuild lazily)
        assert all(result._schedule is not None for result in threaded)

    def test_solve_many_rejects_unknown_executor(self):
        dag = random_dag(12, 0.2, seed=3)
        machine = MachineSpec(num_procs=2, g=1, latency=1)
        requests = [
            ScheduleRequest(
                dag=dag, machine=machine, scheduler=SchedulerSpec("cilk"), seed=seed
            )
            for seed in range(2)
        ]
        with pytest.raises(ValueError, match="unknown executor"):
            SchedulingService(cache_size=0).solve_many(
                requests, workers=2, executor="fibers"
            )
