"""Unit tests for the BspSchedule container."""

from __future__ import annotations

import pytest

from repro.core import BspMachine, BspSchedule, CommStep, ScheduleError

from conftest import build_diamond_dag


@pytest.fixture
def machine():
    return BspMachine.uniform(2, g=2, latency=3)


@pytest.fixture
def simple_schedule(machine):
    dag = build_diamond_dag()
    return BspSchedule(dag, machine, [0, 0, 1, 0], [0, 1, 1, 2])


class TestAccessors:
    def test_basic_accessors(self, simple_schedule):
        assert simple_schedule.proc_of(2) == 1
        assert simple_schedule.superstep_of(3) == 2
        assert simple_schedule.num_supersteps == 3
        assert list(simple_schedule.procs) == [0, 0, 1, 0]
        assert list(simple_schedule.supersteps) == [0, 1, 1, 2]

    def test_assignment_views_read_only(self, simple_schedule):
        with pytest.raises(ValueError):
            simple_schedule.procs[0] = 1

    def test_nodes_in_superstep(self, simple_schedule):
        assert simple_schedule.nodes_in_superstep(1) == [1, 2]
        assert simple_schedule.nodes_in_superstep(1, p=1) == [2]
        assert simple_schedule.nodes_in_superstep(0) == [0]

    def test_wrong_length_rejected(self, machine):
        dag = build_diamond_dag()
        with pytest.raises(ScheduleError):
            BspSchedule(dag, machine, [0, 0], [0, 0])

    def test_from_mappings(self, machine):
        dag = build_diamond_dag()
        schedule = BspSchedule.from_mappings(
            dag, machine, {0: 0, 1: 0, 2: 1, 3: 0}, {0: 0, 1: 1, 2: 1, 3: 2}
        )
        assert schedule.proc_of(2) == 1
        assert schedule.is_valid()

    def test_trivial_schedule(self, machine):
        dag = build_diamond_dag()
        trivial = BspSchedule.trivial(dag, machine)
        assert trivial.num_supersteps == 1
        assert set(trivial.procs) == {0}
        assert trivial.is_valid()


class TestCommSchedules:
    def test_lazy_comm_derived(self, simple_schedule):
        assert simple_schedule.uses_lazy_comm
        comm = simple_schedule.comm_schedule
        # node 0 must reach proc 1 before superstep 1; node 2 must reach proc 0 before superstep 2
        nodes_sent = {step.node for step in comm}
        assert nodes_sent == {0, 2}

    def test_with_comm_schedule(self, simple_schedule):
        explicit = frozenset([CommStep(0, 0, 1, 0), CommStep(2, 1, 0, 1)])
        schedule = simple_schedule.with_comm_schedule(explicit)
        assert not schedule.uses_lazy_comm
        assert schedule.comm_schedule == explicit
        assert schedule.is_valid()

    def test_with_lazy_comm_roundtrip(self, simple_schedule):
        explicit = simple_schedule.with_comm_schedule(simple_schedule.comm_schedule)
        back = explicit.with_lazy_comm()
        assert back.uses_lazy_comm
        assert back.cost() == simple_schedule.cost()

    def test_comm_windows(self, simple_schedule):
        windows = simple_schedule.comm_windows()
        assert {w.node for w in windows} == {0, 2}


class TestCostAndCompaction:
    def test_cost_caching_consistency(self, simple_schedule):
        assert simple_schedule.cost() == simple_schedule.cost_breakdown().total
        assert simple_schedule.cost() == simple_schedule.cost()

    def test_copy_independent(self, simple_schedule):
        clone = simple_schedule.copy()
        assert clone.cost() == simple_schedule.cost()
        assert clone is not simple_schedule

    def test_compacted_removes_empty_supersteps(self, machine):
        dag = build_diamond_dag()
        sparse = BspSchedule(dag, machine, [0, 0, 0, 0], [0, 4, 4, 8])
        compacted = sparse.compacted()
        assert compacted.num_supersteps == 3
        assert compacted.cost() < sparse.cost()
        assert compacted.is_valid()

    def test_compacted_preserves_cost_when_dense(self, simple_schedule):
        compacted = simple_schedule.compacted()
        assert compacted.cost() == simple_schedule.cost()

    def test_compacted_with_explicit_comm(self, machine):
        dag = build_diamond_dag()
        schedule = BspSchedule(
            dag,
            machine,
            [0, 0, 1, 0],
            [0, 2, 2, 4],
            [CommStep(0, 0, 1, 0), CommStep(2, 1, 0, 2)],
        )
        compacted = schedule.compacted()
        assert compacted.is_valid()
        assert compacted.num_supersteps <= schedule.num_supersteps

    def test_with_assignment(self, simple_schedule):
        moved = simple_schedule.with_assignment([0, 0, 0, 0], [0, 0, 0, 0])
        assert moved.num_supersteps == 1
        assert moved.is_valid()


class TestReporting:
    def test_describe_contains_costs(self, simple_schedule):
        text = simple_schedule.describe()
        assert "total cost" in text
        assert "superstep 0" in text

    def test_repr(self, simple_schedule):
        assert "BspSchedule" in repr(simple_schedule)
