"""Tests for the unified scheduling-service API (repro.api).

Covers the PR acceptance criteria: every registry scheduler invocable via
``SchedulingService.solve`` from a dict-built request, JSON round-trip
identity for requests and results, fingerprint stability across processes,
cache hit/miss behaviour, and ``solve_many`` parallel == serial replay for
deterministic-budget requests.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api import (
    Budget,
    MachineSpec,
    ScheduleRequest,
    ScheduleResult,
    SchedulerSpec,
    SchedulingService,
    dag_fingerprint,
)
from repro.core import ConfigurationError
from repro.io import write_hyperdag
from repro.schedulers import PipelineConfig, available_schedulers

from conftest import random_dag

#: small per-stage limits so the ILP-bearing schedulers stay fast in tests
FAST_CONFIG = {
    "local_search_seconds": 0.2,
    "ilp_full_seconds": 0.5,
    "ilp_partial_seconds": 0.5,
    "ilp_comm_seconds": 0.5,
    "ilp_init_seconds": 0.5,
}

#: config with no wall-clock budgets at all: every scheduler deterministic
DETERMINISTIC_CONFIG = {
    "use_ilp": False,
    "use_comm_ilp": False,
    "local_search_seconds": None,
}


def _dag(n=14, seed=3):
    return random_dag(n, 0.25, seed=seed)


def _request_dict(scheduler_name, params=None, procs=3, seed=0):
    """A fully dict-built request (the wire form a queue would carry)."""
    dag = _dag()
    request = ScheduleRequest(
        dag=dag,
        machine=MachineSpec(num_procs=procs, g=1, latency=2),
        scheduler=SchedulerSpec(scheduler_name, params or {}),
        seed=seed,
    )
    return json.loads(request.to_json())


class TestSchedulerSpec:
    def test_unknown_name_rejected_at_construction(self):
        with pytest.raises(ConfigurationError, match="available"):
            SchedulerSpec("does_not_exist")

    def test_unknown_parameter_rejected_at_construction(self):
        with pytest.raises(ConfigurationError, match="does not accept"):
            SchedulerSpec("hdagg", {"bogus_knob": 3})

    def test_roundtrip_normalises_rich_params(self):
        config = PipelineConfig(**FAST_CONFIG)
        spec = SchedulerSpec(
            "multilevel", {"config": config, "coarsening_ratios": (0.3, 0.15)}
        )
        data = json.loads(json.dumps(spec.to_dict()))
        assert data["params"]["coarsening_ratios"] == [0.3, 0.15]
        assert data["params"]["config"]["local_search_seconds"] == 0.2
        rebuilt = SchedulerSpec.from_dict(data)
        scheduler = rebuilt.build()
        assert scheduler.config.local_search_seconds == 0.2

    def test_build_injects_default_seed_only_when_accepted(self):
        cilk = SchedulerSpec("cilk").build(default_seed=42)
        assert cilk.seed == 42
        pinned = SchedulerSpec("cilk", {"seed": 7}).build(default_seed=42)
        assert pinned.seed == 7
        SchedulerSpec("hdagg").build(default_seed=42)  # must not blow up


class TestSolveAllRegistrySchedulers:
    @pytest.mark.parametrize("name", available_schedulers())
    def test_every_registry_scheduler_solves_from_dict_request(self, name):
        params = {}
        if name in ("framework", "multilevel"):
            params = {"config": FAST_CONFIG}
        elif name == "framework_heuristics":
            params = {"local_search_seconds": 0.2}
        elif name == "ilp_init":
            params = {"time_limit_per_batch": 0.5}
        result = SchedulingService(cache_size=0).solve(
            _request_dict(name, params, procs=2)
        )
        assert result.cost > 0
        assert result.scheduler == name
        assert result.to_schedule().is_valid()
        # pipeline schedulers report their stage trace
        if name == "framework":
            assert result.stages is not None
            assert result.stages.final == pytest.approx(result.cost)


class TestWireFormat:
    def test_request_json_roundtrip_identity(self):
        data = _request_dict("bsp_greedy")
        rebuilt = ScheduleRequest.from_dict(data)
        assert rebuilt.to_dict() == data
        assert ScheduleRequest.from_json(rebuilt.to_json()).to_dict() == data

    def test_result_json_roundtrip_identity(self):
        result = SchedulingService(cache_size=0).solve(
            _request_dict("framework", {"config": FAST_CONFIG}, procs=2)
        )
        payload = json.loads(result.to_json())
        rebuilt = ScheduleResult.from_dict(payload)
        assert rebuilt.to_dict() == payload
        assert rebuilt.to_schedule().cost() == pytest.approx(result.cost)

    def test_file_reference_requests(self, tmp_path):
        dag = _dag()
        path = tmp_path / "instance.hdag"
        write_hyperdag(dag, path)
        request = ScheduleRequest(
            dag=str(path),
            machine=MachineSpec(2, 1, 2),
            scheduler=SchedulerSpec("source"),
        )
        assert request.to_dict()["dag_ref"] == str(path)
        inline = ScheduleRequest(
            dag=dag, machine=MachineSpec(2, 1, 2), scheduler=SchedulerSpec("source")
        )
        # a reference and its inline content address the same problem
        assert request.fingerprint() == inline.fingerprint()
        assert (
            SchedulingService(cache_size=0).solve(request).canonical_dict()
            == SchedulingService(cache_size=0).solve(inline).canonical_dict()
        )

    def test_dag_ref_mode_roundtrip(self):
        from repro.core.serialization import dag_to_dict

        result = SchedulingService(cache_size=0).solve(_request_dict("hdagg"))
        dag_dict = result.schedule_dict()["dag"]
        table = {"ref-1": dag_dict}
        stripped = result.with_dag_ref("ref-1", resolver=table.__getitem__)
        assert stripped.schedule_dict()["dag_ref"] == "ref-1"
        assert "dag" not in stripped.schedule_dict()
        # resolution is transparent and lossless
        assert stripped.canonical_dict() == result.canonical_dict()
        assert stripped.to_schedule().is_valid()
        assert dag_to_dict(stripped.to_schedule().dag) == dag_dict

    def test_dag_ref_without_resolver_raises(self):
        from repro.core import ReproError

        result = SchedulingService(cache_size=0).solve(_request_dict("hdagg"))
        orphan = result.with_dag_ref("nowhere")
        assert orphan.cost == result.cost  # metadata stays available
        with pytest.raises(ReproError, match="no resolver"):
            orphan.to_dict()

    def test_explicit_machine_roundtrip(self):
        machine = MachineSpec(4, 2, 3, numa_delta=3).build()
        request = ScheduleRequest(
            dag=_dag(), machine=machine, scheduler=SchedulerSpec("hdagg")
        )
        data = request.to_dict()
        assert "numa" in data["machine"]
        rebuilt = ScheduleRequest.from_dict(data)
        assert rebuilt.fingerprint() == request.fingerprint()


class TestFingerprint:
    def test_sensitive_to_every_component(self):
        base = ScheduleRequest.from_dict(_request_dict("hdagg"))
        fingerprints = {base.fingerprint()}
        for variant in (
            ScheduleRequest.from_dict(_request_dict("hdagg", procs=4)),
            ScheduleRequest.from_dict(_request_dict("hdagg", seed=9)),
            ScheduleRequest.from_dict(_request_dict("bsp_greedy")),
            ScheduleRequest(
                dag=_dag(seed=8),
                machine=MachineSpec(3, 1, 2),
                scheduler=SchedulerSpec("hdagg"),
            ),
            ScheduleRequest(
                dag=_dag(),
                machine=MachineSpec(3, 1, 2),
                scheduler=SchedulerSpec("hdagg"),
                budget=Budget(max_steps=5),
            ),
        ):
            fingerprints.add(variant.fingerprint())
        assert len(fingerprints) == 6  # all distinct

    def test_dag_fingerprint_tracks_mutation(self):
        dag = _dag()
        before = dag_fingerprint(dag)
        assert dag_fingerprint(dag) == before  # memoized
        dag.set_work(0, dag.work(0) + 1.0)
        assert dag_fingerprint(dag) != before

    def test_stable_across_processes(self, tmp_path):
        """The same wire request hashes identically in a fresh interpreter."""
        data = _request_dict("framework", {"config": FAST_CONFIG}, seed=5)
        payload_path = tmp_path / "request.json"
        payload_path.write_text(json.dumps(data), encoding="utf-8")
        script = (
            "import json, sys\n"
            "from repro.api import ScheduleRequest\n"
            "request = ScheduleRequest.from_json(open(sys.argv[1]).read())\n"
            "print(request.fingerprint())\n"
        )
        src = str(Path(__file__).resolve().parent.parent / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONHASHSEED"] = "271828"  # a hash-order dependence would show
        out = subprocess.run(
            [sys.executable, "-c", script, str(payload_path)],
            capture_output=True, text=True, env=env, check=True,
        )
        assert out.stdout.strip() == ScheduleRequest.from_dict(data).fingerprint()


class TestCache:
    def test_hit_miss_and_counters(self):
        service = SchedulingService()
        request = _request_dict("bsp_greedy")
        first = service.solve(request)
        assert not first.cache_hit
        second = service.solve(request)
        assert second.cache_hit
        assert second.canonical_dict() == first.canonical_dict()
        assert service.cache_info() == {"hits": 1, "misses": 1, "size": 1}
        # a different seed is a different content address
        third = service.solve(_request_dict("bsp_greedy", seed=11))
        assert not third.cache_hit
        assert service.cache_info()["misses"] == 2

    def test_lru_eviction_and_disable(self):
        service = SchedulingService(cache_size=1)
        a = _request_dict("bsp_greedy", seed=1)
        b = _request_dict("bsp_greedy", seed=2)
        service.solve(a)
        service.solve(b)  # evicts a
        assert service.cache_info()["size"] == 1
        assert not service.solve(a).cache_hit
        disabled = SchedulingService(cache_size=0)
        disabled.solve(a)
        assert not disabled.solve(a).cache_hit
        assert disabled.cache_info()["size"] == 0

    def test_clear_cache(self):
        service = SchedulingService()
        request = _request_dict("source")
        service.solve(request)
        service.clear_cache()
        assert service.cache_info() == {"hits": 0, "misses": 0, "size": 0}
        assert not service.solve(request).cache_hit


class TestSolveMany:
    def _requests(self):
        dag = _dag(16, seed=4)
        specs = [MachineSpec(p, g, 2) for p in (2, 4) for g in (1, 3)]
        return [
            ScheduleRequest(
                dag=dag,
                machine=spec,
                scheduler=SchedulerSpec(
                    "framework", {"config": DETERMINISTIC_CONFIG}
                ),
                budget=Budget(seconds=None, max_steps=50),
                seed=7,
            )
            for spec in specs
        ]

    def test_parallel_bit_identical_to_serial(self):
        serial = SchedulingService(cache_size=0).solve_many(self._requests(), workers=1)
        parallel = SchedulingService(cache_size=0).solve_many(self._requests(), workers=4)
        assert len(serial) == len(parallel) == 4
        for a, b in zip(serial, parallel):
            assert a.canonical_dict() == b.canonical_dict()

    def test_order_matches_requests_and_cache_short_circuits(self):
        service = SchedulingService()
        requests = self._requests()
        first = service.solve_many(requests)
        assert [r.fingerprint for r in first] == [r.fingerprint() for r in requests]
        again = service.solve_many(requests, workers=2)
        assert all(r.cache_hit for r in again)
        assert [a.canonical_dict() for a in again] == [
            f.canonical_dict() for f in first
        ]

    def test_accepts_dict_requests(self):
        service = SchedulingService(cache_size=0)
        results = service.solve_many([_request_dict("source"), _request_dict("hdagg")])
        assert [r.scheduler for r in results] == ["source", "hdagg"]


class TestBudgetModel:
    def test_roundtrip_and_flags(self):
        budget = Budget(seconds=2.5, max_steps=10, ilp_node_limit=100)
        data = budget.to_dict()
        rebuilt = Budget.from_dict(json.loads(json.dumps(data)))
        assert rebuilt.to_dict() == data
        assert not rebuilt.deterministic
        assert Budget(seconds=None, max_steps=3).deterministic
        fresh = rebuilt.started()
        assert fresh.seconds == 2.5 and fresh.max_steps == 10
        assert not fresh.expired()

    def test_is_a_time_budget(self):
        from repro.schedulers import TimeBudget

        budget = Budget(seconds=0.0)
        assert isinstance(budget, TimeBudget)
        assert budget.expired()

    def test_max_steps_bounds_local_search(self):
        """A deterministic step cap of zero must freeze the local search."""
        dag = _dag(20, seed=5)

        def solve(budget):
            return SchedulingService(cache_size=0).solve(
                ScheduleRequest(
                    dag=dag,
                    machine=MachineSpec(4, 1, 2),
                    scheduler=SchedulerSpec(
                        "framework", {"config": DETERMINISTIC_CONFIG}
                    ),
                    budget=budget,
                )
            )

        frozen = solve(Budget(seconds=None, max_steps=0))
        free = solve(Budget(seconds=None))
        assert frozen.stages.after_local_search == pytest.approx(
            frozen.stages.best_init
        )
        assert free.cost <= frozen.cost + 1e-9
