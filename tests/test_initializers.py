"""Unit tests for the BSPg and Source initialisation heuristics."""

from __future__ import annotations

import pytest

from repro.core import BspMachine, ComputationalDAG
from repro.schedulers import BspGreedyScheduler, CilkScheduler, SourceScheduler

from conftest import (
    assert_valid_schedule,
    build_chain_dag,
    build_diamond_dag,
    build_fork_join_dag,
    build_paper_example_dag,
    random_dag,
)
from repro.dagdb import SparseMatrixPattern, build_cg_dag, build_spmv_dag


HEURISTICS = [BspGreedyScheduler, SourceScheduler]


class TestValidity:
    @pytest.mark.parametrize("scheduler_cls", HEURISTICS)
    @pytest.mark.parametrize("num_procs", [1, 2, 4, 8])
    def test_valid_on_standard_dags(self, scheduler_cls, num_procs):
        machine = BspMachine.uniform(num_procs, g=2, latency=3)
        for dag in (
            build_chain_dag(7),
            build_diamond_dag(),
            build_fork_join_dag(9),
            build_paper_example_dag(),
        ):
            assert_valid_schedule(scheduler_cls().schedule(dag, machine))

    @pytest.mark.parametrize("scheduler_cls", HEURISTICS)
    def test_valid_on_random_and_generated_dags(self, scheduler_cls):
        machine = BspMachine.uniform(4, g=3, latency=5)
        dags = [
            random_dag(40, 0.1, seed=s) for s in range(3)
        ] + [
            build_spmv_dag(SparseMatrixPattern.random(8, 0.3, seed=1)).dag,
            build_cg_dag(SparseMatrixPattern.random(5, 0.4, seed=2, ensure_diagonal=True), 2).dag,
        ]
        for dag in dags:
            assert_valid_schedule(scheduler_cls().schedule(dag, machine))

    @pytest.mark.parametrize("scheduler_cls", HEURISTICS)
    def test_empty_and_singleton(self, scheduler_cls):
        machine = BspMachine.uniform(3)
        assert scheduler_cls().schedule(ComputationalDAG(0), machine).cost() == 0.0
        single = scheduler_cls().schedule(ComputationalDAG(1, [4], [1]), machine)
        assert single.cost() == 4.0 + machine.latency

    @pytest.mark.parametrize("scheduler_cls", HEURISTICS)
    def test_numa_machines(self, scheduler_cls, numa_machine8):
        dag = random_dag(35, 0.12, seed=8)
        assert_valid_schedule(scheduler_cls().schedule(dag, numa_machine8))

    @pytest.mark.parametrize("scheduler_cls", HEURISTICS)
    def test_every_node_assigned_exactly_once(self, scheduler_cls, spmv_dag, machine4):
        schedule = scheduler_cls().schedule(spmv_dag, machine4)
        assert len(schedule.procs) == spmv_dag.num_nodes
        assert schedule.supersteps.min() >= 0


class TestBspGreedy:
    def test_uses_multiple_processors_on_wide_dags(self):
        dag = build_fork_join_dag(16)
        machine = BspMachine.uniform(4, g=1, latency=1)
        schedule = BspGreedyScheduler().schedule(dag, machine)
        assert len(set(schedule.procs.tolist())) > 1

    def test_work_balanced_within_superstep(self):
        dag = build_fork_join_dag(32)
        machine = BspMachine.uniform(4, g=0, latency=0)
        schedule = BspGreedyScheduler().schedule(dag, machine)
        breakdown = schedule.cost_breakdown()
        # the middle layer has 32 unit-work nodes over 4 procs; the maximum
        # should be close to the average (perfect would be 8)
        assert max(breakdown.work_per_superstep) <= 14

    def test_idle_fraction_parameter(self, spmv_dag, machine4):
        eager_close = BspGreedyScheduler(idle_fraction=0.25).schedule(spmv_dag, machine4)
        late_close = BspGreedyScheduler(idle_fraction=1.0).schedule(spmv_dag, machine4)
        assert_valid_schedule(eager_close)
        assert_valid_schedule(late_close)

    def test_beats_cilk_on_communication_heavy_instance(self):
        """BSPg is communication-aware, Cilk is not (paper §7.1 tendency)."""
        dag = build_spmv_dag(SparseMatrixPattern.random(10, 0.35, seed=7)).dag
        machine = BspMachine.uniform(4, g=5, latency=5)
        bspg = BspGreedyScheduler().schedule(dag, machine)
        cilk = CilkScheduler(seed=0).schedule(dag, machine)
        assert bspg.cost() <= cilk.cost()


class TestSource:
    def test_first_superstep_clusters_shared_successors(self):
        """Sources feeding the same node start on the same processor."""
        dag = ComputationalDAG(6)
        # sources 0,1 share successor 4; sources 2,3 share successor 5
        dag.add_edges([(0, 4), (1, 4), (2, 5), (3, 5)])
        machine = BspMachine.uniform(4, g=1, latency=1)
        schedule = SourceScheduler().schedule(dag, machine)
        assert schedule.proc_of(0) == schedule.proc_of(1)
        assert schedule.proc_of(2) == schedule.proc_of(3)

    def test_pulls_single_owner_successors_into_superstep(self):
        """The pull rule merges a node into its single owner's superstep (Algorithm 2)."""
        dag = ComputationalDAG(3)
        dag.add_edges([(0, 1), (1, 2)])
        machine = BspMachine.uniform(2, g=1, latency=1)
        schedule = SourceScheduler().schedule(dag, machine)
        # node 1 is pulled next to node 0; node 2 (successor of a pulled node,
        # not of a source) starts the next superstep
        assert schedule.superstep_of(1) == schedule.superstep_of(0)
        assert schedule.proc_of(1) == schedule.proc_of(0)
        assert schedule.num_supersteps == 2

    def test_star_successors_follow_their_source(self):
        """Successors of one source are pulled onto its processor (no communication)."""
        dag = ComputationalDAG(9, [1, 8, 7, 6, 5, 4, 3, 2, 1])
        dag.add_edges([(0, i) for i in range(1, 9)])
        machine = BspMachine.uniform(4, g=0, latency=0)
        schedule = SourceScheduler().schedule(dag, machine)
        assert all(schedule.proc_of(v) == schedule.proc_of(0) for v in range(1, 9))
        assert schedule.num_supersteps == 1

    def test_round_robin_balances_by_decreasing_work(self):
        """A layer whose nodes depend on several processors is spread round-robin."""
        # four independent chains A_i -> B_i (distinct processors), then a layer
        # of nodes with decreasing work that each depend on two different chains
        # (so the pull rule cannot absorb them)
        works = [1] * 8 + [8, 7, 6, 5, 4, 3, 2, 1]
        dag = ComputationalDAG(16, works)
        for i in range(4):
            dag.add_edge(i, 4 + i)
        for j in range(8):
            dag.add_edge(4 + (j % 4), 8 + j)
            dag.add_edge(4 + ((j + 1) % 4), 8 + j)
        machine = BspMachine.uniform(4, g=0, latency=0)
        schedule = SourceScheduler().schedule(dag, machine)
        layer_step = schedule.superstep_of(8)
        breakdown = schedule.cost_breakdown()
        # decreasing-order round-robin keeps the maximum close to the mean (36/4 = 9)
        assert breakdown.work_per_superstep[layer_step] <= 12

    def test_good_for_shallow_spmv(self):
        """The paper finds Source effective on shallow spmv DAGs."""
        dag = build_spmv_dag(SparseMatrixPattern.random(12, 0.3, seed=11)).dag
        machine = BspMachine.uniform(4, g=1, latency=5)
        source = SourceScheduler().schedule(dag, machine)
        cilk = CilkScheduler(seed=0).schedule(dag, machine)
        assert source.cost() <= cilk.cost()
        assert source.num_supersteps <= 4
