"""Unit tests for the fine-grained DAG generators (spmv, exp, cg, knn)."""

from __future__ import annotations

import pytest

from repro.core import DagError
from repro.dagdb import (
    FINE_GENERATORS,
    SparseMatrixPattern,
    build_cg_dag,
    build_iterated_spmv_dag,
    build_knn_dag,
    build_spmv_dag,
)


@pytest.fixture
def small_pattern():
    return SparseMatrixPattern.from_coordinates(
        3, [(0, 0), (0, 1), (1, 1), (2, 1), (2, 2)]
    )


class TestSpmv:
    def test_figure2_style_structure(self):
        """The paper's Figure 2 example: a 2x2 matrix with 3 nonzeros."""
        pattern = SparseMatrixPattern.from_coordinates(2, [(0, 0), (1, 0), (1, 1)])
        result = build_spmv_dag(pattern)
        dag = result.dag
        # sources: 3 matrix entries + 2 vector entries = 5; multiplies: 3;
        # reduce: 1 (row 1 has two products; row 0 has one and skips the add)
        assert len(result.nodes_with_role("input:A")) == 3
        assert len(result.nodes_with_role("input:u")) == 2
        assert len(result.nodes_with_role("multiply")) == 3
        assert len(result.nodes_with_role("reduce")) == 1
        assert dag.num_nodes == 9
        assert dag.is_acyclic()

    def test_depth_is_at_most_three(self, small_pattern):
        dag = build_spmv_dag(small_pattern).dag
        assert dag.depth() <= 3

    def test_weight_rule(self, small_pattern):
        result = build_spmv_dag(small_pattern)
        dag = result.dag
        for v in dag.nodes():
            if dag.in_degree(v) == 0:
                assert dag.work(v) == 1.0
            else:
                assert dag.work(v) == max(dag.in_degree(v) - 1, 1)
            assert dag.comm(v) == 1.0

    def test_empty_rows_produce_no_output_node(self):
        pattern = SparseMatrixPattern.from_coordinates(3, [(0, 0)])
        result = build_spmv_dag(pattern)
        # only row 0 produces anything; 1 matrix source + 3 vector sources + 1 multiply
        assert result.dag.num_nodes == 5

    def test_scaling_with_nnz(self):
        small = build_spmv_dag(SparseMatrixPattern.random(8, 0.2, seed=1)).dag
        large = build_spmv_dag(SparseMatrixPattern.random(8, 0.8, seed=1)).dag
        assert large.num_nodes > small.num_nodes


class TestIteratedSpmv:
    def test_node_count_grows_with_iterations(self, small_pattern):
        one = build_iterated_spmv_dag(small_pattern, 1).dag
        three = build_iterated_spmv_dag(small_pattern, 3).dag
        assert three.num_nodes > one.num_nodes
        assert three.depth() > one.depth()

    def test_single_iteration_matches_spmv(self, small_pattern):
        exp1 = build_iterated_spmv_dag(small_pattern, 1).dag
        spmv = build_spmv_dag(small_pattern).dag
        assert exp1.num_nodes == spmv.num_nodes
        assert exp1.num_edges == spmv.num_edges

    def test_invalid_iterations(self, small_pattern):
        with pytest.raises(DagError):
            build_iterated_spmv_dag(small_pattern, 0)

    def test_vanishing_product_stops_early(self):
        # matrix with an empty row everywhere except row 0 referencing column 1:
        # after one iteration the vector support no longer feeds any row
        pattern = SparseMatrixPattern.from_coordinates(2, [(0, 1)])
        dag = build_iterated_spmv_dag(pattern, 5).dag
        assert dag.is_acyclic()
        assert dag.num_nodes <= 5


class TestKnn:
    def test_support_grows_along_reachability(self):
        # ring-like structure: 0->1->2->... so support grows one row per hop
        pattern = SparseMatrixPattern.from_coordinates(
            4, [(1, 0), (2, 1), (3, 2)]
        )
        result = build_knn_dag(pattern, 3, start_index=0)
        assert result.dag.num_nodes > 4
        assert result.dag.is_acyclic()

    def test_start_index_validation(self, small_pattern):
        with pytest.raises(DagError):
            build_knn_dag(small_pattern, 2, start_index=10)
        with pytest.raises(DagError):
            build_knn_dag(small_pattern, 0)

    def test_knn_smaller_than_exp(self, small_pattern):
        """knn starts from a single nonzero, so it generates fewer nodes than exp."""
        knn = build_knn_dag(small_pattern, 3).dag
        exp = build_iterated_spmv_dag(small_pattern, 3).dag
        assert knn.num_nodes <= exp.num_nodes


class TestCg:
    def test_structure_and_growth(self, small_pattern):
        one = build_cg_dag(small_pattern, 1).dag
        three = build_cg_dag(small_pattern, 3).dag
        assert one.is_acyclic()
        assert three.num_nodes > one.num_nodes
        assert three.depth() > one.depth()

    def test_roles_present(self, small_pattern):
        result = build_cg_dag(small_pattern, 2)
        roles = set(result.roles.values())
        assert "scalar:alpha" in roles
        assert "scalar:beta" in roles
        assert any(role.startswith("axpy") for role in roles)

    def test_invalid_iterations(self, small_pattern):
        with pytest.raises(DagError):
            build_cg_dag(small_pattern, 0)

    def test_weight_rule_applied(self, small_pattern):
        dag = build_cg_dag(small_pattern, 2).dag
        for v in dag.nodes():
            expected = 1.0 if dag.in_degree(v) == 0 else max(dag.in_degree(v) - 1, 1)
            assert dag.work(v) == expected


class TestRegistry:
    def test_all_four_generators_registered(self):
        assert set(FINE_GENERATORS) == {"spmv", "exp", "knn", "cg"}

    def test_registry_callables_produce_dags(self, small_pattern):
        for name, generator in FINE_GENERATORS.items():
            result = generator(small_pattern, 2)
            assert result.dag.num_nodes > 0, name
            assert result.dag.is_acyclic(), name
