"""Unit tests for sparse matrix pattern generation."""

from __future__ import annotations

import pytest

from repro.core import DagError
from repro.dagdb import SparseMatrixPattern
from repro.dagdb.sparsegen import pattern_from_sequence_of_rows


class TestConstruction:
    def test_random_density_and_determinism(self):
        a = SparseMatrixPattern.random(40, 0.3, seed=1)
        b = SparseMatrixPattern.random(40, 0.3, seed=1)
        c = SparseMatrixPattern.random(40, 0.3, seed=2)
        assert a.rows == b.rows
        assert a.rows != c.rows
        assert 0.15 < a.density() < 0.45

    def test_random_extreme_densities(self):
        empty = SparseMatrixPattern.random(10, 0.0, seed=0)
        dense = SparseMatrixPattern.random(10, 1.0, seed=0)
        assert empty.nnz == 0
        assert dense.nnz == 100

    def test_ensure_diagonal(self):
        pattern = SparseMatrixPattern.random(15, 0.05, seed=0, ensure_diagonal=True)
        for i in range(15):
            assert i in pattern.row(i)

    def test_invalid_density_rejected(self):
        with pytest.raises(DagError):
            SparseMatrixPattern.random(5, 1.5)

    def test_from_coordinates(self):
        pattern = SparseMatrixPattern.from_coordinates(3, [(0, 1), (2, 0), (0, 1)])
        assert pattern.nnz == 2
        assert pattern.row(0) == (1,)
        assert pattern.row(2) == (0,)

    def test_from_coordinates_out_of_range(self):
        with pytest.raises(DagError):
            SparseMatrixPattern.from_coordinates(2, [(0, 5)])

    def test_dense_and_tridiagonal(self):
        dense = SparseMatrixPattern.dense(4)
        assert dense.nnz == 16
        tri = SparseMatrixPattern.tridiagonal(5)
        assert tri.nnz == 13
        assert tri.row(0) == (0, 1)
        assert tri.row(2) == (1, 2, 3)

    def test_lower_triangular(self):
        pattern = SparseMatrixPattern.lower_triangular_random(20, 0.3, seed=1)
        for i in range(20):
            assert i in pattern.row(i)
            assert all(j <= i for j in pattern.row(i))

    def test_invalid_rows_rejected(self):
        with pytest.raises(DagError):
            SparseMatrixPattern(size=2, rows=((1, 0), ()))  # unsorted
        with pytest.raises(DagError):
            SparseMatrixPattern(size=2, rows=((5,), ()))  # out of range
        with pytest.raises(DagError):
            SparseMatrixPattern(size=2, rows=((0,),))  # wrong number of rows

    def test_pattern_from_sequence_of_rows(self):
        pattern = pattern_from_sequence_of_rows([[1, 0, 1], [1]])
        assert pattern.row(0) == (0, 1)
        assert pattern.row(1) == (1,)


class TestQueries:
    def test_column_and_coordinates(self):
        pattern = SparseMatrixPattern.from_coordinates(3, [(0, 1), (2, 1), (1, 0)])
        assert pattern.column(1) == (0, 2)
        assert sorted(pattern.coordinates()) == [(0, 1), (1, 0), (2, 1)]

    def test_to_dense(self):
        pattern = SparseMatrixPattern.from_coordinates(2, [(0, 1)])
        dense = pattern.to_dense()
        assert dense.shape == (2, 2)
        assert dense[0, 1] == 1
        assert dense.sum() == 1

    def test_transpose(self):
        pattern = SparseMatrixPattern.from_coordinates(3, [(0, 1), (2, 0)])
        transposed = pattern.transpose()
        assert sorted(transposed.coordinates()) == [(0, 2), (1, 0)]

    def test_density_of_empty_matrix(self):
        assert SparseMatrixPattern(0, ()).density() == 0.0
