"""Unit tests for the HCcs communication-schedule local search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BspMachine, BspSchedule, ComputationalDAG
from repro.schedulers import CommScheduleHillClimbing
from repro.schedulers.trivial import RoundRobinScheduler

from conftest import assert_valid_schedule, random_dag


def _bottleneck_instance():
    """Rescheduling a flexible transfer into an already-paid-for phase helps.

    Phase 0 is dominated by a mandatory transfer of volume 10 (node 4 to node
    5).  The lazy schedule sends the two volume-3 values of processor 0 in
    phase 1, where their combined send volume of 6 defines the h-relation.
    Moving one of them into phase 0 rides along the existing maximum
    (10 >= 3 + 3), reducing the phase-1 cost from 6 to 3.
    """
    dag = ComputationalDAG(6, [1] * 6, [3, 3, 1, 1, 10, 1])
    dag.add_edge(0, 2)
    dag.add_edge(1, 3)
    dag.add_edge(4, 5)
    machine = BspMachine.uniform(4, g=2, latency=1)
    procs = np.array([0, 0, 1, 2, 2, 3])
    steps = np.array([0, 0, 2, 2, 0, 1])
    return BspSchedule(dag, machine, procs, steps), dag, machine


class TestCommHillClimbing:
    def test_reduces_send_bottleneck(self):
        schedule, _, machine = _bottleneck_instance()
        improved = CommScheduleHillClimbing().improve(schedule)
        assert improved.cost() < schedule.cost()
        assert_valid_schedule(improved)
        # both volume-3 sends of processor 0 ride along the mandatory volume-10
        # transfer in phase 0, so the whole communication cost collapses to it
        assert improved.cost_breakdown().comm == pytest.approx(machine.g * 10)

    def test_keeps_assignment_fixed(self):
        schedule, _, _ = _bottleneck_instance()
        improved = CommScheduleHillClimbing().improve(schedule)
        assert np.array_equal(improved.procs, schedule.procs)
        assert np.array_equal(improved.supersteps, schedule.supersteps)

    def test_never_worse_on_random_schedules(self, machine4):
        for seed in range(4):
            dag = random_dag(25, 0.15, seed=seed)
            start = RoundRobinScheduler().schedule(dag, machine4)
            improved = CommScheduleHillClimbing().improve(start)
            assert improved.cost() <= start.cost()
            assert_valid_schedule(improved)

    def test_no_required_transfers_is_noop(self, machine4):
        dag = random_dag(10, 0.2, seed=1)
        trivial = BspSchedule.trivial(dag, machine4)
        assert CommScheduleHillClimbing().improve(trivial) is trivial

    def test_single_phase_windows_cannot_move(self):
        """When every window has width one the lazy schedule is already optimal."""
        dag = ComputationalDAG(2, [1, 1], [2, 1])
        dag.add_edge(0, 1)
        machine = BspMachine.uniform(2, g=1, latency=1)
        schedule = BspSchedule(dag, machine, [0, 1], [0, 1])
        improved = CommScheduleHillClimbing().improve(schedule)
        assert improved.cost() == schedule.cost()

    def test_starts_from_explicit_schedule_when_given(self):
        schedule, _, _ = _bottleneck_instance()
        first = CommScheduleHillClimbing().improve(schedule)
        again = CommScheduleHillClimbing().improve(first)
        assert again.cost() <= first.cost()
        assert_valid_schedule(again)

    def test_numa_costs_respected(self):
        dag = ComputationalDAG(4, [1, 1, 1, 1], [5, 5, 1, 1])
        dag.add_edge(0, 2)
        dag.add_edge(1, 3)
        machine = BspMachine.numa_hierarchy(4, delta=4, g=1, latency=1)
        schedule = BspSchedule(
            dag, machine, np.array([0, 0, 2, 3]), np.array([0, 0, 2, 2])
        )
        improved = CommScheduleHillClimbing().improve(schedule)
        assert improved.cost() <= schedule.cost()
        assert_valid_schedule(improved)
