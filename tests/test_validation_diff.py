"""Differential tests: vectorized validation/conversion vs the reference walkers.

The vectorized :func:`repro.core.validation.schedule_violations` and
:func:`repro.core.classical.classical_to_bsp` must be *bit-identical* to the
pure-Python reference implementations in :mod:`repro.core.reference` — same
messages, same order, same truncation — on valid schedules, on invalid
schedules from every violation category, and on randomized dagdb instances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BspMachine,
    ClassicalSchedule,
    CommStep,
    classical_to_bsp,
    schedule_violations,
)
from repro.core.reference import (
    adjacency_from_edges,
    classical_to_bsp_ref,
    schedule_violations_ref,
)
from repro.dagdb import SparseMatrixPattern, build_cg_dag, build_spmv_dag
from repro.schedulers import BspGreedyScheduler, CilkScheduler, SourceScheduler

from conftest import build_chain_dag, build_diamond_dag, build_paper_example_dag, random_dag


def ref_violations(dag, machine, procs, supersteps, steps, max_violations=20):
    """Run the reference walker on the plain-data image of the same instance."""
    src, dst = dag.edge_arrays()
    return schedule_violations_ref(
        dag.num_nodes,
        machine.num_procs,
        list(zip(src.tolist(), dst.tolist())),
        np.asarray(procs),
        np.asarray(supersteps),
        list(steps),
        max_violations,
    )


def assert_same_violations(dag, machine, procs, supersteps, steps, max_violations=20):
    procs = np.asarray(procs)
    supersteps = np.asarray(supersteps)
    steps = list(steps)
    fast = schedule_violations(dag, machine, procs, supersteps, steps, max_violations)
    slow = ref_violations(dag, machine, procs, supersteps, steps, max_violations)
    assert fast == slow
    return fast


def dagdb_instances():
    yield build_spmv_dag(
        SparseMatrixPattern.random(6, 0.4, seed=3, ensure_diagonal=True)
    ).dag
    yield build_cg_dag(
        SparseMatrixPattern.random(4, 0.5, seed=7, ensure_diagonal=True), 2
    ).dag
    yield build_paper_example_dag()
    for seed in (0, 1, 2):
        yield random_dag(25, 0.15, seed=seed)


class TestDifferentialOnSchedulerOutput:
    """Valid schedules from the real schedulers agree (and are violation free)."""

    @pytest.mark.parametrize("procs_count", [1, 2, 4])
    def test_scheduler_outputs(self, procs_count):
        machine = BspMachine.uniform(procs_count, g=2, latency=3)
        for dag in dagdb_instances():
            for scheduler in (BspGreedyScheduler(), SourceScheduler(), CilkScheduler(0)):
                schedule = scheduler.schedule(dag, machine)
                steps = sorted(schedule.comm_schedule)
                violations = assert_same_violations(
                    dag, machine, schedule.procs, schedule.supersteps, steps
                )
                assert violations == []

    def test_forwarding_chain(self):
        machine = BspMachine.uniform(4, g=1, latency=1)
        dag = build_chain_dag(2)
        procs = np.array([0, 3])
        supersteps = np.array([0, 4])
        chain = [CommStep(0, 0, 1, 0), CommStep(0, 1, 2, 1), CommStep(0, 2, 3, 2)]
        assert assert_same_violations(dag, machine, procs, supersteps, chain) == []
        # breaking any link of the chain must produce the same messages too
        for drop in range(3):
            broken = [s for i, s in enumerate(chain) if i != drop]
            violations = assert_same_violations(dag, machine, procs, supersteps, broken)
            assert violations


class TestDifferentialOnInvalidSchedules:
    """Every violation category produces identical messages through both paths."""

    def cases(self):
        machine = BspMachine.uniform(2, g=1, latency=1)
        chain = build_chain_dag(2)
        diamond = build_diamond_dag()
        yield machine, chain, [0, 5], [0, 1], []  # invalid processor
        yield machine, chain, [0, 0], [0, -1], []  # negative superstep
        yield machine, chain, [0, 0], [1, 0], []  # same-proc precedence
        yield machine, chain, [0, 1], [0, 1], []  # cross-proc, no comm
        yield machine, chain, [0, 1], [0, 1], [CommStep(0, 0, 1, 1)]  # comm too late
        yield machine, chain, [0, 0], [0, 1], [CommStep(0, 0, 0, 0)]  # self send
        yield machine, chain, [0, 0], [0, 1], [CommStep(0, 0, 9, 0)]  # invalid comm proc
        yield machine, chain, [0, 0], [0, 1], [CommStep(0, 0, 1, -2)]  # negative comm phase
        yield machine, chain, [0, 0], [0, 1], [CommStep(9, 0, 1, 0)]  # unknown node id
        yield machine, chain, [0, 1], [1, 3], [CommStep(0, 0, 1, 0)]  # sent before computed
        yield machine, chain, [0, 0], [0, 1], [CommStep(0, 1, 0, 0)]  # wrong source proc
        # redundant deliveries: duplicate send and loop back to the computing proc
        yield machine, chain, [0, 1], [0, 2], [CommStep(0, 0, 1, 0), CommStep(0, 0, 1, 1)]
        yield (
            BspMachine.uniform(3),
            chain,
            [0, 2],
            [0, 3],
            [CommStep(0, 0, 1, 0), CommStep(0, 1, 2, 1), CommStep(0, 1, 0, 1)],
        )
        yield machine, diamond, [0, 1, 1, 0], [0, 0, 0, 0], []  # several categories at once

    def test_categories(self):
        for machine, dag, procs, supersteps, steps in self.cases():
            violations = assert_same_violations(dag, machine, procs, supersteps, steps)
            assert violations

    def test_max_violations_truncation(self):
        machine = BspMachine.uniform(2)
        dag = build_chain_dag(40)
        procs = np.zeros(40, dtype=np.int64)
        supersteps = -np.ones(40, dtype=np.int64)
        for cap in (1, 3, 20):
            violations = assert_same_violations(
                dag, machine, procs, supersteps, [], max_violations=cap
            )
            assert len(violations) == cap


class TestDifferentialRandomized:
    """Fuzz both paths with random (mostly broken) schedules and comm steps."""

    def test_random_assignments_and_steps(self):
        rng = np.random.default_rng(42)
        machine = BspMachine.uniform(3, g=1, latency=1)
        for trial in range(40):
            dag = random_dag(12, 0.2, seed=trial)
            n = dag.num_nodes
            # mostly valid ranges so the vectorized path is exercised; a few
            # trials use out-of-range ids to cover the reference fallback
            degenerate = trial % 8 == 0
            hi_proc = 5 if degenerate else 3
            procs = rng.integers(0, hi_proc, size=n)
            supersteps = rng.integers(-1, 4, size=n)
            steps = [
                CommStep(
                    int(rng.integers(0, n + (2 if degenerate else 0))),
                    int(rng.integers(0, hi_proc)),
                    int(rng.integers(0, hi_proc)),
                    int(rng.integers(-1, 4)),
                )
                for _ in range(int(rng.integers(0, 10)))
            ]
            assert_same_violations(dag, machine, procs, supersteps, steps)

    def test_perturbed_valid_schedules(self):
        rng = np.random.default_rng(7)
        machine = BspMachine.uniform(4, g=1, latency=2)
        for seed in range(8):
            dag = random_dag(20, 0.15, seed=100 + seed)
            schedule = BspGreedyScheduler().schedule(dag, machine)
            procs = schedule.procs.copy()
            supersteps = schedule.supersteps.copy()
            steps = sorted(schedule.comm_schedule)
            # flip one node's placement and one step's phase
            victim = int(rng.integers(0, dag.num_nodes))
            procs[victim] = (procs[victim] + 1) % machine.num_procs
            if steps:
                i = int(rng.integers(0, len(steps)))
                steps[i] = steps[i]._replace(superstep=steps[i].superstep + 3)
            assert_same_violations(dag, machine, procs, supersteps, steps)


class TestRedundantDeliveryRegression:
    """Satellite bugfix: the seed's dead 'communication schedule sanity' block.

    The seed built the arrivals dict, computed ``key``/``arrival`` and then
    did nothing — duplicate and too-early deliveries slipped through
    validation silently.  They must be reported now.
    """

    def test_duplicate_delivery_is_reported(self):
        machine = BspMachine.uniform(2, g=1, latency=1)
        dag = build_chain_dag(2)
        steps = [CommStep(0, 0, 1, 0), CommStep(0, 0, 1, 1)]
        violations = schedule_violations(
            dag, machine, np.array([0, 1]), np.array([0, 3]), steps
        )
        assert any("re-delivers" in v for v in violations)

    def test_identical_arrival_duplicates_flag_each_other(self):
        machine = BspMachine.uniform(3, g=1, latency=1)
        dag = build_chain_dag(2)
        # the same value reaches processor 2 twice in the same phase
        steps = [
            CommStep(0, 0, 1, 0),
            CommStep(0, 0, 2, 1),
            CommStep(0, 1, 2, 1),
        ]
        violations = schedule_violations(
            dag, machine, np.array([0, 2]), np.array([0, 3]), steps, max_violations=50
        )
        assert sum("re-delivers" in v for v in violations) == 2

    def test_loop_back_to_computing_processor_is_reported(self):
        machine = BspMachine.uniform(2, g=1, latency=1)
        dag = build_chain_dag(2)
        steps = [CommStep(0, 0, 1, 0), CommStep(0, 1, 0, 1)]
        violations = schedule_violations(
            dag, machine, np.array([0, 1]), np.array([0, 2]), steps
        )
        assert any("re-delivers" in v for v in violations)

    def test_distinct_targets_are_not_redundant(self):
        machine = BspMachine.uniform(3, g=1, latency=1)
        dag = build_chain_dag(2)
        steps = [CommStep(0, 0, 1, 0), CommStep(0, 1, 2, 1)]
        violations = schedule_violations(
            dag, machine, np.array([0, 2]), np.array([0, 3]), steps
        )
        assert violations == []


class TestSparseAvailabilityTable:
    """Satellite: above the dense cell ceiling the sparse unique-key table
    must produce bit-identical messages (previously those instances fell
    back to the pure-Python reference walker)."""

    @pytest.fixture(autouse=True)
    def force_sparse(self, monkeypatch):
        import repro.core.validation as validation

        monkeypatch.setattr(validation, "_MAX_DENSE_CELLS", 0)

    def test_valid_scheduler_outputs_stay_clean(self):
        machine = BspMachine.uniform(4, g=2, latency=3)
        for dag in dagdb_instances():
            schedule = BspGreedyScheduler().schedule(dag, machine)
            steps = sorted(schedule.comm_schedule)
            violations = assert_same_violations(
                dag, machine, schedule.procs, schedule.supersteps, steps
            )
            assert violations == []

    def test_forwarding_chain_sparse(self):
        machine = BspMachine.uniform(4, g=1, latency=1)
        dag = build_chain_dag(2)
        procs = np.array([0, 3])
        supersteps = np.array([0, 4])
        chain = [CommStep(0, 0, 1, 0), CommStep(0, 1, 2, 1), CommStep(0, 2, 3, 2)]
        assert assert_same_violations(dag, machine, procs, supersteps, chain) == []
        for drop in range(3):
            broken = [s for i, s in enumerate(chain) if i != drop]
            assert assert_same_violations(dag, machine, procs, supersteps, broken)

    def test_randomized_sparse(self):
        rng = np.random.default_rng(1234)
        machine = BspMachine.uniform(3, g=1, latency=1)
        for trial in range(30):
            dag = random_dag(12, 0.2, seed=500 + trial)
            n = dag.num_nodes
            procs = rng.integers(0, 3, size=n)
            supersteps = rng.integers(-1, 4, size=n)
            steps = [
                CommStep(
                    int(rng.integers(0, n)),
                    int(rng.integers(0, 3)),
                    int(rng.integers(0, 3)),
                    int(rng.integers(-1, 4)),
                )
                for _ in range(int(rng.integers(0, 10)))
            ]
            assert_same_violations(dag, machine, procs, supersteps, steps)


class TestConversionArgmaxSatellite:
    """Satellite: the repeated-argmax bump search equals the linear sweep."""

    def test_bump_positions_fuzz(self):
        from repro.core.classical import (
            _superstep_bumps_argmax,
            _superstep_bumps_sweep,
        )

        rng = np.random.default_rng(77)
        for _ in range(200):
            n = int(rng.integers(0, 150))
            bound = rng.integers(-1, max(n, 1), size=n)
            assert _superstep_bumps_argmax(bound).tolist() == _superstep_bumps_sweep(
                bound
            )

    def test_fragmented_schedule_hits_sweep_fallback(self):
        # every position bumps: the probe budget is exhausted and the sweep
        # tail must take over seamlessly
        from repro.core.classical import (
            _superstep_bumps_argmax,
            _superstep_bumps_sweep,
        )

        n = 5000
        bound = np.arange(n) - 1
        bound[0] = 0  # bump at every position including the first
        assert _superstep_bumps_argmax(bound).tolist() == _superstep_bumps_sweep(bound)


class TestClassicalConversionDifferential:
    def convert_both(self, dag, num_procs, procs, start_times):
        classical = ClassicalSchedule(
            dag, num_procs=num_procs, procs=procs, start_times=start_times
        )
        machine = BspMachine.uniform(num_procs, g=1, latency=1)
        schedule = classical_to_bsp(classical, machine)
        src, dst = dag.edge_arrays()
        _, pred = adjacency_from_edges(
            dag.num_nodes, list(zip(src.tolist(), dst.tolist()))
        )
        expected = classical_to_bsp_ref(pred, procs.tolist(), start_times.tolist())
        assert schedule.supersteps.tolist() == expected
        return schedule

    def test_baseline_classical_schedules(self):
        for dag in dagdb_instances():
            for num_procs in (1, 2, 4):
                classical = CilkScheduler(seed=1).classical_schedule(dag, num_procs)
                self.convert_both(
                    dag, num_procs, classical.procs, classical.start_times
                )

    def test_start_time_ties_break_by_node_id(self):
        dag = build_paper_example_dag()
        procs = np.arange(dag.num_nodes, dtype=np.int64) % 3
        start_times = dag.levels().astype(np.float64)  # heavy ties inside layers
        self.convert_both(dag, 3, procs, start_times)

    def test_single_processor_stays_one_superstep(self):
        dag = random_dag(30, 0.1, seed=5)
        classical = CilkScheduler(seed=0).classical_schedule(dag, 1)
        schedule = self.convert_both(dag, 1, classical.procs, classical.start_times)
        assert schedule.num_supersteps == 1


class TestClassicalScheduleSatellite:
    """Satellite bugfix: finish_times typing and the vectorized validate."""

    def test_finish_times_annotation_allows_none(self):
        import typing

        hints = typing.get_type_hints(ClassicalSchedule)
        assert hints["finish_times"] == (np.ndarray | None)

    def test_validate_vectorized_matches_loop_semantics(self):
        rng = np.random.default_rng(11)
        dag = random_dag(18, 0.2, seed=9)
        classical = CilkScheduler(seed=2).classical_schedule(dag, 3)
        classical.validate()  # a real schedule passes
        # shifting one node's start earlier must trip exactly one of the checks
        bad_start = classical.start_times.copy()
        victim = int(rng.integers(0, dag.num_nodes))
        bad_start[victim] -= dag.work_weights.max() + 1.0
        broken = ClassicalSchedule(
            dag, num_procs=3, procs=classical.procs, start_times=bad_start
        )
        from repro.core import ScheduleError

        with pytest.raises(ScheduleError):
            broken.validate()

    def test_validate_overlap_message_names_processor(self):
        from repro.core import ScheduleError

        dag = build_diamond_dag()
        classical = ClassicalSchedule(
            dag,
            num_procs=1,
            procs=np.zeros(4, dtype=np.int64),
            start_times=np.array([0.0, 1.0, 1.5, 3.0]),  # 1 and 2 are independent
        )
        with pytest.raises(ScheduleError, match="overlap in time on processor 0"):
            classical.validate()
