"""Unit tests for communication schedules (lazy/eager derivation, windows)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BspSchedule,
    CommStep,
    ScheduleError,
    eager_comm_schedule,
    lazy_comm_schedule,
    required_transfers,
)
from repro.core.comm import comm_schedule_from_choices

from conftest import build_chain_dag, build_diamond_dag


class TestRequiredTransfers:
    def test_no_transfers_on_single_processor(self, diamond_dag):
        procs = np.zeros(4, dtype=int)
        steps = np.array([0, 1, 1, 2])
        assert required_transfers(diamond_dag, procs, steps) == []

    def test_cross_processor_transfer_window(self, diamond_dag):
        procs = np.array([0, 0, 1, 0])
        steps = np.array([0, 1, 1, 3])
        windows = required_transfers(diamond_dag, procs, steps)
        # node 0 must reach proc 1 (for node 2), node 2 must reach proc 0 (for node 3)
        assert len(windows) == 2
        by_node = {w.node: w for w in windows}
        assert by_node[0].target == 1
        assert by_node[0].earliest == 0 and by_node[0].latest == 0
        assert by_node[2].target == 0
        assert by_node[2].earliest == 1 and by_node[2].latest == 2

    def test_one_transfer_per_target_processor(self):
        dag = build_diamond_dag()
        # node 0 feeds nodes 1 and 2 which both live on processor 1
        procs = np.array([0, 1, 1, 1])
        steps = np.array([0, 1, 2, 3])
        windows = required_transfers(dag, procs, steps)
        zero_windows = [w for w in windows if w.node == 0]
        assert len(zero_windows) == 1
        assert zero_windows[0].latest == 0  # first need is superstep 1

    def test_impossible_transfer_raises(self, diamond_dag):
        procs = np.array([0, 1, 0, 0])
        steps = np.array([0, 0, 0, 1])  # node 1 on another proc in the same superstep
        with pytest.raises(ScheduleError):
            required_transfers(diamond_dag, procs, steps)


class TestLazyAndEager:
    def test_lazy_uses_latest_phase(self, diamond_dag):
        procs = np.array([0, 0, 1, 0])
        steps = np.array([0, 1, 2, 4])
        lazy = lazy_comm_schedule(diamond_dag, procs, steps)
        eager = eager_comm_schedule(diamond_dag, procs, steps)
        lazy_by_node = {s.node: s.superstep for s in lazy}
        eager_by_node = {s.node: s.superstep for s in eager}
        assert lazy_by_node[0] == 1   # needed by node 2 in superstep 2
        assert eager_by_node[0] == 0  # as early as possible
        assert lazy_by_node[2] == 3   # needed by node 3 in superstep 4
        assert eager_by_node[2] == 2

    def test_lazy_schedule_is_valid(self, diamond_dag, machine2):
        procs = np.array([0, 0, 1, 0])
        steps = np.array([0, 1, 1, 2])
        schedule = BspSchedule(diamond_dag, machine2, procs, steps)
        assert schedule.is_valid()
        assert schedule.uses_lazy_comm

    def test_eager_schedule_is_valid(self, diamond_dag, machine2):
        procs = np.array([0, 0, 1, 0])
        steps = np.array([0, 1, 2, 4])
        comm = eager_comm_schedule(diamond_dag, procs, steps)
        schedule = BspSchedule(diamond_dag, machine2, procs, steps, comm)
        assert schedule.is_valid()

    def test_chain_on_two_processors(self, machine2):
        dag = build_chain_dag(4)
        procs = np.array([0, 1, 0, 1])
        steps = np.array([0, 1, 2, 3])
        lazy = lazy_comm_schedule(dag, procs, steps)
        assert len(lazy) == 3
        for step in lazy:
            assert step.superstep == steps[step.node]  # latest possible = next node's step - 1


class TestChoices:
    def test_comm_schedule_from_choices(self, diamond_dag):
        procs = np.array([0, 0, 1, 0])
        steps = np.array([0, 1, 2, 4])
        windows = required_transfers(diamond_dag, procs, steps)
        choices = [w.earliest for w in windows]
        comm = comm_schedule_from_choices(windows, choices)
        assert len(comm) == len(windows)
        assert all(isinstance(step, CommStep) for step in comm)

    def test_out_of_window_choice_rejected(self, diamond_dag):
        procs = np.array([0, 0, 1, 0])
        steps = np.array([0, 1, 2, 4])
        windows = required_transfers(diamond_dag, procs, steps)
        bad = [w.latest + 1 for w in windows]
        with pytest.raises(ScheduleError):
            comm_schedule_from_choices(windows, bad)
