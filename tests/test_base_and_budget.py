"""Unit tests for the scheduler base classes and the TimeBudget helper."""

from __future__ import annotations

import time

import pytest

from repro.core import BspMachine
from repro.schedulers import (
    Budget,
    Scheduler,
    ScheduleImprover,
    TimeBudget,
    best_schedule,
    budget_limits,
)
from repro.schedulers.trivial import TrivialScheduler


class TestTimeBudget:
    def test_unlimited_never_expires(self):
        budget = TimeBudget.unlimited()
        assert not budget.expired()
        assert budget.remaining == float("inf")

    def test_zero_budget_expires_immediately(self):
        budget = TimeBudget(0.0)
        assert budget.expired()
        assert budget.remaining == 0.0

    def test_elapsed_grows(self):
        budget = TimeBudget(10.0)
        first = budget.elapsed
        time.sleep(0.01)
        assert budget.elapsed > first
        assert budget.remaining < 10.0
        assert not budget.expired()

    def test_restart_resets_clock(self):
        budget = TimeBudget(0.05)
        time.sleep(0.06)
        assert budget.expired()
        budget.restart()
        assert not budget.expired()

    def test_fraction(self):
        budget = TimeBudget(10.0)
        half = budget.fraction(0.5)
        assert half.seconds == pytest.approx(5.0)
        assert TimeBudget.unlimited().fraction(0.5).seconds is None


class TestUnifiedBudget:
    def test_budget_is_a_time_budget(self):
        budget = Budget(seconds=0.05, max_steps=4, ilp_node_limit=10)
        assert isinstance(budget, TimeBudget)
        assert not budget.deterministic
        time.sleep(0.06)
        assert budget.expired()

    def test_deterministic_budget_never_expires(self):
        budget = Budget(seconds=None, max_steps=2)
        assert budget.deterministic
        assert not budget.expired()
        assert budget.remaining == float("inf")

    def test_budget_limits_helper(self):
        assert budget_limits(None) == (None, None)
        assert budget_limits(TimeBudget(1.0)) == (None, None)
        assert budget_limits(Budget(max_steps=3, ilp_node_limit=7)) == (3, 7)

    def test_started_restarts_clock(self):
        budget = Budget(seconds=0.05, max_steps=1)
        time.sleep(0.06)
        assert budget.expired()
        fresh = budget.started()
        assert not fresh.expired()
        assert (fresh.seconds, fresh.max_steps) == (0.05, 1)


class TestBaseClasses:
    def test_scheduler_is_abstract(self):
        with pytest.raises(TypeError):
            Scheduler()  # type: ignore[abstract]
        with pytest.raises(TypeError):
            ScheduleImprover()  # type: ignore[abstract]

    def test_repr_contains_name(self):
        assert "trivial" in repr(TrivialScheduler())

    def test_best_schedule_ignores_none(self, random_dag_factory):
        dag = random_dag_factory(10, 0.2, seed=0)
        machine = BspMachine.uniform(2, latency=1)
        schedule = TrivialScheduler().schedule(dag, machine)
        assert best_schedule(None, schedule, None) is schedule

    def test_best_schedule_empty_raises(self):
        with pytest.raises(ValueError):
            best_schedule()
