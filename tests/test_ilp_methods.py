"""Unit tests for the ILP-based scheduling methods (window model, full, partial, cs, init)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BspMachine, BspSchedule, ComputationalDAG, SolverError
from repro.schedulers import (
    BspGreedyScheduler,
    IlpCommScheduleImprover,
    IlpFullImprover,
    IlpInitScheduler,
    IlpPartialImprover,
    WindowIlp,
    estimate_window_variables,
)
from repro.schedulers.trivial import RoundRobinScheduler

from conftest import assert_valid_schedule, build_chain_dag, build_diamond_dag
from repro.dagdb import SparseMatrixPattern, build_spmv_dag

TIME_LIMIT = 10.0


@pytest.fixture
def small_instance():
    pattern = SparseMatrixPattern.random(5, 0.4, seed=2, ensure_diagonal=True)
    dag = build_spmv_dag(pattern).dag
    machine = BspMachine.uniform(2, g=2, latency=3)
    return dag, machine


class TestWindowIlp:
    def test_estimate(self):
        assert estimate_window_variables(10, 3, 4) == 480

    def test_finds_optimal_for_tiny_chain(self):
        """For a 2-node chain on 2 procs the optimum keeps both on one processor."""
        dag = build_chain_dag(2, work=1.0, comm=5.0)
        machine = BspMachine.uniform(2, g=3, latency=2)
        start = BspSchedule(dag, machine, [0, 1], [0, 1])
        ilp = WindowIlp(
            dag, machine, start.procs, start.supersteps,
            reassign=[0, 1], window=(0, 1), context_comm=start.comm_schedule,
        )
        result = ilp.solve(time_limit=TIME_LIMIT)
        assert result.feasible
        assert result.procs[0] == result.procs[1]

    def test_window_validation_rejects_bad_context(self):
        dag = build_chain_dag(3)
        machine = BspMachine.uniform(2)
        procs = np.array([0, 0, 0])
        steps = np.array([0, 1, 2])
        # reassigning only the middle node with its successor inside the window
        with pytest.raises(SolverError):
            WindowIlp(dag, machine, procs, steps, reassign=[1], window=(1, 2))

    def test_invalid_window_rejected(self):
        dag = build_chain_dag(2)
        machine = BspMachine.uniform(2)
        with pytest.raises(SolverError):
            WindowIlp(dag, machine, [0, 0], [0, 0], reassign=[0], window=(2, 1))

    def test_partial_window_respects_fixed_successors(self):
        """Nodes after the window keep receiving the values they need."""
        dag = build_chain_dag(4, comm=2.0)
        machine = BspMachine.uniform(2, g=1, latency=1)
        start = BspSchedule(dag, machine, [0, 0, 1, 1], [0, 1, 2, 3])
        ilp = WindowIlp(
            dag, machine, start.procs, start.supersteps,
            reassign=[0, 1], window=(0, 1), context_comm=start.comm_schedule,
        )
        result = ilp.solve(time_limit=TIME_LIMIT)
        assert result.feasible
        procs = start.procs.copy()
        steps = start.supersteps.copy()
        for v, p in result.procs.items():
            procs[v] = p
        for v, s in result.supersteps.items():
            steps[v] = s
        rebuilt = BspSchedule(dag, machine, procs, steps)
        assert_valid_schedule(rebuilt)


class TestIlpFull:
    def test_applicability_threshold(self, small_instance):
        dag, machine = small_instance
        start = BspGreedyScheduler().schedule(dag, machine)
        assert IlpFullImprover(max_variables=10**6).applicable(start)
        assert not IlpFullImprover(max_variables=10).applicable(start)

    @pytest.mark.slow
    def test_improves_or_keeps_cost(self, small_instance):
        dag, machine = small_instance
        start = RoundRobinScheduler().schedule(dag, machine)
        improved = IlpFullImprover(time_limit=TIME_LIMIT).improve(start)
        assert improved.cost() <= start.cost()
        assert_valid_schedule(improved)

    def test_skips_oversized_instances(self, small_instance):
        dag, machine = small_instance
        start = BspGreedyScheduler().schedule(dag, machine)
        untouched = IlpFullImprover(max_variables=10).improve(start)
        assert untouched is start

    def test_finds_known_optimum_on_independent_tasks(self):
        """Two independent heavy tasks on two processors: optimum splits them."""
        dag = ComputationalDAG(2, [10, 10], [1, 1])
        machine = BspMachine.uniform(2, g=1, latency=1)
        start = BspSchedule.trivial(dag, machine)  # cost 21
        improved = IlpFullImprover(time_limit=TIME_LIMIT).improve(start)
        assert improved.cost() == pytest.approx(11.0)


class TestIlpPartial:
    @pytest.mark.slow
    def test_never_worse_and_valid(self, small_instance):
        dag, machine = small_instance
        start = RoundRobinScheduler().schedule(dag, machine)
        improved = IlpPartialImprover(time_limit_per_window=TIME_LIMIT).improve(start)
        assert improved.cost() <= start.cost()
        assert_valid_schedule(improved)

    def test_interval_construction_respects_threshold(self, small_instance):
        dag, machine = small_instance
        start = BspGreedyScheduler().schedule(dag, machine)
        improver = IlpPartialImprover(max_variables=100)
        intervals = improver._intervals(start)
        # intervals cover every superstep exactly once, back to front
        covered = sorted(s for low, high in intervals for s in range(low, high + 1))
        assert covered == list(range(start.num_supersteps))

    def test_empty_schedule_is_noop(self):
        dag = ComputationalDAG(0)
        machine = BspMachine.uniform(2)
        start = BspSchedule(dag, machine, [], [])
        assert IlpPartialImprover().improve(start) is start


class TestIlpCommSchedule:
    def test_never_worse_and_assignment_fixed(self, small_instance):
        dag, machine = small_instance
        start = RoundRobinScheduler().schedule(dag, machine)
        improved = IlpCommScheduleImprover(time_limit=TIME_LIMIT).improve(start)
        assert improved.cost() <= start.cost()
        assert np.array_equal(improved.procs, start.procs)
        assert np.array_equal(improved.supersteps, start.supersteps)
        assert_valid_schedule(improved)

    def test_matches_or_beats_hill_climbing_variant(self, small_instance):
        from repro.schedulers import CommScheduleHillClimbing

        dag, machine = small_instance
        start = RoundRobinScheduler().schedule(dag, machine)
        hc = CommScheduleHillClimbing().improve(start)
        ilp = IlpCommScheduleImprover(time_limit=TIME_LIMIT).improve(start)
        assert ilp.cost() <= hc.cost() + 1e-9

    def test_no_transfers_is_noop(self):
        dag = build_diamond_dag()
        machine = BspMachine.uniform(2)
        trivial = BspSchedule.trivial(dag, machine)
        assert IlpCommScheduleImprover().improve(trivial) is trivial

    def test_transfer_bound_skips_large_instances(self, small_instance):
        dag, machine = small_instance
        start = RoundRobinScheduler().schedule(dag, machine)
        assert IlpCommScheduleImprover(max_transfers=1).improve(start) is start


class TestIlpInit:
    @pytest.mark.slow
    def test_produces_valid_schedule(self, small_instance):
        dag, machine = small_instance
        schedule = IlpInitScheduler(time_limit_per_batch=TIME_LIMIT).schedule(dag, machine)
        assert_valid_schedule(schedule)
        assert schedule.dag is dag

    def test_batches_cover_all_nodes_in_topological_order(self, small_instance):
        dag, machine = small_instance
        scheduler = IlpInitScheduler(max_variables=200)
        batches = scheduler._batches(dag, machine.num_procs)
        flattened = [v for batch in batches for v in batch]
        assert sorted(flattened) == list(dag.nodes())
        position = {v: i for i, v in enumerate(flattened)}
        for edge in dag.edges():
            assert position[edge.source] < position[edge.target]

    def test_fallback_when_solver_unavailable(self, small_instance, monkeypatch):
        """If every batch ILP fails, the serial fallback still yields a valid schedule."""
        from repro.schedulers.ilp import init as init_module

        dag, machine = small_instance

        class _FailingIlp:
            def __init__(self, *args, **kwargs):
                pass

            def solve(self, time_limit=None, node_limit=None):
                from repro.schedulers.ilp.window import WindowIlpResult

                return WindowIlpResult(False, {}, {}, float("inf"), "forced failure")

        monkeypatch.setattr(init_module, "WindowIlp", _FailingIlp)
        schedule = IlpInitScheduler().schedule(dag, machine)
        assert_valid_schedule(schedule)

    def test_empty_dag(self):
        machine = BspMachine.uniform(2)
        schedule = IlpInitScheduler().schedule(ComputationalDAG(0), machine)
        assert schedule.cost() == 0.0

    @pytest.mark.slow
    def test_better_than_random_on_small_instance(self, small_instance):
        dag, machine = small_instance
        ilp_init = IlpInitScheduler(time_limit_per_batch=TIME_LIMIT).schedule(dag, machine)
        random_like = RoundRobinScheduler().schedule(dag, machine)
        assert ilp_init.cost() <= random_like.cost()


class TestWindowModelDifferential:
    """The batched WindowIlp construction emits the seed dict builder's model."""

    def test_batched_model_identical_to_reference(self):
        from scipy import sparse

        from repro.schedulers.ilp.reference import build_window_model_reference
        from repro.schedulers.ilp.window import WindowIlp
        from repro.schedulers.trivial import RoundRobinScheduler

        import numpy as np

        from conftest import random_dag

        checked = 0
        for seed in range(8):
            rng = np.random.default_rng(seed)
            dag = random_dag(int(rng.integers(8, 20)), 0.25, seed=seed)
            machine = BspMachine.uniform(int(rng.integers(2, 5)), g=2, latency=1)
            schedule = RoundRobinScheduler().schedule(dag, machine)
            num_steps = schedule.num_supersteps
            low = int(rng.integers(0, num_steps))
            high = min(num_steps - 1, low + int(rng.integers(0, 3)))
            reassign = [
                v for v in dag.nodes() if low <= schedule.superstep_of(v) <= high
            ]
            if not reassign:
                continue
            ilp = WindowIlp(
                dag,
                machine,
                schedule.procs,
                schedule.supersteps,
                reassign=reassign,
                window=(low, high),
                context_comm=schedule.comm_schedule,
            )
            batched, _ = ilp.build_model()
            reference = build_window_model_reference(ilp)
            assert batched.num_variables == reference.num_variables
            assert batched._objective == reference._objective
            assert batched._lower == reference._lower
            assert batched._upper == reference._upper
            assert batched._integrality == reference._integrality
            assert batched.num_constraints == reference.num_constraints
            assert batched._row_lower == reference._row_lower
            assert batched._row_upper == reference._row_upper
            matrix_b = sparse.csr_matrix(
                (batched._vals, (batched._rows, batched._cols)),
                shape=(batched.num_constraints, batched.num_variables),
            )
            matrix_r = sparse.csr_matrix(
                (reference._vals, (reference._rows, reference._cols)),
                shape=(reference.num_constraints, reference.num_variables),
            )
            assert abs(matrix_b - matrix_r).sum() == 0
            checked += 1
        assert checked >= 4  # enough non-degenerate windows exercised
