"""Unit tests for dataset construction (tiny/small/medium/large/huge, training)."""

from __future__ import annotations

import pytest

from repro.core import ConfigurationError
from repro.dagdb import (
    DATASET_NAMES,
    build_dataset,
    build_training_set,
    dataset_interval,
)


class TestIntervals:
    def test_known_dataset_names(self):
        assert DATASET_NAMES == ("tiny", "small", "medium", "large", "huge")

    def test_paper_scale_matches_paper(self):
        assert dataset_interval("tiny", "paper") == (40, 80)
        assert dataset_interval("small", "paper") == (250, 500)
        assert dataset_interval("medium", "paper") == (1000, 2000)
        assert dataset_interval("large", "paper") == (5000, 10000)
        assert dataset_interval("huge", "paper") == (50000, 100000)

    def test_bench_scale_is_smaller_and_ordered(self):
        previous_high = 0
        for name in DATASET_NAMES:
            low, high = dataset_interval(name, "bench")
            paper_low, paper_high = dataset_interval(name, "paper")
            assert low < high
            assert high <= paper_high
            assert low >= previous_high * 0.3  # intervals roughly increasing
            previous_high = high

    def test_unknown_dataset_or_scale(self):
        with pytest.raises(ConfigurationError):
            dataset_interval("gigantic", "bench")
        with pytest.raises(ConfigurationError):
            dataset_interval("tiny", "nano")


class TestBenchDatasets:
    @pytest.mark.parametrize("name", ["tiny", "small"])
    def test_dataset_composition(self, name):
        instances = build_dataset(name, scale="bench")
        generators = {inst.generator for inst in instances}
        # all four fine-grained generators are represented
        assert {"spmv", "exp", "cg", "knn"} <= generators
        kinds = {inst.kind for inst in instances}
        assert "fine" in kinds
        # names carry the dataset prefix
        assert all(inst.name.startswith(name) for inst in instances)

    def test_small_has_deep_and_wide_variants(self):
        instances = build_dataset("small", scale="bench")
        names = {inst.name for inst in instances}
        assert any("deep" in n for n in names)
        assert any("wide" in n for n in names)

    def test_tiny_single_variant(self):
        instances = build_dataset("tiny", scale="bench")
        assert not any("wide" in inst.name for inst in instances)

    def test_sizes_roughly_in_interval(self):
        low, high = dataset_interval("small", "bench")
        instances = build_dataset("small", scale="bench")
        for inst in instances:
            assert 0.4 * low <= inst.num_nodes <= 2.0 * high, inst.name

    def test_deterministic_for_fixed_seed(self):
        first = build_dataset("tiny", scale="bench", seed=3)
        second = build_dataset("tiny", scale="bench", seed=3)
        assert [i.num_nodes for i in first] == [i.num_nodes for i in second]
        assert [i.name for i in first] == [i.name for i in second]

    def test_coarse_instances_can_be_disabled(self):
        with_coarse = build_dataset("tiny", scale="bench", include_coarse=True)
        without = build_dataset(
            "tiny", scale="bench", include_coarse=False, include_structured=False
        )
        assert len(without) <= len(with_coarse)
        assert all(inst.kind == "fine" for inst in without)

    def test_structured_families_present(self):
        instances = build_dataset("small", scale="bench")
        structured = {i.generator for i in instances if i.kind == "structured"}
        assert structured == {
            "cholesky",
            "cholesky_rcm",
            "fft",
            "fft4",
            "stencil2d",
            "stencil2d_rect",
        }
        low, high = dataset_interval("small", "bench")
        for inst in instances:
            if inst.kind == "structured":
                assert 0.4 * low <= inst.num_nodes <= 2.0 * high, inst.name

    def test_structured_variants_differ_from_their_bases(self):
        """The PR-4 variants are real scenario diversity, not renamed copies."""
        instances = {i.generator: i for i in build_dataset("small", scale="bench")
                     if i.kind == "structured"}
        rcm, natural = instances["cholesky_rcm"], instances["cholesky"]
        assert rcm.dag.num_nodes == natural.dag.num_nodes  # same column count
        assert rcm.dag.num_edges != natural.dag.num_edges  # different fill
        assert instances["fft4"].dag.depth() < instances["fft"].dag.depth()
        rect = instances["stencil2d_rect"]
        assert rect.params["width"] == 2 * rect.params["height"]

    def test_structured_instances_can_be_disabled(self):
        without = build_dataset("tiny", scale="bench", include_structured=False)
        assert not any(inst.kind == "structured" for inst in without)

    def test_all_dags_are_acyclic_with_positive_weights(self):
        for inst in build_dataset("tiny", scale="bench"):
            assert inst.dag.is_acyclic()
            assert inst.dag.total_work > 0
            assert inst.dag.total_comm > 0

    def test_instance_metadata(self):
        instances = build_dataset("tiny", scale="bench")
        fine = [i for i in instances if i.kind == "fine"]
        assert all("matrix_size" in i.params for i in fine)
        assert all(i.num_nodes == i.dag.num_nodes for i in instances)


class TestTrainingSet:
    def test_training_set_size_and_mix(self):
        instances = build_training_set(scale="bench")
        assert len(instances) == 10
        assert {inst.generator for inst in instances} == {"spmv", "exp", "cg", "knn"}

    def test_training_sizes_span_interval(self):
        low, high = dataset_interval("training", "bench")
        sizes = [inst.num_nodes for inst in build_training_set(scale="bench")]
        assert min(sizes) < (low + high) / 2 < max(sizes)


class TestModelCalibration:
    """PR-4 satellite: closed-form nnz→nodes model replaces the bisection."""

    def test_probe_budget_is_model_plus_one(self, monkeypatch):
        """Per instance: three fixed tiny model probes + one verification build."""
        import repro.dagdb.datasets as datasets_module

        calls = []
        original = datasets_module._fine_instance

        def counting(generator, matrix_size, density, iterations, seed):
            calls.append(matrix_size)
            return original(generator, matrix_size, density, iterations, seed)

        monkeypatch.setattr(datasets_module, "_fine_instance", counting)
        dag, size = datasets_module._calibrate_fine("exp", 300, 0.25, 3, seed=7)
        model_sizes = set(datasets_module._MODEL_PROBE_SIZES)
        non_model = [s for s in calls if s not in model_sizes]
        # the verification probe is the returned DAG; no near-target bisection
        assert len(non_model) == 1 and non_model[0] == size
        assert abs(dag.num_nodes - 300) <= max(0.3 * 300, 10)

    def test_model_accuracy_across_generators_and_targets(self):
        from repro.dagdb.datasets import _calibrate_fine

        for generator, iterations in (("spmv", 1), ("exp", 3), ("cg", 2), ("knn", 4)):
            for target in (120, 500, 1500):
                dag, _ = _calibrate_fine(generator, target, 0.25, iterations, seed=5)
                assert 0.5 * target <= dag.num_nodes <= 1.6 * target, (
                    generator,
                    target,
                    dag.num_nodes,
                )

    def test_falls_back_to_bisection_when_model_misses(self, monkeypatch):
        """A deliberately broken model must not break calibration."""
        import repro.dagdb.datasets as datasets_module

        monkeypatch.setattr(datasets_module, "_MODEL_PROBE_SIZES", (8, 9, 10))
        dag, size = datasets_module._calibrate_fine("spmv", 800, 0.25, 1, seed=7)
        assert 0.5 * 800 <= dag.num_nodes <= 1.6 * 800
        assert size >= 2
