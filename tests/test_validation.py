"""Unit tests for BSP schedule validity checking."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BspMachine,
    BspSchedule,
    CommStep,
    ComputationalDAG,
    ScheduleError,
    schedule_violations,
    validate_schedule,
)

from conftest import build_chain_dag, build_diamond_dag


@pytest.fixture
def machine():
    return BspMachine.uniform(2, g=1, latency=1)


class TestAssignmentChecks:
    def test_valid_same_processor_schedule(self, machine):
        dag = build_diamond_dag()
        violations = schedule_violations(
            dag, machine, np.zeros(4, int), np.array([0, 0, 0, 0]), []
        )
        assert violations == []

    def test_invalid_processor_index(self, machine):
        dag = build_chain_dag(2)
        violations = schedule_violations(
            dag, machine, np.array([0, 5]), np.array([0, 1]), []
        )
        assert any("invalid processor" in v for v in violations)

    def test_negative_superstep(self, machine):
        dag = build_chain_dag(2)
        violations = schedule_violations(
            dag, machine, np.array([0, 0]), np.array([0, -1]), []
        )
        assert any("negative superstep" in v for v in violations)

    def test_wrong_array_length(self, machine):
        dag = build_chain_dag(3)
        violations = schedule_violations(
            dag, machine, np.array([0, 0]), np.array([0, 0]), []
        )
        assert violations and "shape" in violations[0]


class TestPrecedence:
    def test_same_proc_wrong_order(self, machine):
        dag = build_chain_dag(2)
        violations = schedule_violations(
            dag, machine, np.array([0, 0]), np.array([1, 0]), []
        )
        assert any("scheduled later" in v for v in violations)

    def test_cross_proc_without_comm(self, machine):
        dag = build_chain_dag(2)
        violations = schedule_violations(
            dag, machine, np.array([0, 1]), np.array([0, 1]), []
        )
        assert any("never reaches" in v for v in violations)

    def test_cross_proc_with_comm_in_time(self, machine):
        dag = build_chain_dag(2)
        comm = [CommStep(0, 0, 1, 0)]
        violations = schedule_violations(
            dag, machine, np.array([0, 1]), np.array([0, 1]), comm
        )
        assert violations == []

    def test_cross_proc_comm_too_late(self, machine):
        dag = build_chain_dag(2)
        comm = [CommStep(0, 0, 1, 1)]
        violations = schedule_violations(
            dag, machine, np.array([0, 1]), np.array([0, 1]), comm
        )
        assert any("never reaches" in v for v in violations)

    def test_cross_proc_same_superstep_invalid(self, machine):
        dag = build_chain_dag(2)
        comm = [CommStep(0, 0, 1, 0)]
        violations = schedule_violations(
            dag, machine, np.array([0, 1]), np.array([0, 0]), comm
        )
        assert violations  # the value only arrives after superstep 0


class TestCommScheduleChecks:
    def test_comm_before_value_computed(self, machine):
        dag = build_chain_dag(2)
        # node 0 computed in superstep 1 but "sent" in phase 0
        comm = [CommStep(0, 0, 1, 0)]
        violations = schedule_violations(
            dag, machine, np.array([0, 1]), np.array([1, 2]), comm
        )
        assert any("not available" in v for v in violations)

    def test_comm_from_wrong_processor(self, machine):
        dag = build_chain_dag(2)
        comm = [CommStep(0, 1, 0, 0)]
        violations = schedule_violations(
            dag, machine, np.array([0, 0]), np.array([0, 1]), comm
        )
        assert any("not available" in v for v in violations)

    def test_forwarding_chain_is_accepted(self):
        machine = BspMachine.uniform(3, g=1, latency=1)
        dag = build_chain_dag(2)
        procs = np.array([0, 2])
        steps = np.array([0, 3])
        # value travels 0 -> 1 in phase 0, then 1 -> 2 in phase 1
        comm = [CommStep(0, 0, 1, 0), CommStep(0, 1, 2, 1)]
        violations = schedule_violations(dag, machine, procs, steps, comm)
        assert violations == []

    def test_forwarding_without_justification_rejected(self):
        machine = BspMachine.uniform(3, g=1, latency=1)
        dag = build_chain_dag(2)
        procs = np.array([0, 2])
        steps = np.array([0, 3])
        # forwarding from proc 1, but the value never reached proc 1
        comm = [CommStep(0, 1, 2, 1)]
        violations = schedule_violations(dag, machine, procs, steps, comm)
        assert violations

    def test_self_send_rejected(self, machine):
        dag = build_chain_dag(2)
        comm = [CommStep(0, 0, 0, 0)]
        violations = schedule_violations(
            dag, machine, np.array([0, 0]), np.array([0, 1]), comm
        )
        assert any("own processor" in v for v in violations)

    def test_invalid_comm_processor(self, machine):
        dag = build_chain_dag(2)
        comm = [CommStep(0, 0, 9, 0)]
        violations = schedule_violations(
            dag, machine, np.array([0, 0]), np.array([0, 1]), comm
        )
        assert any("invalid processor" in v for v in violations)


class TestValidateAndScheduleClass:
    def test_validate_raises(self, machine):
        dag = build_chain_dag(2)
        with pytest.raises(ScheduleError):
            validate_schedule(dag, machine, np.array([0, 1]), np.array([0, 1]), [])

    def test_schedule_constructor_validates(self, machine):
        dag = build_chain_dag(2)
        with pytest.raises(ScheduleError):
            BspSchedule(dag, machine, [0, 1], [0, 0])

    def test_schedule_constructor_can_skip_validation(self, machine):
        dag = build_chain_dag(2)
        schedule = BspSchedule(dag, machine, [0, 1], [0, 0], [], validate=False)
        assert not schedule.is_valid()
        assert schedule.violations()

    def test_max_violations_bound(self):
        machine = BspMachine.uniform(2)
        dag = ComputationalDAG(60)
        for i in range(0, 60, 2):
            dag.add_edge(i, i + 1)
        procs = np.array([0, 1] * 30)
        steps = np.zeros(60, int)
        violations = schedule_violations(dag, machine, procs, steps, [], max_violations=5)
        assert len(violations) == 5
