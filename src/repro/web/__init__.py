"""Minimal stdlib web layer over the report subsystem.

One module, :mod:`repro.web.server`: a WSGI application (stdlib
``wsgiref``, no frameworks) that serves the deterministic HTML report of
:mod:`repro.analysis.report` straight from a live result store — the
"dashboard" half of the report subsystem, for watching a store fill up
while a worker fleet drains a queue.  ``repro web serve`` and
``repro report --serve`` are the CLI entry points.
"""

from .server import ReportApp, make_app, serve

__all__ = ["ReportApp", "make_app", "serve"]
