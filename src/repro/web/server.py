"""A stdlib WSGI server for the experiment report dashboard.

:class:`ReportApp` is a plain WSGI callable built on a **registry-style
route table** — the same pattern the scheduler registry uses: routes are
data (``(pattern, handler)`` pairs in :attr:`ReportApp.routes`), handlers
are methods, and adding an endpoint is appending a row, not growing an
``if`` chain.  Patterns are literal paths with at most one ``<name>``
placeholder segment (matched non-greedily, never across ``/``).

Endpoints:

``/``
    Redirects to ``/report``.
``/report``
    The full HTML report, rebuilt from the store on every request — a
    store being filled by a worker fleet shows fresh numbers on refresh
    (the report itself stays deterministic: same store state, same bytes).
``/families/<name>``
    One instance family's cost profile page.
``/healthz``
    Liveness endpoint for CI and supervisors: ``200 ok`` as plain text.

Everything is read-only and single-file self-contained; there is no
static asset to serve, no cache to invalidate, no third-party dependency.
:func:`serve` wraps ``wsgiref.simple_server`` (port 0 picks an ephemeral
port — the smoke tests bind one in a background thread).
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable
from wsgiref.simple_server import WSGIRequestHandler, WSGIServer, make_server

from ..analysis.report import build_report, render_family_html, render_html

__all__ = ["ReportApp", "make_app", "serve"]

#: a route handler: (path parameters) -> (status, content type, body)
Handler = Callable[[dict[str, str]], tuple[str, str, str]]


def _match(pattern: str, path: str) -> dict[str, str] | None:
    """Match ``path`` against a route pattern; return its parameters.

    Segment-wise comparison: a ``<name>`` segment captures exactly one
    non-empty path segment, every other segment must match literally.
    Returns ``None`` on mismatch (and ``{}`` on a parameter-free match).
    """
    pattern_parts = [part for part in pattern.split("/") if part]
    path_parts = [part for part in path.split("/") if part]
    if len(pattern_parts) != len(path_parts):
        return None
    params: dict[str, str] = {}
    for expected, actual in zip(pattern_parts, path_parts):
        if expected.startswith("<") and expected.endswith(">"):
            params[expected[1:-1]] = actual
        elif expected != actual:
            return None
    return params


class ReportApp:
    """WSGI application serving the report for one store + BENCH root."""

    def __init__(
        self,
        store_root: str | Path | None,
        bench_root: str | Path | None = None,
        *,
        speedup_tolerance: float = 0.5,
        cost_tolerance: float = 0.05,
    ) -> None:
        self.store_root = store_root
        self.bench_root = bench_root
        self.speedup_tolerance = speedup_tolerance
        self.cost_tolerance = cost_tolerance
        #: the route table — append ``(pattern, handler)`` to add endpoints
        self.routes: list[tuple[str, Handler]] = [
            ("/", self._index),
            ("/report", self._report),
            ("/families/<name>", self._family),
            ("/healthz", self._healthz),
        ]

    # ------------------------------------------------------------------ #
    def _build(self):
        """A fresh report from the current store state (every request)."""
        return build_report(
            self.store_root,
            self.bench_root,
            speedup_tolerance=self.speedup_tolerance,
            cost_tolerance=self.cost_tolerance,
        )

    # handlers ---------------------------------------------------------- #
    def _index(self, params: dict[str, str]) -> tuple[str, str, str]:
        return ("302 Found", "text/html; charset=utf-8", "")

    def _report(self, params: dict[str, str]) -> tuple[str, str, str]:
        return ("200 OK", "text/html; charset=utf-8", render_html(self._build()))

    def _family(self, params: dict[str, str]) -> tuple[str, str, str]:
        body = render_family_html(self._build(), params["name"])
        if body is None:
            return (
                "404 Not Found",
                "text/plain; charset=utf-8",
                f"unknown family: {params['name']}\n",
            )
        return ("200 OK", "text/html; charset=utf-8", body)

    def _healthz(self, params: dict[str, str]) -> tuple[str, str, str]:
        return ("200 OK", "text/plain; charset=utf-8", "ok\n")

    # the WSGI protocol ------------------------------------------------- #
    def __call__(self, environ, start_response):
        path = environ.get("PATH_INFO", "/") or "/"
        if environ.get("REQUEST_METHOD", "GET") not in ("GET", "HEAD"):
            payload = b"method not allowed\n"
            start_response(
                "405 Method Not Allowed",
                [
                    ("Content-Type", "text/plain; charset=utf-8"),
                    ("Content-Length", str(len(payload))),
                    ("Allow", "GET, HEAD"),
                ],
            )
            return [payload]
        if path == "/":
            # the one special case: a redirect needs a Location header
            start_response(
                "302 Found",
                [("Location", "/report"), ("Content-Length", "0")],
            )
            return [b""]
        for pattern, handler in self.routes:
            params = _match(pattern, path)
            if params is not None:
                status, content_type, body = handler(params)
                payload = body.encode("utf-8")
                start_response(
                    status,
                    [
                        ("Content-Type", content_type),
                        ("Content-Length", str(len(payload))),
                    ],
                )
                return [payload]
        payload = f"not found: {path}\n".encode("utf-8")
        start_response(
            "404 Not Found",
            [
                ("Content-Type", "text/plain; charset=utf-8"),
                ("Content-Length", str(len(payload))),
            ],
        )
        return [payload]


def make_app(
    store_root: str | Path | None,
    bench_root: str | Path | None = None,
    *,
    speedup_tolerance: float = 0.5,
    cost_tolerance: float = 0.05,
) -> ReportApp:
    """A :class:`ReportApp` (kept as a function for symmetry with WSGI idiom)."""
    return ReportApp(
        store_root,
        bench_root,
        speedup_tolerance=speedup_tolerance,
        cost_tolerance=cost_tolerance,
    )


class _QuietHandler(WSGIRequestHandler):
    """Request handler that doesn't write an access log line per request."""

    def log_message(self, format, *args):  # noqa: A002 - wsgiref's signature
        pass


def serve(
    app: ReportApp,
    host: str = "127.0.0.1",
    port: int = 8000,
    *,
    quiet: bool = False,
) -> WSGIServer:
    """Bind a ``wsgiref`` server for ``app`` and return it **unstarted**.

    The caller decides the serving discipline: ``serve_forever()`` for the
    CLI, ``handle_request()`` in a thread for tests.  ``port=0`` binds an
    ephemeral port (read it back from ``server.server_port``).
    """
    handler = _QuietHandler if quiet else WSGIRequestHandler
    return make_server(host, port, app, handler_class=handler)
