"""Command-line interface for the scheduling framework.

Three subcommands cover the common workflows:

``generate``
    Create a computational DAG with one of the database generators and write
    it as a hyperDAG text file or a memory-mapped ``.hdagb`` binary, e.g.::

        python -m repro generate --generator cg --size 8 --density 0.3 \\
            --iterations 3 --output cg.hdag

    With ``--stream`` (structured families only) the DAG is emitted straight
    to disk with bounded peak memory — the way to produce the 10^6..10^7-node
    instances::

        python -m repro generate --generator stencil2d --size 1000 \\
            --iterations 9 --stream --output stencil.hdagb

``schedule``
    Schedule a hyperDAG file (or a freshly generated instance) with one of
    the registered schedulers and print the schedule and its cost, e.g.::

        python -m repro schedule cg.hdag --scheduler framework \\
            --procs 8 --g 1 --latency 5 --numa-delta 3 --render

``compare``
    Run several schedulers on the same instance and print a cost table::

        python -m repro compare cg.hdag --procs 4 --g 5 \\
            --schedulers cilk hdagg framework

``kernels``
    Print which kernel backend (:mod:`repro.core.kernels`) is active —
    ``numba`` when a working install is importable, else ``numpy`` — along
    with the ``REPRO_KERNEL_BACKEND`` override currently in effect::

        python -m repro kernels

``queue``
    Inspect and manage a durable work queue (:mod:`repro.store`): show
    status, submit a request JSON file, expire abandoned leases, list
    terminal failures, requeue them, or garbage-collect the store::

        python -m repro queue --root ./results status

``store``
    Maintain a content-addressed result store; currently one subcommand,
    ``gc`` (also reachable as ``queue gc``), which removes dangling
    results, orphaned DAG payloads and stale write temporaries::

        python -m repro store --root ./results gc

``serve-worker``
    Drain a durable work queue into its content-addressed result store —
    run any number of these (concurrently, on any hosts sharing the
    filesystem) to form a worker fleet; killed workers lose nothing::

        python -m repro serve-worker --root ./results --workers 4

``report``
    Render the deterministic HTML experiment report (per-family cost
    profiles, scheduler rank tables, kernel speedup trajectory and
    regression flags — :mod:`repro.analysis.report`) from a result
    store's trial tables and the repo's ``BENCH_*.json`` history::

        python -m repro report --store ./results --out report.html

    ``--fail-on-regression`` exits non-zero when any BENCH metric
    drifted beyond tolerance — the CI gate.  ``--serve`` starts the
    dashboard server on the same report instead of (or after) writing
    the file.

``web serve``
    The dashboard server on its own (:mod:`repro.web.server`): serves
    ``/report`` (rebuilt per request), ``/families/<name>`` and
    ``/healthz`` over stdlib ``wsgiref``::

        python -m repro web serve --store ./results --port 8000

Both scheduling commands run through :class:`repro.api.SchedulingService`:
the argparse namespace becomes a declarative :class:`ScheduleRequest` and
``schedule --output`` writes the :class:`ScheduleResult` JSON wire format
(validated round-trippable by ``repro.api.ScheduleResult.from_json``).
``--store DIR`` on ``schedule``/``compare`` attaches the persistent result
store, so repeated invocations answer from disk instead of recomputing.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Sequence

from .api import MachineSpec, ScheduleRequest, SchedulerSpec, SchedulingService
from .core import ComputationalDAG, ConfigurationError
from .dagdb import (
    COARSE_GENERATORS,
    FINE_GENERATORS,
    STREAM_GENERATORS,
    STRUCTURED_GENERATORS,
    SparseMatrixPattern,
    build_fft_dag,
    build_stencil2d_dag,
    build_stencil3d_dag,
    build_stencil_dag,
    stream_generate,
)
from .io import (
    load_dag,
    render_cost_table,
    render_schedule_text,
    write_hdagb,
    write_hyperdag,
)
from .schedulers import ENV_INIT_WORKERS, available_schedulers

__all__ = ["main", "build_parser"]


# ---------------------------------------------------------------------- #
# argument parsing
# ---------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BSP(+NUMA) multiprocessor DAG scheduling framework",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a computational DAG")
    generate.add_argument(
        "--generator",
        required=True,
        choices=sorted(FINE_GENERATORS)
        + sorted(COARSE_GENERATORS)
        + sorted(STRUCTURED_GENERATORS),
        help=(
            "fine-grained (spmv/exp/cg/knn), coarse-grained or structured "
            "(cholesky/fft/stencil2d/stencil3d) generator name"
        ),
    )
    generate.add_argument("--size", type=int, default=8, help="matrix size for fine-grained generators")
    generate.add_argument("--density", type=float, default=0.3, help="nonzero density for fine-grained generators")
    generate.add_argument("--iterations", type=int, default=3, help="iteration count")
    generate.add_argument("--seed", type=int, default=0, help="random seed for the matrix pattern")
    generate.add_argument("--output", required=True, help="output DAG file path")
    generate.add_argument(
        "--out-format",
        choices=("auto", "hdag", "hdagb"),
        default="auto",
        help=(
            "output format: hyperDAG text or memory-mapped .hdagb binary "
            "(default: by output extension, text otherwise)"
        ),
    )
    generate.add_argument(
        "--stream",
        action="store_true",
        help=(
            "emit straight to a .hdagb file with bounded peak memory "
            "(structured generators only; implies --out-format hdagb)"
        ),
    )

    schedule = subparsers.add_parser("schedule", help="schedule a hyperDAG file")
    _add_machine_arguments(schedule)
    _add_store_argument(schedule)
    schedule.add_argument("input", help="DAG file to schedule (.hdag text, .hdagb binary, or stored .json)")
    schedule.add_argument(
        "--scheduler",
        default="framework",
        choices=available_schedulers(),
        help="scheduler to run (default: the framework pipeline)",
    )
    schedule.add_argument("--render", action="store_true", help="print the full superstep-by-superstep schedule")
    schedule.add_argument("--output", help="write the schedule (JSON) to this path")
    schedule.add_argument("--seed", type=int, default=0, help="seed for randomised schedulers")
    _add_init_workers_argument(schedule)

    compare = subparsers.add_parser("compare", help="compare several schedulers on one instance")
    _add_machine_arguments(compare)
    _add_store_argument(compare)
    compare.add_argument("input", help="DAG file to schedule (.hdag text, .hdagb binary, or stored .json)")
    compare.add_argument(
        "--schedulers",
        nargs="+",
        default=["cilk", "hdagg", "framework"],
        choices=available_schedulers(),
        help="schedulers to compare",
    )
    compare.add_argument("--seed", type=int, default=0, help="seed for randomised schedulers")
    _add_init_workers_argument(compare)

    kernels_cmd = subparsers.add_parser(
        "kernels", help="show the active kernel backend (numpy / numba)"
    )
    kernels_cmd.add_argument(
        "--warmup",
        action="store_true",
        help="force-compile the active backend's kernels and report the time",
    )

    queue = subparsers.add_parser(
        "queue", help="inspect and manage a durable work queue"
    )
    queue.add_argument(
        "--root", required=True, help="store root (results, DAGs and queue live under it)"
    )
    queue_sub = queue.add_subparsers(dest="queue_command", required=True)
    queue_sub.add_parser("status", help="entry counts per state and store size")
    queue_submit = queue_sub.add_parser(
        "submit", help="enqueue a ScheduleRequest JSON file"
    )
    queue_submit.add_argument("request", help="request JSON file (ScheduleRequest.to_json)")
    queue_expire = queue_sub.add_parser(
        "expire", help="requeue leases abandoned by dead workers"
    )
    queue_expire.add_argument(
        "--lease-seconds",
        type=float,
        default=300.0,
        help="lease duration assumed for entries without a lease stamp",
    )
    queue_expire.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="attempts before an expired entry fails terminally",
    )
    queue_sub.add_parser("failures", help="list terminal failures")
    queue_sub.add_parser("retry", help="requeue every terminal failure")
    _add_gc_arguments(
        queue_sub.add_parser(
            "gc", help="garbage-collect the store this queue lives in"
        )
    )

    store_cmd = subparsers.add_parser(
        "store", help="maintain a content-addressed result store"
    )
    store_cmd.add_argument(
        "--root", required=True, help="store root (results, DAGs and queue live under it)"
    )
    store_sub = store_cmd.add_subparsers(dest="store_command", required=True)
    _add_gc_arguments(
        store_sub.add_parser(
            "gc",
            help=(
                "remove dangling results, orphaned DAG payloads and stale "
                "write temporaries"
            ),
        )
    )

    serve = subparsers.add_parser(
        "serve-worker",
        help="drain a durable work queue into its result store",
    )
    serve.add_argument(
        "--root", required=True, help="store root (results, DAGs and queue live under it)"
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="pool width per batch (default: the REPRO_WORKERS environment knob)",
    )
    serve.add_argument(
        "--executor",
        choices=("process", "thread"),
        default="process",
        help="pool flavour for the per-batch fan-out",
    )
    serve.add_argument(
        "--lease-seconds",
        type=float,
        default=300.0,
        help="lease duration per claimed batch",
    )
    serve.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="lease attempts before an entry fails terminally",
    )
    serve.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="entries claimed per cycle (default: 4 x the worker count)",
    )
    serve.add_argument(
        "--poll-seconds",
        type=float,
        default=1.0,
        help="sleep between idle cycles while other workers hold leases",
    )
    serve.add_argument(
        "--max-batches",
        type=int,
        default=None,
        help="stop after this many lease cycles (default: run until empty)",
    )
    serve.add_argument(
        "--once",
        action="store_true",
        help="run a single expire/lease/solve/settle cycle and exit",
    )

    report = subparsers.add_parser(
        "report",
        help="render the HTML experiment report from a store and BENCH history",
    )
    _add_report_source_arguments(report)
    report.add_argument(
        "--out",
        default="report.html",
        help="output HTML path (default: report.html)",
    )
    report.add_argument(
        "--serve",
        action="store_true",
        help="serve the dashboard for this store instead of exiting",
    )
    _add_serve_arguments(report)
    report.add_argument(
        "--fail-on-regression",
        action="store_true",
        help=(
            "exit non-zero when any BENCH metric drifted beyond tolerance "
            "(the CI gate; the report is still written first)"
        ),
    )

    web = subparsers.add_parser(
        "web", help="the report dashboard server (stdlib wsgiref)"
    )
    web_sub = web.add_subparsers(dest="web_command", required=True)
    web_serve = web_sub.add_parser(
        "serve", help="serve /report, /families/<name> and /healthz"
    )
    _add_report_source_arguments(web_serve)
    _add_serve_arguments(web_serve)
    return parser


def _add_report_source_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        default=None,
        help=(
            "result store directory whose trial tables feed the report "
            "(omit for a BENCH-only report)"
        ),
    )
    parser.add_argument(
        "--bench-root",
        default=".",
        help=(
            "directory holding the BENCH_*.json history "
            "(default: the current directory; 'none' disables the "
            "trajectory and regression sections)"
        ),
    )
    parser.add_argument(
        "--speedup-tolerance",
        type=float,
        default=0.5,
        help=(
            "relative drop in a kernel speedup row that raises a "
            "regression flag (generous by default: timings are noisy)"
        ),
    )
    parser.add_argument(
        "--cost-tolerance",
        type=float,
        default=0.05,
        help=(
            "relative rise in a benchmark final_cost row that raises a "
            "regression flag (tight by default: costs are deterministic)"
        ),
    )


def _add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--host", default="127.0.0.1", help="dashboard bind address"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8000,
        help="dashboard port (0 picks an ephemeral port)",
    )


def _add_gc_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--tmp-grace-seconds",
        type=float,
        default=3600.0,
        help=(
            "only remove write temporaries older than this (protects "
            "in-flight writes of live processes)"
        ),
    )
    parser.add_argument(
        "--prune-trials",
        action="store_true",
        help=(
            "also compact the trial/experiment metadata tables, dropping "
            "records whose results no longer exist (the tables are never "
            "touched without this flag)"
        ),
    )


def _add_init_workers_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--init-workers",
        type=int,
        default=None,
        help=(
            "thread fan-out width for the pipeline initialiser runs "
            "(sets REPRO_INIT_WORKERS; the schedule is identical at any "
            "width, only wall-clock changes)"
        ),
    )


def _apply_init_workers(args: argparse.Namespace) -> None:
    """Publish ``--init-workers`` through the environment knob.

    The environment variable is the one path that reaches every pipeline
    factory — including the no-argument registry factories such as
    ``framework_heuristics`` that never see a :class:`PipelineConfig`.
    """
    value = getattr(args, "init_workers", None)
    if value is not None:
        os.environ[ENV_INIT_WORKERS] = str(max(int(value), 1))


def _add_store_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        default=None,
        help=(
            "content-addressed result store directory: answers repeated "
            "requests from disk and persists every computed result"
        ),
    )


def _add_machine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--procs", "-P", type=int, default=4, help="number of processors")
    parser.add_argument("--g", type=float, default=1.0, help="per-unit communication cost g")
    parser.add_argument("--latency", "-l", type=float, default=5.0, help="per-superstep latency")
    parser.add_argument(
        "--numa-delta",
        type=float,
        default=None,
        help="binary-tree NUMA multiplier Delta (omit for a uniform machine)",
    )


# ---------------------------------------------------------------------- #
# command implementations
# ---------------------------------------------------------------------- #
def _machine_spec_from_args(args: argparse.Namespace) -> MachineSpec:
    return MachineSpec(
        num_procs=args.procs,
        g=args.g,
        latency=args.latency,
        numa_delta=args.numa_delta,
    )


def _request_from_args(
    args: argparse.Namespace, scheduler: str
) -> ScheduleRequest:
    """One declarative request from the argparse namespace (the CLI's glue)."""
    return ScheduleRequest(
        dag=args.input,
        machine=_machine_spec_from_args(args),
        scheduler=SchedulerSpec(scheduler),
        seed=args.seed,
    )


def _generate_dag(args: argparse.Namespace) -> ComputationalDAG:
    if args.generator in FINE_GENERATORS:
        pattern = SparseMatrixPattern.random(
            args.size, args.density, seed=args.seed, ensure_diagonal=True
        )
        return FINE_GENERATORS[args.generator](pattern, args.iterations).dag
    if args.generator in STRUCTURED_GENERATORS:
        if args.generator in ("cholesky", "cholesky_rcm", "cholesky_amd"):
            pattern = SparseMatrixPattern.random(
                args.size, args.density, seed=args.seed, ensure_diagonal=True
            )
            # the registry builders, not build_elimination_dag(ordering=...):
            # they encode the ordering in the DAG name, which the streaming
            # path (--stream) reproduces for byte-identical files
            builder = STRUCTURED_GENERATORS[args.generator]
            return builder(pattern).dag
        if args.generator == "fft":
            points = 1 << max(1, args.size - 1).bit_length()  # round up to 2^k
            return build_fft_dag(points).dag
        if args.generator == "fft4":
            points = 4
            while points < args.size:
                points *= 4  # round up to 4^k
            return build_fft_dag(points, radix=4).dag
        if args.generator == "stencil2d":
            return build_stencil2d_dag(args.size, args.iterations).dag
        if args.generator == "stencil2d_rect":
            width = max(2, args.size)
            height = max(2, args.size // 2)
            return build_stencil_dag((width, height), args.iterations).dag
        if args.generator == "stencil3d":
            return build_stencil3d_dag(args.size, args.iterations).dag
        raise ConfigurationError(
            f"structured generator {args.generator!r} has no CLI size adapter"
        )
    return COARSE_GENERATORS[args.generator](args.iterations)


def _stream_params(args: argparse.Namespace) -> dict:
    """Streaming-emitter parameters from the argparse namespace.

    Mirrors the size adapters of :func:`_generate_dag` exactly, so a
    streamed file is byte-identical to writing the in-memory generator's
    DAG for the same CLI arguments.
    """
    if args.generator in ("cholesky", "cholesky_rcm", "cholesky_amd"):
        pattern = SparseMatrixPattern.random(
            args.size, args.density, seed=args.seed, ensure_diagonal=True
        )
        return {"pattern": pattern}
    if args.generator == "fft":
        return {"points": 1 << max(1, args.size - 1).bit_length()}
    if args.generator == "fft4":
        points = 4
        while points < args.size:
            points *= 4
        return {"points": points}
    if args.generator == "stencil2d":
        return {"side": args.size, "steps": args.iterations}
    if args.generator == "stencil2d_rect":
        return {
            "width": max(2, args.size),
            "height": max(2, args.size // 2),
            "steps": args.iterations,
        }
    return {"side": args.size, "steps": args.iterations}  # stencil3d


def _command_generate(args: argparse.Namespace) -> int:
    out_format = args.out_format
    if out_format == "auto":
        if args.stream or args.output.endswith(".hdagb"):
            out_format = "hdagb"
        else:
            out_format = "hdag"
    if args.stream:
        if out_format != "hdagb":
            raise ConfigurationError("--stream writes .hdagb files; use --out-format hdagb")
        if args.generator not in STREAM_GENERATORS:
            raise ConfigurationError(
                f"generator {args.generator!r} has no streaming emitter; "
                f"available: {', '.join(sorted(STREAM_GENERATORS))}"
            )
        stream_generate(args.output, args.generator, **_stream_params(args))
        mapped = load_dag(args.output)
        print(
            f"wrote {args.output}: {mapped.num_nodes} nodes, "
            f"{mapped.num_edges} edges (streamed)"
        )
        return 0
    dag = _generate_dag(args)
    if out_format == "hdagb":
        write_hdagb(dag, args.output)
    else:
        write_hyperdag(dag, args.output)
    print(
        f"wrote {args.output}: {dag.num_nodes} nodes, {dag.num_edges} edges, "
        f"depth {dag.depth()}"
    )
    return 0


def _command_schedule(args: argparse.Namespace) -> int:
    _apply_init_workers(args)
    request = _request_from_args(args, args.scheduler)
    result = SchedulingService(store=args.store).solve(request)
    machine = request.build_machine()
    breakdown = result.breakdown
    cached = " [from store]" if result.cache_hit else ""
    print(
        f"{args.scheduler} on {machine.describe()}: cost {breakdown['total']:.2f} "
        f"(work {breakdown['work']:.2f}, comm {breakdown['comm']:.2f}, "
        f"latency {breakdown['latency']:.2f}, {result.num_supersteps} supersteps)"
        f"{cached}"
    )
    if args.render:
        print(render_schedule_text(result.to_schedule()))
    if args.output:
        Path(args.output).write_text(result.to_json(indent=2), encoding="utf-8")
        print(f"schedule result written to {args.output}")
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    _apply_init_workers(args)
    service = SchedulingService(store=args.store)
    # resolve the instance once and share the DAG (and its fingerprint
    # memo) across the whole batch instead of re-reading the file per
    # scheduler; load_dag dispatches on format (.hdagb binary, stored
    # .json payloads, hyperDAG text)
    dag = load_dag(args.input)
    machine_spec = _machine_spec_from_args(args)
    requests = [
        ScheduleRequest(
            dag=dag,
            machine=machine_spec,
            scheduler=SchedulerSpec(name),
            seed=args.seed,
        )
        for name in args.schedulers
    ]
    results = service.solve_many(requests)
    schedules = {
        name: result.to_schedule()
        for name, result in zip(args.schedulers, results)
    }
    machine = requests[0].build_machine()
    print(f"instance {args.input}: {dag.num_nodes} nodes on {machine.describe()}")
    print(render_cost_table(schedules))
    return 0


def _command_kernels(args: argparse.Namespace) -> int:
    from .core import kernels

    info = kernels.backend_info()
    if info["error"] is not None:
        print(f"kernel backend error: {info['error']}", file=sys.stderr)
        return 1
    print(f"active backend:    {info['active']}")
    print(f"available:         {', '.join(info['available'])}")
    forced = info["forced"]
    print(f"{kernels.ENV_VAR}: {forced if forced else '(unset)'}")
    if info["numba_available"]:
        print(f"numba version:     {info['numba_version']}")
    else:
        print(
            "numba:             unavailable "
            f"({info['numba_unavailable_reason']}); install the 'speed' "
            "extra (pip install repro-bsp-scheduling[speed]) to enable the "
            "compiled backend"
        )
    print("kernels:")
    width = max(len(name) for name in kernels.KERNELS)
    for name in sorted(kernels.KERNELS):
        print(f"  {name:<{width}}  {kernels.KERNELS[name]}")
    if args.warmup:
        seconds = kernels.warmup()
        print(f"warmup:            {seconds:.2f} s")
    return 0


def _command_queue(args: argparse.Namespace) -> int:
    from .store import ResultStore, WorkQueue

    queue = WorkQueue(args.root)
    if args.queue_command == "status":
        stats = queue.stats()
        store = ResultStore(args.root)
        print(f"store:   {len(store)} result(s) under {store.root}")
        print(f"pending: {stats['pending']}")
        print(f"leased:  {stats['leased']}")
        print(f"failed:  {stats['failed']}")
        return 0
    if args.queue_command == "submit":
        request = ScheduleRequest.from_json(
            Path(args.request).read_text(encoding="utf-8")
        )
        fingerprint = request.fingerprint()
        if ResultStore(args.root).contains(fingerprint):
            print(f"{fingerprint} already stored; not enqueued")
            return 0
        if queue.submit(fingerprint, request.to_dict()):
            print(f"enqueued {fingerprint}")
            return 0
        print(f"{fingerprint} already queued or terminally failed; not enqueued")
        return 1
    if args.queue_command == "expire":
        requeued, failed = queue.expire_leases(
            max_attempts=args.max_attempts, lease_seconds=args.lease_seconds
        )
        print(f"requeued {len(requeued)}, terminally failed {len(failed)}")
        return 0
    if args.queue_command == "failures":
        failures = queue.failures()
        for fingerprint, error in failures.items():
            print(f"{fingerprint}: {error}")
        print(f"{len(failures)} terminal failure(s)")
        return 0
    if args.queue_command == "gc":
        return _run_store_gc(args)
    retried = queue.retry_failed()  # "retry"
    print(f"requeued {len(retried)} failed entries")
    return 0


def _run_store_gc(args: argparse.Namespace) -> int:
    from .store import ResultStore

    report = ResultStore(args.root).gc(
        tmp_grace_seconds=args.tmp_grace_seconds,
        prune_trials=args.prune_trials,
    )
    print(
        f"gc {args.root}: removed {len(report['removed_results'])} dangling "
        f"result(s), {len(report['removed_dags'])} orphaned DAG payload(s), "
        f"{len(report['removed_tmp'])} stale temporar"
        f"{'y' if len(report['removed_tmp']) == 1 else 'ies'}"
    )
    if args.prune_trials:
        print(
            f"pruned {report['dropped_trials']} trial record(s) and "
            f"{report['dropped_experiments']} experiment record(s) whose "
            "results are gone"
        )
    return 0


def _command_store(args: argparse.Namespace) -> int:
    return _run_store_gc(args)  # "gc" is the only store subcommand


def _command_serve_worker(args: argparse.Namespace) -> int:
    from .store import Dispatcher

    dispatcher = Dispatcher(
        args.root,
        workers=args.workers,
        executor=args.executor,
        lease_seconds=args.lease_seconds,
        max_attempts=args.max_attempts,
        batch_size=args.batch_size,
    )
    if args.once:
        report = dispatcher.run_once()
    else:
        report = dispatcher.drain(
            poll_seconds=args.poll_seconds, max_batches=args.max_batches
        )
    print(
        f"worker {dispatcher.owner}: {len(report.completed)} completed, "
        f"{len(report.skipped)} already stored, {len(report.failed)} failed, "
        f"{len(report.requeued)} requeued over {report.batches} batch(es)"
    )
    for fingerprint, error in sorted(report.failed.items()):
        print(f"  failed {fingerprint}: {error}", file=sys.stderr)
    return 1 if report.failed else 0


def _bench_root_from_args(args: argparse.Namespace) -> str | None:
    return None if args.bench_root.lower() == "none" else args.bench_root


def _serve_dashboard(args: argparse.Namespace) -> int:
    from .web import make_app, serve

    app = make_app(
        args.store,
        _bench_root_from_args(args),
        speedup_tolerance=args.speedup_tolerance,
        cost_tolerance=args.cost_tolerance,
    )
    server = serve(app, host=args.host, port=args.port)
    print(
        f"dashboard on http://{args.host}:{server.server_port}/report "
        "(ctrl-c to stop)"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        server.server_close()
    return 0


def _command_report(args: argparse.Namespace) -> int:
    from .analysis.report import build_report, render_html
    from .store.fsio import atomic_write_text

    report = build_report(
        args.store,
        _bench_root_from_args(args),
        speedup_tolerance=args.speedup_tolerance,
        cost_tolerance=args.cost_tolerance,
    )
    atomic_write_text(Path(args.out), render_html(report))
    print(
        f"report written to {args.out}: {report.num_trials} trial(s), "
        f"{len(report.families)} families, {len(report.trajectory)} BENCH "
        f"record(s), {len(report.flags)} regression flag(s)"
    )
    for flag in report.flags:
        print(f"  REGRESSION {flag.describe()}", file=sys.stderr)
    if args.serve:
        return _serve_dashboard(args)
    if args.fail_on_regression and report.has_regressions:
        return 1
    return 0


def _command_web(args: argparse.Namespace) -> int:
    return _serve_dashboard(args)  # "serve" is the only web subcommand


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    commands = {
        "generate": _command_generate,
        "schedule": _command_schedule,
        "compare": _command_compare,
        "kernels": _command_kernels,
        "queue": _command_queue,
        "store": _command_store,
        "serve-worker": _command_serve_worker,
        "report": _command_report,
        "web": _command_web,
    }
    return commands[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
