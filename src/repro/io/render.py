"""Plain-text rendering of BSP schedules (ASCII "Gantt per superstep" view).

This mirrors Figure 1 of the paper in text form: every superstep is shown
with the nodes each processor computes and the values it sends/receives in
the communication phase.
"""

from __future__ import annotations

from collections import defaultdict

from ..core.schedule import BspSchedule

__all__ = ["render_schedule_text", "render_cost_table"]


def render_schedule_text(schedule: BspSchedule, max_nodes_per_cell: int = 12) -> str:
    """Multi-line, human readable rendering of a BSP schedule."""
    dag = schedule.dag
    machine = schedule.machine
    breakdown = schedule.cost_breakdown()
    lines = [
        f"Schedule of '{dag.name}' on {machine.describe()}",
        f"total cost {breakdown.total:.2f} = work {breakdown.work:.2f} "
        f"+ comm {breakdown.comm:.2f} + latency {breakdown.latency:.2f}",
        "",
    ]
    comm_by_step: dict[int, list] = defaultdict(list)
    for step in sorted(schedule.comm_schedule):
        comm_by_step[step.superstep].append(step)
    for s in range(schedule.num_supersteps):
        lines.append(
            f"=== superstep {s}  (work {breakdown.work_per_superstep[s]:.1f}, "
            f"h-relation {breakdown.comm_per_superstep[s]:.1f}) ==="
        )
        for p in range(machine.num_procs):
            nodes = schedule.nodes_in_superstep(s, p)
            shown = ", ".join(str(v) for v in nodes[:max_nodes_per_cell])
            if len(nodes) > max_nodes_per_cell:
                shown += f", ... (+{len(nodes) - max_nodes_per_cell})"
            work = sum(dag.work(v) for v in nodes)
            lines.append(f"  proc {p}: [{shown}]  (work {work:g})")
        sends = comm_by_step.get(s, [])
        if sends:
            rendered = ", ".join(
                f"v{step.node}: p{step.source}->p{step.target}" for step in sends
            )
            lines.append(f"  comm : {rendered}")
        else:
            lines.append("  comm : (none)")
    return "\n".join(lines)


def render_cost_table(schedules: dict[str, BspSchedule]) -> str:
    """Side-by-side cost comparison of several schedules of the same instance."""
    header = f"{'scheduler':<24} {'cost':>12} {'supersteps':>11} {'work':>10} {'comm':>10} {'latency':>9}"
    lines = [header, "-" * len(header)]
    for name, schedule in schedules.items():
        breakdown = schedule.cost_breakdown()
        lines.append(
            f"{name:<24} {breakdown.total:>12.2f} {schedule.num_supersteps:>11d} "
            f"{breakdown.work:>10.2f} {breakdown.comm:>10.2f} {breakdown.latency:>9.2f}"
        )
    return "\n".join(lines)
