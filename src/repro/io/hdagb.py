"""Binary ``.hdagb`` DAG format: memory-mapped buffers, streaming writer.

The out-of-core tier of the DAG pipeline.  A ``.hdagb`` file stores the
canonical CSR arrays of a :class:`~repro.core.dag.ComputationalDAG` — the
exact buffers every kernel reads and the content fingerprint hashes — as
aligned little-endian blocks behind a small versioned header:

========  ======  =====================================================
offset    size    field
========  ======  =====================================================
0         8       magic ``b"\\x89HDAGB\\r\\n"`` (high bit + CRLF catch
                  text-mode and 7-bit corruption, PNG style)
8         4       format version (uint32, currently 1)
12        4       flags (uint32, reserved)
16        8       number of nodes ``n`` (int64)
24        8       number of edges ``m`` (int64)
32        32      DAG content fingerprint (raw sha256 — the digest
                  :func:`repro.api.request.dag_fingerprint` computes)
64        32      payload checksum (sha256 of bytes
                  ``[payload_offset, file_size)``)
96        8       payload offset (int64, 64-byte aligned)
104       8       file size (int64)
112       4       name length in bytes (uint32)
116       4       reserved padding
120       ...     DAG name (utf-8), zero-padded to ``payload_offset``
========  ======  =====================================================

The payload is four sections, each aligned to 64 bytes from the start of
the file and laid out back to back: work weights (``<f8[n]``), comm
weights (``<f8[n]``), the successor CSR row pointer (``<i8[n + 1]``) and
the CSR targets (``<i8[m]``, source-major with insertion order within a
source — the canonical edge order of
:meth:`~repro.core.dag.ComputationalDAG.edge_arrays`).  Section offsets
are derived from ``n``/``m``, so the header fully describes the file.

:func:`read_hdagb` opens the payload with one ``np.memmap`` and returns a
:class:`MappedDag` whose weight vectors and successor CSR are zero-copy
views into the mapping — loading is O(header) regardless of size, the
fingerprint comes straight from the header, and the OS pages payload bytes
in only when a kernel touches them.  Mapped buffers are read-only; the
first mutation transparently copies (see
``ComputationalDAG._ensure_writable_weights`` and the capacity-doubling
edge appends, which always reallocate exactly-sized mapped buffers).

:class:`StreamingDagWriter` is the out-of-core construction path: it
accepts the same block-emitting API as :class:`~repro.core.dag.DagBuilder`
(``add_node_block`` / ``add_edges_array``), spills every block to disk,
and finalises into a ``.hdagb`` file holding only O(n) index arrays plus
one block in memory — never the edge buffers.  Its output is byte-identical
to ``write_hdagb(builder.freeze())`` for the same emission sequence.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import struct
import tempfile
import uuid
from pathlib import Path
from typing import Sequence

import numpy as np

from ..core.csr import build_csr
from ..core.dag import ComputationalDAG, _check_edge_endpoints
from ..core.exceptions import DagError

__all__ = [
    "HDAGB_MAGIC",
    "HDAGB_VERSION",
    "MappedDag",
    "StreamingDagWriter",
    "is_hdagb",
    "load_dag",
    "read_hdagb",
    "write_hdagb",
]

HDAGB_MAGIC = b"\x89HDAGB\r\n"
HDAGB_VERSION = 1

_INT = np.int64
_F8 = np.dtype("<f8")
_I8 = np.dtype("<i8")

#: magic 8s | version I | flags I | n q | m q | fingerprint 32s |
#: checksum 32s | payload_offset q | file_size q | name_len I | pad 4x
_HEADER = struct.Struct("<8sIIqq32s32sqqI4x")
_ALIGN = 64
_CHUNK_BYTES = 4 << 20  # streaming hash / copy chunk


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


def _layout(name_bytes: bytes, n: int, m: int) -> tuple[int, int, int, int, int, int]:
    """``(payload, work, comm, indptr, targets, end)`` offsets for a file."""
    payload = _align(_HEADER.size + len(name_bytes))
    work = payload
    comm = _align(work + 8 * n)
    indptr = _align(comm + 8 * n)
    targets = _align(indptr + 8 * (n + 1))
    return payload, work, comm, indptr, targets, targets + 8 * m


def _fingerprint_prefix(n: int) -> "hashlib._Hash":
    hasher = hashlib.sha256(b"repro-dag-v1")
    hasher.update(np.int64(n).tobytes())
    return hasher


# ---------------------------------------------------------------------- #
# mapped DAG
# ---------------------------------------------------------------------- #
def _materialized_dag(n, work, comm, src, dst, name, fingerprint):
    """Pickle target of :class:`MappedDag`: rebuild as a plain in-memory DAG."""
    dag = ComputationalDAG._from_buffers(n, work, comm, src, dst, name)
    dag._content_fingerprint = fingerprint
    return dag


class MappedDag(ComputationalDAG):
    """A :class:`ComputationalDAG` backed by a ``.hdagb`` memory mapping.

    The weight vectors, successor CSR row pointer and CSR targets are
    read-only zero-copy views into the file mapping; the flat source
    buffer and the predecessor CSR are derived lazily on first use (one
    O(m) pass each).  Mutations behave exactly like on an in-memory DAG:
    weight writes copy the mapped vectors first, edge/node appends
    reallocate (the mapped buffers are exactly sized, so the shared
    ``_grow`` path always copies), and once mutated the ordinary lazy CSR
    rebuild takes over.  Pickling materialises a plain in-memory DAG, so
    mapped DAGs travel through process pools like any other.
    """

    def __init__(self, *args, **kwargs):  # pragma: no cover - guarded API
        raise DagError("MappedDag is constructed by read_hdagb(), not directly")

    @classmethod
    def _from_mapping(cls, num_nodes, work, comm, indptr, targets, name, fingerprint):
        dag = cls.__new__(cls)
        dag.name = name
        dag._n = int(num_nodes)
        dag._work = work
        dag._comm = comm
        dag._m = int(targets.shape[0])
        dag._mapped_n = int(num_nodes)
        dag._mapped_indptr = indptr
        dag._mapped_targets = targets
        dag._esrc_cache = None
        dag._edst = targets
        dag._edge_set = None
        dag._invalidate()
        dag._content_fingerprint = fingerprint
        return dag

    def _is_pristine(self) -> bool:
        """Whether the structure still equals the mapping (nothing appended)."""
        return (
            self._n == self._mapped_n
            and self._edst is self._mapped_targets
            and self._m == self._mapped_targets.shape[0]
        )

    @property
    def _esrc(self) -> np.ndarray:
        cache = self._esrc_cache
        if cache is None:
            # canonical source-major order regenerated from the mapped row
            # pointer; read-only so every append-path _grow reallocates
            cache = np.repeat(
                np.arange(self._mapped_n, dtype=_INT),
                np.diff(self._mapped_indptr),
            )
            cache.flags.writeable = False
            self._esrc_cache = cache
        return cache

    @_esrc.setter
    def _esrc(self, value: np.ndarray) -> None:
        self._esrc_cache = value

    def _ensure_csr(self) -> None:
        if self._succ_indptr is not None:
            return
        if not self._is_pristine():
            super()._ensure_csr()
            return
        # the successor CSR *is* the mapping; only the predecessor side
        # needs building (one stable counting sort over the edges)
        src = self._esrc
        pred_indptr, pred_indices = build_csr(self._n, self._edst, src)
        for array in (pred_indptr, pred_indices):
            array.flags.writeable = False
        self._succ_indptr = self._mapped_indptr
        self._succ_indices = self._mapped_targets
        self._pred_indptr = pred_indptr
        self._pred_indices = pred_indices

    def __reduce__(self):
        return (
            _materialized_dag,
            (
                self._n,
                np.array(self._work[: self._n], dtype=np.float64),
                np.array(self._comm[: self._n], dtype=np.float64),
                np.array(self._esrc[: self._m], dtype=_INT),
                np.array(self._edst[: self._m], dtype=_INT),
                self.name,
                self._content_fingerprint,
            ),
        )


# ---------------------------------------------------------------------- #
# write / read
# ---------------------------------------------------------------------- #
def write_hdagb(dag: ComputationalDAG, path: str | Path) -> str:
    """Write ``dag`` to ``path`` in ``.hdagb`` format; return the fingerprint.

    The write is atomic (tmp sibling + rename).  Sections are emitted in
    canonical CSR order, so the header fingerprint equals what
    :func:`repro.api.request.dag_fingerprint` computes for the in-memory
    DAG — and what :func:`read_hdagb` seeds into the loaded one.
    """
    from ..api.request import dag_fingerprint

    path = Path(path)
    n = dag.num_nodes
    m = dag.num_edges
    name_bytes = dag.name.encode("utf-8")
    payload, work_off, comm_off, indptr_off, targets_off, end = _layout(
        name_bytes, n, m
    )
    work = np.ascontiguousarray(dag.work_weights, dtype=_F8)
    comm = np.ascontiguousarray(dag.comm_weights, dtype=_F8)
    indptr = np.ascontiguousarray(dag.succ_indptr, dtype=_I8)
    targets = np.ascontiguousarray(dag.succ_indices, dtype=_I8)
    fingerprint = dag_fingerprint(dag)

    checksum = hashlib.sha256()
    tmp = path.parent / f".{path.name}.{uuid.uuid4().hex}.tmp"
    try:
        with open(tmp, "wb") as handle:
            handle.write(b"\x00" * _HEADER.size)
            handle.write(name_bytes)
            handle.write(b"\x00" * (payload - _HEADER.size - len(name_bytes)))

            def emit(data, pad_to: int) -> None:
                handle.write(data)
                checksum.update(data)
                pad = pad_to - handle.tell()
                if pad > 0:
                    zeros = b"\x00" * pad
                    handle.write(zeros)
                    checksum.update(zeros)

            emit(work.tobytes(), comm_off)
            emit(comm.tobytes(), indptr_off)
            emit(indptr.tobytes(), targets_off)
            emit(targets.tobytes(), end)
            handle.seek(0)
            handle.write(
                _HEADER.pack(
                    HDAGB_MAGIC,
                    HDAGB_VERSION,
                    0,
                    n,
                    m,
                    bytes.fromhex(fingerprint),
                    checksum.digest(),
                    payload,
                    end,
                    len(name_bytes),
                )
            )
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return fingerprint


def _read_header(path: Path) -> tuple:
    """Validated header fields ``(n, m, fingerprint, checksum, payload, end, name)``."""
    try:
        size = path.stat().st_size
        with open(path, "rb") as handle:
            raw = handle.read(_HEADER.size)
            if len(raw) < _HEADER.size:
                raise DagError(f"{path}: truncated hdagb header ({len(raw)} bytes)")
            (
                magic,
                version,
                _flags,
                n,
                m,
                fingerprint,
                checksum,
                payload,
                end,
                name_len,
            ) = _HEADER.unpack(raw)
            if magic != HDAGB_MAGIC:
                raise DagError(f"{path}: not an hdagb file (bad magic {magic!r})")
            if version != HDAGB_VERSION:
                raise DagError(
                    f"{path}: unsupported hdagb version {version} "
                    f"(this reader handles version {HDAGB_VERSION})"
                )
            name_bytes = handle.read(name_len)
    except OSError as exc:
        raise DagError(f"{path}: cannot read hdagb file: {exc}") from exc
    if len(name_bytes) < name_len:
        raise DagError(f"{path}: truncated hdagb name field")
    if n < 0 or m < 0:
        raise DagError(f"{path}: corrupt hdagb header (n={n}, m={m})")
    expect_payload, *_rest, expect_end = _layout(name_bytes, n, m)
    if payload != expect_payload or end != expect_end or size != end:
        raise DagError(
            f"{path}: corrupt or truncated hdagb file (size {size}, "
            f"header claims {end}, layout expects {expect_end})"
        )
    try:
        name = name_bytes.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise DagError(f"{path}: corrupt hdagb name field: {exc}") from exc
    return n, m, fingerprint, checksum, payload, end, name


def read_hdagb(path: str | Path, *, verify: bool = False) -> MappedDag:
    """Load a ``.hdagb`` file as a zero-copy :class:`MappedDag`.

    Header, size and section bounds are always validated (so truncation
    and header corruption fail loudly); ``verify=True`` additionally
    recomputes the payload checksum — an O(file) streaming read that the
    default skips to keep loads O(header).
    """
    path = Path(path)
    n, m, fingerprint, checksum, payload, end, name = _read_header(path)
    mapping = np.memmap(path, dtype=np.uint8, mode="r")
    if verify:
        hasher = hashlib.sha256()
        for pos in range(payload, end, _CHUNK_BYTES):
            hasher.update(mapping[pos : min(pos + _CHUNK_BYTES, end)])
        if hasher.digest() != checksum:
            raise DagError(f"{path}: hdagb payload checksum mismatch")
    _payload, work_off, comm_off, indptr_off, targets_off, _end = _layout(
        name.encode("utf-8"), n, m
    )
    work = np.asarray(mapping[work_off : work_off + 8 * n]).view(_F8)
    comm = np.asarray(mapping[comm_off : comm_off + 8 * n]).view(_F8)
    indptr = np.asarray(mapping[indptr_off : indptr_off + 8 * (n + 1)]).view(_I8)
    targets = np.asarray(mapping[targets_off : targets_off + 8 * m]).view(_I8)
    return MappedDag._from_mapping(
        n, work, comm, indptr, targets, name, fingerprint.hex()
    )


def is_hdagb(path: str | Path) -> bool:
    """Whether ``path`` starts with the ``.hdagb`` magic bytes."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(HDAGB_MAGIC)) == HDAGB_MAGIC
    except OSError:
        return False


def load_dag(path: str | Path) -> ComputationalDAG:
    """Load a DAG from any on-disk format, old or new.

    Dispatches on extension first (``.hdagb`` binary, ``.json`` stored
    ``dag_to_dict`` payload, anything else hyperDAG text), with a
    magic-bytes fallback so a ``.hdagb`` file under an unexpected name
    still loads.
    """
    path = Path(path)
    if path.suffix == ".hdagb":
        return read_hdagb(path)
    if path.suffix == ".json":
        from ..core.serialization import dag_from_dict

        return dag_from_dict(json.loads(path.read_text(encoding="utf-8")))
    if is_hdagb(path):
        return read_hdagb(path)
    from .hyperdag import read_hyperdag

    return read_hyperdag(path)


# ---------------------------------------------------------------------- #
# streaming writer
# ---------------------------------------------------------------------- #
class StreamingDagWriter:
    """Out-of-core ``DagBuilder``: spill blocks to disk, finalise to ``.hdagb``.

    Accepts the builder's block-emitting API (``add_node_block``,
    ``add_nodes_array``, ``add_edge``, ``add_edges_array``) but keeps only
    the per-source edge counts in memory — node weights and edge blocks
    are appended to spill files as they arrive.  :meth:`finalize` then
    assembles the ``.hdagb`` file with two sequential passes over the
    spills (a counting-sort scatter of the targets and a hashing pass),
    so peak memory stays O(n + block) however many edges stream through.

    For the same emission sequence the resulting file is byte-identical
    to ``write_hdagb(builder.freeze())`` — the scatter reproduces the
    stable source-major order of :func:`repro.core.csr.build_csr`.

    Usable as a context manager; leaving the ``with`` block without a
    successful :meth:`finalize` removes the spill files and writes
    nothing.
    """

    def __init__(
        self,
        path: str | Path,
        name: str = "dag",
        *,
        block_edges: int = 1 << 20,
        tmp_dir: str | Path | None = None,
    ) -> None:
        if block_edges < 1:
            raise DagError("block_edges must be positive")
        self._path = Path(path)
        self.name = name
        self._block = int(block_edges)
        self._n = 0
        self._m = 0
        self._counts = np.zeros(0, dtype=_INT)
        self._closed = False
        parent = Path(tmp_dir) if tmp_dir is not None else self._path.parent
        self._spill = Path(
            tempfile.mkdtemp(prefix=f".{self._path.name}.spill-", dir=parent)
        )
        self._work_f = open(self._spill / "work.f8", "wb")
        self._comm_f = open(self._spill / "comm.f8", "wb")
        self._esrc_f = open(self._spill / "esrc.i8", "wb")
        self._edst_f = open(self._spill / "edst.i8", "wb")

    # -------------------------------------------------------------- #
    @property
    def num_nodes(self) -> int:
        """Number of nodes emitted so far."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of edges emitted so far."""
        return self._m

    def _check_open(self) -> None:
        if self._closed:
            raise DagError("StreamingDagWriter is closed")

    def add_node_block(self, count: int, work: float = 1.0, comm: float = 1.0) -> int:
        """Append ``count`` identically weighted nodes; return the first index."""
        self._check_open()
        if count <= 0:
            return self._n
        if work < 0 or comm < 0:
            raise DagError("node weights must be non-negative")
        first = self._n
        chunk = max(1, _CHUNK_BYTES // 8)
        work_chunk = np.full(min(count, chunk), float(work), dtype=_F8).tobytes()
        comm_chunk = np.full(min(count, chunk), float(comm), dtype=_F8).tobytes()
        remaining = count
        while remaining > 0:
            step = min(remaining, chunk)
            self._work_f.write(work_chunk[: 8 * step])
            self._comm_f.write(comm_chunk[: 8 * step])
            remaining -= step
        self._n += count
        return first

    def add_nodes_array(
        self,
        work_weights: Sequence[float],
        comm_weights: Sequence[float] | None = None,
    ) -> np.ndarray:
        """Append one node per entry of ``work_weights``; return their indices."""
        self._check_open()
        work = np.ascontiguousarray(work_weights, dtype=_F8)
        comm = (
            np.ones_like(work)
            if comm_weights is None
            else np.ascontiguousarray(comm_weights, dtype=_F8)
        )
        if work.shape != comm.shape or work.ndim != 1:
            raise DagError("weight arrays must be 1-D and of equal length")
        if work.size and (work.min() < 0 or comm.min() < 0):
            raise DagError("node weights must be non-negative")
        self._work_f.write(work.tobytes())
        self._comm_f.write(comm.tobytes())
        first = self._n
        self._n += work.size
        return np.arange(first, self._n, dtype=_INT)

    def add_edge(self, source: int, target: int) -> None:
        """Append a single edge (convenience wrapper over the block path)."""
        self.add_edges_array(
            np.array([source], dtype=_INT), np.array([target], dtype=_INT)
        )

    def add_edges_array(
        self,
        sources: np.ndarray | Sequence[int],
        targets: np.ndarray | Sequence[int],
    ) -> None:
        """Append parallel edge arrays; endpoints validated against nodes so far."""
        self._check_open()
        src = np.ascontiguousarray(sources, dtype=_INT)
        dst = np.ascontiguousarray(targets, dtype=_INT)
        if src.shape != dst.shape or src.ndim != 1:
            raise DagError("sources and targets must be 1-D arrays of equal length")
        if src.size == 0:
            return
        _check_edge_endpoints(self._n, src, dst)
        if self._counts.shape[0] < self._n:
            grown = np.zeros(max(self._n, 2 * self._counts.shape[0]), dtype=_INT)
            grown[: self._counts.shape[0]] = self._counts
            self._counts = grown
        block = np.bincount(src)
        self._counts[: block.shape[0]] += block
        self._esrc_f.write(src.astype(_I8, copy=False).tobytes())
        self._edst_f.write(dst.astype(_I8, copy=False).tobytes())
        self._m += src.size

    # -------------------------------------------------------------- #
    def _cleanup(self) -> None:
        for handle in (self._work_f, self._comm_f, self._esrc_f, self._edst_f):
            try:
                handle.close()
            except OSError:  # pragma: no cover - best-effort teardown
                pass
        shutil.rmtree(self._spill, ignore_errors=True)
        self._closed = True

    def abort(self) -> None:
        """Drop the spill files without writing anything."""
        if not self._closed:
            self._cleanup()

    def __enter__(self) -> "StreamingDagWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.abort()

    def _iter_edge_blocks(self):
        """Yield ``(src, dst)`` int64 block pairs re-read from the spills."""
        with open(self._spill / "esrc.i8", "rb") as src_f, open(
            self._spill / "edst.i8", "rb"
        ) as dst_f:
            while True:
                raw_src = src_f.read(8 * self._block)
                if not raw_src:
                    return
                raw_dst = dst_f.read(len(raw_src))
                yield (
                    np.frombuffer(raw_src, dtype=_I8),
                    np.frombuffer(raw_dst, dtype=_I8),
                )

    def _copy_spill(self, handle, spill_name: str, checksum) -> None:
        with open(self._spill / spill_name, "rb") as spill:
            while True:
                chunk = spill.read(_CHUNK_BYTES)
                if not chunk:
                    return
                handle.write(chunk)
                checksum.update(chunk)

    def _write_weights(self, handle, checksum, spill_name: str, override) -> None:
        """One weight section: the spill copy, or a finalize-time override."""
        if override is None:
            self._copy_spill(handle, spill_name, checksum)
            return
        arr = np.ascontiguousarray(override, dtype=_F8)
        if arr.ndim != 1 or arr.shape[0] != self._n:
            raise DagError(
                f"weight override must have length {self._n}, got shape {arr.shape}"
            )
        if arr.size and arr.min() < 0:
            raise DagError("node weights must be non-negative")
        step = max(1, _CHUNK_BYTES // 8)
        for lo in range(0, arr.shape[0], step):
            data = arr[lo : lo + step].tobytes()
            handle.write(data)
            checksum.update(data)

    def finalize(
        self,
        *,
        validate: bool = True,
        work: np.ndarray | None = None,
        comm: np.ndarray | None = None,
    ) -> str:
        """Assemble the ``.hdagb`` file; return the DAG content fingerprint.

        Three bounded-memory passes over the spills: a counting-sort
        scatter of the targets into their canonical CSR slots, an optional
        per-row duplicate-edge check (``validate``, on by default — the
        same contract as ``DagBuilder.freeze``), and one hashing sweep
        computing both the payload checksum and the content fingerprint.
        ``work``/``comm`` override the spilled per-node weights with
        finalize-time vectors — that is how the streamed generators apply
        degree-based weight models, whose inputs only exist once all edges
        have been seen, without a second pass over the node spills.
        The write is atomic (tmp sibling + rename).
        """
        self._check_open()
        for handle in (self._work_f, self._comm_f, self._esrc_f, self._edst_f):
            handle.flush()
        n = self._n
        m = self._m
        name_bytes = self.name.encode("utf-8")
        payload, work_off, comm_off, indptr_off, targets_off, end = _layout(
            name_bytes, n, m
        )
        indptr = np.zeros(n + 1, dtype=_I8)
        np.cumsum(self._counts[:n], out=indptr[1:])

        checksum = hashlib.sha256()
        tmp = self._path.parent / f".{self._path.name}.{uuid.uuid4().hex}.tmp"
        try:
            with open(tmp, "wb") as handle:
                handle.write(b"\x00" * _HEADER.size)
                handle.write(name_bytes)
                handle.write(b"\x00" * (payload - _HEADER.size - len(name_bytes)))

                def pad_to(offset: int) -> None:
                    gap = offset - handle.tell()
                    if gap > 0:
                        zeros = b"\x00" * gap
                        handle.write(zeros)
                        checksum.update(zeros)

                self._write_weights(handle, checksum, "work.f8", work)
                pad_to(comm_off)
                self._write_weights(handle, checksum, "comm.f8", comm)
                pad_to(indptr_off)
                data = indptr.tobytes()
                handle.write(data)
                checksum.update(data)
                pad_to(targets_off)
                handle.truncate(end)

            # pass 1 — counting-sort scatter of the targets: stable within
            # each block (stable argsort) and across blocks (cursor
            # advance), reproducing build_csr's canonical row order
            if m:
                out = np.memmap(tmp, dtype=np.uint8, mode="r+")
                targets_view = out[targets_off:end].view(_I8)
                cursor = indptr[:n].astype(_INT, copy=True)
                for src, dst in self._iter_edge_blocks():
                    order = np.argsort(src, kind="stable")
                    ssrc = src[order]
                    sdst = dst[order]
                    uniq, first_index, counts = np.unique(
                        ssrc, return_index=True, return_counts=True
                    )
                    within = np.arange(ssrc.shape[0], dtype=_INT) - np.repeat(
                        first_index, counts
                    )
                    targets_view[cursor[ssrc] + within] = sdst
                    cursor[uniq] += counts
                out.flush()
                del targets_view, out

            mapping = np.memmap(tmp, dtype=np.uint8, mode="r") if end > payload else None
            targets_view = (
                mapping[targets_off:end].view(_I8)
                if mapping is not None
                else np.empty(0, dtype=_I8)
            )

            # pass 2 — per-row duplicate check, chunked on row boundaries
            if validate and m:
                self._validate_rows(indptr, targets_view, n)

            # pass 3 — payload checksum of the scattered section + content
            # fingerprint over the canonical buffers (sources regenerated
            # row-chunk by row-chunk from the row pointer)
            for pos in range(targets_off, end, _CHUNK_BYTES):
                checksum.update(mapping[pos : min(pos + _CHUNK_BYTES, end)])
            fingerprint = self._fingerprint(mapping, indptr, n, m, name_bytes)

            with open(tmp, "r+b") as handle:
                handle.write(
                    _HEADER.pack(
                        HDAGB_MAGIC,
                        HDAGB_VERSION,
                        0,
                        n,
                        m,
                        bytes.fromhex(fingerprint),
                        checksum.digest(),
                        payload,
                        end,
                        len(name_bytes),
                    )
                )
            if mapping is not None:
                del targets_view, mapping
            os.replace(tmp, self._path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        finally:
            self._cleanup()
        return fingerprint

    def _validate_rows(self, indptr: np.ndarray, targets: np.ndarray, n: int) -> None:
        """Duplicate-edge check in row chunks (mirrors ``DagBuilder.freeze``)."""
        chunk_rows = 0
        row = 0
        limit = max(self._block, 1)
        while row < n:
            # widest row span whose edges fit in one block
            chunk_rows = int(
                np.searchsorted(indptr, indptr[row] + limit, side="right")
            ) - 1
            chunk_rows = max(chunk_rows, row + 1)
            chunk_rows = min(chunk_rows, n)
            lo = int(indptr[row])
            hi = int(indptr[chunk_rows])
            seg = np.asarray(targets[lo:hi], dtype=_INT)
            rows = np.repeat(
                np.arange(row, chunk_rows, dtype=_INT),
                np.diff(indptr[row : chunk_rows + 1]).astype(_INT),
            )
            keys = np.sort(rows * np.int64(n) + seg)
            duplicates = keys[1:] == keys[:-1]
            if duplicates.any():
                dup = keys[int(np.argmax(duplicates))]
                raise DagError(
                    f"duplicate edge ({int(dup // n)}, {int(dup % n)})"
                )
            row = chunk_rows

    def _fingerprint(
        self,
        mapping: np.ndarray | None,
        indptr: np.ndarray,
        n: int,
        m: int,
        name_bytes: bytes,
    ) -> str:
        hasher = _fingerprint_prefix(n)
        _payload, work_off, comm_off, indptr_off, targets_off, end = _layout(
            name_bytes, n, m
        )
        if mapping is not None:
            for lo, hi in ((work_off, work_off + 8 * n), (comm_off, comm_off + 8 * n)):
                for pos in range(lo, hi, _CHUNK_BYTES):
                    hasher.update(mapping[pos : min(pos + _CHUNK_BYTES, hi)])
        # canonical sources, regenerated in row chunks from the row pointer
        row = 0
        limit = max(self._block, 1)
        while row < n:
            chunk_rows = int(
                np.searchsorted(indptr, indptr[row] + limit, side="right")
            ) - 1
            chunk_rows = max(chunk_rows, row + 1)
            chunk_rows = min(chunk_rows, n)
            sources = np.repeat(
                np.arange(row, chunk_rows, dtype=_INT),
                np.diff(indptr[row : chunk_rows + 1]).astype(_INT),
            )
            hasher.update(sources.astype(_I8, copy=False).tobytes())
            row = chunk_rows
        if mapping is not None:
            for pos in range(targets_off, end, _CHUNK_BYTES):
                hasher.update(mapping[pos : min(pos + _CHUNK_BYTES, end)])
        return hasher.hexdigest()
