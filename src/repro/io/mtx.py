"""MatrixMarket (``.mtx``) pattern reader/writer, CSR end to end.

The paper's fine-grained generator can build its computational DAGs from the
nonzero pattern of a real-world matrix instead of a random one (Appendix
B.2: "the generator also has the option to load input matrices from a
file").  This module reads the coordinate MatrixMarket format — by far the
most common exchange format for such matrices (SuiteSparse etc.) — straight
into the CSR arrays of a
:class:`~repro.dagdb.sparsegen.SparseMatrixPattern`: the entry block is
parsed in one ``np.loadtxt`` call and deduplicated/sorted with one
``np.unique`` pass, so ingesting a million-nonzero matrix costs a few numpy
operations rather than a Python loop per entry.

Only the structural information is used: values are ignored, ``symmetric``
and ``skew-symmetric``/``hermitian`` matrices are expanded, and rectangular
matrices are rejected (the generators need square operands).
:func:`write_matrix_market_pattern` writes a pattern back out; reading the
written file reproduces the CSR arrays exactly (round-trip identity).
"""

from __future__ import annotations

import io
import warnings
from pathlib import Path
from typing import TextIO

import numpy as np

from ..core.exceptions import DagError
from ..dagdb.sparsegen import SparseMatrixPattern

__all__ = [
    "read_matrix_market_pattern",
    "loads_matrix_market_pattern",
    "write_matrix_market_pattern",
    "dumps_matrix_market_pattern",
]

_INT = np.int64


def loads_matrix_market_pattern(text: str) -> SparseMatrixPattern:
    """Parse MatrixMarket coordinate data from a string."""
    return _read(io.StringIO(text))


def read_matrix_market_pattern(path: str | Path) -> SparseMatrixPattern:
    """Read the nonzero pattern of a MatrixMarket coordinate file."""
    with open(path, "r", encoding="utf-8") as handle:
        return _read(handle)


def dumps_matrix_market_pattern(pattern: SparseMatrixPattern) -> str:
    """Render a pattern as MatrixMarket ``coordinate pattern general`` text."""
    out = io.StringIO()
    _write(pattern, out)
    return out.getvalue()


def write_matrix_market_pattern(pattern: SparseMatrixPattern, path: str | Path) -> None:
    """Write a pattern to a MatrixMarket coordinate file."""
    with open(path, "w", encoding="utf-8") as handle:
        _write(pattern, handle)


def _write(pattern: SparseMatrixPattern, handle: TextIO) -> None:
    handle.write("%%MatrixMarket matrix coordinate pattern general\n")
    handle.write(f"{pattern.size} {pattern.size} {pattern.nnz}\n")
    table = np.column_stack((pattern.row_ids() + 1, pattern.indices + 1))
    np.savetxt(handle, table, fmt="%d")


def _read(handle: TextIO) -> SparseMatrixPattern:
    header = handle.readline().strip().lower().split()
    if len(header) < 4 or header[0] != "%%matrixmarket" or header[1] != "matrix":
        raise DagError("not a MatrixMarket file (missing %%MatrixMarket header)")
    layout = header[2]
    symmetry = header[4] if len(header) > 4 else "general"
    if layout != "coordinate":
        raise DagError(f"only coordinate MatrixMarket files are supported, got {layout!r}")

    size_line = None
    for raw in handle:
        stripped = raw.strip()
        if not stripped or stripped.startswith("%"):
            continue
        size_line = stripped
        break
    if size_line is None:
        raise DagError("MatrixMarket file has no size line")
    parts = size_line.split()
    if len(parts) != 3:
        raise DagError(f"malformed size line {size_line!r}")
    try:
        rows, cols, nnz = (int(x) for x in parts)
    except ValueError as exc:
        raise DagError(f"malformed size line {size_line!r}") from exc
    if rows != cols:
        raise DagError(
            f"the fine-grained generators need a square matrix, got {rows}x{cols}"
        )

    # one vectorized pass over the whole entry block (values are ignored;
    # ragged lines or non-numeric fields surface as a loadtxt ValueError)
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")  # loadtxt warns on an empty block
            table = np.loadtxt(handle, comments="%", ndmin=2)
    except ValueError as exc:
        raise DagError(f"malformed MatrixMarket entry block: {exc}") from exc
    if table.size and table.shape[1] < 2:
        raise DagError("malformed MatrixMarket entry block: entries need 2+ fields")
    read_entries = table.shape[0] if table.size else 0
    if read_entries != nnz:
        raise DagError(
            f"MatrixMarket file announces {nnz} entries but contains {read_entries}"
        )

    if read_entries == 0:
        return SparseMatrixPattern.from_csr(
            rows, np.zeros(rows + 1, dtype=_INT), np.empty(0, dtype=_INT)
        )
    if np.any(table[:, :2] != np.floor(table[:, :2])):
        k = int(np.argmax((table[:, :2] != np.floor(table[:, :2])).any(axis=1)))
        raise DagError(
            f"malformed MatrixMarket entry: non-integer coordinate in row "
            f"{table[k, 0]:g} {table[k, 1]:g}"
        )
    i = table[:, 0].astype(_INT) - 1
    j = table[:, 1].astype(_INT) - 1
    bad = (i < 0) | (i >= rows) | (j < 0) | (j >= cols)
    if bad.any():
        k = int(np.argmax(bad))
        raise DagError(
            f"entry ({int(i[k]) + 1}, {int(j[k]) + 1}) out of bounds for {rows}x{cols}"
        )
    if symmetry in ("symmetric", "skew-symmetric", "hermitian"):
        off_diag = i != j
        mirrored_i, mirrored_j = j[off_diag], i[off_diag]
        i = np.concatenate((i, mirrored_i))
        j = np.concatenate((j, mirrored_j))
    keys = np.unique(i * _INT(max(rows, 1)) + j)
    counts = np.bincount(keys // max(rows, 1), minlength=rows)
    indptr = np.zeros(rows + 1, dtype=_INT)
    np.cumsum(counts, out=indptr[1:])
    return SparseMatrixPattern.from_csr(
        rows, indptr, (keys % max(rows, 1)).astype(_INT), validate=False
    )
