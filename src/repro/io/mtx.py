"""Minimal MatrixMarket (``.mtx``) pattern reader.

The paper's fine-grained generator can build its computational DAGs from the
nonzero pattern of a real-world matrix instead of a random one (Appendix
B.2: "the generator also has the option to load input matrices from a
file").  This module reads the coordinate MatrixMarket format — by far the
most common exchange format for such matrices (SuiteSparse etc.) — into a
:class:`~repro.dagdb.sparsegen.SparseMatrixPattern`.

Only the structural information is used: values are ignored, ``symmetric``
and ``skew-symmetric``/``hermitian`` matrices are expanded, and rectangular
matrices are rejected (the generators need square operands).
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO

from ..core.exceptions import DagError
from ..dagdb.sparsegen import SparseMatrixPattern

__all__ = ["read_matrix_market_pattern", "loads_matrix_market_pattern"]


def loads_matrix_market_pattern(text: str) -> SparseMatrixPattern:
    """Parse MatrixMarket coordinate data from a string."""
    return _read(io.StringIO(text))


def read_matrix_market_pattern(path: str | Path) -> SparseMatrixPattern:
    """Read the nonzero pattern of a MatrixMarket coordinate file."""
    with open(path, "r", encoding="utf-8") as handle:
        return _read(handle)


def _read(handle: TextIO) -> SparseMatrixPattern:
    header = handle.readline().strip().lower().split()
    if len(header) < 4 or header[0] != "%%matrixmarket" or header[1] != "matrix":
        raise DagError("not a MatrixMarket file (missing %%MatrixMarket header)")
    layout = header[2]
    symmetry = header[4] if len(header) > 4 else "general"
    if layout != "coordinate":
        raise DagError(f"only coordinate MatrixMarket files are supported, got {layout!r}")

    size_line = None
    for raw in handle:
        stripped = raw.strip()
        if not stripped or stripped.startswith("%"):
            continue
        size_line = stripped
        break
    if size_line is None:
        raise DagError("MatrixMarket file has no size line")
    parts = size_line.split()
    if len(parts) != 3:
        raise DagError(f"malformed size line {size_line!r}")
    rows, cols, nnz = (int(x) for x in parts)
    if rows != cols:
        raise DagError(
            f"the fine-grained generators need a square matrix, got {rows}x{cols}"
        )

    coordinates: list[tuple[int, int]] = []
    read_entries = 0
    for raw in handle:
        stripped = raw.strip()
        if not stripped or stripped.startswith("%"):
            continue
        fields = stripped.split()
        if len(fields) < 2:
            raise DagError(f"malformed entry line {stripped!r}")
        i, j = int(fields[0]) - 1, int(fields[1]) - 1
        if not (0 <= i < rows and 0 <= j < cols):
            raise DagError(f"entry ({i + 1}, {j + 1}) out of bounds for {rows}x{cols}")
        coordinates.append((i, j))
        if symmetry in ("symmetric", "skew-symmetric", "hermitian") and i != j:
            coordinates.append((j, i))
        read_entries += 1
    if read_entries != nnz:
        raise DagError(
            f"MatrixMarket file announces {nnz} entries but contains {read_entries}"
        )
    return SparseMatrixPattern.from_coordinates(rows, coordinates)
