"""HyperDAG file format (paper Section 5 / Appendix B).

The paper's DAG database stores computational DAGs in a *hyperDAG* format:
every non-sink node contributes one hyperedge containing the node itself and
all of its direct successors (modelling the fact that a value only has to be
communicated once per target processor).  For scheduling this is simply an
alternative encoding of the DAG, and all algorithms convert it back to the
plain DAG representation first.

The concrete text format used here is line-oriented and self-describing::

    %% HyperDAG <name>
    % optional comment lines start with '%'
    nodes <n>
    <work_0> <comm_0>
    ...
    <work_{n-1}> <comm_{n-1}>
    hyperedges <h>
    <source> <succ_1> <succ_2> ...
    ...

Node indices are 0-based.  :func:`write_hyperdag` and :func:`read_hyperdag`
round-trip :class:`~repro.core.dag.ComputationalDAG` objects exactly.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO

from ..core.dag import ComputationalDAG
from ..core.exceptions import DagError

__all__ = ["write_hyperdag", "read_hyperdag", "dumps_hyperdag", "loads_hyperdag"]


def dumps_hyperdag(dag: ComputationalDAG) -> str:
    """Serialise ``dag`` to a hyperDAG-format string."""
    buffer = io.StringIO()
    _write(dag, buffer)
    return buffer.getvalue()


def write_hyperdag(dag: ComputationalDAG, path: str | Path) -> None:
    """Write ``dag`` to ``path`` in hyperDAG format."""
    with open(path, "w", encoding="utf-8") as handle:
        _write(dag, handle)


def _write(dag: ComputationalDAG, handle: TextIO) -> None:
    handle.write(f"%% HyperDAG {dag.name}\n")
    handle.write(f"% nodes={dag.num_nodes} edges={dag.num_edges}\n")
    handle.write(f"nodes {dag.num_nodes}\n")
    for v in dag.nodes():
        handle.write(f"{dag.work(v):g} {dag.comm(v):g}\n")
    hyperedges = [(v, dag.successors(v)) for v in dag.nodes() if dag.out_degree(v) > 0]
    handle.write(f"hyperedges {len(hyperedges)}\n")
    for source, succs in hyperedges:
        handle.write(" ".join(str(x) for x in [source, *succs]) + "\n")


def loads_hyperdag(text: str) -> ComputationalDAG:
    """Parse a hyperDAG-format string into a :class:`ComputationalDAG`."""
    return _read(io.StringIO(text))


def read_hyperdag(path: str | Path) -> ComputationalDAG:
    """Read a hyperDAG file from ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return _read(handle)


def _read(handle: TextIO) -> ComputationalDAG:
    name = "hyperdag"
    lines: list[str] = []
    for raw in handle:
        stripped = raw.strip()
        if stripped.startswith("%%"):
            parts = stripped.split(maxsplit=2)
            if len(parts) >= 3:
                name = parts[2]
            continue
        if not stripped or stripped.startswith("%"):
            continue
        lines.append(stripped)
    cursor = 0

    def next_line() -> str:
        nonlocal cursor
        if cursor >= len(lines):
            raise DagError("unexpected end of hyperDAG file")
        line = lines[cursor]
        cursor += 1
        return line

    header = next_line().split()
    if len(header) != 2 or header[0] != "nodes":
        raise DagError(f"expected 'nodes <n>' header, got {header!r}")
    num_nodes = int(header[1])
    works: list[float] = []
    comms: list[float] = []
    for _ in range(num_nodes):
        parts = next_line().split()
        if len(parts) != 2:
            raise DagError(f"expected 'work comm' node line, got {parts!r}")
        works.append(float(parts[0]))
        comms.append(float(parts[1]))
    dag = ComputationalDAG(num_nodes, works, comms, name=name)

    header = next_line().split()
    if len(header) != 2 or header[0] != "hyperedges":
        raise DagError(f"expected 'hyperedges <h>' header, got {header!r}")
    num_hyperedges = int(header[1])
    for _ in range(num_hyperedges):
        parts = [int(x) for x in next_line().split()]
        if len(parts) < 2:
            raise DagError("hyperedge line must contain a source and at least one successor")
        source, *succs = parts
        for target in succs:
            dag.add_edge(source, target)
    if not dag.is_acyclic():
        raise DagError("hyperDAG file encodes a cyclic graph")
    return dag
