"""GraphViz DOT export for DAGs and schedules (visual inspection / debugging)."""

from __future__ import annotations

from pathlib import Path

from ..core.dag import ComputationalDAG
from ..core.schedule import BspSchedule

__all__ = ["dag_to_dot", "schedule_to_dot", "write_dot"]

_PALETTE = (
    "#a6cee3", "#1f78b4", "#b2df8a", "#33a02c", "#fb9a99", "#e31a1c",
    "#fdbf6f", "#ff7f00", "#cab2d6", "#6a3d9a", "#ffff99", "#b15928",
    "#8dd3c7", "#bebada", "#fb8072", "#80b1d3",
)


def dag_to_dot(dag: ComputationalDAG) -> str:
    """Render a DAG as a DOT digraph with weights in the node labels."""
    lines = [f'digraph "{dag.name}" {{', "  rankdir=TB;", "  node [shape=circle];"]
    for v in dag.nodes():
        lines.append(
            f'  n{v} [label="{v}\\nw={dag.work(v):g} c={dag.comm(v):g}"];'
        )
    for edge in dag.edges():
        lines.append(f"  n{edge.source} -> n{edge.target};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def schedule_to_dot(schedule: BspSchedule) -> str:
    """Render a BSP schedule: nodes coloured by processor and clustered by superstep."""
    dag = schedule.dag
    lines = [f'digraph "{dag.name}_schedule" {{', "  rankdir=TB;",
             '  node [shape=circle, style=filled];']
    for s in range(schedule.num_supersteps):
        members = schedule.nodes_in_superstep(s)
        lines.append(f"  subgraph cluster_superstep_{s} {{")
        lines.append(f'    label="superstep {s}";')
        for v in members:
            color = _PALETTE[schedule.proc_of(v) % len(_PALETTE)]
            lines.append(
                f'    n{v} [label="{v}\\np{schedule.proc_of(v)}", fillcolor="{color}"];'
            )
        lines.append("  }")
    for edge in dag.edges():
        lines.append(f"  n{edge.source} -> n{edge.target};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def write_dot(content: str, path: str | Path) -> None:
    """Write already-rendered DOT text to ``path``."""
    Path(path).write_text(content, encoding="utf-8")
