"""File formats and rendering: hyperDAG I/O, binary DAGs, DOT, rendering."""

from .dot import dag_to_dot, schedule_to_dot, write_dot
from .hdagb import (
    MappedDag,
    StreamingDagWriter,
    is_hdagb,
    load_dag,
    read_hdagb,
    write_hdagb,
)
from .hyperdag import dumps_hyperdag, loads_hyperdag, read_hyperdag, write_hyperdag
from .mtx import (
    dumps_matrix_market_pattern,
    loads_matrix_market_pattern,
    read_matrix_market_pattern,
    write_matrix_market_pattern,
)
from .render import render_cost_table, render_schedule_text

__all__ = [
    "MappedDag",
    "StreamingDagWriter",
    "dag_to_dot",
    "dumps_hyperdag",
    "dumps_matrix_market_pattern",
    "is_hdagb",
    "load_dag",
    "loads_hyperdag",
    "loads_matrix_market_pattern",
    "read_hdagb",
    "read_hyperdag",
    "read_matrix_market_pattern",
    "render_cost_table",
    "render_schedule_text",
    "schedule_to_dot",
    "write_dot",
    "write_hdagb",
    "write_hyperdag",
    "write_matrix_market_pattern",
]
