"""Curated SuiteSparse matrices: real-world inputs for elimination DAGs.

The paper's fine-grained generators accept real matrix patterns (Appendix
B.2), and :mod:`repro.io.mtx` reads the MatrixMarket exchange format the
SuiteSparse collection ships.  This module adds the *recipe* on top: a
curated list of symmetric positive-definite matrices spanning four orders
of magnitude in column count — the standard Cholesky benchmark set — plus
the glue that turns a downloaded ``.mtx`` file into an elimination DAG,
in memory for the small entries or streamed straight to a ``.hdagb`` file
(bounded peak memory) for the million-column ones.

Nothing here touches the network: :func:`matrix_url` renders the download
address for a human (or a CI fetch step), and the loaders work off local
files in any of the layouts a SuiteSparse tarball extracts to.  Matrices
were chosen symmetric (so the pattern is a valid Cholesky input as-is),
and the size/nnz figures are the collection's published values — used for
sanity checks and ordering, never trusted over the file contents.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..core.exceptions import ConfigurationError
from .sparsegen import SparseMatrixPattern

__all__ = [
    "SUITESPARSE_RECIPE",
    "SuiteSparseMatrix",
    "build_suitesparse_elimination",
    "find_suitesparse_matrix",
    "load_suitesparse_pattern",
    "locate_matrix_file",
    "matrix_url",
]

_MM_BASE = "https://suitesparse-collection-website.herokuapp.com/MM"


@dataclass(frozen=True)
class SuiteSparseMatrix:
    """One curated collection entry (published size figures, not parsed ones)."""

    group: str
    name: str
    size: int
    nnz: int
    kind: str


#: The curated set, smallest to largest: classic SPD structural/PDE matrices
#: used throughout the sparse Cholesky literature, 10^4 to 10^6 columns.
SUITESPARSE_RECIPE: tuple[SuiteSparseMatrix, ...] = (
    SuiteSparseMatrix("HB", "bcsstk17", 10_974, 428_650, "structural"),
    SuiteSparseMatrix("Nasa", "nasasrb", 54_870, 2_677_324, "structural"),
    SuiteSparseMatrix("Boeing", "pwtk", 217_918, 11_524_432, "structural"),
    SuiteSparseMatrix(
        "Wissgott", "parabolic_fem", 525_825, 3_674_625, "computational fluid dynamics"
    ),
    SuiteSparseMatrix("GHS_psdef", "apache2", 715_176, 4_817_870, "structural"),
    SuiteSparseMatrix("GHS_psdef", "ldoor", 952_203, 42_493_817, "structural"),
    SuiteSparseMatrix("McRae", "ecology2", 999_999, 4_995_991, "2D/3D problem"),
    SuiteSparseMatrix("Schmid", "thermal2", 1_228_045, 8_580_313, "thermal"),
)


def find_suitesparse_matrix(name: str) -> SuiteSparseMatrix:
    """Look a recipe entry up by ``name`` or ``group/name``."""
    for entry in SUITESPARSE_RECIPE:
        if name in (entry.name, f"{entry.group}/{entry.name}"):
            return entry
    known = ", ".join(f"{e.group}/{e.name}" for e in SUITESPARSE_RECIPE)
    raise ConfigurationError(f"unknown SuiteSparse recipe entry {name!r}; known: {known}")


def matrix_url(entry: SuiteSparseMatrix | str) -> str:
    """The collection's MatrixMarket tarball URL for a recipe entry."""
    if isinstance(entry, str):
        entry = find_suitesparse_matrix(entry)
    return f"{_MM_BASE}/{entry.group}/{entry.name}.tar.gz"


def locate_matrix_file(root: str | Path, entry: SuiteSparseMatrix | str) -> Path:
    """Find the ``.mtx`` file of a recipe entry under a download directory.

    Tries every layout a SuiteSparse tarball is commonly extracted to:
    ``<root>/<name>.mtx``, ``<root>/<name>/<name>.mtx`` (the tarball's own
    directory) and ``<root>/<group>/<name>/<name>.mtx``.
    """
    if isinstance(entry, str):
        entry = find_suitesparse_matrix(entry)
    root = Path(root)
    candidates = (
        root / f"{entry.name}.mtx",
        root / entry.name / f"{entry.name}.mtx",
        root / entry.group / entry.name / f"{entry.name}.mtx",
    )
    for candidate in candidates:
        if candidate.is_file():
            return candidate
    raise ConfigurationError(
        f"matrix {entry.group}/{entry.name} not found under {root} "
        f"(tried {', '.join(str(c) for c in candidates)}); download it from "
        f"{matrix_url(entry)}"
    )


def load_suitesparse_pattern(source: str | Path, name: str | None = None) -> SparseMatrixPattern:
    """Load a recipe matrix's nonzero pattern from a file or download dir.

    ``source`` is either the ``.mtx`` file itself or a directory that
    :func:`locate_matrix_file` can search (then ``name`` selects the recipe
    entry).  Symmetric files come back expanded; see :mod:`repro.io.mtx`.
    """
    from ..io.mtx import read_matrix_market_pattern

    source = Path(source)
    if source.is_dir():
        if name is None:
            raise ConfigurationError(
                f"{source} is a directory; pass name= to select a recipe entry"
            )
        source = locate_matrix_file(source, name)
    return read_matrix_market_pattern(source)


def build_suitesparse_elimination(
    source: str | Path,
    name: str | None = None,
    *,
    ordering: str = "natural",
    out: str | Path | None = None,
    weight_model: str = "paper",
):
    """Elimination DAG of a recipe matrix; streamed to ``.hdagb`` if ``out`` is set.

    Without ``out`` this returns the in-memory
    :class:`~repro.dagdb.structured.EliminationDagResult` — fine up to
    ~10^5 columns.  With ``out`` (a ``.hdagb`` path) the DAG is emitted
    through the streaming writer instead — the symbolic fill runs on the
    quotient-graph kernel and the edges never exist as one array — and the
    content fingerprint of the written file is returned.
    """
    pattern = load_suitesparse_pattern(source, name)
    label = (name or Path(source).stem).rsplit("/", 1)[-1]
    if out is None:
        from .structured import build_elimination_dag

        return build_elimination_dag(
            pattern, ordering=ordering, name=f"suitesparse_{label}"
        )
    from ..io.hdagb import StreamingDagWriter
    from .stream import _model_weights, stream_elimination_dag

    with StreamingDagWriter(out, name=f"suitesparse_{label}") as writer:
        indeg = stream_elimination_dag(writer, pattern, ordering=ordering)
        work, comm = _model_weights(weight_model, indeg)
        return writer.finalize(work=work, comm=comm)
