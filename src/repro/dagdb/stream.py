"""Streaming DAG generation: structured families emitted straight to disk.

The in-memory generators materialise the whole DAG before anything is
written; at ``10^6``–``10^7`` nodes that means hundreds of megabytes of
edge buffers plus the CSR arrays just to produce a file.  The functions
here emit the *same* node/edge blocks — shared emission templates in
:mod:`repro.dagdb.structured` guarantee the order — into a
:class:`~repro.io.hdagb.StreamingDagWriter`, which spills blocks to disk
and finalises into a ``.hdagb`` file with O(n + block) peak memory.

Weight models are supported without a second pass: the degree-based models
(``paper``, ``indegree``) only need the in-degree vector, which the
emission loop accumulates with one ``bincount`` per edge block, and the
writer applies the finalize-time weight vectors while assembling the file.
The streamed file is byte-identical to ``write_hdagb`` of the in-memory
generator's DAG for the same parameters — same fingerprint, same payload.

Entry points: :func:`stream_generate` (by generator name, mirroring the
CLI's ``generate`` parameters) and the per-family ``stream_*`` emitters
for callers holding their own writer.
"""

from __future__ import annotations

import math
from pathlib import Path

import numpy as np

from ..core.exceptions import ConfigurationError, DagError
from ..io.hdagb import StreamingDagWriter
from .sparsegen import SparseMatrixPattern
from .structured import (
    _check_stencil_params,
    _fft_stage_blocks,
    _fft_stages,
    _stencil_template,
    amd_ordering,
    fft_dag_name,
    rcm_ordering,
    stencil_dag_name,
    symbolic_fill_csr,
)

__all__ = [
    "STREAM_GENERATORS",
    "stream_elimination_dag",
    "stream_fft_dag",
    "stream_generate",
    "stream_stencil_dag",
]

_INT = np.int64


class _DegreeTracker:
    """In-degree accumulation alongside a writer's edge emission."""

    def __init__(self, writer: StreamingDagWriter) -> None:
        self._writer = writer
        self._indeg = np.zeros(0, dtype=_INT)

    def add_edges(self, sources: np.ndarray, targets: np.ndarray) -> None:
        self._writer.add_edges_array(sources, targets)
        if self._indeg.shape[0] < self._writer.num_nodes:
            grown = np.zeros(self._writer.num_nodes, dtype=_INT)
            grown[: self._indeg.shape[0]] = self._indeg
            self._indeg = grown
        block = np.bincount(np.asarray(targets, dtype=_INT))
        self._indeg[: block.shape[0]] += block

    def in_degrees(self) -> np.ndarray:
        out = np.zeros(self._writer.num_nodes, dtype=_INT)
        out[: self._indeg.shape[0]] = self._indeg
        return out


def _model_weights(
    model: str, indeg: np.ndarray
) -> tuple[np.ndarray | None, np.ndarray | None]:
    """Finalize-time ``(work, comm)`` vectors of a registered weight model.

    Mirrors :mod:`repro.dagdb.weights` exactly, but computed from the
    accumulated in-degree vector instead of a materialised DAG.  ``unit``
    returns ``(None, None)`` — the writer's spilled all-ones weights are
    already the unit model.
    """
    if model == "unit":
        return None, None
    if model == "paper":
        work = np.where(
            indeg == 0, 1.0, np.maximum(indeg - 1, 1).astype(np.float64)
        )
        return work, np.ones(indeg.shape[0], dtype=np.float64)
    if model == "indegree":
        return (
            np.maximum(indeg, 1).astype(np.float64),
            np.ones(indeg.shape[0], dtype=np.float64),
        )
    raise ConfigurationError(
        f"unknown weight model {model!r}; available: indegree, paper, unit"
    )


# ---------------------------------------------------------------------- #
# per-family emitters
# ---------------------------------------------------------------------- #
def stream_fft_dag(
    writer: StreamingDagWriter, points: int, radix: int = 2
) -> np.ndarray:
    """Emit the radix-``radix`` butterfly DAG over ``points`` inputs.

    Same blocks as :func:`repro.dagdb.structured.build_fft_dag`; returns
    the accumulated in-degree vector for weight-model application.
    """
    stages = _fft_stages(points, radix)
    writer.add_node_block(points * (stages + 1))
    tracker = _DegreeTracker(writer)
    for sources, targets in _fft_stage_blocks(points, radix, stages):
        tracker.add_edges(sources, targets)
    return tracker.in_degrees()


def stream_stencil_dag(
    writer: StreamingDagWriter, shape: tuple[int, ...], steps: int
) -> np.ndarray:
    """Emit the space-time star-stencil DAG over a 2D/3D grid.

    Same per-layer blocks as :func:`repro.dagdb.structured.build_stencil_dag`
    but one time layer at a time, so peak memory is one layer's template
    regardless of ``steps``.  Returns the in-degree vector.
    """
    shape = _check_stencil_params(shape, steps)
    cells = math.prod(shape)
    src0, dst0 = _stencil_template(shape)
    writer.add_node_block(cells * (steps + 1))
    tracker = _DegreeTracker(writer)
    for t in range(steps):
        tracker.add_edges(t * cells + src0, (t + 1) * cells + dst0)
    return tracker.in_degrees()


def stream_elimination_dag(
    writer: StreamingDagWriter,
    pattern: SparseMatrixPattern,
    ordering: str = "natural",
    *,
    row_chunk: int = 1 << 20,
) -> np.ndarray:
    """Emit the column-task elimination DAG of ``pattern``'s fill graph.

    The symbolic fill itself runs in memory (its output is the edge list,
    ``O(|L|)``, computed by the quotient-graph kernel), but the edges are
    handed to the writer in row chunks of at most ``row_chunk`` entries,
    so the writer never sees — and the file assembly never needs — the
    full repeated source array at once.  Returns the in-degree vector.
    """
    if ordering not in ("natural", "rcm", "amd"):
        raise DagError(
            f"unknown elimination ordering {ordering!r} (use 'natural', 'rcm' or 'amd')"
        )
    if ordering == "rcm":
        pattern = pattern.permuted(rcm_ordering(pattern))
    elif ordering == "amd":
        pattern = pattern.permuted(amd_ordering(pattern))
    n = pattern.size
    out_indptr, out_indices, _ = symbolic_fill_csr(pattern)
    writer.add_node_block(n)
    tracker = _DegreeTracker(writer)
    row = 0
    while row < n:
        # widest row span whose pooled entries fit in one chunk
        stop = int(
            np.searchsorted(out_indptr, out_indptr[row] + max(row_chunk, 1), "right")
        ) - 1
        stop = min(max(stop, row + 1), n)
        counts = np.diff(out_indptr[row : stop + 1]).astype(_INT, copy=False)
        sources = np.repeat(np.arange(row, stop, dtype=_INT), counts)
        if sources.size:
            tracker.add_edges(
                sources, out_indices[out_indptr[row] : out_indptr[stop]]
            )
        row = stop
    return tracker.in_degrees()


# ---------------------------------------------------------------------- #
# by-name entry point (CLI / datasets glue)
# ---------------------------------------------------------------------- #
def _emit_cholesky(writer, *, pattern, ordering="natural", **_):
    return stream_elimination_dag(writer, pattern, ordering=ordering)


def _emit_fft(writer, *, points, **_):
    return stream_fft_dag(writer, points, radix=2)


def _emit_fft4(writer, *, points, **_):
    return stream_fft_dag(writer, points, radix=4)


def _emit_stencil2d(writer, *, side, steps, **_):
    return stream_stencil_dag(writer, (side, side), steps)


def _emit_stencil2d_rect(writer, *, width, height, steps, **_):
    return stream_stencil_dag(writer, (width, height), steps)


def _emit_stencil3d(writer, *, side, steps, **_):
    return stream_stencil_dag(writer, (side, side, side), steps)


#: Streamable generator families: name -> (emitter, default-name function).
STREAM_GENERATORS = {
    "cholesky": _emit_cholesky,
    "cholesky_rcm": _emit_cholesky,
    "cholesky_amd": _emit_cholesky,
    "fft": _emit_fft,
    "fft4": _emit_fft4,
    "stencil2d": _emit_stencil2d,
    "stencil2d_rect": _emit_stencil2d_rect,
    "stencil3d": _emit_stencil3d,
}


def _default_name(generator: str, params: dict) -> str:
    if generator.startswith("cholesky"):
        suffix = {"cholesky_rcm": "_rcm", "cholesky_amd": "_amd"}.get(generator, "")
        return f"cholesky{suffix}_n{params['pattern'].size}"
    if generator == "fft":
        return fft_dag_name(params["points"], 2)
    if generator == "fft4":
        return fft_dag_name(params["points"], 4)
    if generator == "stencil2d":
        return stencil_dag_name((params["side"], params["side"]), params["steps"])
    if generator == "stencil2d_rect":
        return stencil_dag_name(
            (params["width"], params["height"]), params["steps"]
        )
    return stencil_dag_name(
        (params["side"], params["side"], params["side"]), params["steps"]
    )


def stream_generate(
    path: str | Path,
    generator: str,
    *,
    name: str | None = None,
    weight_model: str = "paper",
    block_edges: int = 1 << 20,
    tmp_dir: str | Path | None = None,
    **params,
) -> str:
    """Generate a structured DAG straight into a ``.hdagb`` file.

    ``generator`` is a :data:`STREAM_GENERATORS` key; ``params`` are that
    family's parameters (``points`` for the FFTs, ``side``/``width``/
    ``height`` and ``steps`` for the stencils, ``pattern`` — a
    :class:`~repro.dagdb.sparsegen.SparseMatrixPattern` — for the
    elimination families).  Peak memory stays O(n + block); the default
    DAG name matches the in-memory builder's, so the resulting file is
    byte-identical to writing the in-memory DAG.  Returns the content
    fingerprint of the generated DAG.
    """
    try:
        emit = STREAM_GENERATORS[generator]
    except KeyError as exc:
        raise ConfigurationError(
            f"generator {generator!r} has no streaming emitter; "
            f"available: {', '.join(sorted(STREAM_GENERATORS))}"
        ) from exc
    if generator == "cholesky_rcm":
        params.setdefault("ordering", "rcm")
    elif generator == "cholesky_amd":
        params.setdefault("ordering", "amd")
    with StreamingDagWriter(
        path,
        name=name or _default_name(generator, params),
        block_edges=block_edges,
        tmp_dir=tmp_dir,
    ) as writer:
        indeg = emit(writer, **params)
        work, comm = _model_weights(weight_model, indeg)
        return writer.finalize(work=work, comm=comm)
