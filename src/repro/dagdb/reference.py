"""Seed per-nonzero / per-op DAG generators, retained as references.

These are the pre-block-emission implementations of the fine-grained
(:mod:`repro.dagdb.fine`) and coarse-grained (:mod:`repro.dagdb.coarse`)
generators: one ``node()`` call per scalar operation, one ``add_edge`` per
dependency.  The vectorized block-emitting builders must produce *identical*
DAGs — same node ids, roles, CSR neighbour orders and weights — so these
functions back the differential tests (``tests/test_generator_diff.py``)
and the generation section of ``benchmarks/bench_dag_kernels.py``.

Do not optimise this module; its value is being the simple, obviously
correct spelling of the generators.
"""

from __future__ import annotations

from ..core.dag import ComputationalDAG, DagBuilder
from ..core.exceptions import DagError
from .sparsegen import SparseMatrixPattern
from .weights import apply_paper_weight_rule

__all__ = [
    "build_spmv_dag_reference",
    "build_iterated_spmv_dag_reference",
    "build_knn_dag_reference",
    "build_cg_dag_reference",
    "build_pagerank_coarse_reference",
    "build_cg_coarse_reference",
    "build_bicgstab_coarse_reference",
    "build_knn_coarse_reference",
    "build_label_propagation_coarse_reference",
    "build_kmeans_coarse_reference",
    "build_sparse_nn_inference_coarse_reference",
    "COARSE_GENERATORS_REFERENCE",
    "FINE_GENERATORS_REFERENCE",
]


class _FineDagBuilderRef:
    """Seed fine-grained builder: one Python call per node and per edge."""

    def __init__(self, name: str) -> None:
        self._builder = DagBuilder(name=name)
        self.roles: dict[int, str] = {}

    def node(self, role: str, preds: list[int] | None = None) -> int:
        v = self._builder.add_node()
        self.roles[v] = role
        # deduplicate while preserving order: the same value may feed an
        # operation twice (e.g. the dot product r·r squares every entry)
        for u in dict.fromkeys(preds or []):
            self._builder.add_edge(u, v)
        return v

    def matrix_sources(
        self, pattern: SparseMatrixPattern, label: str = "A"
    ) -> dict[tuple[int, int], int]:
        # the tuple view is the seed's native storage; materialise it once so
        # the benchmark measures the seed's emission loop, not view rebuilds
        rows = pattern.rows
        return {
            (i, j): self.node(f"input:{label}")
            for i in range(pattern.size)
            for j in rows[i]
        }

    def dense_vector_sources(self, size: int, label: str = "u") -> dict[int, int]:
        return {i: self.node(f"input:{label}") for i in range(size)}

    def spmv(
        self,
        pattern: SparseMatrixPattern,
        matrix_nodes: dict[tuple[int, int], int],
        vector_nodes: dict[int, int],
    ) -> dict[int, int]:
        result: dict[int, int] = {}
        rows = pattern.rows
        for i in range(pattern.size):
            products = []
            for j in rows[i]:
                if j in vector_nodes:
                    products.append(
                        self.node("multiply", [matrix_nodes[(i, j)], vector_nodes[j]])
                    )
            if not products:
                continue
            if len(products) == 1:
                result[i] = products[0]
            else:
                result[i] = self.node("reduce", products)
        return result

    def dot(self, a: dict[int, int], b: dict[int, int], role: str = "dot") -> int:
        shared = sorted(set(a) & set(b))
        if not shared:
            raise DagError("dot product of vectors with disjoint support")
        products = [self.node("multiply", [a[i], b[i]]) for i in shared]
        if len(products) == 1:
            return products[0]
        return self.node(role, products)

    def elementwise(
        self,
        role: str,
        operands: list[dict[int, int]],
        scalars: list[int] | None = None,
    ) -> dict[int, int]:
        support: set[int] = set()
        for vec in operands:
            support |= set(vec)
        result: dict[int, int] = {}
        for i in sorted(support):
            preds = [vec[i] for vec in operands if i in vec]
            preds.extend(scalars or [])
            if len(preds) == 1:
                result[i] = preds[0]
            else:
                result[i] = self.node(role, preds)
        return result

    def finish(self):
        from .fine import FineGrainedResult

        dag = self._builder.freeze()
        apply_paper_weight_rule(dag)
        return FineGrainedResult(dag=dag, roles=self.roles)


# ---------------------------------------------------------------------- #
# fine-grained reference generators
# ---------------------------------------------------------------------- #
def build_spmv_dag_reference(pattern: SparseMatrixPattern, name: str | None = None):
    """Seed per-nonzero spelling of :func:`repro.dagdb.fine.build_spmv_dag`."""
    builder = _FineDagBuilderRef(name or f"spmv_n{pattern.size}")
    matrix = builder.matrix_sources(pattern)
    vector = builder.dense_vector_sources(pattern.size)
    builder.spmv(pattern, matrix, vector)
    return builder.finish()


def build_iterated_spmv_dag_reference(
    pattern: SparseMatrixPattern, iterations: int, name: str | None = None
):
    """Seed spelling of :func:`repro.dagdb.fine.build_iterated_spmv_dag`."""
    if iterations < 1:
        raise DagError("iterations must be >= 1")
    builder = _FineDagBuilderRef(name or f"exp_n{pattern.size}_k{iterations}")
    matrix = builder.matrix_sources(pattern)
    vector = builder.dense_vector_sources(pattern.size)
    for _ in range(iterations):
        vector = builder.spmv(pattern, matrix, vector)
        if not vector:
            break
    return builder.finish()


def build_knn_dag_reference(
    pattern: SparseMatrixPattern,
    iterations: int,
    start_index: int = 0,
    name: str | None = None,
):
    """Seed spelling of :func:`repro.dagdb.fine.build_knn_dag`."""
    if iterations < 1:
        raise DagError("iterations must be >= 1")
    if not 0 <= start_index < pattern.size:
        raise DagError("start_index out of range")
    builder = _FineDagBuilderRef(name or f"knn_n{pattern.size}_k{iterations}")
    matrix = builder.matrix_sources(pattern)
    vector = {start_index: builder.node("input:u")}
    for _ in range(iterations):
        new_vector = builder.spmv(pattern, matrix, vector)
        merged = dict(new_vector)
        for i, node in vector.items():
            merged.setdefault(i, node)
        vector = merged
        if not new_vector:
            break
    return builder.finish()


def build_cg_dag_reference(
    pattern: SparseMatrixPattern, iterations: int, name: str | None = None
):
    """Seed spelling of :func:`repro.dagdb.fine.build_cg_dag`."""
    if iterations < 1:
        raise DagError("iterations must be >= 1")
    builder = _FineDagBuilderRef(name or f"cg_n{pattern.size}_k{iterations}")
    matrix = builder.matrix_sources(pattern)
    b = builder.dense_vector_sources(pattern.size, label="b")
    r = dict(b)
    p = dict(b)
    x: dict[int, int] = {}
    rr = builder.dot(r, r, role="reduce:rr")
    for _ in range(iterations):
        q = builder.spmv(pattern, matrix, p)
        if not q:
            break
        pq = builder.dot(p, q, role="reduce:pq")
        alpha = builder.node("scalar:alpha", [rr, pq])
        x = builder.elementwise("axpy:x", [x, p], scalars=[alpha])
        r = builder.elementwise("axpy:r", [r, q], scalars=[alpha])
        rr_new = builder.dot(r, r, role="reduce:rr")
        beta = builder.node("scalar:beta", [rr_new, rr])
        p = builder.elementwise("axpy:p", [r, p], scalars=[beta])
        rr = rr_new
    return builder.finish()


FINE_GENERATORS_REFERENCE = {
    "spmv": lambda pattern, iterations=1, **kw: build_spmv_dag_reference(pattern, **kw),
    "exp": build_iterated_spmv_dag_reference,
    "knn": build_knn_dag_reference,
    "cg": build_cg_dag_reference,
}


# ---------------------------------------------------------------------- #
# coarse-grained reference generators
# ---------------------------------------------------------------------- #
class _CoarseBuilderRef:
    """Seed coarse builder: one append per operation node / dependency."""

    def __init__(self, name: str) -> None:
        self._builder = DagBuilder(name=name)

    def source(self) -> int:
        return self._builder.add_node()

    def op(self, *preds: int) -> int:
        v = self._builder.add_node()
        for u in dict.fromkeys(preds):
            self._builder.add_edge(u, v)
        return v

    def finish(self) -> ComputationalDAG:
        return apply_paper_weight_rule(self._builder.freeze())


def _check_iterations(iterations: int) -> None:
    if iterations < 1:
        raise DagError("iterations must be >= 1")


def build_pagerank_coarse_reference(
    iterations: int, name: str | None = None
) -> ComputationalDAG:
    _check_iterations(iterations)
    b = _CoarseBuilderRef(name or f"pagerank_coarse_k{iterations}")
    matrix = b.source()
    teleport = b.source()
    rank = b.source()
    for _ in range(iterations):
        spread = b.op(matrix, rank)
        damped = b.op(spread, teleport)
        norm = b.op(damped)
        new_rank = b.op(damped, norm)
        b.op(new_rank, rank)
        rank = new_rank
    return b.finish()


def build_cg_coarse_reference(
    iterations: int, name: str | None = None
) -> ComputationalDAG:
    _check_iterations(iterations)
    b = _CoarseBuilderRef(name or f"cg_coarse_k{iterations}")
    matrix = b.source()
    rhs = b.source()
    x = b.source()
    r = b.op(rhs, x, matrix)
    p = b.op(r)
    rr = b.op(r, r)
    for _ in range(iterations):
        q = b.op(matrix, p)
        pq = b.op(p, q)
        alpha = b.op(rr, pq)
        x = b.op(x, alpha, p)
        r = b.op(r, alpha, q)
        rr_new = b.op(r, r)
        beta = b.op(rr_new, rr)
        p = b.op(r, beta, p)
        rr = rr_new
    return b.finish()


def build_bicgstab_coarse_reference(
    iterations: int, name: str | None = None
) -> ComputationalDAG:
    _check_iterations(iterations)
    b = _CoarseBuilderRef(name or f"bicgstab_coarse_k{iterations}")
    matrix = b.source()
    rhs = b.source()
    x = b.source()
    r = b.op(rhs, x, matrix)
    r_hat = b.op(r)
    rho = b.op(r_hat, r)
    p = b.op(r)
    for _ in range(iterations):
        v = b.op(matrix, p)
        rhv = b.op(r_hat, v)
        alpha = b.op(rho, rhv)
        s = b.op(r, alpha, v)
        t = b.op(matrix, s)
        ts = b.op(t, s)
        tt = b.op(t, t)
        omega = b.op(ts, tt)
        x = b.op(x, alpha, p, omega, s)
        r = b.op(s, omega, t)
        rho_new = b.op(r_hat, r)
        beta = b.op(rho_new, rho, alpha, omega)
        p = b.op(r, beta, p, omega, v)
        rho = rho_new
    return b.finish()


def build_knn_coarse_reference(
    iterations: int, name: str | None = None
) -> ComputationalDAG:
    _check_iterations(iterations)
    b = _CoarseBuilderRef(name or f"knn_coarse_k{iterations}")
    matrix = b.source()
    frontier = b.source()
    visited = b.op(frontier)
    for _ in range(iterations):
        reached = b.op(matrix, frontier)
        frontier = b.op(reached, visited)
        visited = b.op(visited, frontier)
    return b.finish()


def build_label_propagation_coarse_reference(
    iterations: int, name: str | None = None
) -> ComputationalDAG:
    _check_iterations(iterations)
    b = _CoarseBuilderRef(name or f"labelprop_coarse_k{iterations}")
    adjacency = b.source()
    labels = b.source()
    for _ in range(iterations):
        gathered = b.op(adjacency, labels)
        counts = b.op(gathered)
        new_labels = b.op(counts, labels)
        b.op(new_labels, labels)
        labels = new_labels
    return b.finish()


def build_kmeans_coarse_reference(
    iterations: int, clusters: int = 4, name: str | None = None
) -> ComputationalDAG:
    _check_iterations(iterations)
    if clusters < 1:
        raise DagError("clusters must be >= 1")
    b = _CoarseBuilderRef(name or f"kmeans_coarse_k{iterations}_c{clusters}")
    points = b.source()
    centroids = [b.source() for _ in range(clusters)]
    for _ in range(iterations):
        distances = [b.op(points, c) for c in centroids]
        assignment = b.op(*distances)
        new_centroids = [b.op(points, assignment) for _ in range(clusters)]
        b.op(assignment)
        centroids = new_centroids
    return b.finish()


def build_sparse_nn_inference_coarse_reference(
    layers: int, name: str | None = None
) -> ComputationalDAG:
    if layers < 1:
        raise DagError("layers must be >= 1")
    b = _CoarseBuilderRef(name or f"sparse_nn_coarse_l{layers}")
    activations = b.source()
    for _ in range(layers):
        weights = b.source()
        bias = b.source()
        product = b.op(weights, activations)
        biased = b.op(product, bias)
        activations = b.op(biased)
    return b.finish()


COARSE_GENERATORS_REFERENCE = {
    "pagerank": build_pagerank_coarse_reference,
    "cg": build_cg_coarse_reference,
    "bicgstab": build_bicgstab_coarse_reference,
    "knn": build_knn_coarse_reference,
    "labelprop": build_label_propagation_coarse_reference,
    "kmeans": build_kmeans_coarse_reference,
    "sparse_nn": build_sparse_nn_inference_coarse_reference,
}
