"""Sparse matrix pattern generation for the fine-grained DAG generators.

The fine-grained computational DAGs of the paper (Appendix B.2) are defined
with respect to a square sparse matrix ``A``; only the *pattern* of nonzero
entries matters for the DAG structure.  The paper generates such patterns by
making every entry nonzero independently with probability ``q``, and also
supports loading a pattern from file.  :class:`SparseMatrixPattern` captures
exactly this.

Implementation notes
--------------------
The pattern is stored in CSR shape: a flat ``indptr`` row-pointer array of
length ``size + 1`` and a flat ``indices`` column-index array of length
``nnz``, with every row sorted and duplicate-free.  This is what lets the
fine-grained generators emit whole edge blocks with numpy instead of
per-nonzero Python loops (see :mod:`repro.dagdb.fine`).  The historical
tuple-of-tuples view is retained as the lazily materialised compatibility
property :attr:`SparseMatrixPattern.rows`.

All random constructors consume the underlying bit stream in exactly the
same order as the seed per-row implementation, so a fixed seed yields the
same pattern as before the CSR refactor.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..core.csr import build_csr
from ..core.exceptions import DagError

__all__ = ["SparseMatrixPattern"]

_INT = np.int64


def _csr_from_rows(size: int, rows) -> tuple[np.ndarray, np.ndarray]:
    """Validate a tuple-of-rows description and pack it into CSR arrays."""
    if len(rows) != size:
        raise DagError(f"rows must have length {size}, got {len(rows)}")
    counts = np.fromiter((len(row) for row in rows), dtype=_INT, count=size)
    indptr = np.zeros(size + 1, dtype=_INT)
    np.cumsum(counts, out=indptr[1:])
    total = int(indptr[-1])
    indices = np.fromiter(
        (j for row in rows for j in row), dtype=_INT, count=total
    )
    _validate_csr(size, indptr, indices)
    return indptr, indices


def _validate_csr(size: int, indptr: np.ndarray, indices: np.ndarray) -> None:
    """Vectorized validation: shapes, column ranges, sorted-unique rows."""
    if indptr.shape != (size + 1,) or indptr[0] != 0:
        raise DagError(f"indptr must have shape ({size + 1},) and start at 0")
    if np.any(np.diff(indptr) < 0):
        raise DagError("indptr must be non-decreasing")
    if int(indptr[-1]) != indices.shape[0]:
        raise DagError(
            f"indices must have length {int(indptr[-1])}, got {indices.shape[0]}"
        )
    if indices.size == 0:
        return
    if indices.min() < 0 or indices.max() >= size:
        bad_row = int(
            np.searchsorted(
                indptr, int(np.argmax((indices < 0) | (indices >= size))), side="right"
            )
            - 1
        )
        raise DagError(f"column index out of range in row {bad_row}")
    # strictly increasing inside every row <=> sorted and duplicate-free
    interior = np.ones(indices.size - 1, dtype=bool)
    boundaries = indptr[1:-1]
    boundaries = boundaries[(boundaries > 0) & (boundaries < indices.size)]
    interior[boundaries - 1] = False  # positions crossing a row boundary
    if np.any(interior & (np.diff(indices) <= 0)):
        bad = int(np.flatnonzero(interior & (np.diff(indices) <= 0))[0])
        bad_row = int(np.searchsorted(indptr, bad, side="right") - 1)
        raise DagError(f"row {bad_row} must contain sorted unique column indices")


class SparseMatrixPattern:
    """The nonzero pattern of an ``n × n`` sparse matrix, stored in CSR shape.

    Attributes
    ----------
    size:
        Number of rows/columns ``n``.
    indptr / indices:
        Flat CSR arrays (read-only views): row ``i`` occupies
        ``indices[indptr[i]:indptr[i + 1]]``, sorted and duplicate-free.
    rows:
        Compatibility view: tuple of per-row tuples of column indices,
        materialised lazily on first access.
    """

    __slots__ = ("size", "_indptr", "_indices", "_rows_cache")

    def __init__(self, size: int, rows: Sequence[Sequence[int]] = ()) -> None:
        if size < 0:
            raise DagError("matrix size must be non-negative")
        self.size = int(size)
        self._indptr, self._indices = _csr_from_rows(self.size, rows)
        self._seal()

    def _seal(self) -> None:
        self._indptr.flags.writeable = False
        self._indices.flags.writeable = False
        self._rows_cache: tuple[tuple[int, ...], ...] | None = None

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_csr(
        cls,
        size: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        *,
        validate: bool = True,
    ) -> "SparseMatrixPattern":
        """Adopt CSR arrays directly (the generator/ingestion fast path)."""
        if size < 0:
            raise DagError("matrix size must be non-negative")
        pattern = cls.__new__(cls)
        pattern.size = int(size)
        pattern._indptr = np.ascontiguousarray(indptr, dtype=_INT)
        pattern._indices = np.ascontiguousarray(indices, dtype=_INT)
        if pattern._indptr is indptr:
            pattern._indptr = pattern._indptr.copy()
        if pattern._indices is indices:
            pattern._indices = pattern._indices.copy()
        if validate:
            _validate_csr(pattern.size, pattern._indptr, pattern._indices)
        pattern._seal()
        return pattern

    @classmethod
    def _from_sorted_coordinates(
        cls, size: int, row_ids: np.ndarray, col_ids: np.ndarray
    ) -> "SparseMatrixPattern":
        """CSR from coordinate arrays already sorted row-major with unique pairs."""
        counts = np.bincount(row_ids, minlength=size)
        indptr = np.zeros(size + 1, dtype=_INT)
        np.cumsum(counts, out=indptr[1:])
        return cls.from_csr(size, indptr, col_ids.astype(_INT), validate=False)

    @classmethod
    def random(
        cls,
        size: int,
        density: float,
        seed: int | np.random.Generator | None = 0,
        ensure_diagonal: bool = False,
    ) -> "SparseMatrixPattern":
        """Each entry nonzero independently with probability ``density``.

        ``ensure_diagonal`` forces every diagonal entry to be nonzero, which
        is useful for iterated products where every vector entry should stay
        alive (and mirrors the SpTRSV trick used to feed DAGs to HDagg).
        """
        if not 0.0 <= density <= 1.0:
            raise DagError(f"density must be in [0, 1], got {density}")
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        mask = rng.random((size, size)) < density
        if ensure_diagonal:
            np.fill_diagonal(mask, True)
        row_ids, col_ids = np.nonzero(mask)  # C order: row-major, sorted per row
        return cls._from_sorted_coordinates(size, row_ids, col_ids)

    @classmethod
    def from_coordinates(
        cls, size: int, coordinates: Iterable[tuple[int, int]]
    ) -> "SparseMatrixPattern":
        """Build a pattern from an iterable of ``(row, column)`` coordinates."""
        coords = np.array(list(coordinates), dtype=_INT).reshape(-1, 2)
        if coords.size:
            bad = (
                (coords[:, 0] < 0)
                | (coords[:, 0] >= size)
                | (coords[:, 1] < 0)
                | (coords[:, 1] >= size)
            )
            if bad.any():
                i, j = (int(x) for x in coords[int(np.argmax(bad))])
                raise DagError(f"coordinate ({i}, {j}) out of range for size {size}")
        keys = np.unique(coords[:, 0] * _INT(max(size, 1)) + coords[:, 1])
        return cls._from_sorted_coordinates(
            size, keys // max(size, 1), keys % max(size, 1)
        )

    @classmethod
    def dense(cls, size: int) -> "SparseMatrixPattern":
        """Fully dense pattern."""
        indptr = np.arange(size + 1, dtype=_INT) * size
        indices = np.tile(np.arange(size, dtype=_INT), size)
        return cls.from_csr(size, indptr, indices, validate=False)

    @classmethod
    def tridiagonal(cls, size: int) -> "SparseMatrixPattern":
        """Tridiagonal pattern (a classic structured test matrix)."""
        i = np.repeat(np.arange(size, dtype=_INT), 3)
        j = i + np.tile(np.array([-1, 0, 1], dtype=_INT), size)
        keep = (j >= 0) & (j < size)
        return cls._from_sorted_coordinates(size, i[keep], j[keep])

    @classmethod
    def banded(cls, size: int, bandwidth: int) -> "SparseMatrixPattern":
        """All entries within ``bandwidth`` of the diagonal (tridiagonal = 1)."""
        if bandwidth < 0:
            raise DagError("bandwidth must be non-negative")
        width = 2 * bandwidth + 1
        i = np.repeat(np.arange(size, dtype=_INT), width)
        j = i + np.tile(np.arange(-bandwidth, bandwidth + 1, dtype=_INT), size)
        keep = (j >= 0) & (j < size)
        return cls._from_sorted_coordinates(size, i[keep], j[keep])

    @classmethod
    def lower_triangular_random(
        cls, size: int, density: float, seed: int | None = 0
    ) -> "SparseMatrixPattern":
        """Random strictly-lower-triangular pattern plus unit diagonal.

        These are the SpTRSV-style inputs that HDagg was designed for.
        The draws consume the generator stream in the seed implementation's
        row-major order, so patterns are unchanged for a fixed seed.
        """
        rng = np.random.default_rng(seed)
        total = size * (size - 1) // 2
        keep = rng.random(total) < density
        # coordinates of the strictly lower triangle in row-major order
        i = np.repeat(np.arange(size, dtype=_INT), np.arange(size, dtype=_INT))
        row_starts = np.zeros(size, dtype=_INT)
        np.cumsum(np.arange(size - 1, dtype=_INT), out=row_starts[1:])
        j = np.arange(total, dtype=_INT) - np.repeat(
            row_starts, np.arange(size, dtype=_INT)
        )
        diag = np.arange(size, dtype=_INT)
        rows = np.concatenate((i[keep], diag))
        cols = np.concatenate((j[keep], diag))
        order = np.lexsort((cols, rows))
        return cls._from_sorted_coordinates(size, rows[order], cols[order])

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def indptr(self) -> np.ndarray:
        """CSR row pointer (read-only, length ``size + 1``)."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """CSR column indices (read-only, length ``nnz``)."""
        return self._indices

    @property
    def rows(self) -> tuple[tuple[int, ...], ...]:
        """Compatibility view: tuple of per-row tuples (materialised lazily)."""
        if self._rows_cache is None:
            flat = self._indices.tolist()
            bounds = self._indptr.tolist()
            self._rows_cache = tuple(
                tuple(flat[bounds[i] : bounds[i + 1]]) for i in range(self.size)
            )
        return self._rows_cache

    @property
    def nnz(self) -> int:
        """Total number of nonzero entries."""
        return int(self._indptr[-1])

    def row(self, i: int) -> tuple[int, ...]:
        """Column indices of the nonzeros in row ``i`` (compatibility tuple)."""
        if not 0 <= i < self.size:
            raise IndexError(f"row {i} out of range for size {self.size}")
        return tuple(self._indices[self._indptr[i] : self._indptr[i + 1]].tolist())

    def row_array(self, i: int) -> np.ndarray:
        """Column indices of row ``i`` as a zero-copy read-only slice."""
        return self._indices[self._indptr[i] : self._indptr[i + 1]]

    def row_lengths(self) -> np.ndarray:
        """Vector of per-row nonzero counts."""
        return np.diff(self._indptr)

    def row_ids(self) -> np.ndarray:
        """Row index of every nonzero, parallel to :attr:`indices`."""
        return np.repeat(np.arange(self.size, dtype=_INT), np.diff(self._indptr))

    def column(self, j: int) -> tuple[int, ...]:
        """Row indices of the nonzeros in column ``j``."""
        positions = np.flatnonzero(self._indices == j)
        rows = np.searchsorted(self._indptr, positions, side="right") - 1
        return tuple(rows.tolist())

    def coordinates(self) -> list[tuple[int, int]]:
        """All nonzero coordinates as ``(row, column)`` pairs."""
        return list(zip(self.row_ids().tolist(), self._indices.tolist()))

    def density(self) -> float:
        """Fraction of nonzero entries."""
        if self.size == 0:
            return 0.0
        return self.nnz / (self.size * self.size)

    def to_dense(self) -> np.ndarray:
        """Dense 0/1 numpy array of the pattern."""
        dense = np.zeros((self.size, self.size), dtype=np.int8)
        dense[self.row_ids(), self._indices] = 1
        return dense

    def transpose(self) -> "SparseMatrixPattern":
        """Pattern of the transposed matrix."""
        # build_csr is stable, and the row-major traversal visits old rows in
        # ascending order, so every transposed row comes out sorted
        indptr, indices = build_csr(self.size, self._indices, self.row_ids())
        return SparseMatrixPattern.from_csr(self.size, indptr, indices, validate=False)

    def permuted(self, order: Sequence[int] | np.ndarray) -> "SparseMatrixPattern":
        """Pattern under a symmetric row/column permutation.

        ``order`` lists the old indices in their new positions (``order[k]``
        becomes row/column ``k``), so ``P'[i, j] = P[order[i], order[j]]`` —
        the form elimination orderings like reverse Cuthill–McKee come in.
        """
        order = np.asarray(order, dtype=_INT)
        if order.shape != (self.size,) or not np.array_equal(
            np.sort(order), np.arange(self.size, dtype=_INT)
        ):
            raise DagError(f"order must be a permutation of 0..{self.size - 1}")
        rank = np.empty(self.size, dtype=_INT)
        rank[order] = np.arange(self.size, dtype=_INT)
        new_rows = rank[self.row_ids()]
        new_cols = rank[self._indices]
        srt = np.lexsort((new_cols, new_rows))
        return SparseMatrixPattern._from_sorted_coordinates(
            self.size, new_rows[srt], new_cols[srt]
        )

    def symmetrized(self) -> "SparseMatrixPattern":
        """Pattern of ``A ∪ Aᵀ`` (used by the elimination-DAG generator)."""
        rows = np.concatenate((self.row_ids(), self._indices))
        cols = np.concatenate((self._indices, self.row_ids()))
        keys = np.unique(rows * _INT(max(self.size, 1)) + cols)
        return SparseMatrixPattern._from_sorted_coordinates(
            self.size, keys // max(self.size, 1), keys % max(self.size, 1)
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseMatrixPattern):
            return NotImplemented
        return (
            self.size == other.size
            and np.array_equal(self._indptr, other._indptr)
            and np.array_equal(self._indices, other._indices)
        )

    def __hash__(self) -> int:
        return hash((self.size, self._indptr.tobytes(), self._indices.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"SparseMatrixPattern(size={self.size}, nnz={self.nnz})"


def pattern_from_sequence_of_rows(rows: Sequence[Sequence[int]]) -> SparseMatrixPattern:
    """Convenience constructor from a plain list of per-row column lists."""
    return SparseMatrixPattern(
        size=len(rows), rows=tuple(tuple(sorted(set(r))) for r in rows)
    )
