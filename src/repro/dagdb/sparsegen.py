"""Sparse matrix pattern generation for the fine-grained DAG generators.

The fine-grained computational DAGs of the paper (Appendix B.2) are defined
with respect to a square sparse matrix ``A``; only the *pattern* of nonzero
entries matters for the DAG structure.  The paper generates such patterns by
making every entry nonzero independently with probability ``q``, and also
supports loading a pattern from file.  :class:`SparseMatrixPattern` captures
exactly this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..core.exceptions import DagError

__all__ = ["SparseMatrixPattern"]


@dataclass(frozen=True)
class SparseMatrixPattern:
    """The nonzero pattern of an ``n × n`` sparse matrix.

    Attributes
    ----------
    size:
        Number of rows/columns ``n``.
    rows:
        Tuple of per-row tuples of (sorted, unique) column indices.
    """

    size: int
    rows: tuple[tuple[int, ...], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.size < 0:
            raise DagError("matrix size must be non-negative")
        if len(self.rows) != self.size:
            raise DagError(
                f"rows must have length {self.size}, got {len(self.rows)}"
            )
        for i, row in enumerate(self.rows):
            for j in row:
                if not 0 <= j < self.size:
                    raise DagError(f"column index {j} out of range in row {i}")
            if list(row) != sorted(set(row)):
                raise DagError(f"row {i} must contain sorted unique column indices")

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def random(
        cls,
        size: int,
        density: float,
        seed: int | np.random.Generator | None = 0,
        ensure_diagonal: bool = False,
    ) -> "SparseMatrixPattern":
        """Each entry nonzero independently with probability ``density``.

        ``ensure_diagonal`` forces every diagonal entry to be nonzero, which
        is useful for iterated products where every vector entry should stay
        alive (and mirrors the SpTRSV trick used to feed DAGs to HDagg).
        """
        if not 0.0 <= density <= 1.0:
            raise DagError(f"density must be in [0, 1], got {density}")
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        mask = rng.random((size, size)) < density
        if ensure_diagonal:
            np.fill_diagonal(mask, True)
        rows = tuple(
            tuple(int(j) for j in np.nonzero(mask[i])[0]) for i in range(size)
        )
        return cls(size=size, rows=rows)

    @classmethod
    def from_coordinates(
        cls, size: int, coordinates: Iterable[tuple[int, int]]
    ) -> "SparseMatrixPattern":
        """Build a pattern from an iterable of ``(row, column)`` coordinates."""
        row_sets: list[set[int]] = [set() for _ in range(size)]
        for i, j in coordinates:
            if not (0 <= i < size and 0 <= j < size):
                raise DagError(f"coordinate ({i}, {j}) out of range for size {size}")
            row_sets[i].add(j)
        rows = tuple(tuple(sorted(s)) for s in row_sets)
        return cls(size=size, rows=rows)

    @classmethod
    def dense(cls, size: int) -> "SparseMatrixPattern":
        """Fully dense pattern."""
        row = tuple(range(size))
        return cls(size=size, rows=tuple(row for _ in range(size)))

    @classmethod
    def tridiagonal(cls, size: int) -> "SparseMatrixPattern":
        """Tridiagonal pattern (a classic structured test matrix)."""
        rows = []
        for i in range(size):
            cols = [j for j in (i - 1, i, i + 1) if 0 <= j < size]
            rows.append(tuple(cols))
        return cls(size=size, rows=tuple(rows))

    @classmethod
    def lower_triangular_random(
        cls, size: int, density: float, seed: int | None = 0
    ) -> "SparseMatrixPattern":
        """Random strictly-lower-triangular pattern plus unit diagonal.

        These are the SpTRSV-style inputs that HDagg was designed for.
        """
        rng = np.random.default_rng(seed)
        rows = []
        for i in range(size):
            cols = [j for j in range(i) if rng.random() < density]
            cols.append(i)
            rows.append(tuple(sorted(set(cols))))
        return cls(size=size, rows=tuple(rows))

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        """Total number of nonzero entries."""
        return sum(len(row) for row in self.rows)

    def row(self, i: int) -> tuple[int, ...]:
        """Column indices of the nonzeros in row ``i``."""
        return self.rows[i]

    def column(self, j: int) -> tuple[int, ...]:
        """Row indices of the nonzeros in column ``j``."""
        return tuple(i for i in range(self.size) if j in set(self.rows[i]))

    def coordinates(self) -> list[tuple[int, int]]:
        """All nonzero coordinates as ``(row, column)`` pairs."""
        return [(i, j) for i in range(self.size) for j in self.rows[i]]

    def density(self) -> float:
        """Fraction of nonzero entries."""
        if self.size == 0:
            return 0.0
        return self.nnz / (self.size * self.size)

    def to_dense(self) -> np.ndarray:
        """Dense 0/1 numpy array of the pattern."""
        dense = np.zeros((self.size, self.size), dtype=np.int8)
        for i, row in enumerate(self.rows):
            dense[i, list(row)] = 1
        return dense

    def transpose(self) -> "SparseMatrixPattern":
        """Pattern of the transposed matrix."""
        return SparseMatrixPattern.from_coordinates(
            self.size, ((j, i) for i, j in self.coordinates())
        )


def pattern_from_sequence_of_rows(rows: Sequence[Sequence[int]]) -> SparseMatrixPattern:
    """Convenience constructor from a plain list of per-row column lists."""
    return SparseMatrixPattern(
        size=len(rows), rows=tuple(tuple(sorted(set(r))) for r in rows)
    )
