"""Node-weight models for generated DAGs.

The paper's convention (Appendix B), used by the fine- and coarse-grained
database generators, is

* ``w(v) = indeg(v) - 1`` for non-source nodes (combining ``k`` inputs costs
  ``k - 1`` elementary operations), with a floor of 1 so that pass-through
  nodes still carry a unit of work,
* ``w(v) = 1`` for source nodes (loading/initialising an input), and
* ``c(v) = 1`` for every node.

The structured workload families (:mod:`repro.dagdb.structured`) can use
alternative models from the :data:`WEIGHT_MODELS` registry — e.g. task DAGs
whose per-node work is the task's flop count rather than its fan-in.  All
models are vectorized over the CSR degree vectors and set the weights in
place, returning the DAG for chaining.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core.dag import ComputationalDAG
from ..core.exceptions import ConfigurationError

__all__ = [
    "apply_paper_weight_rule",
    "apply_unit_weights",
    "apply_indegree_weights",
    "apply_weight_model",
    "WEIGHT_MODELS",
]


def apply_paper_weight_rule(dag: ComputationalDAG) -> ComputationalDAG:
    """Set ``w``/``c`` on ``dag`` in place according to the paper's rule and return it.

    Vectorized over the in-degree vector of the CSR backend: sources get
    ``w = 1`` and every other node ``w = max(indeg - 1, 1)``; ``c = 1``
    everywhere.
    """
    indeg = dag.in_degrees()
    work = np.where(indeg == 0, 1.0, np.maximum(indeg - 1, 1).astype(np.float64))
    dag.set_work_weights(work)
    dag.set_comm_weights(np.ones(dag.num_nodes, dtype=np.float64))
    return dag


def apply_unit_weights(dag: ComputationalDAG) -> ComputationalDAG:
    """Unit work and communication everywhere (pure-structure scheduling)."""
    dag.set_work_weights(np.ones(dag.num_nodes, dtype=np.float64))
    dag.set_comm_weights(np.ones(dag.num_nodes, dtype=np.float64))
    return dag


def apply_indegree_weights(dag: ComputationalDAG) -> ComputationalDAG:
    """``w = max(indeg, 1)`` (a gather/reduce cost model), ``c = 1``."""
    indeg = dag.in_degrees()
    dag.set_work_weights(np.maximum(indeg, 1).astype(np.float64))
    dag.set_comm_weights(np.ones(dag.num_nodes, dtype=np.float64))
    return dag


#: Registry of weight models usable by the structured generators.
WEIGHT_MODELS: dict[str, Callable[[ComputationalDAG], ComputationalDAG]] = {
    "paper": apply_paper_weight_rule,
    "unit": apply_unit_weights,
    "indegree": apply_indegree_weights,
}


def apply_weight_model(dag: ComputationalDAG, model: str = "paper") -> ComputationalDAG:
    """Apply a registered weight model by name (in place; returns the DAG)."""
    try:
        rule = WEIGHT_MODELS[model]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown weight model {model!r}; available: {', '.join(sorted(WEIGHT_MODELS))}"
        ) from exc
    return rule(dag)
