"""The paper's node-weight convention for generated DAGs (Appendix B).

Both the coarse-grained and the fine-grained DAGs in the database use

* ``w(v) = indeg(v) - 1`` for non-source nodes (combining ``k`` inputs costs
  ``k - 1`` elementary operations), with a floor of 1 so that pass-through
  nodes still carry a unit of work,
* ``w(v) = 1`` for source nodes (loading/initialising an input), and
* ``c(v) = 1`` for every node.
"""

from __future__ import annotations

import numpy as np

from ..core.dag import ComputationalDAG

__all__ = ["apply_paper_weight_rule"]


def apply_paper_weight_rule(dag: ComputationalDAG) -> ComputationalDAG:
    """Set ``w``/``c`` on ``dag`` in place according to the paper's rule and return it.

    Vectorized over the in-degree vector of the CSR backend: sources get
    ``w = 1`` and every other node ``w = max(indeg - 1, 1)``; ``c = 1``
    everywhere.
    """
    indeg = dag.in_degrees()
    work = np.where(indeg == 0, 1.0, np.maximum(indeg - 1, 1).astype(np.float64))
    dag.set_work_weights(work)
    dag.set_comm_weights(np.ones(dag.num_nodes, dtype=np.float64))
    return dag
