"""The paper's node-weight convention for generated DAGs (Appendix B).

Both the coarse-grained and the fine-grained DAGs in the database use

* ``w(v) = indeg(v) - 1`` for non-source nodes (combining ``k`` inputs costs
  ``k - 1`` elementary operations), with a floor of 1 so that pass-through
  nodes still carry a unit of work,
* ``w(v) = 1`` for source nodes (loading/initialising an input), and
* ``c(v) = 1`` for every node.
"""

from __future__ import annotations

from ..core.dag import ComputationalDAG

__all__ = ["apply_paper_weight_rule"]


def apply_paper_weight_rule(dag: ComputationalDAG) -> ComputationalDAG:
    """Set ``w``/``c`` on ``dag`` in place according to the paper's rule and return it."""
    for v in dag.nodes():
        indeg = dag.in_degree(v)
        work = 1.0 if indeg == 0 else float(max(indeg - 1, 1))
        dag.set_work(v, work)
        dag.set_comm(v, 1.0)
    return dag
