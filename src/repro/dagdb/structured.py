"""Structured workload families beyond the paper's generator set.

Three additional families of computational DAGs, all emitted as whole
node/edge blocks through :class:`~repro.core.dag.DagBuilder` like the
fine-grained generators:

* **Elimination DAGs** (:func:`build_elimination_dag`) — the column-task
  DAG of sparse Cholesky/LU factorisation, derived from the *fill graph*
  of a :class:`~repro.dagdb.sparsegen.SparseMatrixPattern`: a symbolic
  elimination pass computes every column's below-diagonal structure in the
  filled matrix ``L`` and column ``j`` precedes every column ``i`` with
  ``L[i, j] != 0``.
* **FFT / butterfly DAGs** (:func:`build_fft_dag`) — ``log2(n)`` butterfly
  stages over ``n`` points; node ``(t, i)`` depends on ``(t-1, i)`` and
  ``(t-1, i XOR 2^(t-1))``.
* **Stencil sweeps** (:func:`build_stencil_dag`) — ``T`` Jacobi-style time
  steps over a 2D/3D grid; every cell depends on itself and its face
  neighbours in the previous step (5-point / 7-point star).

Every family takes a ``weight_model`` resolved through
:data:`repro.dagdb.weights.WEIGHT_MODELS` and returns a
:class:`~repro.dagdb.fine.FineGrainedResult` (DAG + per-node role labels),
so they plug into the same dataset / scheduling / validation plumbing as
the paper's families.
"""

from __future__ import annotations

import math
from itertools import repeat

import numpy as np

from ..core import kernels
from ..core.dag import DagBuilder
from ..core.exceptions import DagError
from .fine import FineGrainedResult
from .sparsegen import SparseMatrixPattern
from .weights import apply_weight_model

__all__ = [
    "amd_ordering",
    "build_elimination_dag",
    "build_amd_elimination_dag",
    "build_rcm_elimination_dag",
    "build_fft_dag",
    "build_fft4_dag",
    "build_stencil_dag",
    "build_stencil2d_dag",
    "build_stencil2d_rect_dag",
    "build_stencil3d_dag",
    "fft_dag_name",
    "rcm_ordering",
    "stencil_dag_name",
    "symbolic_fill_csr",
    "symbolic_fill_structure",
    "STRUCTURED_GENERATORS",
]

_INT = np.int64


def _finish(
    builder: DagBuilder,
    role_chunks: list[tuple[np.ndarray, str]],
    weight_model: str,
    track_roles: bool,
) -> FineGrainedResult:
    dag = apply_weight_model(builder.freeze(), weight_model)
    roles: dict[int, str] = {}
    if track_roles:
        for ids, role in role_chunks:
            roles.update(zip(ids.tolist(), repeat(role)))
    return FineGrainedResult(dag=dag, roles=roles)


# ---------------------------------------------------------------------- #
# sparse elimination DAGs
# ---------------------------------------------------------------------- #
def symbolic_fill_csr(
    pattern: SparseMatrixPattern,
    method: str = "quotient",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Below-diagonal structure of ``L`` for ``A ∪ Aᵀ`` as pooled CSR arrays.

    Returns ``(out_indptr, out_indices, parents)`` — column ``j``'s sorted
    structure is ``out_indices[out_indptr[j]:out_indptr[j + 1]]`` and
    ``parents`` is the elimination tree (``-1`` for roots).  ``method``
    selects the kernel, both dispatched through
    :mod:`repro.core.kernels` and bit-identical:

    * ``"quotient"`` (default) — the row-merge-tree pass
      (:func:`repro.core.kernels.symbolic_fill_quotient`): Liu's
      path-compressed elimination tree plus marked row-subtree traversals,
      ``O(|A| · α + |L|)``, which is what makes million-column elimination
      DAGs constructible.
    * ``"uplooking"`` — the historical per-column union pass
      (:func:`repro.core.kernels.symbolic_fill`), retained as the pinned
      differential reference.
    """
    if method not in ("quotient", "uplooking"):
        raise DagError(
            f"unknown symbolic fill method {method!r} (use 'quotient' or 'uplooking')"
        )
    sym = pattern.symmetrized()
    fill = (
        kernels.symbolic_fill_quotient
        if method == "quotient"
        else kernels.symbolic_fill
    )
    return fill(sym.indptr, sym.indices, sym.size)


def symbolic_fill_structure(
    pattern: SparseMatrixPattern,
    method: str = "quotient",
) -> tuple[list[np.ndarray], np.ndarray]:
    """Below-diagonal column structures of ``L`` for ``A ∪ Aᵀ``, plus the etree.

    The per-column view of :func:`symbolic_fill_csr`: returns
    ``(structures, parents)`` where ``structures[j]`` is column ``j``'s
    sorted below-diagonal fill pattern (a view into one pooled index
    array) and ``parents[j]`` is the etree parent of column ``j`` (``-1``
    for roots).  Callers that can consume the pooled CSR arrays directly
    (like :func:`build_elimination_dag`) should use
    :func:`symbolic_fill_csr` and skip the ``n`` view allocations.
    """
    out_indptr, out_indices, parents = symbolic_fill_csr(pattern, method=method)
    n = pattern.size
    structures = [
        out_indices[out_indptr[j] : out_indptr[j + 1]] for j in range(n)
    ]
    return structures, parents


def rcm_ordering(pattern: SparseMatrixPattern) -> np.ndarray:
    """Reverse Cuthill–McKee ordering of the pattern's symmetrised graph.

    Classic bandwidth-reducing BFS: components are entered at their
    minimum-degree vertex, neighbours are visited in increasing
    ``(degree, index)`` order, and the resulting Cuthill–McKee order is
    reversed.  Returns the permutation as an array of old indices in new
    order (``order[k]`` is the column eliminated ``k``-th).  Deterministic
    for a fixed pattern.
    """
    sym = pattern.symmetrized()
    n = sym.size
    degrees = sym.row_lengths()
    visited = np.zeros(n, dtype=bool)
    order: list[int] = []
    # component entry points: ascending (degree, index)
    starts = np.lexsort((np.arange(n), degrees))
    for start in starts.tolist():
        if visited[start]:
            continue
        visited[start] = True
        queue = [start]
        head = 0
        while head < len(queue):
            v = queue[head]
            head += 1
            order.append(v)
            nbrs = sym.row_array(v)
            nbrs = nbrs[~visited[nbrs]]
            if nbrs.size:
                visited[nbrs] = True
                queue.extend(nbrs[np.lexsort((nbrs, degrees[nbrs]))].tolist())
    return np.asarray(order[::-1], dtype=_INT)


def amd_ordering(pattern: SparseMatrixPattern) -> np.ndarray:
    """Minimum-degree ordering of the pattern's symmetrised graph.

    The fill-reducing companion of :func:`rcm_ordering`: repeatedly
    eliminate a vertex of minimum degree in the *elimination graph* (the
    graph with each eliminated vertex's neighbourhood turned into a
    clique), which greedily minimises the fill each pivot introduces.  This
    is the exact minimum-degree rule — at database instance sizes the
    quotient-graph machinery of production AMD codes buys nothing, and the
    exact rule with lazy heap deletion is deterministic: ties break on the
    smallest vertex index.  Returns the permutation as an array of old
    indices in elimination order.
    """
    import heapq

    sym = pattern.symmetrized()
    n = sym.size
    adjacency: list[set[int]] = [
        set(sym.row_array(v).tolist()) - {v} for v in range(n)
    ]
    eliminated = np.zeros(n, dtype=bool)
    heap = [(len(adjacency[v]), v) for v in range(n)]
    heapq.heapify(heap)
    order: list[int] = []
    while heap:
        degree, v = heapq.heappop(heap)
        if eliminated[v] or degree != len(adjacency[v]):
            continue  # stale entry; the up-to-date one is still queued
        eliminated[v] = True
        order.append(v)
        neighbours = sorted(adjacency[v])
        for u in neighbours:
            adjacency[u].discard(v)
        for u in neighbours:  # clique-connect the pivot's neighbourhood
            adjacency[u].update(w for w in neighbours if w != u)
            heapq.heappush(heap, (len(adjacency[u]), u))
        adjacency[v] = set()
    return np.asarray(order, dtype=_INT)


def build_elimination_dag(
    pattern: SparseMatrixPattern,
    kind: str = "cholesky",
    name: str | None = None,
    weight_model: str = "paper",
    track_roles: bool = True,
    ordering: str = "natural",
) -> FineGrainedResult:
    """Column-task DAG of sparse Cholesky (or LU) elimination.

    One node per column of the matrix; column ``j`` has an edge to every
    column ``i > j`` whose factor entry ``L[i, j]`` is (structurally)
    nonzero — i.e. the edges of the pattern's fill graph, oriented by
    elimination order, so the DAG is acyclic by construction.  ``kind``
    selects the label only: both variants eliminate on the symmetrised
    pattern ``A ∪ Aᵀ`` (for unsymmetric LU this is the usual structural
    upper bound on the fill).  ``ordering`` selects the elimination order:
    ``"natural"`` keeps the pattern as given, ``"rcm"`` first applies the
    reverse Cuthill–McKee permutation (:func:`rcm_ordering`), which bounds
    the bandwidth and typically produces far less fill, and ``"amd"``
    applies the minimum-degree permutation (:func:`amd_ordering`), which
    greedily minimises per-pivot fill — the same matrix yields structurally
    different scheduling workloads under each order.
    """
    if kind not in ("cholesky", "lu"):
        raise DagError(f"unknown elimination kind {kind!r} (use 'cholesky' or 'lu')")
    if ordering not in ("natural", "rcm", "amd"):
        raise DagError(
            f"unknown elimination ordering {ordering!r} (use 'natural', 'rcm' or 'amd')"
        )
    if ordering == "rcm":
        pattern = pattern.permuted(rcm_ordering(pattern))
    elif ordering == "amd":
        pattern = pattern.permuted(amd_ordering(pattern))
    n = pattern.size
    out_indptr, out_indices, _ = symbolic_fill_csr(pattern)
    builder = DagBuilder(name=name or f"{kind}_n{n}")
    builder.add_node_block(n)
    if out_indices.size:
        counts = np.diff(out_indptr).astype(_INT, copy=False)
        sources = np.repeat(np.arange(n, dtype=_INT), counts)
        builder.add_edges_array(sources, out_indices)
    chunks = [(np.arange(n, dtype=_INT), f"eliminate:{kind}")]
    return _finish(builder, chunks, weight_model, track_roles)


def build_rcm_elimination_dag(
    pattern: SparseMatrixPattern,
    kind: str = "cholesky",
    name: str | None = None,
    **kwargs,
) -> FineGrainedResult:
    """Elimination DAG after reverse Cuthill–McKee reordering (registry entry)."""
    return build_elimination_dag(
        pattern,
        kind=kind,
        name=name or f"{kind}_rcm_n{pattern.size}",
        ordering="rcm",
        **kwargs,
    )


def build_amd_elimination_dag(
    pattern: SparseMatrixPattern,
    kind: str = "cholesky",
    name: str | None = None,
    **kwargs,
) -> FineGrainedResult:
    """Elimination DAG after minimum-degree reordering (registry entry)."""
    return build_elimination_dag(
        pattern,
        kind=kind,
        name=name or f"{kind}_amd_n{pattern.size}",
        ordering="amd",
        **kwargs,
    )


# ---------------------------------------------------------------------- #
# FFT / butterfly DAGs
# ---------------------------------------------------------------------- #
def build_fft_dag(
    points: int,
    name: str | None = None,
    weight_model: str = "paper",
    track_roles: bool = True,
    radix: int = 2,
) -> FineGrainedResult:
    """Butterfly DAG of an in-place radix-``r`` FFT over ``points`` inputs.

    ``log_r(points)`` stages of ``points`` butterfly nodes each.  With
    radix 2, the node for index ``i`` of stage ``t`` reads index ``i`` and
    its butterfly partner ``i XOR 2^(t-1)`` of the previous stage; with
    radix 4 it reads the four lanes sharing every base-4 digit of ``i``
    except digit ``t-1`` — half the stage count at four-way fan-in, a
    structurally different (wider, shallower) scheduling workload.
    """
    stages = _fft_stages(points, radix)
    builder = DagBuilder(name=name or fft_dag_name(points, radix))
    builder.add_node_block(points * (stages + 1))
    for sources, targets in _fft_stage_blocks(points, radix, stages):
        builder.add_edges_array(sources, targets)
    lanes = np.arange(points, dtype=_INT)
    chunks = [
        (lanes, "input:x"),
        (points + np.arange(points * stages, dtype=_INT), "butterfly"),
    ]
    return _finish(builder, chunks, weight_model, track_roles)


def fft_dag_name(points: int, radix: int = 2) -> str:
    """The default DAG name of :func:`build_fft_dag` for these parameters."""
    return f"fft{radix if radix != 2 else ''}_n{points}"


def _fft_stages(points: int, radix: int) -> int:
    """Validate FFT parameters; return the stage count ``log_radix(points)``."""
    if radix not in (2, 4):
        raise DagError(f"radix must be 2 or 4, got {radix}")
    stages = 0
    size = 1
    while size < points:
        size *= radix
        stages += 1
    if points < radix or size != points:
        raise DagError(
            f"points must be a power of {radix} >= {radix}, got {points}"
        )
    return stages


def _fft_stage_blocks(points: int, radix: int, stages: int):
    """Yield the butterfly edge blocks in canonical emission order.

    Shared by the in-memory builder and the streaming generator
    (:mod:`repro.dagdb.stream`), so both emit bit-identical DAGs: per
    stage the own-lane block first, then the partners in ascending digit
    order — the radix-2 case reproduces the historical
    ``(previous, partner)`` order.
    """
    lanes = np.arange(points, dtype=_INT)
    for t in range(1, stages + 1):
        current = t * points + lanes
        stride = radix ** (t - 1)
        yield (t - 1) * points + lanes, current
        digit = (lanes // stride) % radix
        base = lanes - digit * stride
        for d in range(1, radix):
            partner = base + ((digit + d) % radix) * stride
            yield (t - 1) * points + partner, current


def build_fft4_dag(points: int, name: str | None = None, **kwargs) -> FineGrainedResult:
    """Radix-4 butterfly DAG (registry entry; ``points`` must be a power of 4)."""
    return build_fft_dag(points, name=name, radix=4, **kwargs)


# ---------------------------------------------------------------------- #
# stencil sweeps
# ---------------------------------------------------------------------- #
def build_stencil_dag(
    shape: tuple[int, ...],
    steps: int,
    name: str | None = None,
    weight_model: str = "paper",
    track_roles: bool = True,
) -> FineGrainedResult:
    """Space-time DAG of ``steps`` star-stencil sweeps over a 2D/3D grid.

    Cell ``x`` of time layer ``t`` depends on itself and its face
    neighbours in layer ``t - 1`` (5-point stencil in 2D, 7-point in 3D).
    Layer 0 holds the grid's initial values as source nodes.
    """
    shape = _check_stencil_params(shape, steps)
    cells = math.prod(shape)
    src0, dst0 = _stencil_template(shape)
    flat = np.arange(cells, dtype=_INT)

    builder = DagBuilder(name=name or stencil_dag_name(shape, steps))
    builder.add_node_block(cells * (steps + 1))
    t = np.arange(steps, dtype=_INT)[:, None]
    sources = (t * cells + src0[None, :]).ravel()
    targets = ((t + 1) * cells + dst0[None, :]).ravel()
    builder.add_edges_array(sources, targets)
    chunks = [
        (flat, "input:grid"),
        (cells + np.arange(cells * steps, dtype=_INT), "stencil"),
    ]
    return _finish(builder, chunks, weight_model, track_roles)


def stencil_dag_name(shape: tuple[int, ...], steps: int) -> str:
    """The default DAG name of :func:`build_stencil_dag` for these parameters."""
    return f"stencil{len(shape)}d_{'x'.join(map(str, shape))}_t{steps}"


def _check_stencil_params(shape: tuple[int, ...], steps: int) -> tuple[int, ...]:
    """Validate stencil parameters; return the normalised shape tuple."""
    shape = tuple(int(s) for s in shape)
    if len(shape) not in (2, 3):
        raise DagError(f"stencil grids must be 2D or 3D, got shape {shape}")
    if any(s < 1 for s in shape):
        raise DagError(f"grid extents must be positive, got {shape}")
    if steps < 1:
        raise DagError("steps must be >= 1")
    return shape


def _stencil_template(shape: tuple[int, ...]) -> tuple[np.ndarray, np.ndarray]:
    """One layer's ``(relative source cell, destination cell)`` edge template.

    The self edge first, then -1/+1 along each axis.  Shared by the
    in-memory builder and the streaming generator
    (:mod:`repro.dagdb.stream`), so both emit bit-identical DAGs.
    """
    cells = math.prod(shape)
    coords = np.indices(shape).reshape(len(shape), cells)
    flat = np.arange(cells, dtype=_INT)
    template_src = [flat]
    template_dst = [flat]
    for axis in range(len(shape)):
        for delta in (-1, +1):
            moved = coords[axis] + delta
            valid = (moved >= 0) & (moved < shape[axis])
            neighbour = coords.copy()
            neighbour[axis] = moved
            template_src.append(
                np.ravel_multi_index(
                    tuple(neighbour[:, valid]), shape
                ).astype(_INT)
            )
            template_dst.append(flat[valid])
    return np.concatenate(template_src), np.concatenate(template_dst)


def build_stencil2d_dag(
    side: int, steps: int, name: str | None = None, **kwargs
) -> FineGrainedResult:
    """Square 2D stencil sweep (5-point star) of ``side x side`` cells."""
    return build_stencil_dag((side, side), steps, name=name, **kwargs)


def build_stencil2d_rect_dag(
    width: int, height: int, steps: int, name: str | None = None, **kwargs
) -> FineGrainedResult:
    """Non-square 2D stencil sweep (5-point star) of ``width x height`` cells.

    Skewed aspect ratios change the surface-to-volume ratio of good grid
    partitions, so the same cell count schedules very differently from the
    square sweep — a cheap source of scenario diversity.
    """
    return build_stencil_dag((width, height), steps, name=name, **kwargs)


def build_stencil3d_dag(
    side: int, steps: int, name: str | None = None, **kwargs
) -> FineGrainedResult:
    """Cubic 3D stencil sweep (7-point star) of ``side^3`` cells."""
    return build_stencil_dag((side, side, side), steps, name=name, **kwargs)


#: Registry of the structured generator families (scheduler-facing names).
STRUCTURED_GENERATORS = {
    "cholesky": build_elimination_dag,
    "cholesky_rcm": build_rcm_elimination_dag,
    "cholesky_amd": build_amd_elimination_dag,
    "fft": build_fft_dag,
    "fft4": build_fft4_dag,
    "stencil2d": build_stencil2d_dag,
    "stencil2d_rect": build_stencil2d_rect_dag,
    "stencil3d": build_stencil3d_dag,
}
