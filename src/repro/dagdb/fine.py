"""Fine-grained computational DAG generators (paper Appendix B.2).

In the fine-grained representation every nonzero scalar of every matrix and
vector is (the output of) a separate DAG node, and every elementary
operation (a scalar multiplication, an accumulation, a division, ...) is a
node as well.  The paper's generator supports four concrete algorithms, all
parameterised by a square sparse matrix pattern ``A``:

* ``spmv``  — one sparse matrix / dense vector product ``y = A·u``,
* ``exp``   — the iterated product ``A^k · u`` (``k`` chained SpMVs),
* ``cg``    — ``k`` iterations of the conjugate gradient method,
* ``knn``   — ``k`` iterations of SpMV starting from a vector with a single
  nonzero entry (breadth-first "k-hop" reachability in algebraic form).

Node weights follow the paper's rule (``w = indeg - 1`` for interior nodes,
``1`` for sources; ``c = 1`` everywhere) via
:func:`repro.dagdb.weights.apply_paper_weight_rule`.

Every generator returns a :class:`FineGrainedResult` carrying the DAG plus a
role label per node (``"input"``, ``"multiply"``, ``"reduce"``, ...), which
the examples and tests use to sanity-check the generated structure.

Implementation notes
--------------------
The builders emit whole *edge blocks* through
:meth:`repro.core.dag.DagBuilder.add_edges_array`: one SpMV application is
a handful of numpy passes over the pattern's CSR arrays instead of one
``node()`` call per nonzero.  Node ids, role labels and CSR neighbour
orders are *identical* to the retained per-nonzero reference
(:mod:`repro.dagdb.reference`) — block emission reorders only the internal
edge buffer, and only in ways that preserve the per-source and per-target
relative order the CSR views are built from.  The differential tests in
``tests/test_generator_diff.py`` pin this equivalence.

Intermediate sparse vectors are ``(entry index, node id)`` array pairs
(:class:`_SparseVec`); ``track_roles=False`` skips the per-node role dict
for dataset-scale generation where only the DAG is needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import repeat

import numpy as np

from ..core.dag import ComputationalDAG, DagBuilder
from ..core.exceptions import DagError
from .sparsegen import SparseMatrixPattern
from .weights import apply_paper_weight_rule

__all__ = [
    "FineGrainedResult",
    "build_spmv_dag",
    "build_iterated_spmv_dag",
    "build_knn_dag",
    "build_cg_dag",
    "FINE_GENERATORS",
]

_INT = np.int64


@dataclass
class FineGrainedResult:
    """A generated fine-grained DAG together with per-node role labels."""

    dag: ComputationalDAG
    roles: dict[int, str] = field(default_factory=dict)

    def nodes_with_role(self, role: str) -> list[int]:
        """All nodes carrying the given role label."""
        return [v for v, r in self.roles.items() if r == role]


@dataclass
class _SparseVec:
    """A sparse vector of DAG nodes: sorted entry indices + parallel node ids."""

    idx: np.ndarray
    nodes: np.ndarray

    def __bool__(self) -> bool:
        return self.idx.size > 0

    @property
    def support(self) -> np.ndarray:
        return self.idx


def _exclusive_cumsum(values: np.ndarray) -> np.ndarray:
    out = np.zeros(values.size, dtype=_INT)
    np.cumsum(values[:-1], out=out[1:])
    return out


class _FineDagBuilder:
    """Incrementally builds a fine-grained DAG, emitting whole node/edge blocks.

    Nodes and edges are appended as numpy blocks into a
    :class:`~repro.core.dag.DagBuilder` and frozen into the CSR-backed
    :class:`ComputationalDAG` once the generator is done.
    """

    def __init__(self, name: str, track_roles: bool = True) -> None:
        self._builder = DagBuilder(name=name)
        self._track_roles = track_roles
        self._role_chunks: list[tuple[object, str]] = []

    # ------------------------------------------------------------------ #
    # node allocation + role bookkeeping
    # ------------------------------------------------------------------ #
    def _new_block(self, count: int) -> int:
        """Append ``count`` unit-weight nodes; return the first id."""
        return self._builder.add_node_block(count)

    def _register_roles(self, ids, role: str) -> None:
        if self._track_roles:
            self._role_chunks.append((ids, role))

    def node(self, role: str, preds: list[int] | None = None) -> int:
        """Append a single node (used for the O(1)-per-iteration scalar ops)."""
        v = self._builder.add_node()
        self._register_roles((v,), role)
        # deduplicate while preserving order: the same value may feed an
        # operation twice (e.g. the dot product r·r squares every entry)
        for u in dict.fromkeys(preds or []):
            self._builder.add_edge(u, v)
        return v

    # ------------------------------------------------------------------ #
    # block-emitting primitives
    # ------------------------------------------------------------------ #
    def matrix_sources(
        self, pattern: SparseMatrixPattern, label: str = "A"
    ) -> np.ndarray:
        """One source node per nonzero; ids parallel to ``pattern.indices``."""
        first = self._new_block(pattern.nnz)
        ids = np.arange(first, first + pattern.nnz, dtype=_INT)
        self._register_roles(ids, f"input:{label}")
        return ids

    def dense_vector_sources(self, size: int, label: str = "u") -> _SparseVec:
        """One source node per entry of a dense vector."""
        first = self._new_block(size)
        ids = np.arange(first, first + size, dtype=_INT)
        self._register_roles(ids, f"input:{label}")
        return _SparseVec(idx=np.arange(size, dtype=_INT), nodes=ids)

    def spmv(
        self,
        pattern: SparseMatrixPattern,
        matrix_nodes: np.ndarray,
        vector: _SparseVec,
    ) -> _SparseVec:
        """Fine-grained ``y = A · u``; returns the nodes of the (sparse) result.

        A multiplication node is created for every matrix nonzero ``(i, j)``
        whose vector operand ``u[j]`` exists (is itself nonzero); rows with a
        single product skip the accumulation node.
        """
        n = pattern.size
        lookup = np.full(n, -1, dtype=_INT)
        lookup[vector.idx] = vector.nodes
        operand = lookup[pattern.indices]
        kept = np.flatnonzero(operand >= 0)
        if kept.size == 0:
            return _SparseVec(
                idx=np.empty(0, dtype=_INT), nodes=np.empty(0, dtype=_INT)
            )
        kept_rows = pattern.row_ids()[kept]
        m_nodes = matrix_nodes[kept]
        u_nodes = operand[kept]

        counts = np.bincount(kept_rows, minlength=n)  # products per row
        has_reduce = counts >= 2
        row_alloc = counts + has_reduce  # ids consumed per row
        base = self._new_block(int(kept.size + has_reduce.sum()))
        row_base = base + _exclusive_cumsum(row_alloc)

        # products of one row get consecutive ids starting at the row's base
        intra = np.arange(kept.size, dtype=_INT) - _exclusive_cumsum(counts)[kept_rows]
        product_ids = row_base[kept_rows] + intra
        self._register_roles(product_ids, "multiply")

        # edge blocks; per-product pred order stays [matrix, vector] and every
        # per-source successor order stays row-major, exactly like the
        # per-nonzero reference emission
        self._builder.add_edges_array(m_nodes, product_ids)
        self._builder.add_edges_array(u_nodes, product_ids)

        if has_reduce.any():
            reduce_ids = (row_base + counts)[has_reduce]
            self._register_roles(reduce_ids, "reduce")
            in_reduce_row = has_reduce[kept_rows]
            self._builder.add_edges_array(
                product_ids[in_reduce_row],
                np.repeat(reduce_ids, counts[has_reduce]),
            )

        out_rows = np.flatnonzero(counts > 0)
        out_nodes = row_base[out_rows] + np.where(
            counts[out_rows] == 1, 0, counts[out_rows]
        )
        return _SparseVec(idx=out_rows.astype(_INT), nodes=out_nodes)

    def dot(self, a: _SparseVec, b: _SparseVec, role: str = "dot") -> int:
        """Fine-grained dot product of two sparse vectors (must overlap)."""
        if a is b:
            shared_a = shared_b = np.arange(a.idx.size, dtype=_INT)
        else:
            _, shared_a, shared_b = np.intersect1d(
                a.idx, b.idx, assume_unique=True, return_indices=True
            )
        if shared_a.size == 0:
            raise DagError("dot product of vectors with disjoint support")
        a_nodes = a.nodes[shared_a]
        b_nodes = b.nodes[shared_b]
        k = int(shared_a.size)
        base = self._new_block(k + (1 if k > 1 else 0))
        product_ids = np.arange(base, base + k, dtype=_INT)
        self._register_roles(product_ids, "multiply")
        self._builder.add_edges_array(a_nodes, product_ids)
        # replicate the reference's per-node pred dedup (r·r squares entries)
        distinct = b_nodes != a_nodes
        if distinct.any():
            self._builder.add_edges_array(b_nodes[distinct], product_ids[distinct])
        if k == 1:
            return int(product_ids[0])
        reduce_id = base + k
        self._register_roles((reduce_id,), role)
        self._builder.add_edges_array(product_ids, np.full(k, reduce_id, dtype=_INT))
        return int(reduce_id)

    def elementwise(
        self,
        role: str,
        operands: list[_SparseVec],
        scalars: list[int] | None = None,
    ) -> _SparseVec:
        """Per-entry combination of sparse vectors (union of supports) plus scalars."""
        scalars = scalars or []
        support = np.unique(np.concatenate([vec.idx for vec in operands]))
        if support.size == 0:
            return _SparseVec(idx=support, nodes=support.copy())
        size = int(support.max()) + 1
        member_nodes = []
        pred_count = np.full(support.size, len(scalars), dtype=_INT)
        for vec in operands:
            lookup = np.full(size, -1, dtype=_INT)
            lookup[vec.idx] = vec.nodes
            nodes = lookup[support]
            member_nodes.append(nodes)
            pred_count += nodes >= 0
        combine = pred_count >= 2
        base = self._new_block(int(combine.sum()))
        out_ids = np.empty(support.size, dtype=_INT)
        out_ids[combine] = base + np.arange(int(combine.sum()), dtype=_INT)
        self._register_roles(out_ids[combine].copy(), role)
        # operand blocks in operand order, then scalar blocks: per-target pred
        # order matches the reference's [operands..., scalars...] emission
        for nodes in member_nodes:
            present = combine & (nodes >= 0)
            self._builder.add_edges_array(nodes[present], out_ids[present])
        for s in scalars:
            self._builder.add_edges_array(
                np.full(int(combine.sum()), s, dtype=_INT), out_ids[combine]
            )
        # pass-through entries re-expose their single operand node
        if not combine.all():
            single = ~combine
            for nodes in member_nodes:
                take = single & (nodes >= 0)
                out_ids[take] = nodes[take]
        return _SparseVec(idx=support, nodes=out_ids)

    def finish(self) -> FineGrainedResult:
        dag = self._builder.freeze()
        apply_paper_weight_rule(dag)
        roles: dict[int, str] = {}
        for ids, role in self._role_chunks:
            chunk = ids.tolist() if isinstance(ids, np.ndarray) else ids
            roles.update(zip(chunk, repeat(role)))
        return FineGrainedResult(dag=dag, roles=roles)


# ---------------------------------------------------------------------- #
# public generators
# ---------------------------------------------------------------------- #
def build_spmv_dag(
    pattern: SparseMatrixPattern, name: str | None = None, track_roles: bool = True
) -> FineGrainedResult:
    """Fine-grained DAG of a single sparse matrix / dense vector product."""
    builder = _FineDagBuilder(name or f"spmv_n{pattern.size}", track_roles)
    matrix = builder.matrix_sources(pattern)
    vector = builder.dense_vector_sources(pattern.size)
    builder.spmv(pattern, matrix, vector)
    return builder.finish()


def build_iterated_spmv_dag(
    pattern: SparseMatrixPattern,
    iterations: int,
    name: str | None = None,
    track_roles: bool = True,
) -> FineGrainedResult:
    """Fine-grained DAG of ``A^k · u`` (the paper's ``exp`` generator)."""
    if iterations < 1:
        raise DagError("iterations must be >= 1")
    builder = _FineDagBuilder(name or f"exp_n{pattern.size}_k{iterations}", track_roles)
    matrix = builder.matrix_sources(pattern)
    vector = builder.dense_vector_sources(pattern.size)
    for _ in range(iterations):
        vector = builder.spmv(pattern, matrix, vector)
        if not vector:
            break  # the product vanished; nothing left to compute
    return builder.finish()


def build_knn_dag(
    pattern: SparseMatrixPattern,
    iterations: int,
    start_index: int = 0,
    name: str | None = None,
    track_roles: bool = True,
) -> FineGrainedResult:
    """Fine-grained DAG of the algebraic ``k``-hop reachability (``knn``).

    The input vector has a single nonzero entry at ``start_index``; every
    iteration multiplies by ``A`` and the support of the vector grows along
    the reachable rows.
    """
    if iterations < 1:
        raise DagError("iterations must be >= 1")
    if not 0 <= start_index < pattern.size:
        raise DagError("start_index out of range")
    builder = _FineDagBuilder(name or f"knn_n{pattern.size}_k{iterations}", track_roles)
    matrix = builder.matrix_sources(pattern)
    start = builder.node("input:u")
    vector = _SparseVec(
        idx=np.array([start_index], dtype=_INT), nodes=np.array([start], dtype=_INT)
    )
    for _ in range(iterations):
        new_vector = builder.spmv(pattern, matrix, vector)
        # reached entries stay reachable: merge old support into the new one
        keep_old = ~np.isin(vector.idx, new_vector.idx, assume_unique=True)
        idx = np.concatenate((new_vector.idx, vector.idx[keep_old]))
        nodes = np.concatenate((new_vector.nodes, vector.nodes[keep_old]))
        order = np.argsort(idx)
        vector = _SparseVec(idx=idx[order], nodes=nodes[order])
        if not new_vector:
            break
    return builder.finish()


def build_cg_dag(
    pattern: SparseMatrixPattern,
    iterations: int,
    name: str | None = None,
    track_roles: bool = True,
) -> FineGrainedResult:
    """Fine-grained DAG of ``k`` iterations of the conjugate gradient method.

    Per iteration (standard CG on ``A x = b`` with ``x_0 = 0``):

    1. ``q = A p``
    2. ``alpha = rr / (p · q)``
    3. ``x += alpha p`` and ``r -= alpha q``
    4. ``rr_new = r · r`` ; ``beta = rr_new / rr``
    5. ``p = r + beta p``
    """
    if iterations < 1:
        raise DagError("iterations must be >= 1")
    builder = _FineDagBuilder(name or f"cg_n{pattern.size}_k{iterations}", track_roles)
    matrix = builder.matrix_sources(pattern)
    b = builder.dense_vector_sources(pattern.size, label="b")
    r = b  # r0 = b (x0 = 0)
    p = b  # p0 = r0
    x = _SparseVec(idx=np.empty(0, dtype=_INT), nodes=np.empty(0, dtype=_INT))
    rr = builder.dot(r, r, role="reduce:rr")
    for _ in range(iterations):
        q = builder.spmv(pattern, matrix, p)
        if not q:
            break
        pq = builder.dot(p, q, role="reduce:pq")
        alpha = builder.node("scalar:alpha", [rr, pq])
        x = builder.elementwise("axpy:x", [x, p], scalars=[alpha])
        r = builder.elementwise("axpy:r", [r, q], scalars=[alpha])
        rr_new = builder.dot(r, r, role="reduce:rr")
        beta = builder.node("scalar:beta", [rr_new, rr])
        p = builder.elementwise("axpy:p", [r, p], scalars=[beta])
        rr = rr_new
    return builder.finish()


#: Registry of the four fine-grained generators keyed by the paper's names.
FINE_GENERATORS = {
    "spmv": lambda pattern, iterations=1, **kw: build_spmv_dag(pattern, **kw),
    "exp": build_iterated_spmv_dag,
    "knn": build_knn_dag,
    "cg": build_cg_dag,
}
