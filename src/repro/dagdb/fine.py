"""Fine-grained computational DAG generators (paper Appendix B.2).

In the fine-grained representation every nonzero scalar of every matrix and
vector is (the output of) a separate DAG node, and every elementary
operation (a scalar multiplication, an accumulation, a division, ...) is a
node as well.  The paper's generator supports four concrete algorithms, all
parameterised by a square sparse matrix pattern ``A``:

* ``spmv``  — one sparse matrix / dense vector product ``y = A·u``,
* ``exp``   — the iterated product ``A^k · u`` (``k`` chained SpMVs),
* ``cg``    — ``k`` iterations of the conjugate gradient method,
* ``knn``   — ``k`` iterations of SpMV starting from a vector with a single
  nonzero entry (breadth-first "k-hop" reachability in algebraic form).

Node weights follow the paper's rule (``w = indeg - 1`` for interior nodes,
``1`` for sources; ``c = 1`` everywhere) via
:func:`repro.dagdb.weights.apply_paper_weight_rule`.

Every generator returns a :class:`FineGrainedResult` carrying the DAG plus a
role label per node (``"input"``, ``"multiply"``, ``"reduce"``, ...), which
the examples and tests use to sanity-check the generated structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.dag import ComputationalDAG, DagBuilder
from ..core.exceptions import DagError
from .sparsegen import SparseMatrixPattern
from .weights import apply_paper_weight_rule

__all__ = [
    "FineGrainedResult",
    "build_spmv_dag",
    "build_iterated_spmv_dag",
    "build_knn_dag",
    "build_cg_dag",
    "FINE_GENERATORS",
]


@dataclass
class FineGrainedResult:
    """A generated fine-grained DAG together with per-node role labels."""

    dag: ComputationalDAG
    roles: dict[int, str] = field(default_factory=dict)

    def nodes_with_role(self, role: str) -> list[int]:
        """All nodes carrying the given role label."""
        return [v for v, r in self.roles.items() if r == role]


class _FineDagBuilder:
    """Incrementally builds a fine-grained DAG, tracking node roles.

    Nodes and edges are appended straight into a
    :class:`~repro.core.dag.DagBuilder` (amortized O(1) buffer appends, no
    per-edge duplicate bookkeeping) and frozen into the CSR-backed
    :class:`ComputationalDAG` once the generator is done.
    """

    def __init__(self, name: str) -> None:
        self._builder = DagBuilder(name=name)
        self.roles: dict[int, str] = {}

    def node(self, role: str, preds: list[int] | None = None) -> int:
        v = self._builder.add_node()
        self.roles[v] = role
        # deduplicate while preserving order: the same value may feed an
        # operation twice (e.g. the dot product r·r squares every entry)
        for u in dict.fromkeys(preds or []):
            self._builder.add_edge(u, v)
        return v

    def matrix_sources(self, pattern: SparseMatrixPattern, label: str = "A") -> dict[tuple[int, int], int]:
        """One source node per nonzero of the matrix pattern."""
        return {
            (i, j): self.node(f"input:{label}")
            for i in range(pattern.size)
            for j in pattern.row(i)
        }

    def dense_vector_sources(self, size: int, label: str = "u") -> dict[int, int]:
        """One source node per entry of a dense vector."""
        return {i: self.node(f"input:{label}") for i in range(size)}

    def spmv(
        self,
        pattern: SparseMatrixPattern,
        matrix_nodes: dict[tuple[int, int], int],
        vector_nodes: dict[int, int],
    ) -> dict[int, int]:
        """Fine-grained ``y = A · u``; returns the nodes of the (sparse) result.

        A multiplication node is created for every matrix nonzero ``(i, j)``
        whose vector operand ``u[j]`` exists (is itself nonzero); rows with a
        single product skip the accumulation node.
        """
        result: dict[int, int] = {}
        for i in range(pattern.size):
            products = []
            for j in pattern.row(i):
                if j in vector_nodes:
                    products.append(
                        self.node("multiply", [matrix_nodes[(i, j)], vector_nodes[j]])
                    )
            if not products:
                continue
            if len(products) == 1:
                result[i] = products[0]
            else:
                result[i] = self.node("reduce", products)
        return result

    def dot(self, a: dict[int, int], b: dict[int, int], role: str = "dot") -> int:
        """Fine-grained dot product of two sparse vectors (must overlap)."""
        shared = sorted(set(a) & set(b))
        if not shared:
            raise DagError("dot product of vectors with disjoint support")
        products = [self.node("multiply", [a[i], b[i]]) for i in shared]
        if len(products) == 1:
            return products[0]
        return self.node(role, products)

    def elementwise(
        self,
        role: str,
        operands: list[dict[int, int]],
        scalars: list[int] | None = None,
    ) -> dict[int, int]:
        """Per-entry combination of sparse vectors (union of supports) plus scalars."""
        support: set[int] = set()
        for vec in operands:
            support |= set(vec)
        result: dict[int, int] = {}
        for i in sorted(support):
            preds = [vec[i] for vec in operands if i in vec]
            preds.extend(scalars or [])
            if len(preds) == 1:
                result[i] = preds[0]
            else:
                result[i] = self.node(role, preds)
        return result

    def finish(self) -> FineGrainedResult:
        dag = self._builder.freeze()
        apply_paper_weight_rule(dag)
        return FineGrainedResult(dag=dag, roles=self.roles)


# ---------------------------------------------------------------------- #
# public generators
# ---------------------------------------------------------------------- #
def build_spmv_dag(
    pattern: SparseMatrixPattern, name: str | None = None
) -> FineGrainedResult:
    """Fine-grained DAG of a single sparse matrix / dense vector product."""
    builder = _FineDagBuilder(name or f"spmv_n{pattern.size}")
    matrix = builder.matrix_sources(pattern)
    vector = builder.dense_vector_sources(pattern.size)
    builder.spmv(pattern, matrix, vector)
    return builder.finish()


def build_iterated_spmv_dag(
    pattern: SparseMatrixPattern, iterations: int, name: str | None = None
) -> FineGrainedResult:
    """Fine-grained DAG of ``A^k · u`` (the paper's ``exp`` generator)."""
    if iterations < 1:
        raise DagError("iterations must be >= 1")
    builder = _FineDagBuilder(name or f"exp_n{pattern.size}_k{iterations}")
    matrix = builder.matrix_sources(pattern)
    vector = builder.dense_vector_sources(pattern.size)
    for _ in range(iterations):
        vector = builder.spmv(pattern, matrix, vector)
        if not vector:
            break  # the product vanished; nothing left to compute
    return builder.finish()


def build_knn_dag(
    pattern: SparseMatrixPattern,
    iterations: int,
    start_index: int = 0,
    name: str | None = None,
) -> FineGrainedResult:
    """Fine-grained DAG of the algebraic ``k``-hop reachability (``knn``).

    The input vector has a single nonzero entry at ``start_index``; every
    iteration multiplies by ``A`` and the support of the vector grows along
    the reachable rows.
    """
    if iterations < 1:
        raise DagError("iterations must be >= 1")
    if not 0 <= start_index < pattern.size:
        raise DagError("start_index out of range")
    builder = _FineDagBuilder(name or f"knn_n{pattern.size}_k{iterations}")
    matrix = builder.matrix_sources(pattern)
    vector = {start_index: builder.node("input:u")}
    for _ in range(iterations):
        new_vector = builder.spmv(pattern, matrix, vector)
        # reached entries stay reachable: merge old support into the new one
        merged = dict(new_vector)
        for i, node in vector.items():
            merged.setdefault(i, node)
        vector = merged
        if not new_vector:
            break
    return builder.finish()


def build_cg_dag(
    pattern: SparseMatrixPattern, iterations: int, name: str | None = None
) -> FineGrainedResult:
    """Fine-grained DAG of ``k`` iterations of the conjugate gradient method.

    Per iteration (standard CG on ``A x = b`` with ``x_0 = 0``):

    1. ``q = A p``
    2. ``alpha = rr / (p · q)``
    3. ``x += alpha p`` and ``r -= alpha q``
    4. ``rr_new = r · r`` ; ``beta = rr_new / rr``
    5. ``p = r + beta p``
    """
    if iterations < 1:
        raise DagError("iterations must be >= 1")
    builder = _FineDagBuilder(name or f"cg_n{pattern.size}_k{iterations}")
    matrix = builder.matrix_sources(pattern)
    b = builder.dense_vector_sources(pattern.size, label="b")
    r = dict(b)  # r0 = b (x0 = 0)
    p = dict(b)  # p0 = r0
    x: dict[int, int] = {}
    rr = builder.dot(r, r, role="reduce:rr")
    for _ in range(iterations):
        q = builder.spmv(pattern, matrix, p)
        if not q:
            break
        pq = builder.dot(p, q, role="reduce:pq")
        alpha = builder.node("scalar:alpha", [rr, pq])
        x = builder.elementwise("axpy:x", [x, p], scalars=[alpha])
        r = builder.elementwise("axpy:r", [r, q], scalars=[alpha])
        rr_new = builder.dot(r, r, role="reduce:rr")
        beta = builder.node("scalar:beta", [rr_new, rr])
        p = builder.elementwise("axpy:p", [r, p], scalars=[beta])
        rr = rr_new
    return builder.finish()


#: Registry of the four fine-grained generators keyed by the paper's names.
FINE_GENERATORS = {
    "spmv": lambda pattern, iterations=1, **kw: build_spmv_dag(pattern, **kw),
    "exp": build_iterated_spmv_dag,
    "knn": build_knn_dag,
    "cg": build_cg_dag,
}
