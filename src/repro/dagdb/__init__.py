"""Computational DAG database: generators and benchmark datasets (paper Section 5)."""

from .coarse import (
    COARSE_GENERATORS,
    build_bicgstab_coarse,
    build_cg_coarse,
    build_kmeans_coarse,
    build_knn_coarse,
    build_label_propagation_coarse,
    build_pagerank_coarse,
    build_sparse_nn_inference_coarse,
)
from .datasets import (
    DATASET_INTERVALS,
    DATASET_NAMES,
    GENERATOR_FAMILIES,
    DatasetInstance,
    build_dataset,
    build_training_set,
    dataset_interval,
)
from .fine import (
    FINE_GENERATORS,
    FineGrainedResult,
    build_cg_dag,
    build_iterated_spmv_dag,
    build_knn_dag,
    build_spmv_dag,
)
from .sparsegen import SparseMatrixPattern
from .structured import (
    STRUCTURED_GENERATORS,
    build_elimination_dag,
    build_fft_dag,
    build_stencil2d_dag,
    build_stencil3d_dag,
    build_stencil_dag,
)
from .weights import WEIGHT_MODELS, apply_paper_weight_rule, apply_weight_model

__all__ = [
    "COARSE_GENERATORS",
    "DATASET_INTERVALS",
    "DATASET_NAMES",
    "DatasetInstance",
    "FINE_GENERATORS",
    "FineGrainedResult",
    "GENERATOR_FAMILIES",
    "STRUCTURED_GENERATORS",
    "SparseMatrixPattern",
    "WEIGHT_MODELS",
    "apply_paper_weight_rule",
    "apply_weight_model",
    "build_elimination_dag",
    "build_fft_dag",
    "build_stencil2d_dag",
    "build_stencil3d_dag",
    "build_stencil_dag",
    "build_bicgstab_coarse",
    "build_cg_coarse",
    "build_cg_dag",
    "build_dataset",
    "build_iterated_spmv_dag",
    "build_kmeans_coarse",
    "build_knn_coarse",
    "build_knn_dag",
    "build_label_propagation_coarse",
    "build_pagerank_coarse",
    "build_sparse_nn_inference_coarse",
    "build_spmv_dag",
    "build_training_set",
    "dataset_interval",
]
