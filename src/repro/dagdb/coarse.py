"""Coarse-grained computational DAG generators (paper Appendix B.1).

In the coarse-grained representation every matrix or vector produced during
a computation is a single DAG node; the edges connect an operation's inputs
to its output.  The paper obtains these DAGs by instrumenting a GraphBLAS
runtime; since that C++ runtime is not available here, this module emits the
operation-level DAGs of the same iterative algorithms directly (the DAG of
such an algorithm is fixed by the algorithm and the iteration count, not by
the runtime).  See DESIGN.md for the substitution note.

All builders use the paper's weight rule (``w = indeg - 1`` with source
weight 1, ``c = 1``).

Implementation notes
--------------------
Every generator is a small prologue plus an *iteration body* that is
structurally identical from one iteration to the next.  Instead of looping
the body ``k`` times in Python, :func:`_build_iterative` records the body
once against symbolic node handles (:class:`_Sym`), verifies that the
recursion is stationary, and then *tiles* iterations ``2..k`` as two numpy
index expressions pushed through :meth:`DagBuilder.add_edges_array` — block
emission in the same spirit as the fine-grained generators.  Node ids and
the edge buffer are byte-identical to the retained per-op reference
implementations in :mod:`repro.dagdb.reference` (pinned by
``tests/test_generator_diff.py``).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core.dag import ComputationalDAG, DagBuilder
from ..core.exceptions import DagError
from .weights import apply_paper_weight_rule

__all__ = [
    "build_pagerank_coarse",
    "build_cg_coarse",
    "build_bicgstab_coarse",
    "build_knn_coarse",
    "build_label_propagation_coarse",
    "build_kmeans_coarse",
    "build_sparse_nn_inference_coarse",
    "COARSE_GENERATORS",
]

_INT = np.int64


class _OpEmitter:
    """Concrete per-op emitter used for the (tiny) prologue of a generator."""

    def __init__(self, builder: DagBuilder) -> None:
        self._builder = builder

    def source(self) -> int:
        return self._builder.add_node()

    def op(self, *preds: int) -> int:
        v = self._builder.add_node()
        # deduplicate while preserving order: the same container may feed an
        # operation twice (e.g. the dot product <r, r>)
        for u in dict.fromkeys(preds):
            self._builder.add_edge(u, v)
        return v


class _Sym:
    """A symbolic node created while recording one iteration body."""

    __slots__ = ("owner", "offset")

    def __init__(self, owner: "_BlockRecorder", offset: int) -> None:
        self.owner = owner
        self.offset = offset


class _BlockRecorder:
    """Records one iteration body as (node count, edge template).

    Edge predecessors are concrete ints (prologue nodes / statics), foreign
    :class:`_Sym` handles (previous-iteration state) or own handles
    (intra-iteration dependencies).
    """

    def __init__(self) -> None:
        self.count = 0
        self.edges: list[tuple[int | _Sym, int]] = []

    def source(self) -> _Sym:
        sym = _Sym(self, self.count)
        self.count += 1
        return sym

    def op(self, *preds: int | _Sym) -> _Sym:
        sym = _Sym(self, self.count)
        self.count += 1
        for u in dict.fromkeys(preds):
            self.edges.append((u, sym.offset))
        return sym


def _build_iterative(
    name: str,
    iterations: int,
    prologue: Callable[[_OpEmitter], tuple[tuple, tuple]],
    iteration: Callable,
) -> ComputationalDAG:
    """Prologue per-op, first iteration from the recorded template, rest tiled."""
    builder = DagBuilder(name=name)
    statics, state = prologue(_OpEmitter(builder))

    first = _BlockRecorder()
    state1 = iteration(first, statics, state)
    base = builder.num_nodes
    width = first.count
    builder.add_node_block(width)
    if first.edges:
        src = np.fromiter(
            (
                p if isinstance(p, int) else base + p.offset
                for p, _ in first.edges
            ),
            dtype=_INT,
            count=len(first.edges),
        )
        dst = np.fromiter(
            (base + d for _, d in first.edges), dtype=_INT, count=len(first.edges)
        )
        builder.add_edges_array(src, dst)

    if iterations >= 2:
        steady = _BlockRecorder()
        state2 = iteration(steady, statics, state1)
        _check_stationary(first, steady, state1, state2)
        tiles = iterations - 1
        t = np.arange(tiles, dtype=_INT)
        src_mat = np.empty((tiles, len(steady.edges)), dtype=_INT)
        dst_mat = np.empty((tiles, len(steady.edges)), dtype=_INT)
        for e, (p, d) in enumerate(steady.edges):
            dst_mat[:, e] = base + (t + 1) * width + d
            if not isinstance(p, _Sym):
                src_mat[:, e] = p
            elif p.owner is first:  # previous-iteration state
                src_mat[:, e] = base + t * width + p.offset
            else:  # intra-iteration dependency
                src_mat[:, e] = base + (t + 1) * width + p.offset
        builder.add_node_block(width * tiles)
        # row-major ravel = iteration-major, template order within: the exact
        # order the per-op reference loop appends edges in
        builder.add_edges_array(src_mat.ravel(), dst_mat.ravel())

    return apply_paper_weight_rule(builder.freeze())


def _check_stationary(
    first: _BlockRecorder, steady: _BlockRecorder, state1: tuple, state2: tuple
) -> None:
    """The recursion must repeat exactly for the tiled emission to be valid."""
    ok = steady.count == first.count and len(steady.edges) == len(first.edges)
    if ok:
        for v1, v2 in zip(state1, state2):
            if isinstance(v1, _Sym):
                ok = isinstance(v2, _Sym) and v2.offset == v1.offset
            else:
                ok = not isinstance(v2, _Sym) and v1 == v2
            if not ok:
                break
    if not ok:
        raise DagError("iteration body is not stationary; cannot tile it")


def _check_iterations(iterations: int) -> None:
    if iterations < 1:
        raise DagError("iterations must be >= 1")


def build_pagerank_coarse(iterations: int, name: str | None = None) -> ComputationalDAG:
    """Coarse DAG of the power-iteration PageRank algorithm.

    Per iteration: ``t = A^T r``, damping combination with the teleport
    vector, normalisation, and a convergence-residual computation.
    """
    _check_iterations(iterations)

    def prologue(b: _OpEmitter):
        matrix = b.source()
        teleport = b.source()
        rank = b.source()
        return (matrix, teleport), (rank,)

    def iteration(b, statics, state):
        matrix, teleport = statics
        (rank,) = state
        spread = b.op(matrix, rank)          # A^T r
        damped = b.op(spread, teleport)      # d*A^T r + (1-d)*v
        norm = b.op(damped)                  # ||r'||_1
        new_rank = b.op(damped, norm)        # normalise
        b.op(new_rank, rank)                 # residual ||r' - r||
        return (new_rank,)

    return _build_iterative(
        name or f"pagerank_coarse_k{iterations}", iterations, prologue, iteration
    )


def build_cg_coarse(iterations: int, name: str | None = None) -> ComputationalDAG:
    """Coarse DAG of the conjugate gradient method (one node per container op)."""
    _check_iterations(iterations)

    def prologue(b: _OpEmitter):
        matrix = b.source()
        rhs = b.source()
        x = b.source()
        r = b.op(rhs, x, matrix)   # r0 = b - A x0
        p = b.op(r)                # p0 = r0
        rr = b.op(r, r)            # rr = <r, r>
        return (matrix,), (x, r, p, rr)

    def iteration(b, statics, state):
        (matrix,) = statics
        x, r, p, rr = state
        q = b.op(matrix, p)
        pq = b.op(p, q)
        alpha = b.op(rr, pq)
        x = b.op(x, alpha, p)
        r = b.op(r, alpha, q)
        rr_new = b.op(r, r)
        beta = b.op(rr_new, rr)
        p = b.op(r, beta, p)
        return (x, r, p, rr_new)

    return _build_iterative(
        name or f"cg_coarse_k{iterations}", iterations, prologue, iteration
    )


def build_bicgstab_coarse(iterations: int, name: str | None = None) -> ComputationalDAG:
    """Coarse DAG of the BiCGStab method for general linear systems."""
    _check_iterations(iterations)

    def prologue(b: _OpEmitter):
        matrix = b.source()
        rhs = b.source()
        x = b.source()
        r = b.op(rhs, x, matrix)
        r_hat = b.op(r)
        rho = b.op(r_hat, r)
        p = b.op(r)
        return (matrix, r_hat), (x, r, rho, p)

    def iteration(b, statics, state):
        matrix, r_hat = statics
        x, r, rho, p = state
        v = b.op(matrix, p)
        rhv = b.op(r_hat, v)
        alpha = b.op(rho, rhv)
        s = b.op(r, alpha, v)
        t = b.op(matrix, s)
        ts = b.op(t, s)
        tt = b.op(t, t)
        omega = b.op(ts, tt)
        x = b.op(x, alpha, p, omega, s)
        r = b.op(s, omega, t)
        rho_new = b.op(r_hat, r)
        beta = b.op(rho_new, rho, alpha, omega)
        p = b.op(r, beta, p, omega, v)
        return (x, r, rho_new, p)

    return _build_iterative(
        name or f"bicgstab_coarse_k{iterations}", iterations, prologue, iteration
    )


def build_knn_coarse(iterations: int, name: str | None = None) -> ComputationalDAG:
    """Coarse DAG of algebraic k-hop reachability (repeated masked SpMV)."""
    _check_iterations(iterations)

    def prologue(b: _OpEmitter):
        matrix = b.source()
        frontier = b.source()
        visited = b.op(frontier)
        return (matrix,), (frontier, visited)

    def iteration(b, statics, state):
        (matrix,) = statics
        frontier, visited = state
        reached = b.op(matrix, frontier)
        frontier = b.op(reached, visited)    # mask out already-visited nodes
        visited = b.op(visited, frontier)    # accumulate
        return (frontier, visited)

    return _build_iterative(
        name or f"knn_coarse_k{iterations}", iterations, prologue, iteration
    )


def build_label_propagation_coarse(iterations: int, name: str | None = None) -> ComputationalDAG:
    """Coarse DAG of iterative label propagation on a graph."""
    _check_iterations(iterations)

    def prologue(b: _OpEmitter):
        adjacency = b.source()
        labels = b.source()
        return (adjacency,), (labels,)

    def iteration(b, statics, state):
        (adjacency,) = statics
        (labels,) = state
        gathered = b.op(adjacency, labels)   # gather neighbour labels
        counts = b.op(gathered)              # per-node label histogram / argmax prep
        new_labels = b.op(counts, labels)    # argmax with tie-break on old labels
        b.op(new_labels, labels)             # change count (convergence check)
        return (new_labels,)

    return _build_iterative(
        name or f"labelprop_coarse_k{iterations}", iterations, prologue, iteration
    )


def build_kmeans_coarse(
    iterations: int, clusters: int = 4, name: str | None = None
) -> ComputationalDAG:
    """Coarse DAG of Lloyd's k-means iterations with ``clusters`` centroids."""
    _check_iterations(iterations)
    if clusters < 1:
        raise DagError("clusters must be >= 1")

    def prologue(b: _OpEmitter):
        points = b.source()
        centroids = tuple(b.source() for _ in range(clusters))
        return (points,), centroids

    def iteration(b, statics, centroids):
        (points,) = statics
        distances = [b.op(points, c) for c in centroids]
        assignment = b.op(*distances)
        new_centroids = tuple(b.op(points, assignment) for _ in range(clusters))
        b.op(assignment)                     # inertia / convergence statistic
        return new_centroids

    return _build_iterative(
        name or f"kmeans_coarse_k{iterations}_c{clusters}", iterations, prologue, iteration
    )


def build_sparse_nn_inference_coarse(
    layers: int, name: str | None = None
) -> ComputationalDAG:
    """Coarse DAG of sparse neural-network inference (one SpMM + bias + ReLU per layer)."""
    if layers < 1:
        raise DagError("layers must be >= 1")

    def prologue(b: _OpEmitter):
        activations = b.source()
        return (), (activations,)

    def iteration(b, statics, state):
        (activations,) = state
        weights = b.source()
        bias = b.source()
        product = b.op(weights, activations)
        biased = b.op(product, bias)
        activations = b.op(biased)           # ReLU / thresholding
        return (activations,)

    return _build_iterative(
        name or f"sparse_nn_coarse_l{layers}", layers, prologue, iteration
    )


#: Registry of coarse-grained generators keyed by algorithm name.  Every
#: generator takes the iteration count (or layer count) as first argument.
COARSE_GENERATORS = {
    "pagerank": build_pagerank_coarse,
    "cg": build_cg_coarse,
    "bicgstab": build_bicgstab_coarse,
    "knn": build_knn_coarse,
    "labelprop": build_label_propagation_coarse,
    "kmeans": build_kmeans_coarse,
    "sparse_nn": build_sparse_nn_inference_coarse,
}
