"""Coarse-grained computational DAG generators (paper Appendix B.1).

In the coarse-grained representation every matrix or vector produced during
a computation is a single DAG node; the edges connect an operation's inputs
to its output.  The paper obtains these DAGs by instrumenting a GraphBLAS
runtime; since that C++ runtime is not available here, this module emits the
operation-level DAGs of the same iterative algorithms directly (the DAG of
such an algorithm is fixed by the algorithm and the iteration count, not by
the runtime).  See DESIGN.md for the substitution note.

All builders use the paper's weight rule (``w = indeg - 1`` with source
weight 1, ``c = 1``).
"""

from __future__ import annotations

from ..core.dag import ComputationalDAG, DagBuilder
from ..core.exceptions import DagError
from .weights import apply_paper_weight_rule

__all__ = [
    "build_pagerank_coarse",
    "build_cg_coarse",
    "build_bicgstab_coarse",
    "build_knn_coarse",
    "build_label_propagation_coarse",
    "build_kmeans_coarse",
    "build_sparse_nn_inference_coarse",
    "COARSE_GENERATORS",
]


class _CoarseBuilder:
    """Tiny helper: add operation nodes with named predecessors.

    Emits nodes/edges straight into a :class:`~repro.core.dag.DagBuilder`
    and freezes the CSR-backed DAG once the algorithm skeleton is complete.
    """

    def __init__(self, name: str) -> None:
        self._builder = DagBuilder(name=name)

    def source(self) -> int:
        return self._builder.add_node()

    def op(self, *preds: int) -> int:
        v = self._builder.add_node()
        # deduplicate while preserving order: the same container may feed an
        # operation twice (e.g. the dot product <r, r>)
        for u in dict.fromkeys(preds):
            self._builder.add_edge(u, v)
        return v

    def finish(self) -> ComputationalDAG:
        return apply_paper_weight_rule(self._builder.freeze())


def _check_iterations(iterations: int) -> None:
    if iterations < 1:
        raise DagError("iterations must be >= 1")


def build_pagerank_coarse(iterations: int, name: str | None = None) -> ComputationalDAG:
    """Coarse DAG of the power-iteration PageRank algorithm.

    Per iteration: ``t = A^T r``, damping combination with the teleport
    vector, normalisation, and a convergence-residual computation.
    """
    _check_iterations(iterations)
    b = _CoarseBuilder(name or f"pagerank_coarse_k{iterations}")
    matrix = b.source()
    teleport = b.source()
    rank = b.source()
    for _ in range(iterations):
        spread = b.op(matrix, rank)          # A^T r
        damped = b.op(spread, teleport)      # d*A^T r + (1-d)*v
        norm = b.op(damped)                  # ||r'||_1
        new_rank = b.op(damped, norm)        # normalise
        b.op(new_rank, rank)                 # residual ||r' - r||
        rank = new_rank
    return b.finish()


def build_cg_coarse(iterations: int, name: str | None = None) -> ComputationalDAG:
    """Coarse DAG of the conjugate gradient method (one node per container op)."""
    _check_iterations(iterations)
    b = _CoarseBuilder(name or f"cg_coarse_k{iterations}")
    matrix = b.source()
    rhs = b.source()
    x = b.source()
    r = b.op(rhs, x, matrix)   # r0 = b - A x0
    p = b.op(r)                # p0 = r0
    rr = b.op(r, r)            # rr = <r, r>
    for _ in range(iterations):
        q = b.op(matrix, p)
        pq = b.op(p, q)
        alpha = b.op(rr, pq)
        x = b.op(x, alpha, p)
        r = b.op(r, alpha, q)
        rr_new = b.op(r, r)
        beta = b.op(rr_new, rr)
        p = b.op(r, beta, p)
        rr = rr_new
    return b.finish()


def build_bicgstab_coarse(iterations: int, name: str | None = None) -> ComputationalDAG:
    """Coarse DAG of the BiCGStab method for general linear systems."""
    _check_iterations(iterations)
    b = _CoarseBuilder(name or f"bicgstab_coarse_k{iterations}")
    matrix = b.source()
    rhs = b.source()
    x = b.source()
    r = b.op(rhs, x, matrix)
    r_hat = b.op(r)
    rho = b.op(r_hat, r)
    p = b.op(r)
    for _ in range(iterations):
        v = b.op(matrix, p)
        rhv = b.op(r_hat, v)
        alpha = b.op(rho, rhv)
        s = b.op(r, alpha, v)
        t = b.op(matrix, s)
        ts = b.op(t, s)
        tt = b.op(t, t)
        omega = b.op(ts, tt)
        x = b.op(x, alpha, p, omega, s)
        r = b.op(s, omega, t)
        rho_new = b.op(r_hat, r)
        beta = b.op(rho_new, rho, alpha, omega)
        p = b.op(r, beta, p, omega, v)
        rho = rho_new
    return b.finish()


def build_knn_coarse(iterations: int, name: str | None = None) -> ComputationalDAG:
    """Coarse DAG of algebraic k-hop reachability (repeated masked SpMV)."""
    _check_iterations(iterations)
    b = _CoarseBuilder(name or f"knn_coarse_k{iterations}")
    matrix = b.source()
    frontier = b.source()
    visited = b.op(frontier)
    for _ in range(iterations):
        reached = b.op(matrix, frontier)
        frontier = b.op(reached, visited)    # mask out already-visited nodes
        visited = b.op(visited, frontier)    # accumulate
    return b.finish()


def build_label_propagation_coarse(iterations: int, name: str | None = None) -> ComputationalDAG:
    """Coarse DAG of iterative label propagation on a graph."""
    _check_iterations(iterations)
    b = _CoarseBuilder(name or f"labelprop_coarse_k{iterations}")
    adjacency = b.source()
    labels = b.source()
    for _ in range(iterations):
        gathered = b.op(adjacency, labels)   # gather neighbour labels
        counts = b.op(gathered)              # per-node label histogram / argmax prep
        new_labels = b.op(counts, labels)    # argmax with tie-break on old labels
        b.op(new_labels, labels)             # change count (convergence check)
        labels = new_labels
    return b.finish()


def build_kmeans_coarse(
    iterations: int, clusters: int = 4, name: str | None = None
) -> ComputationalDAG:
    """Coarse DAG of Lloyd's k-means iterations with ``clusters`` centroids."""
    _check_iterations(iterations)
    if clusters < 1:
        raise DagError("clusters must be >= 1")
    b = _CoarseBuilder(name or f"kmeans_coarse_k{iterations}_c{clusters}")
    points = b.source()
    centroids = [b.source() for _ in range(clusters)]
    for _ in range(iterations):
        distances = [b.op(points, c) for c in centroids]
        assignment = b.op(*distances)
        new_centroids = [b.op(points, assignment) for _ in range(clusters)]
        b.op(assignment)                     # inertia / convergence statistic
        centroids = new_centroids
    return b.finish()


def build_sparse_nn_inference_coarse(
    layers: int, name: str | None = None
) -> ComputationalDAG:
    """Coarse DAG of sparse neural-network inference (one SpMM + bias + ReLU per layer)."""
    if layers < 1:
        raise DagError("layers must be >= 1")
    b = _CoarseBuilder(name or f"sparse_nn_coarse_l{layers}")
    activations = b.source()
    for _ in range(layers):
        weights = b.source()
        bias = b.source()
        product = b.op(weights, activations)
        biased = b.op(product, bias)
        activations = b.op(biased)           # ReLU / thresholding
    return b.finish()


#: Registry of coarse-grained generators keyed by algorithm name.  Every
#: generator takes the iteration count (or layer count) as first argument.
COARSE_GENERATORS = {
    "pagerank": build_pagerank_coarse,
    "cg": build_cg_coarse,
    "bicgstab": build_bicgstab_coarse,
    "knn": build_knn_coarse,
    "labelprop": build_label_propagation_coarse,
    "kmeans": build_kmeans_coarse,
    "sparse_nn": build_sparse_nn_inference_coarse,
}
