"""Experiment harness reproducing the paper's evaluation (Section 6/7, Appendix C).

The harness separates three concerns:

* :class:`MachineSpec` — a machine-parameter point of the evaluation grid
  (``P``, ``g``, ``ℓ`` and the optional NUMA multiplier ``Δ``);
* :class:`ExperimentRunner` — turns one instance × machine point into a
  batch of content-addressed :class:`~repro.api.ScheduleRequest`\\ s,
  solves them through the shared :class:`~repro.api.SchedulingService`,
  and records every cost of interest in an :class:`InstanceRecord`;
* the ``run_*`` convenience functions — assemble the instance sets and the
  machine grids of the individual tables/figures and return the records the
  table formatters in :mod:`repro.analysis.tables` aggregate.

Every driver is one :meth:`~repro.api.SchedulingService.solve_many` batch
over the whole grid, which makes tables **resumable artifacts**: pass
``store=`` (a :class:`repro.store.ResultStore` root) and every solved
request persists content-addressed on disk — re-running the same grid
skips everything already stored (``service.cache_info()['misses']`` counts
the actual scheduler invocations) and reproduces the records, and hence
the rendered tables, byte-for-byte.  :func:`enqueue_grid` instead submits
the same batch to the durable work queue, to be drained by a
``repro serve-worker`` fleet before the driver assembles the records at
zero compute cost.

All sizes default to the scaled-down ``"bench"`` datasets so the complete
harness runs in seconds; passing ``scale="paper"`` restores the original
node-count intervals.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Sequence

from ..api import ScheduleRequest, ScheduleResult, SchedulerSpec, SchedulingService
from ..core.machine import MachineSpec
from ..core.parallel import default_workers
from ..dagdb.datasets import DatasetInstance, build_dataset, build_training_set
from ..schedulers.bsp_greedy import BspGreedyScheduler
from ..schedulers.ilp import IlpInitScheduler
from ..schedulers.pipeline import PipelineConfig
from ..schedulers.source_heuristic import SourceScheduler
from .metrics import geometric_mean

__all__ = [
    "MachineSpec",
    "InstanceRecord",
    "ExperimentRunner",
    "run_grid",
    "enqueue_grid",
    "no_numa_machine_grid",
    "numa_machine_grid",
    "run_no_numa_grid",
    "run_numa_grid",
    "run_latency_sweep",
    "run_huge_experiment",
    "run_initializer_comparison",
    "run_multilevel_ratio_experiment",
    "aggregate_improvement",
    "aggregate_ratio",
]


# ---------------------------------------------------------------------- #
# machine grid (the MachineSpec point itself now lives in repro.core.machine,
# shared with the service API's wire format; re-exported here for callers)
# ---------------------------------------------------------------------- #
def no_numa_machine_grid(
    procs: Sequence[int] = (4, 8, 16),
    g_values: Sequence[float] = (1, 3, 5),
    latency: float = 5.0,
) -> list[MachineSpec]:
    """The uniform-BSP machine grid of Section 7.1."""
    return [MachineSpec(p, g, latency) for p in procs for g in g_values]


def numa_machine_grid(
    procs: Sequence[int] = (8, 16),
    deltas: Sequence[float] = (2, 3, 4),
    g: float = 1.0,
    latency: float = 5.0,
) -> list[MachineSpec]:
    """The NUMA machine grid of Section 7.2 (``g = 1``, binary-tree hierarchy)."""
    return [MachineSpec(p, g, latency, delta) for p in procs for delta in deltas]


# ---------------------------------------------------------------------- #
# per-instance results
# ---------------------------------------------------------------------- #
@dataclass
class InstanceRecord:
    """All recorded costs for one instance on one machine point."""

    instance: str
    dataset: str
    generator: str
    num_nodes: int
    spec: MachineSpec
    costs: dict[str, float] = field(default_factory=dict)

    def ratio(self, key: str, baseline: str) -> float:
        """Cost ratio ``costs[key] / costs[baseline]``."""
        return self.costs[key] / self.costs[baseline]


class ExperimentRunner:
    """Runs the baselines and the framework on instance × machine points.

    Parameters
    ----------
    config:
        Pipeline configuration (time limits, ILP thresholds).
    include_list_baselines:
        Also run BL-EST and ETF (needed for Tables 7 and 8).
    include_multilevel:
        Also run the multilevel pipeline (``ML`` column of Figure 6).
    include_trivial:
        Record the cost of the trivial one-processor schedule.
    heuristics_only:
        Disable every ILP stage (the configuration used for the huge dataset).
    hc_max_passes / hc_max_steps / hccs_max_passes:
        Per-grid-point refinement budget: every pipeline invocation (one per
        instance x machine point) runs its HC/HCcs local search under these
        caps.  ``None`` keeps the configuration's values.  The huge-dataset
        driver uses this to bound refinement work deterministically instead
        of relying only on wall-clock budgets (which make parallel grids
        load-dependent).
    store:
        Optional persistent result store (a :class:`repro.store.ResultStore`
        or its root path).  Every solved request is persisted there and
        consulted before computing, making whole experiment grids
        *resumable*: a re-run (same instances, machines, configuration and
        seeds — i.e. the same request fingerprints) performs zero scheduler
        invocations and reproduces the records bit-for-bit.
    """

    def __init__(
        self,
        config: PipelineConfig | None = None,
        include_list_baselines: bool = False,
        include_multilevel: bool = False,
        include_trivial: bool = False,
        heuristics_only: bool = False,
        seed: int = 0,
        hc_max_passes: int | None = None,
        hc_max_steps: int | None = None,
        hccs_max_passes: int | None = None,
        store: str | Path | None = None,
    ) -> None:
        # own copy: the overrides below must not leak into a caller-shared config
        self.config = replace(config) if config is not None else PipelineConfig()
        if heuristics_only:
            self.config.use_ilp = False
            self.config.use_comm_ilp = False
        if hc_max_passes is not None:
            self.config.hc_max_passes = hc_max_passes
        if hc_max_steps is not None:
            self.config.hc_max_steps = hc_max_steps
        if hccs_max_passes is not None:
            self.config.hccs_max_passes = hccs_max_passes
        self.include_list_baselines = include_list_baselines
        self.include_multilevel = include_multilevel
        self.include_trivial = include_trivial
        self.seed = seed
        self.store = store
        self._service: SchedulingService | None = None

    # ------------------------------------------------------------------ #
    @property
    def service(self) -> SchedulingService:
        """The per-runner scheduling service (created lazily, per process).

        The grid never repeats an (instance, machine, scheduler) triple, so
        the runner disables the service's in-memory result cache and relies
        on the persistent store tier (when configured) for resumability;
        everything else — declarative specs, budget threading, stage traces
        — goes through the one facade every other caller uses.
        """
        if self._service is None:
            self._service = SchedulingService(cache_size=0, store=self.store)
        return self._service

    def __getstate__(self) -> dict:
        # the lazily-created service never crosses a process boundary; each
        # pool worker builds its own on first use
        state = self.__dict__.copy()
        state["_service"] = None
        return state

    def _request(
        self, instance: DatasetInstance, spec: MachineSpec, name: str, params=None
    ) -> ScheduleRequest:
        return ScheduleRequest(
            dag=instance.dag,
            machine=spec,
            scheduler=SchedulerSpec(name, params or {}),
            seed=self.seed,
        )

    def instance_requests(
        self, instance: DatasetInstance, spec: MachineSpec
    ) -> list[tuple[str, ScheduleRequest]]:
        """The keyed request batch for one instance/machine point.

        This is the *definition* of a grid point: every driver — the serial
        :meth:`run_instance`, the pool-parallel :func:`run_grid` batch and
        the durable-queue :func:`enqueue_grid` — expands points through this
        one method, so they all solve (and fingerprint) exactly the same
        requests.
        """
        keyed = [
            ("cilk", self._request(instance, spec, "cilk")),
            ("hdagg", self._request(instance, spec, "hdagg")),
        ]
        if self.include_list_baselines:
            keyed.append(("bl_est", self._request(instance, spec, "bl_est")))
            keyed.append(("etf", self._request(instance, spec, "etf")))
        if self.include_trivial:
            keyed.append(("trivial", self._request(instance, spec, "trivial")))
        keyed.append(
            ("framework", self._request(instance, spec, "framework", {"config": self.config}))
        )
        if self.include_multilevel:
            keyed.append(
                (
                    "multilevel",
                    self._request(instance, spec, "multilevel", {"config": self.config}),
                )
            )
        return keyed

    def record_from_results(
        self,
        instance: DatasetInstance,
        spec: MachineSpec,
        keyed_results: Iterable[tuple[str, ScheduleResult]],
    ) -> InstanceRecord:
        """Assemble one :class:`InstanceRecord` from solved keyed requests.

        The ``framework`` result expands into the four pipeline stage costs
        (``init``/``hccs``/``ilp``/``final``); every other key records its
        result's total cost under its own name.
        """
        costs: dict[str, float] = {}
        for key, result in keyed_results:
            if key == "framework":
                assert result.stages is not None
                costs["init"] = result.stages.best_init
                costs["hccs"] = result.stages.after_local_search
                costs["ilp"] = result.stages.after_ilp_assignment
                costs["final"] = result.stages.final
            else:
                costs[key] = result.cost
        return InstanceRecord(
            instance=instance.name,
            dataset=instance.name.split("_", 1)[0],
            generator=instance.generator,
            num_nodes=instance.num_nodes,
            spec=spec,
            costs=costs,
        )

    def run_instance(self, instance: DatasetInstance, spec: MachineSpec) -> InstanceRecord:
        """Run every configured scheduler on one instance/machine pair."""
        keyed = self.instance_requests(instance, spec)
        results = self.service.solve_many(
            [request for _, request in keyed], workers=1
        )
        return self.record_from_results(
            instance, spec, zip((key for key, _ in keyed), results)
        )

    def run(
        self,
        instances: Iterable[DatasetInstance],
        specs: Iterable[MachineSpec],
        workers: int | None = None,
        experiment: str | None = None,
    ) -> list[InstanceRecord]:
        """Cartesian product of instances and machine points.

        ``workers`` > 1 distributes the grid over a process pool; see
        :func:`run_grid` for the guarantees (including the ``experiment``
        metadata record written for store-backed runs).
        """
        return run_grid(self, instances, specs, workers=workers, experiment=experiment)


# ---------------------------------------------------------------------- #
# grid execution as one service batch (pool mechanics live behind the
# service API's ``solve_many`` — see repro.core.parallel)
# ---------------------------------------------------------------------- #
def _default_workers() -> int:
    """Worker count from the ``REPRO_WORKERS`` environment knob (default 1)."""
    return default_workers()


def _grid_batches(
    runner: "ExperimentRunner",
    instances: Iterable[DatasetInstance],
    specs: Iterable[MachineSpec],
) -> list[tuple[DatasetInstance, MachineSpec, list[tuple[str, ScheduleRequest]]]]:
    """Expand the grid into per-point keyed request batches (serial order)."""
    specs = list(specs)
    return [
        (instance, spec, runner.instance_requests(instance, spec))
        for instance in instances
        for spec in specs
    ]


def run_grid(
    runner: "ExperimentRunner",
    instances: Iterable[DatasetInstance],
    specs: Iterable[MachineSpec],
    workers: int | None = None,
    experiment: str | None = None,
) -> list[InstanceRecord]:
    """Run the ``instances × specs`` grid as one ``solve_many`` batch.

    Every request of the grid is independent and content-addressed, so the
    whole grid flattens into a single batch against the runner's
    :class:`~repro.api.SchedulingService`: the service deduplicates repeated
    fingerprints, answers anything already in its persistent store
    (``runner.store``) without computing, and fans the remaining misses out
    over the shared process-pool machinery.  Results always come back in
    the deterministic serial order — instance-major, spec-minor —
    regardless of ``workers``.  When the pipeline configuration is free of
    wall-clock budgets (``local_search_seconds=None`` and friends), every
    scheduler is deterministic and a parallel run reproduces the serial
    records bit-for-bit; with wall-clock budgets the *set* of grid points
    and their ordering are still identical, but local-search depth can vary
    with machine load, parallel or not.

    ``workers=None`` reads the ``REPRO_WORKERS`` environment variable
    (default 1 = serial).  If the platform cannot provide a process pool
    (no ``fork``/``spawn``, sandboxed interpreter, unpicklable
    configuration), the batch gracefully falls back to serial execution
    with a warning instead of failing; exceptions raised by the experiment
    itself cancel the remaining grid points and propagate promptly.

    ``experiment`` names the batch in the store's metadata tables: for a
    store-backed runner an :class:`~repro.store.ExperimentRecord` listing
    every fingerprint of the grid is appended to ``experiments.jsonl``
    (see :mod:`repro.store.trials`), so the report subsystem can group
    this grid's trials under that name.  Without a store it is ignored.
    """
    batches = _grid_batches(runner, instances, specs)
    flat = [request for _, _, keyed in batches for _, request in keyed]
    results = runner.service.solve_many(flat, workers=workers)
    if experiment is not None and runner.service.store is not None:
        runner.service.store.trials.record_experiment(
            experiment,
            [request.fingerprint() for request in flat],
            metadata={"points": len(batches), "requests": len(flat)},
        )
    records: list[InstanceRecord] = []
    cursor = 0
    for instance, spec, keyed in batches:
        chunk = results[cursor : cursor + len(keyed)]
        cursor += len(keyed)
        records.append(
            runner.record_from_results(
                instance, spec, zip((key for key, _ in keyed), chunk)
            )
        )
    return records


def enqueue_grid(
    runner: "ExperimentRunner",
    instances: Iterable[DatasetInstance],
    specs: Iterable[MachineSpec],
    root: str | Path,
) -> list[str]:
    """Submit the whole ``instances × specs`` grid to a durable work queue.

    Exactly the requests :func:`run_grid` would solve are enqueued under
    ``root`` (a combined store/queue directory): each distinct DAG is
    written once to the content-addressed ``dags/`` directory and the
    queued request wire dicts reference it by path, so the queue stays
    small no matter how many machine points share an instance.  Requests
    whose fingerprint is already stored are not enqueued again.

    A ``repro serve-worker --root ROOT`` fleet (any number of processes,
    on any hosts sharing the filesystem) drains the queue into the store;
    afterwards re-running the driver with ``store=root`` assembles the
    records with zero scheduler invocations.  Returns the fingerprints of
    the newly enqueued requests.
    """
    from ..store import ResultStore, WorkQueue

    store = ResultStore(root)
    queue = WorkQueue(root)
    enqueued: list[str] = []
    for _, _, keyed in _grid_batches(runner, instances, specs):
        for _, request in keyed:
            fingerprint = request.fingerprint()
            if store.contains(fingerprint):
                continue
            dag_path = store.put_dag(request.resolve_dag())
            wire = replace(
                request,
                dag=str(dag_path),
                _resolved_dag=None,
                _fingerprint=fingerprint,
            ).to_dict()
            if queue.submit(fingerprint, wire):
                enqueued.append(fingerprint)
    return enqueued


# ---------------------------------------------------------------------- #
# aggregation helpers
# ---------------------------------------------------------------------- #
def aggregate_ratio(
    records: Iterable[InstanceRecord],
    key: str,
    baseline: str,
) -> float:
    """Geometric-mean cost ratio ``key / baseline`` over the records."""
    records = list(records)
    if not records:
        return float("nan")
    return geometric_mean(record.ratio(key, baseline) for record in records)


def aggregate_improvement(
    records: Iterable[InstanceRecord],
    key: str,
    baseline: str,
) -> float:
    """Improvement fraction of ``key`` over ``baseline`` (1 - geomean ratio)."""
    return 1.0 - aggregate_ratio(records, key, baseline)


# ---------------------------------------------------------------------- #
# experiment drivers (one per paper experiment family)
# ---------------------------------------------------------------------- #
def _dataset_instances(
    datasets: Sequence[str],
    scale: str,
    seed: int,
    max_instances_per_dataset: int | None = None,
) -> list[DatasetInstance]:
    instances: list[DatasetInstance] = []
    for dataset in datasets:
        members = build_dataset(dataset, scale=scale, seed=seed)
        if max_instances_per_dataset is not None and len(members) > max_instances_per_dataset:
            # keep a generator-diverse subset: round-robin over the generators
            by_generator: dict[str, list[DatasetInstance]] = {}
            for member in members:
                by_generator.setdefault(member.generator, []).append(member)
            picked: list[DatasetInstance] = []
            while len(picked) < max_instances_per_dataset:
                progress = False
                for group in by_generator.values():
                    if group and len(picked) < max_instances_per_dataset:
                        picked.append(group.pop(0))
                        progress = True
                if not progress:
                    break
            members = picked
        instances.extend(members)
    return instances


def run_no_numa_grid(
    datasets: Sequence[str] = ("tiny", "small", "medium", "large"),
    scale: str = "bench",
    procs: Sequence[int] = (4, 8, 16),
    g_values: Sequence[float] = (1, 3, 5),
    latency: float = 5.0,
    config: PipelineConfig | None = None,
    include_list_baselines: bool = False,
    max_instances_per_dataset: int | None = None,
    seed: int = 7,
    workers: int | None = None,
    store: str | Path | None = None,
) -> list[InstanceRecord]:
    """The uniform-BSP experiment of Section 7.1 (Tables 1, 6–8; Figure 5)."""
    runner = ExperimentRunner(
        config=config,
        include_list_baselines=include_list_baselines,
        seed=seed,
        store=store,
    )
    instances = _dataset_instances(datasets, scale, seed, max_instances_per_dataset)
    return runner.run(
        instances, no_numa_machine_grid(procs, g_values, latency), workers=workers
    )


def run_numa_grid(
    datasets: Sequence[str] = ("tiny", "small", "medium", "large"),
    scale: str = "bench",
    procs: Sequence[int] = (8, 16),
    deltas: Sequence[float] = (2, 3, 4),
    g: float = 1.0,
    latency: float = 5.0,
    config: PipelineConfig | None = None,
    include_multilevel: bool = False,
    include_trivial: bool = False,
    max_instances_per_dataset: int | None = None,
    seed: int = 7,
    workers: int | None = None,
    store: str | Path | None = None,
) -> list[InstanceRecord]:
    """The NUMA experiment of Section 7.2/7.3 (Tables 2, 3, 10, 13, 14; Figure 6)."""
    runner = ExperimentRunner(
        config=config,
        include_multilevel=include_multilevel,
        include_trivial=include_trivial,
        seed=seed,
        store=store,
    )
    instances = _dataset_instances(datasets, scale, seed, max_instances_per_dataset)
    return runner.run(
        instances, numa_machine_grid(procs, deltas, g, latency), workers=workers
    )


def run_latency_sweep(
    dataset: str = "medium",
    scale: str = "bench",
    latencies: Sequence[float] = (2, 5, 10, 20),
    g: float = 1.0,
    procs: int = 8,
    config: PipelineConfig | None = None,
    max_instances: int | None = None,
    seed: int = 7,
    workers: int | None = None,
    store: str | Path | None = None,
) -> list[InstanceRecord]:
    """The latency experiment of Appendix C.3 (Table 9)."""
    runner = ExperimentRunner(config=config, seed=seed, store=store)
    instances = _dataset_instances((dataset,), scale, seed, max_instances)
    specs = [MachineSpec(procs, g, latency) for latency in latencies]
    return runner.run(instances, specs, workers=workers)


def run_huge_experiment(
    scale: str = "bench",
    numa: bool = False,
    procs: Sequence[int] = (4, 8, 16),
    g_values: Sequence[float] = (1, 3, 5),
    deltas: Sequence[float] = (2, 3, 4),
    latency: float = 5.0,
    local_search_seconds: float | None = 5.0,
    hc_max_steps: int | None = None,
    max_instances: int | None = None,
    seed: int = 7,
    workers: int | None = None,
    store: str | Path | None = None,
) -> list[InstanceRecord]:
    """The huge-dataset experiment of Appendix C.5 (Tables 11, 12; Figure 7).

    Only the non-ILP part of the framework is used, as in the paper.
    ``hc_max_steps`` bounds the accepted hill-climbing moves per grid point,
    which keeps parallel runs deterministic (a pure wall-clock budget makes
    the local-search depth depend on machine load).
    """
    config = PipelineConfig(
        use_ilp=False, use_comm_ilp=False, local_search_seconds=local_search_seconds
    )
    runner = ExperimentRunner(
        config=config,
        heuristics_only=True,
        seed=seed,
        hc_max_steps=hc_max_steps,
        store=store,
    )
    instances = _dataset_instances(("huge",), scale, seed, max_instances)
    if numa:
        specs = numa_machine_grid((8, 16), deltas, 1.0, latency)
    else:
        specs = no_numa_machine_grid(procs, g_values, latency)
    return runner.run(instances, specs, workers=workers)


# ---------------------------------------------------------------------- #
# initializer comparison (Tables 4 and 5)
# ---------------------------------------------------------------------- #
@dataclass
class InitializerWin:
    """Which initialiser produced the cheapest schedule for one run."""

    instance: str
    generator: str
    num_nodes: int
    spec: MachineSpec
    winner: str
    costs: dict[str, float]


def run_initializer_comparison(
    scale: str = "bench",
    procs: Sequence[int] = (4, 8, 16),
    g_values: Sequence[float] = (1, 3, 5),
    latency: float = 5.0,
    ilp_init_time: float | None = 5.0,
    seed: int = 11,
) -> list[InitializerWin]:
    """Compare BSPg, Source and ILPinit on the training set (Appendix C.1)."""
    wins: list[InitializerWin] = []
    instances = build_training_set(scale=scale, seed=seed)
    initializers = {
        "bsp_greedy": BspGreedyScheduler(),
        "source": SourceScheduler(),
        "ilp_init": IlpInitScheduler(time_limit_per_batch=ilp_init_time),
    }
    for instance in instances:
        for spec in no_numa_machine_grid(procs, g_values, latency):
            machine = spec.build()
            costs = {
                name: scheduler.schedule(instance.dag, machine).cost()
                for name, scheduler in initializers.items()
            }
            winner = min(costs, key=costs.get)
            wins.append(
                InitializerWin(
                    instance=instance.name,
                    generator=instance.generator,
                    num_nodes=instance.num_nodes,
                    spec=spec,
                    winner=winner,
                    costs=costs,
                )
            )
    return wins


# ---------------------------------------------------------------------- #
# multilevel coarsening-ratio experiment (Tables 13 and 14)
# ---------------------------------------------------------------------- #
def run_multilevel_ratio_experiment(
    datasets: Sequence[str] = ("small", "medium", "large"),
    scale: str = "bench",
    procs: Sequence[int] = (8, 16),
    deltas: Sequence[float] = (2, 3, 4),
    g: float = 1.0,
    latency: float = 5.0,
    config: PipelineConfig | None = None,
    max_instances_per_dataset: int | None = None,
    seed: int = 7,
    workers: int | None = None,
    store: str | Path | None = None,
) -> list[InstanceRecord]:
    """Run the multilevel scheduler at both coarsening ratios (Tables 13–14).

    The returned records contain ``cilk``, ``hdagg``, the base pipeline's
    ``final`` cost and the multilevel costs ``ml_c15``, ``ml_c30`` and
    ``ml_copt`` (the better of the two), mirroring the rows of Table 13/14.
    Like :func:`run_grid`, the whole experiment is one ``solve_many`` batch
    — resumable against ``store=`` and pool-parallel with ``workers``.
    """
    config = config or PipelineConfig()
    runner = ExperimentRunner(config=config, seed=seed, store=store)
    instances = _dataset_instances(datasets, scale, seed, max_instances_per_dataset)
    batches = _grid_batches(runner, instances, numa_machine_grid(procs, deltas, g, latency))
    for instance, spec, keyed in batches:
        for key, ratio in (("ml_c15", 0.15), ("ml_c30", 0.3)):
            keyed.append(
                (
                    key,
                    runner._request(
                        instance,
                        spec,
                        "multilevel",
                        {"config": config, "coarsening_ratios": [ratio]},
                    ),
                )
            )
    flat = [request for _, _, keyed in batches for _, request in keyed]
    results = runner.service.solve_many(flat, workers=workers)
    records: list[InstanceRecord] = []
    cursor = 0
    for instance, spec, keyed in batches:
        chunk = results[cursor : cursor + len(keyed)]
        cursor += len(keyed)
        record = runner.record_from_results(
            instance, spec, zip((key for key, _ in keyed), chunk)
        )
        record.costs["ml_copt"] = min(record.costs["ml_c15"], record.costs["ml_c30"])
        records.append(record)
    return records
