"""Formatting of the paper's tables and figure data series.

Every function takes the :class:`~repro.analysis.experiments.InstanceRecord`
lists produced by the experiment drivers and returns ``(rows, text)`` where
``rows`` is a plain data structure (dict of dicts) suitable for asserting in
tests and ``text`` is a human readable table that mirrors the corresponding
table/figure of the paper.  Improvements are rendered like the paper:
``"37% / 21%"`` meaning the cost reduction with respect to Cilk and HDagg.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Callable, Iterable, Sequence

from .experiments import InitializerWin, InstanceRecord, aggregate_improvement, aggregate_ratio

__all__ = [
    "format_grid",
    "table1_no_numa_improvements",
    "table2_numa_improvements",
    "table3_multilevel_improvements",
    "table4_5_initializer_wins",
    "table6_detailed_no_numa",
    "table7_algorithm_ratios",
    "table8_vs_etf",
    "table9_latency",
    "table10_numa_detailed",
    "table11_12_huge",
    "table13_multilevel_vs_baselines",
    "table14_multilevel_vs_base",
    "figure5_series",
    "figure6_series",
    "figure7_series",
]

GroupKey = Callable[[InstanceRecord], object]


def _group(records: Iterable[InstanceRecord], key: GroupKey) -> dict[object, list[InstanceRecord]]:
    grouped: dict[object, list[InstanceRecord]] = defaultdict(list)
    for record in records:
        grouped[key(record)].append(record)
    return dict(grouped)


def _improvement_cell(records: list[InstanceRecord], key: str) -> str:
    vs_cilk = aggregate_improvement(records, key, "cilk")
    vs_hdagg = aggregate_improvement(records, key, "hdagg")
    return f"{vs_cilk:5.0%} / {vs_hdagg:5.0%}"


def format_grid(
    rows: dict[object, dict[object, str]],
    row_label: str,
    title: str,
    column_width: int = 16,
) -> str:
    """Render a nested dict as an aligned text table."""
    columns: list[object] = []
    for cells in rows.values():
        for column in cells:
            if column not in columns:
                columns.append(column)
    lines = [title]
    header = f"{row_label:<14}" + "".join(f"{str(c):>{column_width}}" for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row_key, cells in rows.items():
        line = f"{str(row_key):<14}" + "".join(
            f"{cells.get(column, '-'):>{column_width}}" for column in columns
        )
        lines.append(line)
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# Section 7.1 — without NUMA
# ---------------------------------------------------------------------- #
def table1_no_numa_improvements(
    records: Sequence[InstanceRecord], key: str = "final"
) -> tuple[dict, str]:
    """Table 1: improvement vs Cilk/HDagg split by ``g × P`` and by ``g × dataset``."""
    by_gp: dict[object, dict[object, str]] = defaultdict(dict)
    for (p, g), group in sorted(
        _group(records, lambda r: (r.spec.num_procs, r.spec.g)).items()
    ):
        by_gp[f"P={p}"][f"g={g:g}"] = _improvement_cell(group, key)
    by_gd: dict[object, dict[object, str]] = defaultdict(dict)
    for (dataset, g), group in sorted(
        _group(records, lambda r: (r.dataset, r.spec.g)).items()
    ):
        by_gd[dataset][f"g={g:g}"] = _improvement_cell(group, key)
    rows = {"by_g_and_P": dict(by_gp), "by_g_and_dataset": dict(by_gd)}
    text = (
        format_grid(dict(by_gp), "P", "Table 1 (left): cost reduction vs Cilk / HDagg by g and P")
        + "\n\n"
        + format_grid(dict(by_gd), "dataset", "Table 1 (right): cost reduction vs Cilk / HDagg by g and dataset")
    )
    return rows, text


def table6_detailed_no_numa(
    records: Sequence[InstanceRecord], key: str = "final"
) -> tuple[dict, str]:
    """Table 6: improvement for every combination of ``g``, ``P`` and dataset."""
    rows: dict[object, dict[object, str]] = defaultdict(dict)
    for (dataset, g, p), group in sorted(
        _group(records, lambda r: (r.dataset, r.spec.g, r.spec.num_procs)).items()
    ):
        rows[dataset][f"g={g:g},P={p}"] = _improvement_cell(group, key)
    text = format_grid(
        dict(rows), "dataset", "Table 6: cost reduction vs Cilk / HDagg by g, P and dataset"
    )
    return dict(rows), text


def figure5_series(
    records: Sequence[InstanceRecord],
) -> tuple[dict, str]:
    """Figure 5: cost ratios (normalised to Cilk) of the pipeline stages per ``g``."""
    stages = ("cilk", "hdagg", "init", "hccs", "final")
    labels = ("Cilk", "HDagg", "Init", "HCcs", "ILP")
    series: dict[str, dict[str, float]] = {}
    for g, group in sorted(_group(records, lambda r: r.spec.g).items()):
        series[f"g={g:g}"] = {
            label: aggregate_ratio(group, stage, "cilk")
            for label, stage in zip(labels, stages)
        }
    rows = {
        key: {label: f"{value:.3f}" for label, value in values.items()}
        for key, values in series.items()
    }
    text = format_grid(rows, "g", "Figure 5: mean cost ratios normalised to Cilk", column_width=10)
    return series, text


def table7_algorithm_ratios(
    records: Sequence[InstanceRecord], g: float = 5.0
) -> tuple[dict, str]:
    """Table 7: per-algorithm cost ratios (normalised to Cilk) per dataset at ``g``."""
    keys = ("bl_est", "etf", "cilk", "hdagg", "init", "hccs", "ilp", "final")
    labels = ("BL-EST", "ETF", "Cilk", "HDagg", "Init", "HCcs", "ILPpart", "ILPcs")
    selected = [r for r in records if r.spec.g == g]
    rows: dict[object, dict[object, str]] = defaultdict(dict)
    series: dict[str, dict[str, float]] = {}
    for dataset, group in sorted(_group(selected, lambda r: r.dataset).items()):
        series[dataset] = {}
        for label, key in zip(labels, keys):
            if any(key not in record.costs for record in group):
                continue
            value = aggregate_ratio(group, key, "cilk")
            series[dataset][label] = value
            rows[dataset][label] = f"{value:.3f}"
    text = format_grid(
        dict(rows), "dataset", f"Table 7: cost ratios normalised to Cilk (g={g:g})", column_width=10
    )
    return series, text


def table8_vs_etf(
    records: Sequence[InstanceRecord], dataset: str = "tiny", key: str = "final"
) -> tuple[dict, str]:
    """Table 8: cost reduction vs ETF on the tiny dataset by ``g`` and ``P``."""
    selected = [r for r in records if r.dataset == dataset and "etf" in r.costs]
    rows: dict[object, dict[object, str]] = defaultdict(dict)
    values: dict[tuple[int, float], float] = {}
    for (p, g), group in sorted(
        _group(selected, lambda r: (r.spec.num_procs, r.spec.g)).items()
    ):
        improvement = aggregate_improvement(group, key, "etf")
        values[(p, g)] = improvement
        rows[f"P={p}"][f"g={g:g}"] = f"{improvement:5.0%}"
    text = format_grid(dict(rows), "P", f"Table 8: cost reduction vs ETF on {dataset}")
    return values, text


def table9_latency(
    records: Sequence[InstanceRecord], key: str = "final"
) -> tuple[dict, str]:
    """Table 9: improvement for different latency values ``ℓ``."""
    rows: dict[object, dict[object, str]] = {"improvement": {}}
    values: dict[float, tuple[float, float]] = {}
    for latency, group in sorted(_group(records, lambda r: r.spec.latency).items()):
        vs_cilk = aggregate_improvement(group, key, "cilk")
        vs_hdagg = aggregate_improvement(group, key, "hdagg")
        values[latency] = (vs_cilk, vs_hdagg)
        rows["improvement"][f"l={latency:g}"] = f"{vs_cilk:5.0%} / {vs_hdagg:5.0%}"
    text = format_grid(rows, "", "Table 9: cost reduction vs Cilk / HDagg for different latencies")
    return values, text


# ---------------------------------------------------------------------- #
# Section 7.2 / 7.3 — with NUMA
# ---------------------------------------------------------------------- #
def _numa_grid(records: Sequence[InstanceRecord], key: str) -> dict[object, dict[object, str]]:
    rows: dict[object, dict[object, str]] = defaultdict(dict)
    for (p, delta), group in sorted(
        _group(records, lambda r: (r.spec.num_procs, r.spec.numa_delta)).items()
    ):
        rows[f"P={p}"][f"D={delta:g}"] = _improvement_cell(group, key)
    return dict(rows)


def table2_numa_improvements(
    records: Sequence[InstanceRecord], key: str = "final"
) -> tuple[dict, str]:
    """Table 2: base-scheduler improvement with NUMA by ``P`` and ``Δ``."""
    rows = _numa_grid(records, key)
    return rows, format_grid(rows, "P", "Table 2: cost reduction vs Cilk / HDagg with NUMA")


def table3_multilevel_improvements(
    records: Sequence[InstanceRecord],
) -> tuple[dict, str]:
    """Table 3: multilevel-scheduler improvement with NUMA by ``P`` and ``Δ``."""
    selected = [r for r in records if "multilevel" in r.costs]
    rows = _numa_grid(selected, "multilevel")
    return rows, format_grid(rows, "P", "Table 3: multilevel cost reduction vs Cilk / HDagg")


def table10_numa_detailed(
    records: Sequence[InstanceRecord], key: str = "final"
) -> tuple[dict, str]:
    """Table 10: NUMA improvement for every ``P``, ``Δ`` and dataset."""
    rows: dict[object, dict[object, str]] = defaultdict(dict)
    for (dataset, p, delta), group in sorted(
        _group(records, lambda r: (r.dataset, r.spec.num_procs, r.spec.numa_delta)).items()
    ):
        rows[dataset][f"P={p},D={delta:g}"] = _improvement_cell(group, key)
    text = format_grid(dict(rows), "dataset", "Table 10: NUMA cost reduction by P, D and dataset")
    return dict(rows), text


def figure6_series(records: Sequence[InstanceRecord]) -> tuple[dict, str]:
    """Figure 6: per-stage cost ratios (normalised to Cilk) for every ``P × Δ`` point."""
    stages = ("cilk", "hdagg", "init", "hccs", "final", "multilevel")
    labels = ("Cilk", "HDagg", "Init", "HCcs", "ILP", "ML")
    series: dict[str, dict[str, float]] = {}
    rows: dict[object, dict[object, str]] = defaultdict(dict)
    for (p, delta), group in sorted(
        _group(records, lambda r: (r.spec.num_procs, r.spec.numa_delta)).items()
    ):
        panel = f"P={p},D={delta:g}"
        series[panel] = {}
        for label, key in zip(labels, stages):
            if any(key not in record.costs for record in group):
                continue
            value = aggregate_ratio(group, key, "cilk")
            series[panel][label] = value
            rows[panel][label] = f"{value:.3f}"
    text = format_grid(dict(rows), "panel", "Figure 6: mean cost ratios normalised to Cilk (NUMA)", column_width=10)
    return series, text


# ---------------------------------------------------------------------- #
# Tables 4/5 — initialiser comparison
# ---------------------------------------------------------------------- #
def table4_5_initializer_wins(wins: Sequence[InitializerWin]) -> tuple[dict, str]:
    """Tables 4 and 5: how often each initialiser is best, split as in the paper."""
    spmv = [w for w in wins if w.generator == "spmv"]
    other = [w for w in wins if w.generator != "spmv"]

    def count_by(group: Sequence[InitializerWin], key) -> dict[object, Counter]:
        counters: dict[object, Counter] = defaultdict(Counter)
        for win in group:
            counters[key(win)][win.winner] += 1
        return dict(counters)

    table4 = count_by(spmv, lambda w: f"P={w.spec.num_procs}")
    sizes = sorted({w.num_nodes for w in other})
    if sizes:
        small_cut = sizes[len(sizes) // 3] if len(sizes) >= 3 else sizes[0]
        large_cut = sizes[(2 * len(sizes)) // 3] if len(sizes) >= 3 else sizes[-1]
    else:
        small_cut = large_cut = 0

    def size_bucket(n: int) -> str:
        if n <= small_cut:
            return "small_n"
        if n <= large_cut:
            return "medium_n"
        return "large_n"

    table5 = count_by(other, lambda w: (size_bucket(w.num_nodes), f"P={w.spec.num_procs}"))

    lines = ["Table 4: initialiser wins on spmv instances (by P)"]
    for key, counter in sorted(table4.items()):
        lines.append(f"  {key}: " + ", ".join(f"{k}={v}" for k, v in counter.most_common()))
    lines.append("Table 5: initialiser wins on exp/cg/knn instances (by size bucket and P)")
    for key, counter in sorted(table5.items(), key=lambda item: str(item[0])):
        lines.append(f"  {key}: " + ", ".join(f"{k}={v}" for k, v in counter.most_common()))
    return {"table4": table4, "table5": table5}, "\n".join(lines)


# ---------------------------------------------------------------------- #
# Tables 11/12 and Figure 7 — huge dataset
# ---------------------------------------------------------------------- #
def table11_12_huge(
    records: Sequence[InstanceRecord], key: str = "final"
) -> tuple[dict, str]:
    """Tables 11/12: Init+HC+HCcs improvement on the huge dataset.

    Records from a non-NUMA run are grouped by ``(P, g)`` (Table 11); records
    from a NUMA run are grouped by ``(P, Δ)`` (Table 12).
    """
    rows: dict[object, dict[object, str]] = defaultdict(dict)
    for record_group_key, group in sorted(
        _group(
            records,
            lambda r: (
                r.spec.num_procs,
                r.spec.numa_delta if r.spec.numa_delta is not None else r.spec.g,
                r.spec.numa_delta is not None,
            ),
        ).items()
    ):
        p, value, is_numa = record_group_key
        column = f"D={value:g}" if is_numa else f"g={value:g}"
        rows[f"P={p}"][column] = _improvement_cell(group, key)
    text = format_grid(
        dict(rows), "P", "Tables 11/12: huge dataset, Init+HC+HCcs vs Cilk / HDagg"
    )
    return dict(rows), text


def figure7_series(records: Sequence[InstanceRecord]) -> tuple[dict, str]:
    """Figure 7: stage ratios (normalised to Cilk) on the huge dataset, per ``P``."""
    stages = ("cilk", "hdagg", "init", "hccs")
    labels = ("Cilk", "HDagg", "Init", "HCcs")
    series: dict[str, dict[str, float]] = {}
    rows: dict[object, dict[object, str]] = defaultdict(dict)
    for p, group in sorted(_group(records, lambda r: r.spec.num_procs).items()):
        panel = f"P={p}"
        series[panel] = {
            label: aggregate_ratio(group, key, "cilk") for label, key in zip(labels, stages)
        }
        rows[panel] = {label: f"{value:.3f}" for label, value in series[panel].items()}
    text = format_grid(dict(rows), "P", "Figure 7: huge dataset stage ratios (vs Cilk)", column_width=10)
    return series, text


# ---------------------------------------------------------------------- #
# Tables 13/14 — multilevel coarsening ratios
# ---------------------------------------------------------------------- #
def table13_multilevel_vs_baselines(
    records: Sequence[InstanceRecord],
) -> tuple[dict, str]:
    """Table 13: C15/C30/Copt improvement vs Cilk and HDagg by ``P × Δ``."""
    rows: dict[object, dict[object, str]] = defaultdict(dict)
    values: dict[str, dict[str, tuple[float, float]]] = defaultdict(dict)
    for (p, delta), group in sorted(
        _group(records, lambda r: (r.spec.num_procs, r.spec.numa_delta)).items()
    ):
        for variant in ("ml_c15", "ml_c30", "ml_copt"):
            vs_cilk = aggregate_improvement(group, variant, "cilk")
            vs_hdagg = aggregate_improvement(group, variant, "hdagg")
            values[variant][f"P={p},D={delta:g}"] = (vs_cilk, vs_hdagg)
            rows[variant][f"P={p},D={delta:g}"] = f"{vs_cilk:5.0%} / {vs_hdagg:5.0%}"
    text = format_grid(dict(rows), "variant", "Table 13: multilevel vs Cilk / HDagg by coarsening ratio")
    return dict(values), text


def table14_multilevel_vs_base(
    records: Sequence[InstanceRecord],
) -> tuple[dict, str]:
    """Table 14: ratio of the multilevel cost to the base scheduler's cost."""
    rows: dict[object, dict[object, str]] = defaultdict(dict)
    values: dict[str, dict[str, float]] = defaultdict(dict)
    for (p, delta), group in sorted(
        _group(records, lambda r: (r.spec.num_procs, r.spec.numa_delta)).items()
    ):
        for variant in ("ml_c15", "ml_c30", "ml_copt"):
            ratio = aggregate_ratio(group, variant, "final")
            values[variant][f"P={p},D={delta:g}"] = ratio
            rows[variant][f"P={p},D={delta:g}"] = f"{ratio:.3f}"
    text = format_grid(dict(rows), "variant", "Table 14: multilevel / base-scheduler cost ratio", column_width=14)
    return dict(values), text
