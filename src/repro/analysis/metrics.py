"""Aggregation metrics used in the paper's evaluation (Section 7).

The paper evaluates a scheduler on an instance by the *ratio* of its cost to
a baseline's cost and aggregates ratios over a dataset with the geometric
mean (more appropriate than the arithmetic mean for ratios).  Improvements
are reported as ``1 - geometric_mean(ratio)`` ("our schedule is X% cheaper").
This module also provides the communication-to-computation ratio (CCR)
generalisation discussed in Appendix A.5.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from ..core.dag import ComputationalDAG
from ..core.machine import BspMachine

__all__ = [
    "geometric_mean",
    "cost_ratio",
    "mean_cost_ratio",
    "improvement",
    "improvement_from_ratios",
    "communication_to_computation_ratio",
]


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (``nan`` for an empty input)."""
    values = list(values)
    if not values:
        return float("nan")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def cost_ratio(cost: float, baseline_cost: float) -> float:
    """Ratio ``cost / baseline_cost`` (``inf`` when the baseline cost is zero)."""
    if baseline_cost <= 0:
        return float("inf") if cost > 0 else 1.0
    return cost / baseline_cost


def mean_cost_ratio(costs: Sequence[float], baseline_costs: Sequence[float]) -> float:
    """Geometric mean of per-instance cost ratios."""
    if len(costs) != len(baseline_costs):
        raise ValueError("costs and baseline_costs must have the same length")
    return geometric_mean(
        cost_ratio(c, b) for c, b in zip(costs, baseline_costs)
    )


def improvement_from_ratios(ratios: Iterable[float]) -> float:
    """Improvement fraction ``1 - geometric_mean(ratios)``.

    A value of ``0.24`` means a 24% lower cost than the baseline on (geometric)
    average; negative values mean the method is worse than the baseline.
    """
    return 1.0 - geometric_mean(ratios)


def improvement(costs: Sequence[float], baseline_costs: Sequence[float]) -> float:
    """Improvement fraction of ``costs`` over ``baseline_costs``."""
    return 1.0 - mean_cost_ratio(costs, baseline_costs)


def communication_to_computation_ratio(
    dag: ComputationalDAG, machine: BspMachine | None = None
) -> float:
    """CCR of an instance, optionally folding in ``g`` and the mean NUMA multiplier.

    The plain definition of [27] is ``Σ c(v) / Σ w(v)``; with a machine given,
    the numerator is additionally multiplied by ``g`` and the average NUMA
    multiplier, the natural extension the paper discusses in Appendix A.5.
    """
    total_work = dag.total_work
    if total_work <= 0:
        return float("inf")
    numerator = dag.total_comm
    if machine is not None:
        numerator *= machine.g * max(machine.average_numa_multiplier, 1e-12)
    return numerator / total_work
