"""Parsing layer for the per-PR ``BENCH_<n>.json`` trajectory records.

Every PR that touches a hot path records its benchmark numbers in a stable
``BENCH_<n>.json`` at the repo root (see ``benchmarks/_bench_utils
.save_bench_root``).  This module is the one importable parser of those
records: the CLI report (``benchmarks/bench_report.py``), the HTML report
subsystem (:mod:`repro.analysis.report`) and the regression detector
(:mod:`repro.analysis.aggregate`) all walk the files through it, so label
construction — and therefore row identity across PRs — is defined exactly
once.

The payload walker is schema-agnostic: any dict carrying the requested
numeric field (``"speedup"`` for the trajectory, ``"final_cost"`` for the
cost-drift detector) becomes a row, labelled by its path through the
record; list entries are identified by their most specific size-like field
(``num_nodes``, ``nnz``, ...), so rows line up across PRs even when case
lists grow.  PR numbering is **gap-tolerant**: records are keyed by the
number embedded in the file name, and a missing number (no ``BENCH_5.json``
exists in this repository) simply yields no column — consumers comparing
"previous vs current" must compare adjacent *recorded* PRs, not adjacent
integers.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

__all__ = [
    "bench_records",
    "collect_backends",
    "collect_metric",
    "collect_store_hit_rates",
    "collect_trajectory",
]

#: fields (in priority order) used to label a list entry so that the same
#: case lines up across PRs
_IDENTITY_FIELDS = ("num_nodes", "nnz", "matrix_size", "num_contractions", "points")


def _entry_label(payload: dict) -> str:
    for field in _IDENTITY_FIELDS:
        if field in payload:
            return f"{field}={payload[field]}"
    return ""


def _walk(payload, path: tuple[str, ...], out: dict[str, float], field: str) -> None:
    if isinstance(payload, dict):
        if field in payload and isinstance(payload[field], (int, float)):
            label = "/".join(path) or "(root)"
            out[label] = float(payload[field])
        for key, value in payload.items():
            if key == field:
                continue
            _walk(value, path + (str(key),), out, field)
    elif isinstance(payload, list):
        tags = [
            _entry_label(value) if isinstance(value, dict) else str(index)
            for index, value in enumerate(payload)
        ]
        # two entries sharing the identity field (e.g. same num_nodes,
        # different max_steps) must not collapse into one row: duplicate
        # labels get a stable occurrence-index suffix
        duplicated = {tag for tag in tags if tag and tags.count(tag) > 1}
        occurrence: dict[str, int] = {}
        for index, (value, tag) in enumerate(zip(payload, tags)):
            if tag in duplicated:
                nth = occurrence.get(tag, 0)
                occurrence[tag] = nth + 1
                tag = f"{tag}#{nth}"
            _walk(
                value,
                path[:-1] + (f"{path[-1] if path else 'list'}[{tag or index}]",),
                out,
                field,
            )


def bench_records(root: Path | str) -> dict[int, dict]:
    """Every readable ``BENCH_<n>.json`` payload under ``root``, keyed by PR.

    Files that are unreadable, not valid JSON, or carry an unknown
    ``schema_version`` are skipped silently (a foreign or future record
    must not break the report).  The keys are whatever PR numbers exist —
    gaps are preserved, not filled.
    """
    records: dict[int, dict] = {}
    for path in sorted(Path(root).glob("BENCH_*.json")):
        match = re.fullmatch(r"BENCH_(\d+)\.json", path.name)
        if not match:
            continue
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (ValueError, OSError):
            continue
        if not isinstance(record, dict) or record.get("schema_version") != 1:
            continue
        records[int(match.group(1))] = record
    return records


def collect_metric(root: Path | str, field: str) -> dict[int, dict[str, float]]:
    """Per-PR ``{row label -> value}`` maps for one numeric field.

    The label scheme is shared by every field, so a row collected for
    ``"speedup"`` and one collected for ``"final_cost"`` from the same
    benchmark case carry the same label — which is what lets the
    regression detector pair costs across PRs.
    """
    collected: dict[int, dict[str, float]] = {}
    for pr, record in bench_records(root).items():
        values: dict[str, float] = {}
        _walk(record.get("benchmarks", {}), (), values, field)
        collected[pr] = values
    return collected


def collect_trajectory(root: Path | str) -> dict[int, dict[str, float]]:
    """Per-PR ``{kernel label -> speedup}`` maps from every ``BENCH_*.json``."""
    return collect_metric(root, "speedup")


def _find_backend(payload) -> str | None:
    """First ``"kernel_backend"`` string anywhere in a record payload."""
    if isinstance(payload, dict):
        value = payload.get("kernel_backend")
        if isinstance(value, str):
            return value
        for child in payload.values():
            found = _find_backend(child)
            if found is not None:
                return found
    elif isinstance(payload, list):
        for child in payload:
            found = _find_backend(child)
            if found is not None:
                return found
    return None


def collect_backends(root: Path | str) -> dict[int, str]:
    """Per-PR kernel backend (``numpy`` / ``numba``) from every ``BENCH_*.json``.

    PRs predating the kernel-dispatch layer record no backend; they are
    simply absent from the result (rendered as a dash).
    """
    backends: dict[int, str] = {}
    for pr, record in bench_records(root).items():
        backend = _find_backend(record.get("benchmarks", {}))
        if backend is not None:
            backends[pr] = backend
    return backends


def collect_store_hit_rates(root: Path | str) -> dict[int, float]:
    """Per-PR warm-store hit rate from every ``BENCH_*.json``.

    Reads the ``store_resume`` section written by ``bench_store_resume.py``
    (store hits over total requests on a warm re-run of the benchmark
    grid).  PRs predating the persistent store record no rate and are
    simply absent from the result (rendered as a dash).
    """
    rates: dict[int, float] = {}
    for pr, record in bench_records(root).items():
        section = record.get("benchmarks", {}).get("store_resume")
        if isinstance(section, dict) and isinstance(
            section.get("hit_rate"), (int, float)
        ):
            rates[pr] = float(section["hit_rate"])
    return rates
