"""The experiment report: trial store + BENCH history -> one HTML file.

:func:`build_report` aggregates everything the repo records about
experiments — the trial/experiment tables of a
:class:`~repro.store.ResultStore` (see :mod:`repro.store.trials`) and the
repo-root ``BENCH_*.json`` trajectory (see
:mod:`repro.analysis.benchdata`) — into one plain :class:`Report` value;
:func:`render_html` turns it into a deterministic, self-contained HTML
page (inline SVG, no external assets; see :mod:`repro.analysis.htmlgen`).

Byte-stability is a hard guarantee, not an aspiration: two stores holding
the same trials render the same bytes, regardless of append order, file
paths, or when they were built.  Volatile fields (wall-clock timings,
``created_at`` stamps) are deliberately never rendered, iteration is
sorted everywhere, and provenance lines carry counts rather than paths.
The golden-file tests pin exactly this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..store.results import ResultStore
from .aggregate import (
    FamilyProfile,
    RankTable,
    RegressionFlag,
    dedup_trials,
    family_profiles,
    rank_table,
    regression_flags,
    trajectory_summary,
)
from .benchdata import collect_backends, collect_trajectory
from .htmlgen import bar_chart, line_chart, page, section, table

__all__ = ["Report", "build_report", "render_html", "render_family_html"]


@dataclass
class Report:
    """Everything the renderers need, already aggregated and sorted."""

    num_trials: int
    num_experiments: int
    experiments: list[tuple[str, int]]  # (name, num fingerprints)
    families: list[FamilyProfile]
    ranks: RankTable
    trajectory: list[tuple[int, float]]  # (pr, geomean speedup)
    backends: dict[int, str]
    flags: list[RegressionFlag] = field(default_factory=list)

    @property
    def has_regressions(self) -> bool:
        return bool(self.flags)


def build_report(
    store_root: str | Path | None,
    bench_root: str | Path | None = None,
    *,
    speedup_tolerance: float = 0.5,
    cost_tolerance: float = 0.05,
) -> Report:
    """Aggregate a store's trials and a BENCH trajectory into a report.

    Either side is optional: ``store_root=None`` (or a store with no
    trials) produces the "no trials yet" report, ``bench_root=None``
    skips the trajectory and regression sections.  Tolerances configure
    the regression flags — see :func:`repro.analysis.aggregate.regression_flags`.
    """
    trials = []
    experiments = []
    if store_root is not None:
        store = (
            store_root
            if isinstance(store_root, ResultStore)
            else ResultStore(store_root)
        )
        trials = dedup_trials(store.trials.trials())
        experiments = sorted(
            (record.name, len(record.fingerprints))
            for record in store.trials.experiments()
        )
    flags: list[RegressionFlag] = []
    trajectory: list[tuple[int, float]] = []
    backends: dict[int, str] = {}
    if bench_root is not None:
        trajectory = trajectory_summary(collect_trajectory(bench_root))
        backends = collect_backends(bench_root)
        flags = regression_flags(
            bench_root,
            speedup_tolerance=speedup_tolerance,
            cost_tolerance=cost_tolerance,
        )
    return Report(
        num_trials=len(trials),
        num_experiments=len(experiments),
        experiments=experiments,
        families=family_profiles(trials),
        ranks=rank_table(trials),
        trajectory=trajectory,
        backends=backends,
        flags=flags,
    )


# ---------------------------------------------------------------------- #
# section renderers (each returns an HTML fragment)
# ---------------------------------------------------------------------- #
def _overview_section(report: Report) -> str:
    rows = [
        ("trial records", report.num_trials),
        ("instance families", len(report.families)),
        ("named experiments", report.num_experiments),
        ("BENCH records", len(report.trajectory)),
        (
            "regression flags",
            ("html", f'<span class="flag">{len(report.flags)}</span>')
            if report.flags
            else ("html", '<span class="ok">0</span>'),
        ),
    ]
    body = table(["what", "count"], rows, numeric=(1,))
    if report.experiments:
        body += table(
            ["experiment", "requests"], report.experiments, numeric=(1,)
        )
    return section("Overview", body)


def _family_fragment(profile: FamilyProfile) -> str:
    rows = [
        (
            stats.scheduler,
            stats.trials,
            stats.geomean_cost,
            stats.geomean_ratio_to_best,
            stats.wins,
        )
        for stats in profile.schedulers
    ]
    chart = bar_chart(
        [stats.scheduler for stats in profile.schedulers],
        [stats.geomean_ratio_to_best for stats in profile.schedulers],
        caption=f"geomean cost ratio to best, family {profile.family}",
    )
    meta = (
        f'<p class="note">{profile.num_trials} trials over '
        f"{profile.num_instances} instances, "
        f"{profile.node_range[0]}&#8211;{profile.node_range[1]} nodes</p>"
    )
    return (
        meta
        + table(
            ["scheduler", "trials", "geomean cost", "ratio to best", "wins"],
            rows,
            numeric=(1, 2, 3, 4),
        )
        + chart
    )


def _families_section(report: Report) -> str:
    if not report.families:
        return section(
            "Cost profiles by family",
            '<p class="note">no trials yet &#8212; run solves against a '
            "store (or an experiment grid) to populate this section</p>",
        )
    parts = []
    for profile in report.families:
        parts.append(f"<h3>{profile.family}</h3>")
        parts.append(_family_fragment(profile))
    return section("Cost profiles by family", *parts)


def _ranks_section(report: Report) -> str:
    ranks = report.ranks
    if not ranks.entries:
        return section(
            "Scheduler ranking",
            '<p class="note">needs at least one comparison group '
            "(two schedulers on the same instance, machine, budget and "
            "seed)</p>",
        )
    body = table(
        ["rank", "scheduler", "mean rank", "blocks"],
        [
            (index + 1, entry.scheduler, entry.mean_rank, entry.blocks)
            for index, entry in enumerate(ranks.entries)
        ],
        numeric=(0, 2, 3),
    )
    if ranks.critical_difference is not None:
        cd = ranks.critical_difference
        if ranks.significant_pairs:
            pairs = "; ".join(
                f"{better} &#8810; {worse}"
                for better, worse in ranks.significant_pairs
            )
            verdict = f"significant at &#945;=0.05: {pairs}"
        else:
            verdict = "no pair separated at &#945;=0.05"
        body += (
            f'<p class="note">Nemenyi critical difference {cd:.3f} over '
            f"{ranks.num_blocks} complete blocks &#8212; {verdict}</p>"
        )
    names = sorted(
        set(ranks.wins)
        | {name for beaten in ranks.wins.values() for name in beaten}
    )
    if names:
        rows = []
        for first in names:
            row: list[object] = [first]
            for second in names:
                row.append(
                    "&#8212;"
                    if first == second
                    else ranks.wins.get(first, {}).get(second, 0)
                )
            rows.append(row)
        body += table(
            ["wins &#8595; over &#8594;", *names],
            rows,
            numeric=tuple(range(1, len(names) + 1)),
        )
    return section("Scheduler ranking", body)


def _trajectory_section(report: Report) -> str:
    if not report.trajectory:
        return section(
            "Kernel speedup trajectory",
            '<p class="note">no BENCH_*.json records found</p>',
        )
    chart = line_chart(
        [(float(pr), value) for pr, value in report.trajectory],
        x_label="PR",
        y_label="geomean speedup",
        caption="geomean kernel speedup per PR",
    )
    rows = [
        (pr, value, report.backends.get(pr, "-"))
        for pr, value in report.trajectory
    ]
    return section(
        "Kernel speedup trajectory",
        chart,
        table(["PR", "geomean speedup", "backend"], rows, numeric=(0, 1)),
        '<p class="note">PR numbering is gap-tolerant: only PRs that '
        "recorded a BENCH file appear, and drift comparisons pair each row "
        "with its most recent earlier record</p>",
    )


def _flags_section(report: Report) -> str:
    if not report.flags:
        return section(
            "Regression flags",
            '<p class="ok">no regressions vs the previous BENCH records</p>',
        )
    rows = [
        (
            ("html", f'<span class="flag">{flag.kind}</span>'),
            flag.label,
            f"PR {flag.previous_pr}",
            flag.previous,
            f"PR {flag.current_pr}",
            flag.current,
            f"{flag.drift:+.1%}",
            f"{flag.tolerance:.0%}",
        )
        for flag in sorted(report.flags, key=lambda f: (f.kind, f.label))
    ]
    return section(
        "Regression flags",
        table(
            [
                "kind",
                "label",
                "baseline",
                "value",
                "current",
                "value",
                "drift",
                "tolerance",
            ],
            rows,
            numeric=(3, 5, 6, 7),
        ),
    )


def _provenance(report: Report) -> str:
    return (
        f"{report.num_trials} trials, {len(report.families)} families, "
        f"{len(report.trajectory)} BENCH records, "
        f"{len(report.flags)} regression flags"
    )


def render_html(report: Report, title: str = "repro experiment report") -> str:
    """The full report page (deterministic; see the module docstring)."""
    return page(
        title,
        _overview_section(report),
        _flags_section(report),
        _families_section(report),
        _ranks_section(report),
        _trajectory_section(report),
        generated_from=_provenance(report),
    )


def render_family_html(report: Report, family: str) -> str | None:
    """A single family's profile page, or ``None`` if the family is unknown."""
    for profile in report.families:
        if profile.family == family:
            return page(
                f"family {family}",
                section(f"Cost profile: {family}", _family_fragment(profile)),
                generated_from=_provenance(report),
            )
    return None
