"""Aggregation over trial records and BENCH trajectories for the report.

Three kinds of summary feed :mod:`repro.analysis.report`:

* **per-family cost profiles** — trials grouped by instance family, each
  scheduler summarised by trial count, geometric-mean cost and (the
  scale-free number) geometric-mean ratio to the best scheduler of each
  comparison group, plus outright wins;
* **rank tables** — schedulers ranked within comparison groups (same DAG,
  machine, budget and seed — :meth:`TrialRecord.group_key
  <repro.store.trials.TrialRecord.group_key>`), mean ranks over the
  largest set of *complete blocks*, with a Nemenyi-style critical
  difference so "is this rank gap meaningful at this sample size" is a
  number, not a feeling, and a pairwise win matrix over every group two
  schedulers share;
* **regression flags** — the latest ``BENCH_*.json`` record compared
  against the *previous recorded* value of every row it shares with
  history (gap-tolerant: the previous value of a row may live several
  PRs back).  A kernel whose speedup dropped, or a pinned benchmark case
  whose ``final_cost`` rose, beyond the configured tolerance raises a
  flag — the signal ``repro report --fail-on-regression`` turns into a
  non-zero exit for CI gating.

Everything here is deterministic: outputs are sorted, derived purely from
the inputs, and never consult the clock — the property the byte-stable
HTML report is built on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from ..store.trials import TrialRecord
from .benchdata import collect_metric
from .metrics import geometric_mean as _strict_geomean

__all__ = [
    "FamilyProfile",
    "FamilySchedulerStats",
    "RankEntry",
    "RankTable",
    "RegressionFlag",
    "comparison_groups",
    "dedup_trials",
    "family_profiles",
    "rank_table",
    "regression_flags",
    "trajectory_summary",
]


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, tolerating the zero costs trivial instances produce.

    :func:`repro.analysis.metrics.geometric_mean` raises on non-positive
    input; a report over arbitrary stores must not.  Zero values (a
    communication-free schedule has cost components of exactly 0) degrade
    the aggregate to the arithmetic mean of the affected list.
    """
    values = list(values)
    if not values:
        return float("nan")
    if any(v <= 0 for v in values):
        return sum(values) / len(values)
    return _strict_geomean(values)


# ---------------------------------------------------------------------- #
# trial plumbing
# ---------------------------------------------------------------------- #
def dedup_trials(trials: Iterable[TrialRecord]) -> list[TrialRecord]:
    """One record per fingerprint (the latest), in deterministic order.

    Worker fleets may legitimately record the same fingerprint more than
    once (a crash between persisting and completing is recomputed, and
    content-addressing makes that benign); for aggregation a request is
    one trial.  The result is sorted by (family, dag, scheduler,
    fingerprint), independent of append order.
    """
    latest: dict[str, TrialRecord] = {}
    for record in trials:
        latest[record.fingerprint] = record
    return sorted(
        latest.values(),
        key=lambda r: (r.family, r.dag_name, r.scheduler, r.fingerprint),
    )


def comparison_groups(
    trials: Iterable[TrialRecord],
) -> list[tuple[tuple, dict[str, TrialRecord]]]:
    """Trials bucketed by comparison group, schedulers mapped within.

    A *group* is one problem — same DAG content, machine, budget, seed —
    solved by one or more schedulers; ranking across schedulers is only
    meaningful within a group.  Groups are sorted by key; a scheduler
    appearing twice in a group (same fingerprint dedup'd upstream; two
    *specs* sharing a registry name) keeps the cheaper trial, so ranks
    stay well defined.
    """
    buckets: dict[tuple, dict[str, TrialRecord]] = {}
    for record in dedup_trials(trials):
        bucket = buckets.setdefault(record.group_key(), {})
        kept = bucket.get(record.scheduler)
        if kept is None or record.cost < kept.cost:
            bucket[record.scheduler] = record
    return sorted(buckets.items(), key=lambda item: item[0])


# ---------------------------------------------------------------------- #
# per-family cost profiles
# ---------------------------------------------------------------------- #
@dataclass
class FamilySchedulerStats:
    """One scheduler's summary within one family."""

    scheduler: str
    trials: int
    geomean_cost: float
    #: geometric-mean of cost / (best cost in the comparison group) —
    #: 1.0 means "always the winner", scale-free across instance sizes
    geomean_ratio_to_best: float
    wins: int


@dataclass
class FamilyProfile:
    """All schedulers' summaries over one instance family."""

    family: str
    num_instances: int
    num_trials: int
    node_range: tuple[int, int]
    schedulers: list[FamilySchedulerStats] = field(default_factory=list)


def family_profiles(trials: Iterable[TrialRecord]) -> list[FamilyProfile]:
    """Per-family, per-scheduler cost profiles (sorted by family name)."""
    deduped = dedup_trials(trials)
    profiles: list[FamilyProfile] = []
    families = sorted({record.family for record in deduped})
    for family in families:
        members = [record for record in deduped if record.family == family]
        groups = comparison_groups(members)
        costs: dict[str, list[float]] = {}
        ratios: dict[str, list[float]] = {}
        wins: dict[str, int] = {}
        for _, by_scheduler in groups:
            best = min(record.cost for record in by_scheduler.values())
            winner = min(
                by_scheduler, key=lambda name: (by_scheduler[name].cost, name)
            )
            wins[winner] = wins.get(winner, 0) + 1
            for name, record in sorted(by_scheduler.items()):
                costs.setdefault(name, []).append(record.cost)
                ratios.setdefault(name, []).append(
                    record.cost / best if best > 0 else 1.0
                )
        profiles.append(
            FamilyProfile(
                family=family,
                num_instances=len({record.dag_fingerprint for record in members}),
                num_trials=len(members),
                node_range=(
                    min(record.num_nodes for record in members),
                    max(record.num_nodes for record in members),
                ),
                schedulers=[
                    FamilySchedulerStats(
                        scheduler=name,
                        trials=len(costs[name]),
                        geomean_cost=geometric_mean(costs[name]),
                        geomean_ratio_to_best=geometric_mean(ratios[name]),
                        wins=wins.get(name, 0),
                    )
                    for name in sorted(costs)
                ],
            )
        )
    return profiles


# ---------------------------------------------------------------------- #
# rank tables with a critical-difference summary
# ---------------------------------------------------------------------- #
#: Nemenyi critical values q_alpha(k) / sqrt(2) at alpha = 0.05 for
#: k = 2..10 compared schedulers (Demsar 2006, Table 5) — the constant in
#: CD = q * sqrt(k (k + 1) / (6 N))
_NEMENYI_Q05 = {
    2: 1.960,
    3: 2.343,
    4: 2.569,
    5: 2.728,
    6: 2.850,
    7: 2.949,
    8: 3.031,
    9: 3.102,
    10: 3.164,
}


@dataclass
class RankEntry:
    """One scheduler's mean rank over the complete blocks."""

    scheduler: str
    mean_rank: float
    blocks: int


@dataclass
class RankTable:
    """Scheduler-vs-scheduler ranking summary.

    ``entries`` is sorted best (lowest mean rank) first over ``num_blocks``
    complete blocks of ``len(entries)`` schedulers.  ``critical_difference``
    is the Nemenyi CD at alpha = 0.05 (``None`` when no table applies:
    fewer than two schedulers, no complete blocks, or k > 10);
    ``significant_pairs`` lists the (better, worse) pairs whose mean-rank
    gap exceeds it.  ``wins`` counts pairwise wins over *every* shared
    group, complete block or not.
    """

    entries: list[RankEntry] = field(default_factory=list)
    num_blocks: int = 0
    critical_difference: float | None = None
    significant_pairs: list[tuple[str, str]] = field(default_factory=list)
    wins: dict[str, dict[str, int]] = field(default_factory=dict)


def _ranks(costs: dict[str, float]) -> dict[str, float]:
    """Competition ranks with ties averaged (1 = cheapest)."""
    ordered = sorted(costs.items(), key=lambda item: (item[1], item[0]))
    ranks: dict[str, float] = {}
    index = 0
    while index < len(ordered):
        tied = index
        while (
            tied + 1 < len(ordered) and ordered[tied + 1][1] == ordered[index][1]
        ):
            tied += 1
        rank = (index + tied) / 2.0 + 1.0
        for position in range(index, tied + 1):
            ranks[ordered[position][0]] = rank
        index = tied + 1
    return ranks


def rank_table(trials: Iterable[TrialRecord]) -> RankTable:
    """Rank schedulers within comparison groups; summarise with a CD.

    Mean ranks are computed over the largest usable set of **complete
    blocks**: groups sharing the most frequent multi-scheduler signature
    (the set of schedulers they compare — frequency ties broken towards
    the larger set, then lexicographically), because Friedman-style mean
    ranks are only comparable when every block ranks the same k
    schedulers.  The pairwise win matrix uses every group two schedulers
    share, so partial grids still contribute evidence.
    """
    groups = [
        (key, by_scheduler)
        for key, by_scheduler in comparison_groups(trials)
        if len(by_scheduler) >= 2
    ]
    table = RankTable()
    if not groups:
        return table
    # pairwise wins over every shared group
    wins: dict[str, dict[str, int]] = {}
    for _, by_scheduler in groups:
        names = sorted(by_scheduler)
        for first in names:
            for second in names:
                if first == second:
                    continue
                if by_scheduler[first].cost < by_scheduler[second].cost:
                    wins.setdefault(first, {}).setdefault(second, 0)
                    wins[first][second] += 1
    table.wins = wins
    # complete blocks: the most frequent scheduler signature
    signatures: dict[tuple[str, ...], int] = {}
    for _, by_scheduler in groups:
        signature = tuple(sorted(by_scheduler))
        signatures[signature] = signatures.get(signature, 0) + 1
    signature = max(
        signatures, key=lambda sig: (signatures[sig], len(sig), tuple(sig))
    )
    blocks = [
        by_scheduler
        for _, by_scheduler in groups
        if tuple(sorted(by_scheduler)) == signature
    ]
    totals = {name: 0.0 for name in signature}
    for by_scheduler in blocks:
        for name, rank in _ranks(
            {name: record.cost for name, record in by_scheduler.items()}
        ).items():
            totals[name] += rank
    num_blocks = len(blocks)
    table.num_blocks = num_blocks
    table.entries = sorted(
        (
            RankEntry(
                scheduler=name,
                mean_rank=totals[name] / num_blocks,
                blocks=num_blocks,
            )
            for name in signature
        ),
        key=lambda entry: (entry.mean_rank, entry.scheduler),
    )
    k = len(signature)
    q = _NEMENYI_Q05.get(k)
    if q is not None and num_blocks > 0:
        table.critical_difference = q * math.sqrt(k * (k + 1) / (6.0 * num_blocks))
        for index, better in enumerate(table.entries):
            for worse in table.entries[index + 1 :]:
                if worse.mean_rank - better.mean_rank > table.critical_difference:
                    table.significant_pairs.append(
                        (better.scheduler, worse.scheduler)
                    )
    return table


# ---------------------------------------------------------------------- #
# BENCH trajectory summaries and regression flags
# ---------------------------------------------------------------------- #
def trajectory_summary(
    trajectory: dict[int, dict[str, float]],
) -> list[tuple[int, float]]:
    """Per-PR geometric-mean speedup (the one-line trajectory chart)."""
    return [
        (pr, geometric_mean(values.values()))
        for pr, values in sorted(trajectory.items())
        if values
    ]


@dataclass
class RegressionFlag:
    """One metric that drifted beyond tolerance vs its previous record."""

    kind: str  # "kernel_speedup" (lower is worse) | "benchmark_cost" (higher is worse)
    label: str
    previous_pr: int
    previous: float
    current_pr: int
    current: float
    tolerance: float

    @property
    def drift(self) -> float:
        """Signed relative change vs the previous value."""
        return (self.current - self.previous) / self.previous

    def describe(self) -> str:
        direction = "fell" if self.kind == "kernel_speedup" else "rose"
        return (
            f"{self.kind}: {self.label} {direction} "
            f"{abs(self.drift):.0%} (PR {self.previous_pr}: {self.previous:g} "
            f"-> PR {self.current_pr}: {self.current:g}, "
            f"tolerance {self.tolerance:.0%})"
        )


def _drifts(
    per_pr: dict[int, dict[str, float]],
    kind: str,
    tolerance: float,
    worse_when_lower: bool,
) -> list[RegressionFlag]:
    prs = sorted(per_pr)
    if len(prs) < 2:
        return []
    current_pr = prs[-1]
    flags: list[RegressionFlag] = []
    for label, current in sorted(per_pr[current_pr].items()):
        previous_pr = next(
            (pr for pr in reversed(prs[:-1]) if label in per_pr[pr]), None
        )
        if previous_pr is None:
            continue
        previous = per_pr[previous_pr][label]
        if previous <= 0:
            continue
        if worse_when_lower:
            regressed = current < previous * (1.0 - tolerance)
        else:
            regressed = current > previous * (1.0 + tolerance)
        if regressed:
            flags.append(
                RegressionFlag(
                    kind=kind,
                    label=label,
                    previous_pr=previous_pr,
                    previous=previous,
                    current_pr=current_pr,
                    current=current,
                    tolerance=tolerance,
                )
            )
    return flags


def regression_flags(
    bench_root: str | Path,
    speedup_tolerance: float = 0.5,
    cost_tolerance: float = 0.05,
    cost_fields: Sequence[str] = ("final_cost",),
) -> list[RegressionFlag]:
    """Compare the latest BENCH record against history; flag the drifts.

    Two families of rows are watched, with independent tolerances:

    * every ``speedup`` row (the kernel trajectory): flagged when the
      latest value fell more than ``speedup_tolerance`` below its
      previous recorded value.  Timing noise on shared machines is real,
      so the default tolerance is generous — the flag is for *losing* an
      optimization, not for jitter;
    * every cost row (``final_cost`` by default — the schedule cost a
      benchmark pins on a fixed instance): flagged when it *rose* more
      than ``cost_tolerance``.  Costs of deterministic schedulers are
      noise-free, so the default is tight — a cost drift means scheduler
      behavior changed.

    "Previous" is gap-tolerant per row: the most recent earlier PR whose
    record carries the same label (rows appear and retire as benchmarks
    evolve; a retired row flags nothing).
    """
    flags = _drifts(
        collect_metric(bench_root, "speedup"),
        "kernel_speedup",
        speedup_tolerance,
        worse_when_lower=True,
    )
    for field_name in cost_fields:
        flags.extend(
            _drifts(
                collect_metric(bench_root, field_name),
                "benchmark_cost",
                cost_tolerance,
                worse_when_lower=False,
            )
        )
    return flags
