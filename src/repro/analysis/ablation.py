"""Ablation studies for the design choices called out in DESIGN.md.

The paper motivates several design decisions without dedicated experiments
(greedy first-improvement HC, the lazy communication schedule as the default,
closing a BSPg superstep once half the processors are idle, refining every
few uncontraction steps).  The functions in this module quantify those
choices on a configurable instance set so the benchmark harness can report
them alongside the paper's own tables:

* :func:`local_search_component_ablation` — initial schedule vs ``+HC`` vs
  ``+HC+HCcs`` vs simulated annealing (the future-work variant);
* :func:`bspg_idle_fraction_ablation` — the BSPg superstep-closing threshold;
* :func:`comm_schedule_policy_ablation` — eager vs lazy vs optimised
  communication schedules for a fixed assignment;
* :func:`multilevel_refinement_ablation` — refinement interval of the
  multilevel scheduler.

Every function returns ``(rows, text)`` in the same shape as the table
formatters of :mod:`repro.analysis.tables`.
"""

from __future__ import annotations

from typing import Sequence

from ..core.comm import eager_comm_schedule
from ..core.machine import BspMachine
from ..dagdb.datasets import DatasetInstance
from ..schedulers.annealing import SimulatedAnnealingImprover
from ..schedulers.bsp_greedy import BspGreedyScheduler
from ..schedulers.comm_hill_climbing import CommScheduleHillClimbing
from ..schedulers.hill_climbing import HillClimbingImprover
from ..schedulers.ilp.commsched import IlpCommScheduleImprover
from ..schedulers.multilevel import MultilevelScheduler
from ..schedulers.source_heuristic import SourceScheduler
from .metrics import geometric_mean
from .tables import format_grid

__all__ = [
    "local_search_component_ablation",
    "bspg_idle_fraction_ablation",
    "comm_schedule_policy_ablation",
    "multilevel_refinement_ablation",
]


def _geo_ratios(costs: dict[str, list[float]], baseline: str) -> dict[str, float]:
    base = costs[baseline]
    return {
        name: geometric_mean(value / base[i] for i, value in enumerate(values))
        for name, values in costs.items()
    }


def local_search_component_ablation(
    instances: Sequence[DatasetInstance],
    machine: BspMachine,
    local_search_seconds: float | None = 1.0,
) -> tuple[dict[str, float], str]:
    """Initial schedule vs HC vs HC+HCcs vs simulated annealing (ratios to the initial)."""
    costs: dict[str, list[float]] = {"init": [], "hc": [], "hc+hccs": [], "annealing": []}
    hc = HillClimbingImprover()
    hccs = CommScheduleHillClimbing()
    annealing = SimulatedAnnealingImprover(sweeps=10)
    for instance in instances:
        initial = BspGreedyScheduler().schedule(instance.dag, machine)
        improved = hc.improve(initial)
        costs["init"].append(initial.cost())
        costs["hc"].append(improved.cost())
        costs["hc+hccs"].append(hccs.improve(improved).cost())
        costs["annealing"].append(annealing.improve(initial).cost())
    ratios = _geo_ratios(costs, "init")
    rows = {"cost ratio vs Init": {name: f"{value:.3f}" for name, value in ratios.items()}}
    text = format_grid(rows, "", "Ablation: local-search components (lower is better)", column_width=12)
    return ratios, text


def bspg_idle_fraction_ablation(
    instances: Sequence[DatasetInstance],
    machine: BspMachine,
    fractions: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
) -> tuple[dict[float, float], str]:
    """Effect of the BSPg superstep-closing threshold (ratios to the paper's 0.5)."""
    costs: dict[str, list[float]] = {f"{fraction:g}": [] for fraction in fractions}
    for instance in instances:
        for fraction in fractions:
            schedule = BspGreedyScheduler(idle_fraction=fraction).schedule(
                instance.dag, machine
            )
            costs[f"{fraction:g}"].append(schedule.cost())
    ratios = _geo_ratios(costs, "0.5")
    rows = {"cost ratio vs 0.5": {name: f"{value:.3f}" for name, value in ratios.items()}}
    text = format_grid(rows, "", "Ablation: BSPg idle fraction", column_width=10)
    return {float(name): value for name, value in ratios.items()}, text


def comm_schedule_policy_ablation(
    instances: Sequence[DatasetInstance],
    machine: BspMachine,
) -> tuple[dict[str, float], str]:
    """Eager vs lazy vs HCcs vs ILPcs communication schedules for a fixed assignment."""
    costs: dict[str, list[float]] = {"lazy": [], "eager": [], "hccs": [], "ilpcs": []}
    hccs = CommScheduleHillClimbing()
    ilpcs = IlpCommScheduleImprover(time_limit=2.0)
    for instance in instances:
        schedule = SourceScheduler().schedule(instance.dag, machine)
        costs["lazy"].append(schedule.cost())
        eager = schedule.with_comm_schedule(
            eager_comm_schedule(instance.dag, schedule.procs, schedule.supersteps)
        )
        costs["eager"].append(eager.cost())
        costs["hccs"].append(hccs.improve(schedule).cost())
        costs["ilpcs"].append(ilpcs.improve(schedule).cost())
    ratios = _geo_ratios(costs, "lazy")
    rows = {"cost ratio vs lazy": {name: f"{value:.3f}" for name, value in ratios.items()}}
    text = format_grid(rows, "", "Ablation: communication schedule policy", column_width=10)
    return ratios, text


def multilevel_refinement_ablation(
    instances: Sequence[DatasetInstance],
    machine: BspMachine,
    intervals: Sequence[int] = (1, 5, 20),
) -> tuple[dict[int, float], str]:
    """Effect of the multilevel refinement interval (ratios to the paper's 5)."""
    costs: dict[str, list[float]] = {str(interval): [] for interval in intervals}
    for instance in instances:
        for interval in intervals:
            scheduler = MultilevelScheduler(
                base_scheduler=BspGreedyScheduler(),
                coarsening_ratios=(0.3,),
                refine_interval=interval,
            )
            costs[str(interval)].append(scheduler.schedule(instance.dag, machine).cost())
    baseline = "5" if 5 in intervals else str(intervals[0])
    ratios = _geo_ratios(costs, baseline)
    rows = {
        f"cost ratio vs {baseline}": {name: f"{value:.3f}" for name, value in ratios.items()}
    }
    text = format_grid(rows, "", "Ablation: multilevel refinement interval", column_width=10)
    return {int(name): value for name, value in ratios.items()}, text
