"""Tiny deterministic HTML + inline-SVG builders for the report.

No templating engine, no third-party JS or CSS: the report subsystem
emits a single self-contained file a reviewer can open from a CI
artifact, attach to a PR, or diff byte-for-byte against a golden copy.
Everything here is a pure function of its arguments — same inputs, same
bytes — which is the property the golden-file tests pin.

Numbers are formatted through :func:`fmt` (fixed ``%g``-style rendering,
no locale), text through :func:`esc` (HTML entity escaping), charts as
hand-rolled inline SVG (:func:`bar_chart`, :func:`line_chart`) sized in
plain integers so no float jitter ever reaches an attribute.
"""

from __future__ import annotations

import html
from typing import Sequence

__all__ = [
    "bar_chart",
    "esc",
    "fmt",
    "line_chart",
    "page",
    "section",
    "table",
]

#: the entire stylesheet, inlined into every page — intentionally small
STYLE = """
body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 64rem;
       color: #1a1a2e; line-height: 1.45; }
h1 { border-bottom: 2px solid #1a1a2e; padding-bottom: .3rem; }
h2 { margin-top: 2.2rem; }
table { border-collapse: collapse; margin: .8rem 0; }
th, td { border: 1px solid #b8b8c8; padding: .25rem .6rem; text-align: left; }
th { background: #eef; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.flag { color: #a30000; font-weight: 600; }
.ok { color: #006633; }
.note { color: #555; font-size: .9em; }
svg { margin: .4rem 0; }
""".strip()


def esc(text: object) -> str:
    """HTML-escape anything (rendered via ``str``)."""
    return html.escape(str(text), quote=True)


def fmt(value: object, digits: int = 4) -> str:
    """Deterministic number rendering (falls back to ``str`` for non-floats).

    Floats use ``%.{digits}g`` — locale-free, exponent-stable, and short
    enough to keep tables readable.  Integers (and bools) print as-is.
    """
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if value != value:  # NaN
        return "-"
    return f"%.{digits}g" % value


def table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    numeric: Sequence[int] = (),
) -> str:
    """An HTML table; columns listed in ``numeric`` are right-aligned.

    Cell values pass through :func:`fmt` then :func:`esc` — except values
    already wrapped as ``("html", markup)`` tuples, which are inserted
    verbatim (for pre-escaped spans like regression flags).
    """
    numeric_set = set(numeric)
    parts = ["<table>", "<tr>"]
    parts.extend(f"<th>{esc(header)}</th>" for header in headers)
    parts.append("</tr>")
    for row in rows:
        parts.append("<tr>")
        for column, cell in enumerate(row):
            css = ' class="num"' if column in numeric_set else ""
            if isinstance(cell, tuple) and len(cell) == 2 and cell[0] == "html":
                parts.append(f"<td{css}>{cell[1]}</td>")
            else:
                parts.append(f"<td{css}>{esc(fmt(cell))}</td>")
        parts.append("</tr>")
    parts.append("</table>")
    return "".join(parts)


def section(title: str, *bodies: str) -> str:
    """An ``<h2>`` section wrapping pre-rendered body fragments."""
    return f"<h2>{esc(title)}</h2>\n" + "\n".join(bodies)


def page(title: str, *bodies: str, generated_from: str = "") -> str:
    """A complete standalone HTML document.

    ``generated_from`` is a *stable* provenance line (e.g. a store path or
    record count) — never a timestamp, which would break byte-stability.
    """
    provenance = (
        f'<p class="note">{esc(generated_from)}</p>' if generated_from else ""
    )
    body = "\n".join(bodies)
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en">\n<head>\n<meta charset="utf-8">\n'
        f"<title>{esc(title)}</title>\n<style>\n{STYLE}\n</style>\n</head>\n"
        f"<body>\n<h1>{esc(title)}</h1>\n{provenance}\n{body}\n</body>\n</html>\n"
    )


# ---------------------------------------------------------------------- #
# inline SVG charts
# ---------------------------------------------------------------------- #
_BAR_COLORS = ("#4363d8", "#3cb44b", "#e6194b", "#911eb4", "#f58231", "#469990")


def _scaled(value: float, maximum: float, span: int) -> int:
    """Map ``value`` in [0, maximum] onto integer pixels in [0, span]."""
    if maximum <= 0:
        return 0
    return int(round(span * (value / maximum)))


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 640,
    bar_height: int = 18,
    caption: str = "",
) -> str:
    """A horizontal bar chart as inline SVG (one bar per label).

    Bars are scaled against the maximum value; every coordinate is an
    integer, so rendering is byte-stable.  Empty input renders an empty
    note instead of degenerate SVG.
    """
    if not labels:
        return '<p class="note">no data</p>'
    label_span = 220
    value_span = width - label_span - 80
    maximum = max(values) if values else 0.0
    row = bar_height + 6
    height = row * len(labels) + 8
    parts = [
        f'<svg width="{width}" height="{height}" role="img" '
        f'aria-label="{esc(caption or "bar chart")}">'
    ]
    for index, (label, value) in enumerate(zip(labels, values)):
        y = 4 + index * row
        bar = max(1, _scaled(value, maximum, value_span))
        color = _BAR_COLORS[index % len(_BAR_COLORS)]
        parts.append(
            f'<text x="{label_span - 8}" y="{y + bar_height - 5}" '
            f'text-anchor="end" font-size="12">{esc(label)}</text>'
        )
        parts.append(
            f'<rect x="{label_span}" y="{y}" width="{bar}" '
            f'height="{bar_height}" fill="{color}"></rect>'
        )
        parts.append(
            f'<text x="{label_span + bar + 6}" y="{y + bar_height - 5}" '
            f'font-size="12">{esc(fmt(float(value)))}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def line_chart(
    points: Sequence[tuple[float, float]],
    width: int = 640,
    height: int = 220,
    x_label: str = "",
    y_label: str = "",
    caption: str = "",
) -> str:
    """A single-series line chart as inline SVG.

    The x axis spans the data's x range, the y axis spans [0, max(y)].
    Coordinates are rounded to integers (byte-stable); each point also
    gets a marker circle and a small value annotation.
    """
    if not points:
        return '<p class="note">no data</p>'
    margin_left, margin_bottom, margin_top, margin_right = 56, 34, 12, 16
    plot_w = width - margin_left - margin_right
    plot_h = height - margin_top - margin_bottom
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_min, x_max = min(xs), max(xs)
    y_max = max(ys) if max(ys) > 0 else 1.0
    x_range = (x_max - x_min) or 1.0

    def px(x: float) -> int:
        return margin_left + _scaled(x - x_min, x_range, plot_w)

    def py(y: float) -> int:
        return margin_top + plot_h - _scaled(y, y_max, plot_h)

    axis_y = margin_top + plot_h
    parts = [
        f'<svg width="{width}" height="{height}" role="img" '
        f'aria-label="{esc(caption or "line chart")}">',
        f'<line x1="{margin_left}" y1="{margin_top}" x2="{margin_left}" '
        f'y2="{axis_y}" stroke="#888"></line>',
        f'<line x1="{margin_left}" y1="{axis_y}" x2="{margin_left + plot_w}" '
        f'y2="{axis_y}" stroke="#888"></line>',
    ]
    if y_label:
        parts.append(
            f'<text x="4" y="{margin_top + 10}" font-size="11">'
            f"{esc(y_label)}</text>"
        )
    if x_label:
        parts.append(
            f'<text x="{margin_left + plot_w}" y="{height - 6}" '
            f'text-anchor="end" font-size="11">{esc(x_label)}</text>'
        )
    path = " ".join(
        f"{'M' if index == 0 else 'L'}{px(x)},{py(y)}"
        for index, (x, y) in enumerate(points)
    )
    parts.append(
        f'<path d="{path}" fill="none" stroke="#4363d8" stroke-width="2">'
        "</path>"
    )
    for x, y in points:
        parts.append(
            f'<circle cx="{px(x)}" cy="{py(y)}" r="3" fill="#4363d8"></circle>'
        )
        parts.append(
            f'<text x="{px(x)}" y="{py(y) - 7}" text-anchor="middle" '
            f'font-size="10">{esc(fmt(float(y), 3))}</text>'
        )
        parts.append(
            f'<text x="{px(x)}" y="{axis_y + 14}" text-anchor="middle" '
            f'font-size="10">{esc(fmt(float(x)))}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)
