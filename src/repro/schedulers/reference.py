"""Retained reference implementations of the local-search refiners.

These are the pre-vectorization walkers of ``HC`` and ``HCcs``: the node-move
hill climbing probes every candidate move by *mutating* the incremental cost
tracker and rolling back rejected moves with the inverse move, and the
communication-schedule hill climbing evaluates every candidate phase of a
window by copy-mutate-restore on the send/receive rows.  Both are kept
verbatim (modulo the move log) as the ground truth the batched, read-only
evaluation paths in :mod:`repro.schedulers.hill_climbing` and
:mod:`repro.schedulers.comm_hill_climbing` are pinned against: the
differential tests assert *identical accepted-move sequences* and identical
final schedules, not merely equal costs.

Like :mod:`repro.core.reference`, this module is part of the test/benchmark
surface, not the production scheduling pipeline.
"""

from __future__ import annotations

import numpy as np

from ..core.comm import CommStep, CommWindow
from ..core.schedule import BspSchedule
from .base import ScheduleImprover, TimeBudget
from .hill_climbing import LazyCostTracker

__all__ = ["HillClimbingImproverReference", "CommScheduleHillClimbingReference"]

_EPS = 1e-9


class HillClimbingImproverReference(ScheduleImprover):
    """Seed ``HC``: probes each candidate with an apply + inverse-apply pair.

    The accepted-move sequence (greedy first improvement over the scan order
    ``supersteps (s-1, s, s+1) x processors 0..P-1``) is the contract the
    vectorized :class:`~repro.schedulers.hill_climbing.HillClimbingImprover`
    must reproduce move for move.
    """

    name = "hill_climbing_reference"

    def __init__(
        self,
        max_passes: int = 50,
        max_steps: int | None = None,
        record_moves: bool = False,
    ) -> None:
        self.max_passes = max_passes
        self.max_steps = max_steps
        self.record_moves = record_moves
        #: accepted moves ``(node, new_proc, new_step)`` of the last run
        self.last_moves: list[tuple[int, int, int]] | None = None

    def improve(
        self,
        schedule: BspSchedule,
        budget: TimeBudget | None = None,
    ) -> BspSchedule:
        budget = budget or TimeBudget.unlimited()
        dag = schedule.dag
        machine = schedule.machine
        moves: list[tuple[int, int, int]] = []
        self.last_moves = moves if self.record_moves else None
        if dag.num_nodes == 0 or schedule.num_supersteps == 0:
            return schedule

        tracker = LazyCostTracker(
            dag, machine, schedule.procs, schedule.supersteps, schedule.num_supersteps
        )
        accepted = 0
        improved_any = True
        passes = 0
        while improved_any and passes < self.max_passes and not budget.expired():
            improved_any = False
            passes += 1
            for v in dag.nodes():
                if budget.expired():
                    break
                if self.max_steps is not None and accepted >= self.max_steps:
                    break
                current_proc = int(tracker.procs[v])
                current_step = int(tracker.supersteps[v])
                moved = False
                for new_step in (current_step - 1, current_step, current_step + 1):
                    if moved:
                        break
                    for new_proc in range(machine.num_procs):
                        if (new_proc, new_step) == (current_proc, current_step):
                            continue
                        if not tracker.is_valid_move(v, new_proc, new_step):
                            continue
                        delta = tracker.apply_move(v, new_proc, new_step)
                        if delta < -_EPS:
                            accepted += 1
                            improved_any = True
                            moved = True
                            if self.record_moves:
                                moves.append((v, new_proc, new_step))
                            break
                        # roll back by applying the inverse move
                        tracker.apply_move(v, current_proc, current_step)
            if self.max_steps is not None and accepted >= self.max_steps:
                break

        procs, supersteps = tracker.assignment()
        candidate = BspSchedule(dag, machine, procs, supersteps).compacted()
        return candidate if candidate.cost() < schedule.cost() - _EPS else schedule


class CommScheduleHillClimbingReference(ScheduleImprover):
    """Seed ``HCcs``: copy-mutate-restore evaluation of every candidate phase."""

    name = "comm_hill_climbing_reference"

    def __init__(self, max_passes: int = 50, record_moves: bool = False) -> None:
        self.max_passes = max_passes
        self.record_moves = record_moves
        #: accepted moves ``(window_index, new_phase)`` of the last run
        self.last_moves: list[tuple[int, int]] | None = None

    def improve(
        self,
        schedule: BspSchedule,
        budget: TimeBudget | None = None,
    ) -> BspSchedule:
        budget = budget or TimeBudget.unlimited()
        machine = schedule.machine
        dag = schedule.dag
        moves: list[tuple[int, int]] = []
        self.last_moves = moves if self.record_moves else None
        windows = schedule.comm_windows()
        if not windows:
            return schedule
        num_supersteps = schedule.num_supersteps

        # columnar view of the windows: one array per field
        nodes = np.array([w.node for w in windows], dtype=np.int64)
        srcs = np.array([w.source for w in windows], dtype=np.int64)
        tgts = np.array([w.target for w in windows], dtype=np.int64)
        earliest = np.array([w.earliest for w in windows], dtype=np.int64)
        latest = np.array([w.latest for w in windows], dtype=np.int64)

        # start from the incumbent's own placement when it is explicit,
        # otherwise from the lazy placement (the window's latest phase)
        if schedule.uses_lazy_comm:
            choices = latest.copy()
        else:
            explicit = {
                (step.node, step.source, step.target): step.superstep
                for step in schedule.comm_schedule
            }
            choices = np.array(
                [
                    explicit.get((w.node, w.source, w.target), w.latest)
                    for w in windows
                ],
                dtype=np.int64,
            )
            # clamp any out-of-window explicit choice back into the window
            np.clip(choices, earliest, latest, out=choices)

        send = np.zeros((num_supersteps, machine.num_procs), dtype=np.float64)
        recv = np.zeros((num_supersteps, machine.num_procs), dtype=np.float64)
        volumes = dag.comm_weights[nodes] * machine.numa[srcs, tgts]
        np.add.at(send, (choices, srcs), volumes)
        np.add.at(recv, (choices, tgts), volumes)
        comm_max = np.maximum(send, recv).max(axis=1)

        improved_any = True
        passes = 0
        while improved_any and passes < self.max_passes and not budget.expired():
            improved_any = False
            passes += 1
            for index, window in enumerate(windows):
                if budget.expired():
                    break
                if window.earliest == window.latest:
                    continue
                current = int(choices[index])
                best_phase = current
                best_delta = 0.0
                for candidate in range(window.earliest, window.latest + 1):
                    if candidate == current:
                        continue
                    delta = self._move_delta(
                        send, recv, comm_max, volumes[index], window, current, candidate
                    )
                    if delta < best_delta - _EPS:
                        best_delta = delta
                        best_phase = candidate
                if best_phase != current:
                    self._apply_move(
                        send, recv, comm_max, volumes[index], window, current, best_phase
                    )
                    choices[index] = best_phase
                    improved_any = True
                    if self.record_moves:
                        moves.append((index, best_phase))

        comm_schedule = frozenset(
            CommStep(w.node, w.source, w.target, int(choices[i]))
            for i, w in enumerate(windows)
        )
        candidate = schedule.with_comm_schedule(comm_schedule)
        return candidate if candidate.cost() < schedule.cost() - _EPS else schedule

    @staticmethod
    def _move_delta(
        send: np.ndarray,
        recv: np.ndarray,
        comm_max: np.ndarray,
        volume: float,
        window: CommWindow,
        old_phase: int,
        new_phase: int,
    ) -> float:
        """Change in total h-relation cost if the transfer moves phases (no state change)."""
        old_rows = {}
        for s in (old_phase, new_phase):
            old_rows[s] = (send[s].copy(), recv[s].copy())
        send[old_phase, window.source] -= volume
        recv[old_phase, window.target] -= volume
        send[new_phase, window.source] += volume
        recv[new_phase, window.target] += volume
        delta = 0.0
        for s in (old_phase, new_phase):
            delta += float(np.maximum(send[s], recv[s]).max()) - comm_max[s]
        for s, (send_row, recv_row) in old_rows.items():
            send[s] = send_row
            recv[s] = recv_row
        return delta

    @staticmethod
    def _apply_move(
        send: np.ndarray,
        recv: np.ndarray,
        comm_max: np.ndarray,
        volume: float,
        window: CommWindow,
        old_phase: int,
        new_phase: int,
    ) -> None:
        send[old_phase, window.source] -= volume
        recv[old_phase, window.target] -= volume
        send[new_phase, window.source] += volume
        recv[new_phase, window.target] += volume
        for s in (old_phase, new_phase):
            comm_max[s] = float(np.maximum(send[s], recv[s]).max())
