"""A cluster-based baseline scheduler (DSC-style linear clustering + merging).

The paper's related-work section (§2, §4.1) discusses cluster-based
heuristics (e.g. DSC [42]) as the second large family of classical
scheduling algorithms besides list schedulers, noting that previous studies
found them consistently outperformed by BL-EST/ETF once communication
volume matters.  This module provides such a baseline so that the claim can
be checked inside this framework as well:

1. **Linear clustering**: walk the DAG along critical paths (largest
   bottom level first) and grow zero-communication chains — every node is
   merged into the cluster of the predecessor that would otherwise cause the
   most expensive transfer, provided that predecessor's cluster has not been
   extended in this superstep by another node.
2. **Cluster merging**: while there are more clusters than processors,
   merge the two smallest clusters (by total work).
3. **Mapping**: clusters are assigned to processors round-robin by
   decreasing work; supersteps are the topological levels of the original
   DAG (wavefronts), which keeps the schedule valid for any clustering.
"""

from __future__ import annotations

import numpy as np

from ..core.dag import ComputationalDAG
from ..core.machine import BspMachine
from ..core.schedule import BspSchedule
from .base import Scheduler, TimeBudget

__all__ = ["LinearClusteringScheduler"]


class LinearClusteringScheduler(Scheduler):
    """DSC-flavoured linear clustering followed by load-balanced mapping."""

    name = "clustering"

    def schedule(
        self,
        dag: ComputationalDAG,
        machine: BspMachine,
        budget: TimeBudget | None = None,
    ) -> BspSchedule:
        n = dag.num_nodes
        procs = np.zeros(n, dtype=np.int64)
        supersteps = np.zeros(n, dtype=np.int64)
        if n == 0:
            return BspSchedule(dag, machine, procs, supersteps)

        cluster_of = self._linear_clusters(dag)
        cluster_of = self._merge_small_clusters(dag, cluster_of, machine.num_procs)

        # map clusters to processors: decreasing total work, round-robin.
        # per-cluster work is one weighted bincount over the CSR weight vector
        cluster_arr = np.asarray(cluster_of, dtype=np.int64)
        counts = np.bincount(cluster_arr)
        totals = np.bincount(cluster_arr, weights=dag.work_weights)
        cluster_ids = np.flatnonzero(counts).tolist()
        proc_of_cluster: dict[int, int] = {}
        for index, cluster in enumerate(
            sorted(cluster_ids, key=lambda c: (-totals[c], c))
        ):
            proc_of_cluster[cluster] = index % machine.num_procs

        # supersteps: wavefronts of the original DAG -- every edge crosses to a
        # strictly later superstep, so the schedule is valid for any clustering
        proc_map = np.zeros(int(cluster_arr.max()) + 1, dtype=np.int64)
        for cluster, proc in proc_of_cluster.items():
            proc_map[cluster] = proc
        procs = proc_map[cluster_arr]
        supersteps = dag.levels().astype(np.int64)
        return BspSchedule(dag, machine, procs, supersteps)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _linear_clusters(dag: ComputationalDAG) -> list[int]:
        """Grow zero-communication chains along heavy edges (linear clustering)."""
        cluster_of = [-1] * dag.num_nodes
        # a linear cluster may contain at most one node per topological level,
        # so remember the deepest level already used by each cluster
        deepest_level: dict[int, int] = {}
        levels = dag.levels()
        bottom = dag.bottom_levels()
        order = sorted(dag.nodes(), key=lambda v: (levels[v], -bottom[v], v))
        next_cluster = 0
        for v in order:
            candidates = []
            for u in dag.pred(v).tolist():
                cluster = cluster_of[u]
                if deepest_level.get(cluster, -1) < levels[v]:
                    candidates.append((dag.comm(u), u, cluster))
            if candidates:
                _, _, chosen = max(candidates, key=lambda item: (item[0], -item[1]))
                cluster_of[v] = chosen
            else:
                cluster_of[v] = next_cluster
                next_cluster += 1
            deepest_level[cluster_of[v]] = int(levels[v])
        return cluster_of

    @staticmethod
    def _merge_small_clusters(
        dag: ComputationalDAG, cluster_of: list[int], num_procs: int
    ) -> list[int]:
        """Merge the smallest clusters until at most ``4 * num_procs`` remain.

        Cluster totals are maintained incrementally, so each merge is O(n)
        for the relabel plus O(k log k) for the smallest-pair selection
        instead of a full recount per round.
        """
        target = max(num_procs * 4, 1)
        cluster_arr = np.asarray(cluster_of, dtype=np.int64)
        counts = np.bincount(cluster_arr)
        totals = np.bincount(cluster_arr, weights=dag.work_weights)
        work = {int(c): float(totals[c]) for c in np.flatnonzero(counts)}
        while len(work) > target:
            smallest = sorted(work, key=lambda c: (work[c], c))[:2]
            keep, drop = smallest[0], smallest[1]
            cluster_arr[cluster_arr == drop] = keep
            work[keep] += work.pop(drop)
        return cluster_arr.tolist()
