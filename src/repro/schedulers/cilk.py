"""The Cilk work-stealing baseline (paper §4.1 and Appendix A.1).

Cilk maintains one stack of ready tasks per processor.  When the last direct
predecessor of a node finishes on processor ``p``, the node is pushed onto
the *top* of ``p``'s stack.  An idle processor pops from the top of its own
stack; if its stack is empty it picks another processor with a non-empty
stack uniformly at random and *steals* the task at the *bottom* of that
stack.  Communication costs are ignored while building the schedule (Cilk is
oblivious to them); the resulting classical (time-indexed) schedule is then
converted into a BSP schedule with
:func:`repro.core.classical.classical_to_bsp` and evaluated under the full
BSP(+NUMA) cost model.

Source nodes (which have no "last finishing predecessor") are seeded onto
processor 0's stack, matching the original Cilk setting of a single initial
task whose children are then distributed by stealing.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..core.classical import ClassicalSchedule, classical_to_bsp
from ..core.dag import ComputationalDAG
from ..core.machine import BspMachine
from ..core.schedule import BspSchedule
from .base import Scheduler, TimeBudget

__all__ = ["CilkScheduler"]


class CilkScheduler(Scheduler):
    """Work-stealing list scheduler with seeded (reproducible) victim selection."""

    name = "cilk"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    # ------------------------------------------------------------------ #
    def classical_schedule(
        self, dag: ComputationalDAG, num_procs: int
    ) -> ClassicalSchedule:
        """Run the work-stealing simulation and return the classical schedule."""
        rng = np.random.default_rng(self.seed)
        n = dag.num_nodes
        procs = np.zeros(n, dtype=np.int64)
        start_times = np.zeros(n, dtype=np.float64)
        finish_times = np.zeros(n, dtype=np.float64)

        remaining_preds = dag.in_degrees().tolist()
        stacks: list[list[int]] = [[] for _ in range(num_procs)]
        # Seed all sources on processor 0 (reverse order so that the
        # lowest-index source ends up on top of the stack).
        for v in reversed(dag.sources()):
            stacks[0].append(v)

        idle = set(range(num_procs))
        events: list[tuple[float, int, int]] = []  # (finish_time, node, proc)
        scheduled = 0
        current_time = 0.0

        def try_dispatch() -> None:
            """Hand ready tasks to idle processors until no more moves exist."""
            nonlocal scheduled
            progress = True
            while progress and idle:
                progress = False
                for p in sorted(idle):
                    task = self._acquire_task(p, stacks, rng)
                    if task is None:
                        continue
                    idle.discard(p)
                    procs[task] = p
                    start_times[task] = current_time
                    finish_times[task] = current_time + dag.work(task)
                    heapq.heappush(events, (finish_times[task], task, p))
                    scheduled += 1
                    progress = True

        try_dispatch()
        while scheduled < n or events:
            if not events:
                # No running task and nothing dispatchable: every remaining
                # node still waits on a predecessor, which is impossible in a
                # DAG simulation -- guard against silent infinite loops.
                raise RuntimeError("work-stealing simulation stalled")
            current_time, node, proc = heapq.heappop(events)
            # Release successors whose last predecessor just finished; they
            # are pushed on top of the finishing processor's stack.
            for succ in dag.succ(node).tolist():
                remaining_preds[succ] -= 1
                if remaining_preds[succ] == 0:
                    stacks[proc].append(succ)
            idle.add(proc)
            # Drain all events at the same timestamp before dispatching, so
            # ties are handled consistently.
            while events and events[0][0] == current_time:
                _, other_node, other_proc = heapq.heappop(events)
                for succ in dag.succ(other_node).tolist():
                    remaining_preds[succ] -= 1
                    if remaining_preds[succ] == 0:
                        stacks[other_proc].append(succ)
                idle.add(other_proc)
            try_dispatch()

        return ClassicalSchedule(
            dag=dag,
            num_procs=num_procs,
            procs=procs,
            start_times=start_times,
            finish_times=finish_times,
        )

    @staticmethod
    def _acquire_task(
        proc: int, stacks: list[list[int]], rng: np.random.Generator
    ) -> int | None:
        """Pop from the own stack top, or steal from the bottom of a random victim."""
        if stacks[proc]:
            return stacks[proc].pop()
        victims = [p for p, stack in enumerate(stacks) if p != proc and stack]
        if not victims:
            return None
        victim = victims[int(rng.integers(len(victims)))]
        return stacks[victim].pop(0)

    # ------------------------------------------------------------------ #
    def schedule(
        self,
        dag: ComputationalDAG,
        machine: BspMachine,
        budget: TimeBudget | None = None,
    ) -> BspSchedule:
        classical = self.classical_schedule(dag, machine.num_procs)
        return classical_to_bsp(classical, machine)
