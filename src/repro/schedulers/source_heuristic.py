"""The Source initialisation heuristic (paper §4.2, Appendix A.2, Algorithm 2).

``Source`` peels the DAG layer by layer: every iteration takes the current
source nodes (all predecessors already assigned), forms a new superstep from
them, and assigns them to processors round-robin in decreasing order of work
weight (for load balance).  The very first superstep instead clusters the
original sources — sources sharing a direct successor are grouped together —
and distributes the clusters round-robin, so that the inputs of the same
operation start out on the same processor.  After each round-robin pass, any
direct successor whose predecessors all ended up on one processor is pulled
into the current superstep on that processor (this avoids opening new
supersteps unnecessarily).

The schedule uses the lazy communication schedule.
"""

from __future__ import annotations

import numpy as np

from ..core.dag import ComputationalDAG
from ..core.machine import BspMachine
from ..core.schedule import BspSchedule
from .base import Scheduler, TimeBudget

__all__ = ["SourceScheduler"]


class _UnionFind:
    """Minimal union-find used to cluster the initial source nodes."""

    def __init__(self, elements: list[int]) -> None:
        self.parent = {v: v for v in elements}

    def find(self, v: int) -> int:
        root = v
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[v] != root:
            self.parent[v], v = root, self.parent[v]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[max(ra, rb)] = min(ra, rb)


class SourceScheduler(Scheduler):
    """Layer-by-layer round-robin heuristic (``Source``)."""

    name = "source"

    def schedule(
        self,
        dag: ComputationalDAG,
        machine: BspMachine,
        budget: TimeBudget | None = None,
    ) -> BspSchedule:
        n = dag.num_nodes
        num_procs = machine.num_procs
        procs = np.zeros(n, dtype=np.int64)
        supersteps = np.zeros(n, dtype=np.int64)
        if n == 0:
            return BspSchedule(dag, machine, procs, supersteps)

        assigned = np.zeros(n, dtype=bool)
        remaining_preds = dag.in_degrees()
        frontier = sorted(dag.sources())
        superstep = 0

        def mark_assigned(node: int, proc: int) -> list[int]:
            """Assign ``node`` and return successors that just became sources."""
            procs[node] = proc
            supersteps[node] = superstep
            assigned[node] = True
            newly_ready = []
            for succ in dag.succ(node).tolist():
                remaining_preds[succ] -= 1
                if remaining_preds[succ] == 0:
                    newly_ready.append(succ)
            return newly_ready

        while frontier:
            next_frontier: list[int] = []
            if superstep == 0:
                clusters = self._cluster_initial_sources(dag, frontier)
                proc = 0
                for cluster in clusters:
                    for node in cluster:
                        next_frontier.extend(mark_assigned(node, proc))
                    proc = (proc + 1) % num_procs
            else:
                proc = 0
                for node in sorted(frontier, key=lambda v: (-dag.work(v), v)):
                    next_frontier.extend(mark_assigned(node, proc))
                    proc = (proc + 1) % num_procs

            # Pull successors whose predecessors all sit on one processor into
            # the current superstep (no communication needed for them).  As in
            # the paper's Algorithm 2 this is a single pass over the direct
            # successors of the layer just assigned, not a fixpoint iteration.
            for node in list(next_frontier):
                preds = dag.pred(node)
                if preds.size and assigned[preds].all():
                    owner_procs = np.unique(procs[preds])
                    if owner_procs.size == 1:
                        next_frontier.remove(node)
                        next_frontier.extend(mark_assigned(node, int(owner_procs[0])))

            frontier = sorted(set(next_frontier))
            superstep += 1

        return BspSchedule(dag, machine, procs, supersteps)

    @staticmethod
    def _cluster_initial_sources(
        dag: ComputationalDAG, sources: list[int]
    ) -> list[list[int]]:
        """Group the initial sources: sources sharing a direct successor are merged."""
        union_find = _UnionFind(list(sources))
        source_set = set(sources)
        seen_parent_of: dict[int, int] = {}
        for source in sources:
            for succ in dag.succ(source).tolist():
                if succ in seen_parent_of:
                    other = seen_parent_of[succ]
                    if other in source_set:
                        union_find.union(source, other)
                else:
                    seen_parent_of[succ] = source
        clusters: dict[int, list[int]] = {}
        for source in sources:
            clusters.setdefault(union_find.find(source), []).append(source)
        return [sorted(cluster) for _, cluster in sorted(clusters.items())]
