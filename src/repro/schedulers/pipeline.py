"""The combined scheduling framework (paper Figure 3 and Figure 4, Section 6).

The base pipeline

1. runs the initialisation heuristics (``BSPg`` and ``Source`` always,
   ``ILPinit`` only when the processor count is small, as tuned in
   Appendix C.1),
2. improves every initial schedule with the local search pair ``HC`` +
   ``HCcs`` and keeps the best result,
3. applies the ILP stage: ``ILPfull`` when the estimated model size permits,
   otherwise ``ILPpart``, followed by ``ILPcs``,
4. never accepts a stage output that increases the exactly evaluated cost.

:class:`SchedulingPipeline` exposes both a plain :meth:`schedule` and
:meth:`schedule_with_stages`, which records the cost after every stage —
this is what the experiment harness uses to reproduce the ``Init`` /
``HCcs`` / ``ILP`` columns of the paper's figures and tables.

:class:`MultilevelPipeline` wraps the multilevel scheduler of Figure 4
around the same base pipeline.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field, fields

from ..core.dag import ComputationalDAG
from ..core.machine import BspMachine
from ..core.parallel import parallel_map
from ..core.schedule import BspSchedule
from .base import (
    Budget,
    Scheduler,
    ScheduleImprover,
    TimeBudget,
    best_schedule,
    budget_limits,
)
from .bsp_greedy import BspGreedyScheduler
from .comm_hill_climbing import CommScheduleHillClimbing
from .hill_climbing import HillClimbingImprover
from .ilp import (
    IlpCommScheduleImprover,
    IlpFullImprover,
    IlpInitScheduler,
    IlpPartialImprover,
)
from .multilevel import MultilevelScheduler
from .source_heuristic import SourceScheduler

__all__ = [
    "ENV_INIT_WORKERS",
    "MultilevelPipeline",
    "PipelineConfig",
    "PipelineResult",
    "SchedulingPipeline",
    "StageCosts",
    "resolve_init_workers",
]

_EPS = 1e-9

#: environment knob for the initialiser fan-out width (used when the config
#: leaves ``init_workers`` unset)
ENV_INIT_WORKERS = "REPRO_INIT_WORKERS"


def resolve_init_workers(value: int | None) -> int:
    """Effective initialiser fan-out width.

    An explicit ``value`` wins; otherwise the ``REPRO_INIT_WORKERS``
    environment variable is consulted (default 1 = serial).  The result is
    clamped to at least 1.
    """
    if value is not None:
        return max(int(value), 1)
    raw = os.environ.get(ENV_INIT_WORKERS, "").strip()
    if not raw:
        return 1
    try:
        return max(int(raw), 1)
    except ValueError:
        warnings.warn(
            f"ignoring non-integer {ENV_INIT_WORKERS}={raw!r}", stacklevel=2
        )
        return 1


@dataclass
class PipelineConfig:
    """Tunable knobs of the base pipeline.

    The defaults mirror the paper's setup at benchmark-friendly time limits;
    every limit can be raised to the paper's original values for full-scale
    runs.
    """

    #: apply ``ILPinit`` only when the machine has at most this many processors
    ilp_init_max_procs: int = 4
    #: use any ILP-based stage at all
    use_ilp: bool = True
    #: run the final communication-schedule ILP
    use_comm_ilp: bool = True
    #: run ``ILPfull`` when its estimated variable count is below its threshold
    use_full_ilp: bool = True
    #: wall-clock seconds for each HC + HCcs pass (paper: 300 s)
    local_search_seconds: float | None = 5.0
    #: maximum full HC passes per local-search invocation
    hc_max_passes: int = 50
    #: optional cap on accepted HC moves per invocation (``None`` = until
    #: convergence); the experiment drivers thread a per-grid-point value
    #: through here for the huge-dataset runs
    hc_max_steps: int | None = None
    #: maximum HCcs passes per local-search invocation
    hccs_max_passes: int = 50
    #: wall-clock seconds for ILPfull (paper: 3600 s)
    ilp_full_seconds: float | None = 20.0
    #: wall-clock seconds per ILPpart window (paper: 180 s)
    ilp_partial_seconds: float | None = 10.0
    #: wall-clock seconds for ILPcs (paper: 300 s)
    ilp_comm_seconds: float | None = 10.0
    #: wall-clock seconds per ILPinit batch (paper: 120 s)
    ilp_init_seconds: float | None = 10.0
    #: variable-count thresholds (paper: 20 000 / 4 000 / 2 000)
    ilp_full_max_variables: int = 20000
    ilp_partial_max_variables: int = 4000
    ilp_init_max_variables: int = 2000
    #: deterministic branch-and-bound node cap for every ILP solve
    #: (``None`` = wall-clock limits only).  Setting this and clearing the
    #: ``ilp_*_seconds`` knobs makes the whole pipeline reproducible
    #: bit-for-bit regardless of machine load — the deterministic
    #: counterpart of the PR-4 ``hc_max_steps`` treatment.
    ilp_node_limit: int | None = None
    #: random seed forwarded to randomised components
    seed: int = 0
    #: thread fan-out width for the per-initialiser local-search runs
    #: (``None`` = read ``REPRO_INIT_WORKERS``, default serial).  This is an
    #: execution knob, not part of the declarative wire form: the schedule
    #: produced is bit-identical for every width, so :meth:`to_dict`
    #: excludes it and result fingerprints are unaffected.
    init_workers: int | None = None

    def to_dict(self) -> dict:
        """Plain JSON-compatible dict (the declarative wire form).

        ``init_workers`` is deliberately omitted: it changes how fast the
        pipeline runs, never what it produces.
        """
        data = dict(self.__dict__)
        del data["init_workers"]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "PipelineConfig":
        """Rebuild a config from :meth:`to_dict` output (unknown keys rejected)."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise TypeError(
                f"unknown PipelineConfig field(s): {', '.join(unknown)}"
            )
        return cls(**data)

    @classmethod
    def fast(cls) -> "PipelineConfig":
        """Aggressively small time limits for quick benchmark/CI runs.

        The stage structure is unchanged; only the per-stage budgets shrink,
        so the benchmark harness reproduces the *shape* of the paper's
        results within seconds per instance.
        """
        return cls(
            local_search_seconds=0.5,
            ilp_full_seconds=3.0,
            ilp_partial_seconds=1.5,
            ilp_comm_seconds=1.5,
            ilp_init_seconds=1.5,
            ilp_full_max_variables=6000,
            ilp_partial_max_variables=2500,
            ilp_init_max_variables=1200,
        )


@dataclass
class StageCosts:
    """Costs recorded after the pipeline stages (one instance, one machine)."""

    initial: dict[str, float] = field(default_factory=dict)
    best_init: float = float("inf")
    after_local_search: float = float("inf")
    after_ilp_assignment: float = float("inf")
    after_comm_ilp: float = float("inf")

    @property
    def final(self) -> float:
        """Cost of the final schedule."""
        return self.after_comm_ilp

    def to_dict(self) -> dict:
        """JSON-compatible representation (inverse of :meth:`from_dict`)."""
        return {
            "initial": {name: float(cost) for name, cost in self.initial.items()},
            "best_init": float(self.best_init),
            "after_local_search": float(self.after_local_search),
            "after_ilp_assignment": float(self.after_ilp_assignment),
            "after_comm_ilp": float(self.after_comm_ilp),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StageCosts":
        """Rebuild stage costs from :meth:`to_dict` output."""
        return cls(
            initial={str(k): float(v) for k, v in data.get("initial", {}).items()},
            best_init=float(data["best_init"]),
            after_local_search=float(data["after_local_search"]),
            after_ilp_assignment=float(data["after_ilp_assignment"]),
            after_comm_ilp=float(data["after_comm_ilp"]),
        )


@dataclass
class PipelineResult:
    """Final schedule plus the per-stage cost trace."""

    schedule: BspSchedule
    stages: StageCosts


def _improve_one_initializer(payload, initializer):
    """Run one initialiser and its HC + HCcs local search (fan-out handler).

    Module-level handler for :func:`repro.core.parallel.parallel_map`; the
    tasks are independent (each gets fresh improver instances and fresh
    per-stage budgets), so running them on a thread pool changes wall-clock
    only — the returned ``(initial, improved)`` pair is identical to the
    serial run's.
    """
    pipeline, dag, machine, budget, outer_steps, outer_nodes = payload
    config = pipeline.config
    seconds = config.local_search_seconds

    initial = initializer.schedule(dag, machine, budget)
    hill_climb, comm_climb = pipeline._local_search()
    hc_budget = Budget(
        None if seconds is None else 0.9 * seconds,
        max_steps=outer_steps,
        ilp_node_limit=outer_nodes,
    )
    improved = hill_climb.improve(initial.with_lazy_comm(), hc_budget)
    hccs_budget = Budget(
        None if seconds is None else 0.1 * seconds,
        max_steps=outer_steps,
        ilp_node_limit=outer_nodes,
    )
    improved = comm_climb.improve(improved, hccs_budget)
    return initial, improved


class SchedulingPipeline(Scheduler):
    """The base scheduling framework of Figure 3."""

    name = "framework"

    def __init__(self, config: PipelineConfig | None = None) -> None:
        self.config = config or PipelineConfig()

    # ------------------------------------------------------------------ #
    @classmethod
    def default(cls, use_ilp: bool = True, use_comm_ilp: bool = True) -> "SchedulingPipeline":
        """A pipeline with default settings, optionally without the ILP stages."""
        return cls(PipelineConfig(use_ilp=use_ilp, use_comm_ilp=use_comm_ilp))

    @classmethod
    def heuristics_only(cls, local_search_seconds: float | None = 5.0) -> "SchedulingPipeline":
        """Initialisers + local search only (the configuration used on the huge dataset)."""
        return cls(
            PipelineConfig(use_ilp=False, use_comm_ilp=False, local_search_seconds=local_search_seconds)
        )

    # ------------------------------------------------------------------ #
    def _initializers(self, machine: BspMachine) -> list[Scheduler]:
        config = self.config
        initializers: list[Scheduler] = [BspGreedyScheduler(), SourceScheduler()]
        if config.use_ilp and machine.num_procs <= config.ilp_init_max_procs:
            initializers.append(
                IlpInitScheduler(
                    max_variables=config.ilp_init_max_variables,
                    time_limit_per_batch=config.ilp_init_seconds,
                    node_limit=config.ilp_node_limit,
                )
            )
        return initializers

    def _local_search(self) -> tuple[ScheduleImprover, ScheduleImprover]:
        config = self.config
        return (
            HillClimbingImprover(
                max_passes=config.hc_max_passes, max_steps=config.hc_max_steps
            ),
            CommScheduleHillClimbing(max_passes=config.hccs_max_passes),
        )

    # ------------------------------------------------------------------ #
    def schedule(
        self,
        dag: ComputationalDAG,
        machine: BspMachine,
        budget: TimeBudget | None = None,
    ) -> BspSchedule:
        return self.schedule_with_stages(dag, machine, budget).schedule

    def schedule_with_stages(
        self,
        dag: ComputationalDAG,
        machine: BspMachine,
        budget: TimeBudget | None = None,
    ) -> PipelineResult:
        """Run the full pipeline and record the cost after each stage."""
        config = self.config
        budget = budget or TimeBudget.unlimited()
        stages = StageCosts()

        # a unified outer Budget's deterministic limits propagate into the
        # per-stage local-search budgets (the ILP stages read them straight
        # from the outer budget they already receive)
        outer_steps, outer_nodes = budget_limits(budget)

        # --- stage 1 + 2: initialisers, each followed by HC + HCcs -------- #
        # the per-initialiser runs are independent, so they fan out over a
        # thread pool (``init_workers`` / REPRO_INIT_WORKERS); results come
        # back in initialiser-registry order and the winner is picked by
        # ``min`` with its stable first-wins tie-break, so the outcome is
        # bit-identical to the serial run at any width
        initializers = self._initializers(machine)
        workers = resolve_init_workers(config.init_workers)
        payload = (self, dag, machine, budget, outer_steps, outer_nodes)
        outcomes = parallel_map(
            _improve_one_initializer,
            payload,
            initializers,
            workers=workers,
            executor="thread",
        )
        candidates: list[BspSchedule] = []
        improved_candidates: list[BspSchedule] = []
        for initializer, (initial, improved) in zip(initializers, outcomes):
            stages.initial[initializer.name] = initial.cost()
            candidates.append(initial)
            improved_candidates.append(improved)

        stages.best_init = min(schedule.cost() for schedule in candidates)
        incumbent = best_schedule(*improved_candidates)
        stages.after_local_search = incumbent.cost()

        # --- stage 3: ILP-based improvement ------------------------------- #
        if config.use_ilp:
            # the ILP assignment methods operate on the lazy-communication view
            assignment_view = incumbent.with_lazy_comm()
            if assignment_view.cost() > incumbent.cost() + _EPS:
                assignment_view = incumbent
            full = IlpFullImprover(
                max_variables=config.ilp_full_max_variables,
                time_limit=config.ilp_full_seconds,
                node_limit=config.ilp_node_limit,
            )
            if config.use_full_ilp and full.applicable(assignment_view):
                assignment_view = full.improve(assignment_view, budget)
            else:
                partial = IlpPartialImprover(
                    max_variables=config.ilp_partial_max_variables,
                    time_limit_per_window=config.ilp_partial_seconds,
                    node_limit=config.ilp_node_limit,
                )
                assignment_view = partial.improve(assignment_view, budget)
            incumbent = best_schedule(incumbent, assignment_view)
        stages.after_ilp_assignment = incumbent.cost()

        if config.use_ilp and config.use_comm_ilp:
            comm_ilp = IlpCommScheduleImprover(
                time_limit=config.ilp_comm_seconds, node_limit=config.ilp_node_limit
            )
            incumbent = best_schedule(incumbent, comm_ilp.improve(incumbent, budget))
        stages.after_comm_ilp = incumbent.cost()

        return PipelineResult(schedule=incumbent, stages=stages)


class MultilevelPipeline(Scheduler):
    """The multilevel framework of Figure 4 built on top of the base pipeline."""

    name = "multilevel_framework"

    def __init__(
        self,
        config: PipelineConfig | None = None,
        coarsening_ratios: tuple[float, ...] = (0.3, 0.15),
        refine_interval: int = 5,
        refine_max_steps: int = 100,
        refine_rounds: int = 1,
    ) -> None:
        self.config = config or PipelineConfig()
        base_config = PipelineConfig(**{**self.config.__dict__, "use_comm_ilp": False})
        comm_improvers: tuple[ScheduleImprover, ...] = (
            CommScheduleHillClimbing(max_passes=self.config.hccs_max_passes),
        )
        if self.config.use_ilp and self.config.use_comm_ilp:
            comm_improvers = comm_improvers + (
                IlpCommScheduleImprover(
                    time_limit=self.config.ilp_comm_seconds,
                    node_limit=self.config.ilp_node_limit,
                ),
            )
        self._scheduler = MultilevelScheduler(
            base_scheduler=SchedulingPipeline(base_config),
            coarsening_ratios=coarsening_ratios,
            refine_interval=refine_interval,
            refine_max_steps=refine_max_steps,
            refine_rounds=refine_rounds,
            comm_improvers=comm_improvers,
        )

    def schedule(
        self,
        dag: ComputationalDAG,
        machine: BspMachine,
        budget: TimeBudget | None = None,
    ) -> BspSchedule:
        return self._scheduler.schedule(dag, machine, budget)
