"""Simulated-annealing local search (the paper's "escape local minima" future work).

Section 8 of the paper lists "more complex local search techniques that also
attempt to escape local minima" as a natural extension of the hill-climbing
``HC`` method.  :class:`SimulatedAnnealingImprover` implements exactly that:
it explores the same single-node move neighbourhood as ``HC`` (any processor,
previous/same/next superstep) through the same incremental
:class:`~repro.schedulers.hill_climbing.LazyCostTracker` (which reads
neighbourhoods as zero-copy CSR slices, so every proposal evaluation is a
handful of vectorized numpy expressions), but accepts
cost-increasing moves with probability ``exp(-Δ / T)`` under a geometrically
cooling temperature ``T``.  The best assignment seen during the walk is
returned (never worse than the input, like every improver in the framework).
"""

from __future__ import annotations

import math

import numpy as np

from ..core.schedule import BspSchedule
from .base import ScheduleImprover, TimeBudget
from .hill_climbing import LazyCostTracker

__all__ = ["SimulatedAnnealingImprover"]

_EPS = 1e-9


class SimulatedAnnealingImprover(ScheduleImprover):
    """Single-node-move simulated annealing on top of the lazy cost tracker.

    Parameters
    ----------
    initial_temperature:
        Starting temperature as a *fraction of the initial cost* (so the
        schedule scale does not matter); e.g. ``0.05`` allows uphill moves
        of about 5% of the cost early on.
    cooling:
        Geometric cooling factor applied after every sweep over the nodes.
    sweeps:
        Number of sweeps (each sweep proposes one random move per node).
    seed:
        RNG seed for reproducible runs.
    """

    name = "simulated_annealing"

    def __init__(
        self,
        initial_temperature: float = 0.05,
        cooling: float = 0.9,
        sweeps: int = 20,
        seed: int = 0,
    ) -> None:
        if not 0 < cooling < 1:
            raise ValueError("cooling must be in (0, 1)")
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self.sweeps = sweeps
        self.seed = seed

    def improve(
        self,
        schedule: BspSchedule,
        budget: TimeBudget | None = None,
    ) -> BspSchedule:
        budget = budget or TimeBudget.unlimited()
        dag = schedule.dag
        machine = schedule.machine
        if dag.num_nodes == 0 or schedule.num_supersteps == 0:
            return schedule

        rng = np.random.default_rng(self.seed)
        tracker = LazyCostTracker(
            dag, machine, schedule.procs, schedule.supersteps, schedule.num_supersteps
        )
        current_cost = tracker.cost()
        best_cost = current_cost
        best_assignment = tracker.assignment()
        temperature = max(self.initial_temperature * current_cost, _EPS)

        for _ in range(self.sweeps):
            if budget.expired():
                break
            for v in rng.permutation(dag.num_nodes):
                v = int(v)
                new_proc = int(rng.integers(machine.num_procs))
                new_step = int(tracker.supersteps[v]) + int(rng.integers(-1, 2))
                if not tracker.is_valid_move(v, new_proc, new_step):
                    continue
                old_proc = int(tracker.procs[v])
                old_step = int(tracker.supersteps[v])
                delta = tracker.apply_move(v, new_proc, new_step)
                accept = delta <= _EPS or rng.random() < math.exp(-delta / temperature)
                if not accept:
                    tracker.apply_move(v, old_proc, old_step)
                    continue
                current_cost += delta
                if current_cost < best_cost - _EPS:
                    best_cost = current_cost
                    best_assignment = tracker.assignment()
            temperature = max(temperature * self.cooling, _EPS)

        procs, supersteps = best_assignment
        candidate = BspSchedule(dag, machine, procs, supersteps).compacted()
        return candidate if candidate.cost() < schedule.cost() - _EPS else schedule
