"""BL-EST and ETF list-scheduling baselines (paper §4.1 and Appendix A.1).

Both schedulers build a classical (time-indexed) schedule that accounts for
communication *volume*: when a node's predecessor was computed on a
different processor, the data only becomes available after a delay of
``g * c(u) * λ̄`` where ``λ̄`` is the average NUMA multiplier over all pairs
of distinct processors (the paper folds NUMA into this single average for
the baselines, Appendix A.1).

* **BL-EST** repeatedly picks the ready node with the largest *bottom level*
  (longest outgoing work path) and assigns it to the processor offering the
  earliest start time (EST).
* **ETF** (Earliest Task First) considers every (ready node, processor)
  pair and schedules the pair with the globally earliest start time,
  breaking ties towards larger bottom level.

The classical schedules are converted to BSP with
:func:`repro.core.classical.classical_to_bsp`.
"""

from __future__ import annotations

import numpy as np

from ..core.classical import ClassicalSchedule, classical_to_bsp
from ..core.dag import ComputationalDAG
from ..core.machine import BspMachine
from ..core.schedule import BspSchedule
from .base import Scheduler, TimeBudget

__all__ = ["BlEstScheduler", "EtfScheduler"]


class _ListSchedulerBase(Scheduler):
    """Shared machinery of the BL-EST and ETF baselines.

    The inner loops read neighbourhoods as zero-copy CSR slices and compute
    the data-ready time of a candidate ``(node, proc)`` pair with one
    vectorized expression over the predecessor slice; the per-predecessor
    communication delays ``g * c(u) * λ̄`` are precomputed once per run.
    """

    def _communication_delays(
        self, dag: ComputationalDAG, machine: BspMachine
    ) -> np.ndarray:
        return machine.g * dag.comm_weights * machine.average_numa_multiplier

    def _earliest_start(
        self,
        dag: ComputationalDAG,
        node: int,
        proc: int,
        procs: np.ndarray,
        finish_times: np.ndarray,
        proc_ready: np.ndarray,
        delays: np.ndarray,
    ) -> float:
        preds = dag.pred(node)
        data_ready = 0.0
        if preds.size:
            arrivals = finish_times[preds] + delays[preds] * (procs[preds] != proc)
            data_ready = float(arrivals.max())
        return max(data_ready, float(proc_ready[proc]))

    def classical_schedule(
        self, dag: ComputationalDAG, machine: BspMachine
    ) -> ClassicalSchedule:
        """Build the classical schedule; implemented by subclasses via ``_pick``."""
        n = dag.num_nodes
        num_procs = machine.num_procs
        procs = np.zeros(n, dtype=np.int64)
        start_times = np.zeros(n, dtype=np.float64)
        finish_times = np.zeros(n, dtype=np.float64)
        proc_ready = np.zeros(num_procs, dtype=np.float64)
        bottom_levels = dag.bottom_levels()
        delays = self._communication_delays(dag, machine)

        remaining_preds = dag.in_degrees().copy()
        ready = set(dag.sources())
        scheduled: list[int] = []

        while ready:
            node, proc, est = self._pick(
                dag, ready, bottom_levels, procs, finish_times, proc_ready, delays
            )
            ready.discard(node)
            procs[node] = proc
            start_times[node] = est
            finish_times[node] = est + dag.work(node)
            proc_ready[proc] = finish_times[node]
            scheduled.append(node)
            for succ in dag.succ(node).tolist():
                remaining_preds[succ] -= 1
                if remaining_preds[succ] == 0:
                    ready.add(succ)

        if len(scheduled) != n:
            raise RuntimeError("list scheduler failed to schedule every node")
        return ClassicalSchedule(
            dag=dag,
            num_procs=num_procs,
            procs=procs,
            start_times=start_times,
            finish_times=finish_times,
        )

    def _pick(
        self,
        dag: ComputationalDAG,
        ready: set[int],
        bottom_levels: np.ndarray,
        procs: np.ndarray,
        finish_times: np.ndarray,
        proc_ready: np.ndarray,
        delays: np.ndarray,
    ) -> tuple[int, int, float]:
        raise NotImplementedError

    def schedule(
        self,
        dag: ComputationalDAG,
        machine: BspMachine,
        budget: TimeBudget | None = None,
    ) -> BspSchedule:
        classical = self.classical_schedule(dag, machine)
        return classical_to_bsp(classical, machine)


class BlEstScheduler(_ListSchedulerBase):
    """Bottom-Level priority, Earliest-Start-Time processor selection."""

    name = "bl_est"

    def _pick(self, dag, ready, bottom_levels, procs, finish_times, proc_ready, delays):
        # highest bottom level first; ties broken by node index for determinism
        node = max(ready, key=lambda v: (bottom_levels[v], -v))
        best_proc = 0
        best_est = float("inf")
        for proc in range(proc_ready.shape[0]):
            est = self._earliest_start(
                dag, node, proc, procs, finish_times, proc_ready, delays
            )
            if est < best_est - 1e-12:
                best_est = est
                best_proc = proc
        return node, best_proc, best_est


class EtfScheduler(_ListSchedulerBase):
    """Earliest Task First: globally earliest (node, processor) start time."""

    name = "etf"

    def _pick(self, dag, ready, bottom_levels, procs, finish_times, proc_ready, delays):
        best: tuple[float, float, int, int] | None = None
        for node in sorted(ready):
            for proc in range(proc_ready.shape[0]):
                est = self._earliest_start(
                    dag, node, proc, procs, finish_times, proc_ready, delays
                )
                key = (est, -float(bottom_levels[node]), node, proc)
                if best is None or key < best:
                    best = key
        assert best is not None
        est, _, node, proc = best
        return node, proc, est
