"""Hill climbing over the communication schedule (``HCcs``, paper §4.3, Appendix A.3).

With the node assignment ``(π, τ)`` fixed, every required transfer of a
value ``v`` to a processor ``q`` may be placed in any communication phase
between ``τ(v)`` and one phase before the value is first needed on ``q``.
``HCcs`` starts from the lazy placement (everything as late as possible) and
greedily moves single transfers to a different feasible phase whenever that
strictly decreases the h-relation cost.  Only communication costs change, so
the incremental evaluation is a constant number of row updates per candidate.

Like the paper's implementation, transfers are always sent directly from
``π(v)`` (no forwarding through third processors).
"""

from __future__ import annotations

import numpy as np

from ..core.comm import CommStep, CommWindow
from ..core.schedule import BspSchedule
from .base import ScheduleImprover, TimeBudget

__all__ = ["CommScheduleHillClimbing"]

_EPS = 1e-9


class CommScheduleHillClimbing(ScheduleImprover):
    """Greedy first-improvement local search on the communication schedule."""

    name = "comm_hill_climbing"

    def __init__(self, max_passes: int = 50) -> None:
        self.max_passes = max_passes

    def improve(
        self,
        schedule: BspSchedule,
        budget: TimeBudget | None = None,
    ) -> BspSchedule:
        budget = budget or TimeBudget.unlimited()
        machine = schedule.machine
        dag = schedule.dag
        windows = schedule.comm_windows()
        if not windows:
            return schedule
        num_supersteps = schedule.num_supersteps

        # columnar view of the windows: one array per field
        nodes = np.array([w.node for w in windows], dtype=np.int64)
        srcs = np.array([w.source for w in windows], dtype=np.int64)
        tgts = np.array([w.target for w in windows], dtype=np.int64)
        earliest = np.array([w.earliest for w in windows], dtype=np.int64)
        latest = np.array([w.latest for w in windows], dtype=np.int64)

        # start from the incumbent's own placement when it is explicit,
        # otherwise from the lazy placement (the window's latest phase)
        if schedule.uses_lazy_comm:
            choices = latest.copy()
        else:
            explicit = {
                (step.node, step.source, step.target): step.superstep
                for step in schedule.comm_schedule
            }
            choices = np.array(
                [
                    explicit.get((w.node, w.source, w.target), w.latest)
                    for w in windows
                ],
                dtype=np.int64,
            )
            # clamp any out-of-window explicit choice back into the window
            np.clip(choices, earliest, latest, out=choices)

        send = np.zeros((num_supersteps, machine.num_procs), dtype=np.float64)
        recv = np.zeros((num_supersteps, machine.num_procs), dtype=np.float64)
        volumes = dag.comm_weights[nodes] * machine.numa[srcs, tgts]
        np.add.at(send, (choices, srcs), volumes)
        np.add.at(recv, (choices, tgts), volumes)
        comm_max = np.maximum(send, recv).max(axis=1)

        improved_any = True
        passes = 0
        while improved_any and passes < self.max_passes and not budget.expired():
            improved_any = False
            passes += 1
            for index, window in enumerate(windows):
                if budget.expired():
                    break
                if window.earliest == window.latest:
                    continue
                current = int(choices[index])
                best_phase = current
                best_delta = 0.0
                for candidate in range(window.earliest, window.latest + 1):
                    if candidate == current:
                        continue
                    delta = self._move_delta(
                        send, recv, comm_max, volumes[index], window, current, candidate
                    )
                    if delta < best_delta - _EPS:
                        best_delta = delta
                        best_phase = candidate
                if best_phase != current:
                    self._apply_move(
                        send, recv, comm_max, volumes[index], window, current, best_phase
                    )
                    choices[index] = best_phase
                    improved_any = True

        comm_schedule = frozenset(
            CommStep(w.node, w.source, w.target, int(choices[i]))
            for i, w in enumerate(windows)
        )
        candidate = schedule.with_comm_schedule(comm_schedule)
        return candidate if candidate.cost() < schedule.cost() - _EPS else schedule

    @staticmethod
    def _move_delta(
        send: np.ndarray,
        recv: np.ndarray,
        comm_max: np.ndarray,
        volume: float,
        window: CommWindow,
        old_phase: int,
        new_phase: int,
    ) -> float:
        """Change in total h-relation cost if the transfer moves phases (no state change)."""
        old_rows = {}
        for s in (old_phase, new_phase):
            old_rows[s] = (send[s].copy(), recv[s].copy())
        send[old_phase, window.source] -= volume
        recv[old_phase, window.target] -= volume
        send[new_phase, window.source] += volume
        recv[new_phase, window.target] += volume
        delta = 0.0
        for s in (old_phase, new_phase):
            delta += float(np.maximum(send[s], recv[s]).max()) - comm_max[s]
        for s, (send_row, recv_row) in old_rows.items():
            send[s] = send_row
            recv[s] = recv_row
        return delta

    @staticmethod
    def _apply_move(
        send: np.ndarray,
        recv: np.ndarray,
        comm_max: np.ndarray,
        volume: float,
        window: CommWindow,
        old_phase: int,
        new_phase: int,
    ) -> None:
        send[old_phase, window.source] -= volume
        recv[old_phase, window.target] -= volume
        send[new_phase, window.source] += volume
        recv[new_phase, window.target] += volume
        for s in (old_phase, new_phase):
            comm_max[s] = float(np.maximum(send[s], recv[s]).max())
