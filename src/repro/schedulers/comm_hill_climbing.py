"""Hill climbing over the communication schedule (``HCcs``, paper §4.3, Appendix A.3).

With the node assignment ``(π, τ)`` fixed, every required transfer of a
value ``v`` to a processor ``q`` may be placed in any communication phase
between ``τ(v)`` and one phase before the value is first needed on ``q``.
``HCcs`` starts from the lazy placement (everything as late as possible) and
greedily moves single transfers to a different feasible phase whenever that
strictly decreases the h-relation cost.  Only communication costs change, so
the incremental evaluation is a constant number of row updates per candidate.

Like the paper's implementation, transfers are always sent directly from
``π(v)`` (no forwarding through third processors).

All feasible phases of a window are evaluated against the maintained row
maxima in one vectorized expression: adding a transfer to a phase can only
*raise* that row, so its new maximum is ``max(comm_max[t], send[t, p1] + x,
recv[t, p2] + x)`` — no row copies, no mutate-and-restore.  Only removing
the transfer from its current phase needs one ``O(P)`` row scan, and that
term is shared by every candidate of the window.  The columnar window state
(sources, targets, volumes, window bounds, current choices) is built once
and kept across passes.  The seed copy-mutate-restore walker is retained as
:class:`repro.schedulers.reference.CommScheduleHillClimbingReference` and
the vectorized path reproduces its accepted-move sequence exactly (the
per-candidate deltas are bit-identical, not merely equal within tolerance).

Uncapped runs additionally batch each pass into *fronts*
(:func:`repro.core.kernels.hccs_pass_fronts`): a vectorized conflict scan
extracts the maximal scan-order-greedy set of windows whose feasible phase
intervals are pairwise disjoint, the whole front is evaluated and applied
in one batched kernel call, and the conflicting windows are deferred to the
next front.  Disjoint rows mean every window still observes exactly the row
state of the serial walk, so the accepted moves are unchanged — the passes
just stop paying one Python-level iteration per window.
"""

from __future__ import annotations

import numpy as np

from ..core import kernels
from ..core.comm import CommStep
from ..core.schedule import BspSchedule
from .base import ScheduleImprover, TimeBudget, budget_limits

__all__ = ["CommScheduleHillClimbing"]

_EPS = 1e-9


class CommScheduleHillClimbing(ScheduleImprover):
    """Greedy first-improvement local search on the communication schedule.

    Parameters
    ----------
    max_passes:
        Upper bound on the number of passes over all movable windows.
    record_moves:
        When true, the accepted moves ``(window_index, new_phase)`` of the
        last run are kept in :attr:`last_moves` for the differential tests.
    """

    name = "comm_hill_climbing"

    def __init__(self, max_passes: int = 50, record_moves: bool = False) -> None:
        self.max_passes = max_passes
        self.record_moves = record_moves
        #: accepted moves ``(window_index, new_phase)`` of the last run
        self.last_moves: list[tuple[int, int]] | None = None

    def improve(
        self,
        schedule: BspSchedule,
        budget: TimeBudget | None = None,
    ) -> BspSchedule:
        budget = budget or TimeBudget.unlimited()
        machine = schedule.machine
        dag = schedule.dag
        moves: list[tuple[int, int]] = []
        self.last_moves = moves if self.record_moves else None
        windows = schedule.comm_windows()
        if not windows:
            return schedule
        num_supersteps = schedule.num_supersteps

        # columnar view of the windows, built once and kept across passes
        nodes = np.array([w.node for w in windows], dtype=np.int64)
        srcs = np.array([w.source for w in windows], dtype=np.int64)
        tgts = np.array([w.target for w in windows], dtype=np.int64)
        earliest = np.array([w.earliest for w in windows], dtype=np.int64)
        latest = np.array([w.latest for w in windows], dtype=np.int64)

        # start from the incumbent's own placement when it is explicit,
        # otherwise from the lazy placement (the window's latest phase)
        if schedule.uses_lazy_comm:
            choices = latest.copy()
        else:
            explicit = {
                (step.node, step.source, step.target): step.superstep
                for step in schedule.comm_schedule
            }
            choices = np.array(
                [
                    explicit.get((w.node, w.source, w.target), w.latest)
                    for w in windows
                ],
                dtype=np.int64,
            )
            # clamp any out-of-window explicit choice back into the window
            np.clip(choices, earliest, latest, out=choices)

        send = np.zeros((num_supersteps, machine.num_procs), dtype=np.float64)
        recv = np.zeros((num_supersteps, machine.num_procs), dtype=np.float64)
        volumes = dag.comm_weights[nodes] * machine.numa[srcs, tgts]
        np.add.at(send, (choices, srcs), volumes)
        np.add.at(recv, (choices, tgts), volumes)
        comm_max = np.maximum(send, recv).max(axis=1)

        # only windows with at least two feasible phases can ever move
        movable = np.flatnonzero(latest > earliest)
        state = kernels.HccsState(
            send=send,
            recv=recv,
            comm_max=comm_max,
            choices=choices,
            movable=movable,
            srcs=srcs,
            tgts=tgts,
            earliest=earliest,
            latest=latest,
            volumes=volumes,
        )

        # a unified Budget's deterministic step cap bounds the accepted
        # phase moves of this invocation (None = until convergence)
        max_steps, _ = budget_limits(budget)
        accepted = 0

        improved_any = True
        passes = 0
        while improved_any and passes < self.max_passes and not budget.expired():
            improved_any = False
            passes += 1
            if max_steps is None:
                # batched pass fronts: row-disjoint windows evaluated in one
                # kernel call each round — same accepted moves as the serial
                # walk under the exact-arithmetic regime
                got, pass_moves = kernels.hccs_pass_fronts(
                    state, _EPS, budget=budget
                )
            else:
                # a mid-pass step cap can cut anywhere in the scan order,
                # which fronts cannot replicate: keep the serial walk
                cap = max_steps - accepted
                got, pass_moves = kernels.hccs_pass(
                    state, 0, movable.size, cap, _EPS, budget=budget
                )
            accepted += got
            if got:
                improved_any = True
                if self.record_moves:
                    moves.extend(pass_moves)
            if max_steps is not None and accepted >= max_steps:
                break

        comm_schedule = frozenset(
            CommStep(w.node, w.source, w.target, int(choices[i]))
            for i, w in enumerate(windows)
        )
        candidate = schedule.with_comm_schedule(comm_schedule)
        return candidate if candidate.cost() < schedule.cost() - _EPS else schedule
