"""HDagg wavefront-aggregation baseline (paper §4.1, Zarebavani et al. [46]).

HDagg sorts the nodes of the DAG into *wavefronts* (topological levels,
which map directly onto BSP supersteps), aggregates consecutive wavefronts
that do not expose enough parallelism, and then distributes the work of
every (aggregated) wavefront over the processors so that the load is
balanced and inter-processor communication between wavefronts is reduced.

This module is a Python re-implementation of that strategy (the original
C++ code targets SpTRSV kernels; the paper already uses it as a black-box
DAG scheduler, see the substitution note in DESIGN.md):

1. compute the topological level of every node;
2. greedily merge consecutive levels while the merged group contains fewer
   independent units (weakly connected components of the group's induced
   subgraph) than processors — thin wavefronts are the case HDagg's hybrid
   aggregation targets;
3. assign every unit of a group to one processor, processing units in
   decreasing order of work, preferring the processor that already owns the
   largest communication volume of the unit's direct predecessors, subject
   to a load-balance bound.

Because every intra-group dependency stays inside one unit (hence on one
processor) and group indices are monotone in topological level, the result
is always a valid BSP schedule.
"""

from __future__ import annotations

import numpy as np

from ..core.csr import gather_rows
from ..core.dag import ComputationalDAG
from ..core.machine import BspMachine
from ..core.schedule import BspSchedule
from .base import Scheduler, TimeBudget

__all__ = ["HDaggScheduler"]


class HDaggScheduler(Scheduler):
    """Wavefront aggregation + balanced, locality-aware unit assignment.

    Parameters
    ----------
    balance_factor:
        A unit may be placed on its preferred (locality-maximising)
        processor as long as that processor's load stays below
        ``balance_factor * (group work / P)``; otherwise the least-loaded
        processor is used.
    max_group_levels:
        Upper bound on how many consecutive wavefronts may be merged into
        one superstep.
    """

    name = "hdagg"

    def __init__(self, balance_factor: float = 1.2, max_group_levels: int = 16) -> None:
        self.balance_factor = balance_factor
        self.max_group_levels = max_group_levels

    # ------------------------------------------------------------------ #
    def _group_levels(
        self, dag: ComputationalDAG, num_procs: int, levels: np.ndarray
    ) -> list[list[int]]:
        """Merge consecutive levels into groups with enough independent units."""
        if dag.num_nodes == 0:
            return []
        num_levels = int(levels.max()) + 1
        # array-based wavefront construction: one stable argsort groups the
        # nodes by level with ascending index inside every level
        order = np.argsort(levels, kind="stable")
        boundaries = np.zeros(num_levels + 1, dtype=np.int64)
        np.cumsum(np.bincount(levels, minlength=num_levels), out=boundaries[1:])
        by_level: list[list[int]] = [
            order[boundaries[k] : boundaries[k + 1]].tolist()
            for k in range(num_levels)
        ]

        groups: list[list[int]] = []
        current: list[int] = []
        levels_in_group = 0
        for level_nodes in by_level:
            # A "fat" wavefront already exposes enough parallelism on its own;
            # merging it with pending thin wavefronts would only serialise it
            # (every unit of the merged group runs on a single processor), so
            # flush the pending group first.
            if len(level_nodes) >= num_procs and current:
                groups.append(current)
                current = []
                levels_in_group = 0
            current.extend(level_nodes)
            levels_in_group += 1
            units = self._units(dag, current)
            if (
                len(units) >= num_procs
                or len(level_nodes) >= num_procs
                or levels_in_group >= self.max_group_levels
            ):
                groups.append(current)
                current = []
                levels_in_group = 0
        if current:
            groups.append(current)
        return groups

    @staticmethod
    def _units(dag: ComputationalDAG, group: list[int]) -> list[list[int]]:
        """Weakly connected components of the subgraph induced by ``group``."""
        member = set(group)
        seen: set[int] = set()
        units: list[list[int]] = []
        for start in group:
            if start in seen:
                continue
            component = []
            stack = [start]
            seen.add(start)
            while stack:
                v = stack.pop()
                component.append(v)
                for w in dag.succ(v).tolist() + dag.pred(v).tolist():
                    if w in member and w not in seen:
                        seen.add(w)
                        stack.append(w)
            units.append(component)
        return units

    # ------------------------------------------------------------------ #
    def schedule(
        self,
        dag: ComputationalDAG,
        machine: BspMachine,
        budget: TimeBudget | None = None,
    ) -> BspSchedule:
        n = dag.num_nodes
        procs = np.zeros(n, dtype=np.int64)
        supersteps = np.zeros(n, dtype=np.int64)
        if n == 0:
            return BspSchedule(dag, machine, procs, supersteps)

        levels = dag.levels()
        groups = self._group_levels(dag, machine.num_procs, levels)
        work_weights = dag.work_weights
        comm_weights = dag.comm_weights

        for superstep, group in enumerate(groups):
            units = self._units(dag, group)
            units.sort(key=lambda unit: (-float(work_weights[unit].sum()), unit[0]))
            group_work = float(work_weights[group].sum())
            load_bound = self.balance_factor * group_work / machine.num_procs
            loads = np.zeros(machine.num_procs, dtype=np.float64)
            for unit in units:
                unit_arr = np.asarray(unit, dtype=np.int64)
                unit_work = float(work_weights[unit_arr].sum())
                # predecessors already placed (earlier group) pull the unit
                # towards their processor; one ragged gather per unit
                preds, _ = gather_rows(dag.pred_indptr, dag.pred_indices, unit_arr)
                affinity = np.zeros(machine.num_procs, dtype=np.float64)
                if preds.size:
                    placed = preds[supersteps[preds] < superstep]
                    np.add.at(affinity, procs[placed], comm_weights[placed])
                preferred = max(
                    range(machine.num_procs),
                    key=lambda p: (affinity[p], -loads[p], -p),
                )
                if loads[preferred] + unit_work > load_bound and affinity[preferred] >= 0:
                    fallback = int(np.argmin(loads))
                    if loads[fallback] + unit_work <= load_bound or loads[fallback] < loads[preferred]:
                        preferred = fallback
                procs[unit_arr] = preferred
                supersteps[unit_arr] = superstep
                loads[preferred] += unit_work

        return BspSchedule(dag, machine, procs, supersteps)
