"""Hill-climbing local search over node assignments (``HC``, paper §4.3, Appendix A.3).

Starting from a valid BSP schedule (with the lazy communication schedule),
``HC`` repeatedly applies single-node moves — reassigning one node to any
processor in its current superstep, the previous superstep or the next
superstep — as long as a move strictly decreases the total cost.  The paper
uses the greedy "first improving move" variant, which is what this module
implements.

Cost changes are evaluated incrementally through :class:`LazyCostTracker`,
which maintains per-superstep/per-processor work, send and receive volumes
under the lazy communication schedule.  Applying a move only touches the
matrix rows of the affected supersteps and the transfers of the moved node
and its direct predecessors, so a candidate evaluation costs
``O(P + deg(v) + Σ_{u∈pred(v)} outdeg(u))`` instead of a full re-evaluation.
Rejected moves are rolled back by applying the inverse move (the tracker is
an exact function of the assignment, so this restores the state bit-for-bit).

The tracker reads neighbourhoods as zero-copy CSR slices
(:meth:`~repro.core.dag.ComputationalDAG.succ` /
:meth:`~repro.core.dag.ComputationalDAG.pred`) and evaluates validity and
transfer enumeration with vectorized numpy expressions; the initial
send/receive matrices are built with one grouped pass over the whole edge
array instead of a per-node Python loop.
"""

from __future__ import annotations

import numpy as np

from ..core.csr import group_min_by_pair
from ..core.dag import ComputationalDAG
from ..core.machine import BspMachine
from ..core.schedule import BspSchedule
from .base import ScheduleImprover, TimeBudget

__all__ = ["LazyCostTracker", "HillClimbingImprover"]

_EPS = 1e-9


class LazyCostTracker:
    """Incrementally maintained cost of a lazy-communication BSP schedule.

    The tracker owns mutable copies of the assignment arrays.  The number of
    supersteps is fixed at construction time; node moves are restricted to
    the existing supersteps (the surrounding pipeline compacts empty
    supersteps afterwards).
    """

    def __init__(
        self,
        dag: ComputationalDAG,
        machine: BspMachine,
        procs: np.ndarray,
        supersteps: np.ndarray,
        num_supersteps: int | None = None,
    ) -> None:
        self.dag = dag
        self.machine = machine
        self.procs = np.asarray(procs, dtype=np.int64).copy()
        self.supersteps = np.asarray(supersteps, dtype=np.int64).copy()
        self.num_supersteps = (
            int(self.supersteps.max(initial=-1)) + 1
            if num_supersteps is None
            else num_supersteps
        )
        P = machine.num_procs
        S = max(self.num_supersteps, 1)
        self.work = np.zeros((S, P), dtype=np.float64)
        self.send = np.zeros((S, P), dtype=np.float64)
        self.recv = np.zeros((S, P), dtype=np.float64)
        self._work_max = np.zeros(S, dtype=np.float64)
        self._comm_max = np.zeros(S, dtype=np.float64)
        self._need = np.empty(P, dtype=np.int64)  # scratch for _transfers_of
        self._build()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    _NO_NEED = np.iinfo(np.int64).max

    def _transfers_of(self, v: int) -> list[tuple[int, int, int, float]]:
        """Lazy transfers of node ``v``: list of ``(phase, source, target, volume)``."""
        dag = self.dag
        succ = dag.succ(v)
        if succ.size == 0:
            return []
        pv = int(self.procs[v])
        qs = self.procs[succ]
        foreign = qs != pv
        if not foreign.any():
            return []
        need = self._need
        need.fill(self._NO_NEED)
        np.minimum.at(need, qs[foreign], self.supersteps[succ[foreign]])
        comm_v = dag.comm(v)
        numa_row = self.machine.numa[pv]
        return [
            (int(need[q]) - 1, pv, q, comm_v * float(numa_row[q]))
            for q in np.flatnonzero(need != self._NO_NEED).tolist()
        ]

    def _build(self) -> None:
        """One grouped pass over the edge arrays fills work/send/recv."""
        dag = self.dag
        np.add.at(self.work, (self.supersteps, self.procs), dag.work_weights)
        src, dst = dag.edge_arrays()
        if src.size:
            cross = self.procs[src] != self.procs[dst]
            if cross.any():
                cross_dst = dst[cross]
                u, q, sw = group_min_by_pair(
                    src[cross], self.procs[cross_dst], self.supersteps[cross_dst]
                )
                pv = self.procs[u]
                volumes = dag.comm_weights[u] * self.machine.numa[pv, q]
                np.add.at(self.send, (sw - 1, pv), volumes)
                np.add.at(self.recv, (sw - 1, q), volumes)
        np.max(self.work, axis=1, out=self._work_max)
        np.maximum(self.send, self.recv).max(axis=1, out=self._comm_max)

    # ------------------------------------------------------------------ #
    # cost
    # ------------------------------------------------------------------ #
    def cost(self) -> float:
        """Current total cost (work + g·comm + latency)."""
        return float(
            self._work_max.sum()
            + self.machine.g * self._comm_max.sum()
            + self.machine.latency * self.num_supersteps
        )

    def _refresh_superstep(self, s: int) -> None:
        self._work_max[s] = self.work[s].max()
        self._comm_max[s] = np.maximum(self.send[s], self.recv[s]).max()

    # ------------------------------------------------------------------ #
    # moves
    # ------------------------------------------------------------------ #
    def is_valid_move(self, v: int, new_proc: int, new_step: int) -> bool:
        """Whether moving ``v`` to ``(new_proc, new_step)`` keeps the schedule valid."""
        if not 0 <= new_step < self.num_supersteps:
            return False
        if not 0 <= new_proc < self.machine.num_procs:
            return False
        dag = self.dag
        preds = dag.pred(v)
        if preds.size:
            su = self.supersteps[preds]
            same = self.procs[preds] == new_proc
            if np.any(same & (su > new_step)) or np.any(~same & (su >= new_step)):
                return False
        succs = dag.succ(v)
        if succs.size:
            sw = self.supersteps[succs]
            same = self.procs[succs] == new_proc
            if np.any(same & (sw < new_step)) or np.any(~same & (sw <= new_step)):
                return False
        return True

    def apply_move(self, v: int, new_proc: int, new_step: int) -> float:
        """Apply the move and return the resulting change in total cost."""
        dag = self.dag
        old_proc = int(self.procs[v])
        old_step = int(self.supersteps[v])
        if (old_proc, old_step) == (new_proc, new_step):
            return 0.0

        touched: set[int] = {old_step, new_step}

        affected = [v, *dag.pred(v).tolist()]
        old_transfers = {u: self._transfers_of(u) for u in affected}

        before = (
            self._work_max.sum()
            + self.machine.g * self._comm_max.sum()
        )

        # work
        work_v = dag.work(v)
        self.work[old_step, old_proc] -= work_v
        self.work[new_step, new_proc] += work_v

        # remove old transfer volumes of v and its predecessors
        for u in affected:
            for phase, source, target, volume in old_transfers[u]:
                self.send[phase, source] -= volume
                self.recv[phase, target] -= volume
                touched.add(phase)

        # reassign and add back the recomputed transfers
        self.procs[v] = new_proc
        self.supersteps[v] = new_step
        for u in affected:
            for phase, source, target, volume in self._transfers_of(u):
                self.send[phase, source] += volume
                self.recv[phase, target] += volume
                touched.add(phase)

        for s in touched:
            if 0 <= s < self.num_supersteps:
                self._refresh_superstep(s)

        after = (
            self._work_max.sum()
            + self.machine.g * self._comm_max.sum()
        )
        return float(after - before)

    def assignment(self) -> tuple[np.ndarray, np.ndarray]:
        """Copies of the current ``(π, τ)`` arrays."""
        return self.procs.copy(), self.supersteps.copy()


class HillClimbingImprover(ScheduleImprover):
    """Greedy first-improvement hill climbing over single-node moves (``HC``).

    Parameters
    ----------
    max_passes:
        Upper bound on the number of full passes over all nodes (a pass with
        no improving move terminates the search early).
    max_steps:
        Optional upper bound on the number of *accepted* moves (used by the
        multilevel refinement phase, which runs short bursts of HC).
    """

    name = "hill_climbing"

    def __init__(self, max_passes: int = 50, max_steps: int | None = None) -> None:
        self.max_passes = max_passes
        self.max_steps = max_steps

    def improve(
        self,
        schedule: BspSchedule,
        budget: TimeBudget | None = None,
    ) -> BspSchedule:
        budget = budget or TimeBudget.unlimited()
        dag = schedule.dag
        machine = schedule.machine
        if dag.num_nodes == 0 or schedule.num_supersteps == 0:
            return schedule

        tracker = LazyCostTracker(
            dag, machine, schedule.procs, schedule.supersteps, schedule.num_supersteps
        )
        accepted = 0
        improved_any = True
        passes = 0
        while improved_any and passes < self.max_passes and not budget.expired():
            improved_any = False
            passes += 1
            for v in dag.nodes():
                if budget.expired():
                    break
                if self.max_steps is not None and accepted >= self.max_steps:
                    break
                current_proc = int(tracker.procs[v])
                current_step = int(tracker.supersteps[v])
                moved = False
                for new_step in (current_step - 1, current_step, current_step + 1):
                    if moved:
                        break
                    for new_proc in range(machine.num_procs):
                        if (new_proc, new_step) == (current_proc, current_step):
                            continue
                        if not tracker.is_valid_move(v, new_proc, new_step):
                            continue
                        delta = tracker.apply_move(v, new_proc, new_step)
                        if delta < -_EPS:
                            accepted += 1
                            improved_any = True
                            moved = True
                            break
                        # roll back by applying the inverse move
                        tracker.apply_move(v, current_proc, current_step)
            if self.max_steps is not None and accepted >= self.max_steps:
                break

        procs, supersteps = tracker.assignment()
        candidate = BspSchedule(dag, machine, procs, supersteps).compacted()
        return candidate if candidate.cost() < schedule.cost() - _EPS else schedule
