"""Hill-climbing local search over node assignments (``HC``, paper §4.3, Appendix A.3).

Starting from a valid BSP schedule (with the lazy communication schedule),
``HC`` repeatedly applies single-node moves — reassigning one node to any
processor in its current superstep, the previous superstep or the next
superstep — as long as a move strictly decreases the total cost.  The paper
uses the greedy "first improving move" variant, which is what this module
implements.

Cost changes are maintained incrementally through :class:`LazyCostTracker`,
which keeps per-superstep/per-processor work, send and receive volumes under
the lazy communication schedule.  Candidate evaluation is a **batched,
read-only neighbourhood pass**: for every node ``v``,
:meth:`LazyCostTracker.candidate_deltas` computes the exact cost delta of
all ``3 x P`` candidate ``(superstep, processor)`` moves at once —

* validity masks from the predecessor/successor CSR slices,
* work deltas from the affected row maxima (max-excluding via the row's
  top-2 entries),
* send/receive deltas from a per-node transfer table: the "first superstep
  that needs the value on each processor" minima of ``v`` and of all its
  predecessors, gathered in one ragged CSR pass
  (:func:`repro.core.csr.group_min_table`), scattered into per-candidate
  sparse row diffs and reduced with one tensor ``max``.

Only the single accepted move then mutates the tracker through
:meth:`LazyCostTracker.apply_move` — the seed implementation instead paid
two full ``apply_move`` calls (probe + inverse rollback) per *rejected*
candidate, each re-deriving the transfers of ``v`` and all its predecessors
in Python.  That seed walker is retained verbatim as
:class:`repro.schedulers.reference.HillClimbingImproverReference` and the
batched path is pinned to it **move for move** (identical accepted-move
sequences and final ``(π, τ)``) by the differential tests; on
integer/dyadic-weight instances — every generator in this repository — the
two paths are bit-identical, not merely equal in cost.
"""

from __future__ import annotations

import numpy as np

from ..core import kernels
from ..core.csr import NO_ENTRY, gather_rows, group_min_by_pair, row_max_excluding
from ..core.dag import ComputationalDAG
from ..core.machine import BspMachine
from ..core.schedule import BspSchedule
from .base import ScheduleImprover, TimeBudget, budget_limits

__all__ = ["LazyCostTracker", "HillClimbingImprover"]

_EPS = 1e-9
_INT = np.int64


class LazyCostTracker:
    """Incrementally maintained cost of a lazy-communication BSP schedule.

    The tracker owns mutable copies of the assignment arrays.  The number of
    supersteps is fixed at construction time; node moves are restricted to
    the existing supersteps (the surrounding pipeline compacts empty
    supersteps afterwards).
    """

    def __init__(
        self,
        dag: ComputationalDAG,
        machine: BspMachine,
        procs: np.ndarray,
        supersteps: np.ndarray,
        num_supersteps: int | None = None,
    ) -> None:
        self.dag = dag
        self.machine = machine
        self.procs = np.asarray(procs, dtype=np.int64).copy()
        self.supersteps = np.asarray(supersteps, dtype=np.int64).copy()
        self.num_supersteps = (
            int(self.supersteps.max(initial=-1)) + 1
            if num_supersteps is None
            else num_supersteps
        )
        P = machine.num_procs
        S = max(self.num_supersteps, 1)
        self.work = np.zeros((S, P), dtype=np.float64)
        self.send = np.zeros((S, P), dtype=np.float64)
        self.recv = np.zeros((S, P), dtype=np.float64)
        self._work_max = np.zeros(S, dtype=np.float64)
        self._comm_max = np.zeros(S, dtype=np.float64)
        self._need = np.empty(P, dtype=np.int64)  # scratch for _transfers_of
        self._build()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    _NO_NEED = np.iinfo(np.int64).max

    def _transfers_of(self, v: int) -> list[tuple[int, int, int, float]]:
        """Lazy transfers of node ``v``: list of ``(phase, source, target, volume)``."""
        dag = self.dag
        succ = dag.succ(v)
        if succ.size == 0:
            return []
        pv = int(self.procs[v])
        qs = self.procs[succ]
        foreign = qs != pv
        if not foreign.any():
            return []
        need = self._need
        need.fill(self._NO_NEED)
        np.minimum.at(need, qs[foreign], self.supersteps[succ[foreign]])
        comm_v = dag.comm(v)
        numa_row = self.machine.numa[pv]
        return [
            (int(need[q]) - 1, pv, q, comm_v * float(numa_row[q]))
            for q in np.flatnonzero(need != self._NO_NEED).tolist()
        ]

    def _build(self) -> None:
        """One grouped pass over the edge arrays fills work/send/recv.

        The same pass also fills the incremental first-need table:
        ``need_min[u, q]`` is the earliest superstep any successor of ``u``
        occupies on processor ``q`` (``NO_ENTRY`` when none does) and
        ``need_cnt[u, q]`` counts the successors achieving that minimum.
        :meth:`apply_move` maintains both in O(changed), which is what lets
        :meth:`candidate_deltas` skip the per-visit ragged gather over the
        predecessors' successor rows that earlier revisions rebuilt from
        scratch for every node.
        """
        dag = self.dag
        np.add.at(self.work, (self.supersteps, self.procs), dag.work_weights)
        self.need_min = np.full(
            (dag.num_nodes, self.machine.num_procs), NO_ENTRY, dtype=np.int64
        )
        self.need_cnt = np.zeros_like(self.need_min)
        src, dst = dag.edge_arrays()
        if src.size:
            qd = self.procs[dst]
            sd = self.supersteps[dst]
            np.minimum.at(self.need_min, (src, qd), sd)
            achieves = sd == self.need_min[src, qd]
            np.add.at(self.need_cnt, (src[achieves], qd[achieves]), 1)
            cross = self.procs[src] != self.procs[dst]
            if cross.any():
                cross_dst = dst[cross]
                u, q, sw = group_min_by_pair(
                    src[cross], self.procs[cross_dst], self.supersteps[cross_dst]
                )
                pv = self.procs[u]
                volumes = dag.comm_weights[u] * self.machine.numa[pv, q]
                np.add.at(self.send, (sw - 1, pv), volumes)
                np.add.at(self.recv, (sw - 1, q), volumes)
        np.max(self.work, axis=1, out=self._work_max)
        np.maximum(self.send, self.recv).max(axis=1, out=self._comm_max)

    # ------------------------------------------------------------------ #
    # cost
    # ------------------------------------------------------------------ #
    def cost(self) -> float:
        """Current total cost (work + g·comm + latency)."""
        return float(
            self._work_max.sum()
            + self.machine.g * self._comm_max.sum()
            + self.machine.latency * self.num_supersteps
        )

    def _refresh_superstep(self, s: int) -> None:
        self._work_max[s] = self.work[s].max()
        self._comm_max[s] = np.maximum(self.send[s], self.recv[s]).max()

    # ------------------------------------------------------------------ #
    # moves
    # ------------------------------------------------------------------ #
    def is_valid_move(self, v: int, new_proc: int, new_step: int) -> bool:
        """Whether moving ``v`` to ``(new_proc, new_step)`` keeps the schedule valid."""
        if not 0 <= new_step < self.num_supersteps:
            return False
        if not 0 <= new_proc < self.machine.num_procs:
            return False
        dag = self.dag
        preds = dag.pred(v)
        if preds.size:
            su = self.supersteps[preds]
            same = self.procs[preds] == new_proc
            if np.any(same & (su > new_step)) or np.any(~same & (su >= new_step)):
                return False
        succs = dag.succ(v)
        if succs.size:
            sw = self.supersteps[succs]
            same = self.procs[succs] == new_proc
            if np.any(same & (sw < new_step)) or np.any(~same & (sw <= new_step)):
                return False
        return True

    def candidate_validity(self, v: int) -> np.ndarray:
        """Boolean ``(3, P)`` mask of the valid single-node moves of ``v``.

        Row ``i`` covers superstep ``τ(v) - 1 + i``; the current position is
        masked out.  Semantically identical to calling :meth:`is_valid_move`
        for every candidate, but evaluated from the CSR neighbour slices in
        a handful of vector operations: a predecessor scheduled *after* a
        candidate step kills the whole step, predecessors/successors *tied*
        at the step force the single processor they occupy.
        """
        P = self.machine.num_procs
        S = self.num_supersteps
        s0 = int(self.supersteps[v])
        preds = self.dag.pred(v)
        succs = self.dag.succ(v)
        sp = self.supersteps[preds]
        pp = self.procs[preds]
        sw = self.supersteps[succs]
        pw = self.procs[succs]
        valid = np.zeros((3, P), dtype=bool)
        for i, s in enumerate((s0 - 1, s0, s0 + 1)):
            if not 0 <= s < S:
                continue
            forced = -1
            if preds.size:
                if (sp > s).any():
                    continue
                tied = pp[sp == s]
                if tied.size:
                    forced = int(tied[0])
                    if (tied != forced).any():
                        continue
            if succs.size:
                if (sw < s).any():
                    continue
                tied = pw[sw == s]
                if tied.size:
                    succ_forced = int(tied[0])
                    if (tied != succ_forced).any():
                        continue
                    if 0 <= forced != succ_forced:
                        continue
                    forced = succ_forced
            if forced >= 0:
                valid[i, forced] = True
            else:
                valid[i, :] = True
        valid[1, int(self.procs[v])] = False
        return valid

    def candidate_deltas(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """Exact cost deltas of all ``3 x P`` candidate moves of ``v`` (read-only).

        Returns ``(deltas, valid)`` where ``deltas[i, q]`` is the change of
        the tracked cost (work + g·comm; latency is constant) if ``v`` moves
        to ``(superstep τ(v) - 1 + i, processor q)``.  Entries with
        ``valid[i, q] == False`` are meaningless.  The tracker state is not
        modified; for a valid candidate the value equals what
        :meth:`apply_move` would return (bit-identically so under exact —
        integer/dyadic — weight arithmetic).
        """
        dag = self.dag
        machine = self.machine
        numa = machine.numa
        P = machine.num_procs
        S = self.num_supersteps
        p0 = int(self.procs[v])
        s0 = int(self.supersteps[v])
        steps3 = (s0 - 1, s0, s0 + 1)

        valid = self.candidate_validity(v)
        deltas = np.zeros((3, P), dtype=np.float64)
        if not valid.any():
            return deltas, valid

        # --- work component ------------------------------------------- #
        w = dag.work(v)
        wm = self._work_max
        removed0 = self.work[s0].copy()
        removed0[p0] -= w
        m0 = removed0.max()  # row s0 maximum once v's work is gone
        for i, s in enumerate(steps3):
            if not valid[i].any():
                continue
            if s == s0:
                # the row both loses w at p0 and gains w at the candidate q
                excl = row_max_excluding(removed0)
                deltas[i] = np.maximum(excl, removed0 + w) - wm[s0]
            else:
                row = self.work[s]
                deltas[i] = (np.maximum(wm[s], row + w) - wm[s]) + (m0 - wm[s0])

        # --- communication component ----------------------------------- #
        preds = dag.pred(v)
        succs = dag.succ(v)
        if preds.size == 0 and succs.size == 0:
            return deltas, valid  # isolated node: work deltas only

        g = machine.g
        c_v = dag.comm(v)
        top = max(S - 1, 0)

        # first superstep needing v's value on each processor: exactly
        # v's row of the incrementally maintained first-need table
        need_v = self.need_min[v]
        targets_v = np.flatnonzero(need_v != NO_ENTRY)
        phases_v = need_v[targets_v] - 1

        # per-predecessor "first need on each processor" table, v excluded.
        # v only ever contributes the entry (p0, s0), so the maintained rows
        # are already v-free everywhere except possibly column p0 — and
        # there only when v is the *sole* achiever of the minimum
        # (need == s0 with count 1), in which case that entry is rescanned
        # from the predecessor's successor row without v.
        d = preds.size
        if d:
            table = self.need_min[preds].copy()
            suspects = np.flatnonzero(
                (table[:, p0] == s0) & (self.need_cnt[preds, p0] == 1)
            )
            if suspects.size:
                sole = preds[suspects]
                flat, offsets = gather_rows(dag.succ_indptr, dag.succ_indices, sole)
                rows_idx = np.repeat(
                    np.arange(sole.size, dtype=_INT), np.diff(offsets)
                )
                keep = (flat != v) & (self.procs[flat] == p0)
                col = np.full(sole.size, NO_ENTRY, dtype=_INT)
                np.minimum.at(col, rows_idx[keep], self.supersteps[flat[keep]])
                table[suspects, p0] = col
            pred_procs = self.procs[preds]
            pred_vols = dag.comm_weights[preds][:, None] * numa[pred_procs]  # (d, P)
        else:
            table = np.empty((0, P), dtype=_INT)
            pred_procs = np.empty(0, dtype=_INT)
            pred_vols = np.empty((0, P), dtype=np.float64)

        foreign = np.flatnonzero(pred_procs != p0)  # preds that transfer to p0
        old_need_p0 = np.minimum(table[foreign, p0], s0)
        finite_p0 = foreign[table[foreign, p0] != NO_ENTRY]

        # ---- the two step-only candidates (q == p0, s = s0 ± 1) -------- #
        # v's own transfers are untouched (same source, same targets, and
        # their phases depend only on the successors' supersteps); only the
        # predecessors' transfers *to p0* can move phase.
        for i, s in ((0, s0 - 1), (2, s0 + 1)):
            if not valid[i, p0]:
                continue
            comm_delta = 0.0
            if foreign.size:
                new_need_p0 = np.minimum(table[foreign, p0], s)
                changed = np.flatnonzero(new_need_p0 != old_need_p0)
                if changed.size:
                    u = foreign[changed]
                    vols = pred_vols[u, p0]
                    touched = np.unique(
                        np.concatenate(
                            (old_need_p0[changed] - 1, new_need_p0[changed] - 1)
                        )
                    )
                    dsend = np.zeros((touched.size, P))
                    drecv = np.zeros((touched.size, P))
                    lo = np.searchsorted(touched, old_need_p0[changed] - 1)
                    ln = np.searchsorted(touched, new_need_p0[changed] - 1)
                    np.add.at(dsend, (lo, pred_procs[u]), -vols)
                    np.add.at(drecv, (lo, p0), -vols)
                    np.add.at(dsend, (ln, pred_procs[u]), vols)
                    np.add.at(drecv, (ln, p0), vols)
                    row_max = np.maximum(
                        self.send[touched] + dsend, self.recv[touched] + drecv
                    ).max(axis=1)
                    comm_delta = float((row_max - self._comm_max[touched]).sum())
            deltas[i, p0] += g * comm_delta

        # ---- the proc-change candidates (q != p0, all three steps) ----- #
        # Collect every superstep phase any candidate can touch.  Phases of
        # *invalid* candidates may fall outside [0, S); they are clipped —
        # the clipped updates only pollute rows of candidates the validity
        # mask discards (a valid move never produces an out-of-range phase).
        finite_entries = table[table != NO_ENTRY]
        pieces = np.concatenate(
            (
                phases_v,
                finite_entries - 1,
                old_need_p0 - 1,
                np.array((s0 - 2, s0 - 1, s0), dtype=_INT),
            )
        )
        touched = np.unique(np.minimum(np.maximum(pieces, 0), top))
        T = touched.size

        def loc(phases: np.ndarray) -> np.ndarray:
            return np.searchsorted(touched, np.minimum(np.maximum(phases, 0), top))

        # candidate-independent diffs: v's old transfers disappear, the
        # predecessors' transfers to p0 move to their v-free phase
        dsend_c = np.zeros((T, P))
        drecv_c = np.zeros((T, P))
        out = targets_v[targets_v != p0]
        if out.size:
            vols = c_v * numa[p0, out]
            where = loc(need_v[out] - 1)
            np.add.at(dsend_c, (where, p0), -vols)
            np.add.at(drecv_c, (where, out), -vols)
        if foreign.size:
            vols = pred_vols[foreign, p0]
            where = loc(old_need_p0 - 1)
            np.add.at(dsend_c, (where, pred_procs[foreign]), -vols)
            np.add.at(drecv_c, (where, p0), -vols)
        if finite_p0.size:
            vols = pred_vols[finite_p0, p0]
            where = loc(table[finite_p0, p0] - 1)
            np.add.at(dsend_c, (where, pred_procs[finite_p0]), vols)
            np.add.at(drecv_c, (where, p0), vols)

        # per-target-processor diffs: v's new transfers from q, and the
        # predecessors' existing transfers to q disappear (they are re-added
        # at their new phase in the per-step scatter below)
        dsend_q = np.zeros((P, T, P))
        drecv_q = np.zeros((P, T, P))
        if targets_v.size:
            qq = np.repeat(np.arange(P, dtype=_INT), targets_v.size)
            rr = np.tile(targets_v, P)
            keep = rr != qq
            qq, rr = qq[keep], rr[keep]
            vols = c_v * numa[qq, rr]
            where = np.tile(loc(phases_v), P)[keep]
            np.add.at(dsend_q, (qq, where, qq), vols)
            np.add.at(drecv_q, (qq, where, rr), vols)
        if d:
            pair_mask = np.arange(P, dtype=_INT)[None, :] != pred_procs[:, None]
            ui, qi = np.nonzero(pair_mask & (table != NO_ENTRY))
            if ui.size:
                vols = pred_vols[ui, qi]
                where = loc(table[ui, qi] - 1)
                np.add.at(dsend_q, (qi, where, pred_procs[ui]), -vols)
                np.add.at(drecv_q, (qi, where, qi), -vols)

        # per-(step, target) diffs: every predecessor now also feeds v on q,
        # so its transfer to q lands at min(first other need, s) - 1; all
        # three steps are scattered in one fused call per traffic side
        dsend_s = np.zeros((3, P, T, P))
        drecv_s = np.zeros((3, P, T, P))
        if d:
            ui, qi = np.nonzero(pair_mask)
            if ui.size:
                k = ui.size
                vols3 = np.tile(pred_vols[ui, qi], 3)
                where3 = loc(
                    (
                        np.minimum(
                            table[ui, qi][None, :],
                            np.array(steps3, dtype=_INT)[:, None],
                        )
                        - 1
                    ).ravel()
                )
                step3 = np.repeat(np.arange(3, dtype=_INT), k)
                qi3 = np.tile(qi, 3)
                np.add.at(dsend_s, (step3, qi3, where3, np.tile(pred_procs[ui], 3)), vols3)
                np.add.at(drecv_s, (step3, qi3, where3, qi3), vols3)

        base_send = self.send[touched] + dsend_c
        base_recv = self.recv[touched] + drecv_c
        new_send = base_send[None, None] + dsend_q[None] + dsend_s
        new_recv = base_recv[None, None] + drecv_q[None] + drecv_s
        row_max = np.maximum(new_send, new_recv).max(axis=3)  # (3, P, T)
        comm_delta = (row_max - self._comm_max[touched][None, None]).sum(axis=2)
        keep_p0 = deltas[:, p0].copy()  # step-only column computed above
        deltas += g * comm_delta
        deltas[:, p0] = keep_p0
        return deltas, valid

    def apply_move(self, v: int, new_proc: int, new_step: int) -> float:
        """Apply the move and return the resulting change in total cost."""
        dag = self.dag
        old_proc = int(self.procs[v])
        old_step = int(self.supersteps[v])
        if (old_proc, old_step) == (new_proc, new_step):
            return 0.0

        touched: set[int] = {old_step, new_step}

        affected = [v, *dag.pred(v).tolist()]
        old_transfers = {u: self._transfers_of(u) for u in affected}

        before = (
            self._work_max.sum()
            + self.machine.g * self._comm_max.sum()
        )

        # work
        work_v = dag.work(v)
        self.work[old_step, old_proc] -= work_v
        self.work[new_step, new_proc] += work_v

        # remove old transfer volumes of v and its predecessors
        for u in affected:
            for phase, source, target, volume in old_transfers[u]:
                self.send[phase, source] -= volume
                self.recv[phase, target] -= volume
                touched.add(phase)

        # reassign and add back the recomputed transfers
        self.procs[v] = new_proc
        self.supersteps[v] = new_step
        self._update_need(v, old_proc, old_step, new_proc, new_step)
        for u in affected:
            for phase, source, target, volume in self._transfers_of(u):
                self.send[phase, source] += volume
                self.recv[phase, target] += volume
                touched.add(phase)

        for s in touched:
            if 0 <= s < self.num_supersteps:
                self._refresh_superstep(s)

        after = (
            self._work_max.sum()
            + self.machine.g * self._comm_max.sum()
        )
        return float(after - before)

    def _update_need(
        self, v: int, old_proc: int, old_step: int, new_proc: int, new_step: int
    ) -> None:
        """Maintain the first-need (min, count) rows of ``v``'s predecessors.

        Must run after ``procs[v]``/``supersteps[v]`` have been reassigned.
        ``v``'s contribution moves from ``(old_proc, old_step)`` to
        ``(new_proc, new_step)``: the addition is applied first (against the
        pre-addition minima), then the removal — a predecessor whose achiever
        count drops to zero gets its column rescanned from its successor row
        (rare: it requires ``v`` to have been the sole achiever).  ``v``'s own
        row is untouched — its successors did not move.
        """
        preds = self.dag.pred(v)
        if preds.size == 0:
            return
        nm = self.need_min[preds, new_proc]
        lower = preds[new_step < nm]
        self.need_min[lower, new_proc] = new_step
        self.need_cnt[lower, new_proc] = 1
        equal = preds[new_step == nm]
        self.need_cnt[equal, new_proc] += 1
        dec = preds[self.need_min[preds, old_proc] == old_step]
        self.need_cnt[dec, old_proc] -= 1
        dead = dec[self.need_cnt[dec, old_proc] == 0]
        if dead.size:
            flat, offsets = gather_rows(self.dag.succ_indptr, self.dag.succ_indices, dead)
            rows_idx = np.repeat(np.arange(dead.size, dtype=_INT), np.diff(offsets))
            keep = self.procs[flat] == old_proc
            col = np.full(dead.size, NO_ENTRY, dtype=_INT)
            cnt = np.zeros(dead.size, dtype=_INT)
            if keep.any():
                rows_kept = rows_idx[keep]
                steps_kept = self.supersteps[flat[keep]]
                np.minimum.at(col, rows_kept, steps_kept)
                achieved = steps_kept == col[rows_kept]
                np.add.at(cnt, rows_kept[achieved], 1)
            self.need_min[dead, old_proc] = col
            self.need_cnt[dead, old_proc] = cnt

    def assignment(self) -> tuple[np.ndarray, np.ndarray]:
        """Copies of the current ``(π, τ)`` arrays."""
        return self.procs.copy(), self.supersteps.copy()

    def compacted_assignment(self) -> tuple[np.ndarray, np.ndarray, int]:
        """``(π, τ', num_used)`` with empty supersteps renumbered away.

        A superstep survives when it holds computation (appears in ``τ``)
        or carries traffic (a nonzero send row); this is exactly the set
        ``BspSchedule.compacted()`` keeps for a lazy-communication schedule
        with positive transfer volumes, computed from the tracker matrices
        instead of a materialised ``Γ``.
        """
        procs, supersteps = self.assignment()
        busy = np.flatnonzero(
            (self.work != 0).any(axis=1) | (self.send != 0).any(axis=1)
        )
        used = np.union1d(np.unique(supersteps), busy)
        return procs, np.searchsorted(used, supersteps), used.size


class HillClimbingImprover(ScheduleImprover):
    """Greedy first-improvement hill climbing over single-node moves (``HC``).

    Every node's whole ``3 x P`` candidate neighbourhood is evaluated in one
    read-only batched pass (:meth:`LazyCostTracker.candidate_deltas`); only
    the accepted move mutates the tracker.  The accepted-move sequence is
    identical to the retained probe-and-rollback walker
    :class:`repro.schedulers.reference.HillClimbingImproverReference`.

    Parameters
    ----------
    max_passes:
        Upper bound on the number of full passes over all nodes (a pass with
        no improving move terminates the search early).
    max_steps:
        Optional upper bound on the number of *accepted* moves (used by the
        multilevel refinement phase, which runs short bursts of HC).
    record_moves:
        When true, the accepted moves ``(node, new_proc, new_step)`` of the
        last run are kept in :attr:`last_moves` (differential tests and
        benchmarks use this to pin the vectorized and reference paths
        together).
    """

    name = "hill_climbing"

    def __init__(
        self,
        max_passes: int = 50,
        max_steps: int | None = None,
        record_moves: bool = False,
    ) -> None:
        self.max_passes = max_passes
        self.max_steps = max_steps
        self.record_moves = record_moves
        #: accepted moves ``(node, new_proc, new_step)`` of the last run
        self.last_moves: list[tuple[int, int, int]] | None = None

    # ------------------------------------------------------------------ #
    def climb(
        self,
        tracker: LazyCostTracker,
        budget: TimeBudget | None = None,
        max_steps: int | None = None,
    ) -> int:
        """Run the climbing loop on an existing tracker; return accepted moves.

        The tracker is mutated in place, which is what lets callers (the
        multilevel refinement phase) reuse one tracker across several short
        bursts at a fixed uncoarsening level instead of rebuilding the
        work/send/receive matrices from scratch per burst.
        """
        budget = budget or TimeBudget.unlimited()
        if max_steps is None:
            max_steps = self.max_steps
        budget_steps, _ = budget_limits(budget)
        if budget_steps is not None:
            # a unified Budget's deterministic step cap bounds this
            # invocation on top of (never instead of) the configured cap
            max_steps = (
                budget_steps if max_steps is None else min(max_steps, budget_steps)
            )
        moves: list[tuple[int, int, int]] = []
        self.last_moves = moves if self.record_moves else None
        num_nodes = tracker.dag.num_nodes
        accepted = 0
        improved_any = True
        passes = 0
        while improved_any and passes < self.max_passes and not budget.expired():
            improved_any = False
            passes += 1
            # one dispatched pass over all nodes: the active kernel backend
            # (numpy / numba) fuses candidate evaluation and acceptance
            cap = None if max_steps is None else max_steps - accepted
            got, pass_moves = kernels.hc_pass(
                tracker, 0, num_nodes, cap, _EPS, budget=budget
            )
            accepted += got
            if got:
                improved_any = True
                if self.record_moves:
                    moves.extend(pass_moves)
            if max_steps is not None and accepted >= max_steps:
                break
        return accepted

    def refine_assignment(
        self,
        dag: ComputationalDAG,
        machine: BspMachine,
        procs: np.ndarray,
        supersteps: np.ndarray,
        budget: TimeBudget | None = None,
        tracker: LazyCostTracker | None = None,
    ) -> tuple[LazyCostTracker, int]:
        """Hill-climb directly on assignment arrays, bypassing schedule objects.

        Builds the tracker once and runs :meth:`climb` on it; returns the
        tracker plus the number of accepted moves (zero means the burst
        converged).  A passed-in ``tracker`` is reused only when it belongs
        to the same ``(dag, machine)`` *and* its internal ``(π, τ)`` equals
        the given arrays — on any mismatch a fresh tracker is built from the
        arrays, so a caller-side assignment edit is never silently
        discarded.  This is the multilevel refinement entry point: per-level
        bursts need neither schedule validation nor compaction, so the
        per-burst overhead is one tracker build — and zero when the caller
        passes the previous burst's tracker back in (with that tracker's own
        arrays).
        """
        reusable = (
            tracker is not None
            and tracker.dag is dag
            and tracker.machine is machine
            and np.array_equal(tracker.procs, procs)
            and np.array_equal(tracker.supersteps, supersteps)
        )
        if not reusable:
            tracker = LazyCostTracker(dag, machine, procs, supersteps)
        accepted = self.climb(tracker, budget)
        return tracker, accepted

    # ------------------------------------------------------------------ #
    def improve(
        self,
        schedule: BspSchedule,
        budget: TimeBudget | None = None,
    ) -> BspSchedule:
        budget = budget or TimeBudget.unlimited()
        dag = schedule.dag
        machine = schedule.machine
        if dag.num_nodes == 0 or schedule.num_supersteps == 0:
            self.last_moves = [] if self.record_moves else None
            return schedule

        tracker = LazyCostTracker(
            dag, machine, schedule.procs, schedule.supersteps, schedule.num_supersteps
        )
        self.climb(tracker, budget)

        # Finish from the tracker state instead of materialising the lazy
        # communication schedule: supersteps carrying neither computation
        # nor traffic are compacted away with one ``unique`` pass (exactly
        # what ``BspSchedule.compacted()`` computes, without building the
        # ``Γ`` frozenset), the candidate cost falls out of the maintained
        # row maxima, and re-validation is skipped — every accepted move
        # passed the validity mask, so the result is valid by construction.
        zero_volume_transfers = bool((dag.comm_weights <= 0).any()) or bool(
            (machine.numa + np.eye(machine.num_procs) <= 0).any()
        )
        if zero_volume_transfers:
            # a zero-volume transfer leaves no trace in the traffic matrices
            # but still occupies ``Γ`` (and keeps its superstep alive during
            # compaction) — take the exact schedule-object path instead
            procs, supersteps = tracker.assignment()
            candidate = BspSchedule(dag, machine, procs, supersteps).compacted()
            return candidate if candidate.cost() < schedule.cost() - _EPS else schedule
        procs, compact_steps, num_used = tracker.compacted_assignment()
        candidate_cost = tracker.cost() - machine.latency * (
            tracker.num_supersteps - num_used
        )
        if candidate_cost >= schedule.cost() - _EPS:
            return schedule
        return BspSchedule(dag, machine, procs, compact_steps, validate=False)
