"""Scheduling algorithms: baselines, initialisers, local search, ILP and multilevel."""

from .annealing import SimulatedAnnealingImprover
from .base import (
    Budget,
    Scheduler,
    ScheduleImprover,
    TimeBudget,
    best_schedule,
    budget_limits,
)
from .clustering import LinearClusteringScheduler
from .bsp_greedy import BspGreedyScheduler
from .cilk import CilkScheduler
from .comm_hill_climbing import CommScheduleHillClimbing
from .hdagg import HDaggScheduler
from .hill_climbing import HillClimbingImprover, LazyCostTracker
from .ilp import (
    IlpCommScheduleImprover,
    IlpFullImprover,
    IlpInitScheduler,
    IlpPartialImprover,
    MilpProblem,
    WindowIlp,
    estimate_window_variables,
)
from .listsched import BlEstScheduler, EtfScheduler
from .multilevel import MultilevelScheduler, coarsen_dag
from .pipeline import (
    ENV_INIT_WORKERS,
    MultilevelPipeline,
    PipelineConfig,
    PipelineResult,
    SchedulingPipeline,
    StageCosts,
    resolve_init_workers,
)
from .registry import SCHEDULER_FACTORIES, available_schedulers, create_scheduler
from .source_heuristic import SourceScheduler
from .trivial import RoundRobinScheduler, TrivialScheduler

__all__ = [
    "BlEstScheduler",
    "Budget",
    "ENV_INIT_WORKERS",
    "BspGreedyScheduler",
    "CilkScheduler",
    "CommScheduleHillClimbing",
    "EtfScheduler",
    "HDaggScheduler",
    "HillClimbingImprover",
    "IlpCommScheduleImprover",
    "IlpFullImprover",
    "IlpInitScheduler",
    "IlpPartialImprover",
    "LazyCostTracker",
    "LinearClusteringScheduler",
    "MilpProblem",
    "MultilevelPipeline",
    "MultilevelScheduler",
    "PipelineConfig",
    "PipelineResult",
    "RoundRobinScheduler",
    "SCHEDULER_FACTORIES",
    "Scheduler",
    "SimulatedAnnealingImprover",
    "ScheduleImprover",
    "SchedulingPipeline",
    "SourceScheduler",
    "StageCosts",
    "TimeBudget",
    "TrivialScheduler",
    "WindowIlp",
    "available_schedulers",
    "best_schedule",
    "budget_limits",
    "coarsen_dag",
    "create_scheduler",
    "estimate_window_variables",
    "resolve_init_workers",
]
