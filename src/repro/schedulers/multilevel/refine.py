"""Projection of schedules between coarsening levels (paper §4.5).

Projecting a schedule of a quotient DAG down to the original DAG simply
gives every original node the processor/superstep of its cluster; because
the quotient was acyclic and its schedule valid, the projected schedule is
always a valid BSP schedule of the original DAG.  Projecting *up* (from an
assignment of original nodes that is constant on every cluster) is the
inverse operation used between refinement bursts.
"""

from __future__ import annotations

import numpy as np

from ...core.machine import BspMachine
from ...core.schedule import BspSchedule
from .coarsen import QuotientDag

__all__ = ["project_to_original", "restrict_to_quotient"]


def project_to_original(
    quotient: QuotientDag,
    coarse_schedule: BspSchedule,
) -> tuple[np.ndarray, np.ndarray]:
    """Assignment arrays for the original DAG induced by a quotient schedule."""
    procs = coarse_schedule.procs[quotient.orig_to_coarse]
    supersteps = coarse_schedule.supersteps[quotient.orig_to_coarse]
    return procs.copy(), supersteps.copy()


def restrict_to_quotient(
    quotient: QuotientDag,
    machine: BspMachine,
    procs: np.ndarray,
    supersteps: np.ndarray,
) -> BspSchedule:
    """Schedule of the quotient DAG induced by a cluster-constant original assignment.

    Every coarse node takes the assignment of its representative original
    node.  The caller must guarantee that all original nodes of a cluster
    share the same assignment (which the multilevel scheduler maintains as
    an invariant).
    """
    coarse_procs = np.array(
        [int(procs[rep]) for rep in quotient.coarse_to_rep], dtype=np.int64
    )
    coarse_steps = np.array(
        [int(supersteps[rep]) for rep in quotient.coarse_to_rep], dtype=np.int64
    )
    return BspSchedule(quotient.dag, machine, coarse_procs, coarse_steps)
