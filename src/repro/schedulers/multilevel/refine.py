"""Projection of schedules between coarsening levels (paper §4.5).

Projecting a schedule of a quotient DAG down to the original DAG simply
gives every original node the processor/superstep of its cluster; because
the quotient was acyclic and its schedule valid, the projected schedule is
always a valid BSP schedule of the original DAG.  Projecting *up* (from an
assignment of original nodes that is constant on every cluster) is the
inverse operation used between refinement bursts.

Both directions are plain gathers over the quotient's index arrays.  The
refinement loop works on the raw ``(π, τ)`` arrays
(:func:`restrict_arrays`), so a per-level hill-climbing burst needs neither
schedule validation nor an intermediate :class:`BspSchedule` object — the
cluster-constant projection of a valid coarse schedule is valid by
construction, and the burst's :class:`~repro.schedulers.hill_climbing.LazyCostTracker`
is reused across bursts at a fixed level instead of being rebuilt.
"""

from __future__ import annotations

import numpy as np

from ...core.machine import BspMachine
from ...core.schedule import BspSchedule
from .coarsen import QuotientDag

__all__ = [
    "project_arrays",
    "project_to_original",
    "restrict_arrays",
    "restrict_to_quotient",
]


def project_to_original(
    quotient: QuotientDag,
    coarse_schedule: BspSchedule,
) -> tuple[np.ndarray, np.ndarray]:
    """Assignment arrays for the original DAG induced by a quotient schedule."""
    procs = coarse_schedule.procs[quotient.orig_to_coarse]
    supersteps = coarse_schedule.supersteps[quotient.orig_to_coarse]
    return procs.copy(), supersteps.copy()


def project_arrays(
    quotient: QuotientDag,
    coarse_procs: np.ndarray,
    coarse_supersteps: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Array-level :func:`project_to_original` (no schedule object needed)."""
    return (
        coarse_procs[quotient.orig_to_coarse].copy(),
        coarse_supersteps[quotient.orig_to_coarse].copy(),
    )


def restrict_arrays(
    quotient: QuotientDag,
    procs: np.ndarray,
    supersteps: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Assignment arrays of the quotient induced by a cluster-constant original one.

    Every coarse node takes the assignment of its representative original
    node — one fancy-indexing gather per array instead of the historical
    per-cluster Python loop.  The caller must guarantee that all original
    nodes of a cluster share the same assignment (which the multilevel
    scheduler maintains as an invariant).
    """
    reps = np.asarray(quotient.coarse_to_rep, dtype=np.int64)
    return (
        np.asarray(procs, dtype=np.int64)[reps],
        np.asarray(supersteps, dtype=np.int64)[reps],
    )


def restrict_to_quotient(
    quotient: QuotientDag,
    machine: BspMachine,
    procs: np.ndarray,
    supersteps: np.ndarray,
) -> BspSchedule:
    """Schedule of the quotient DAG induced by a cluster-constant original assignment."""
    coarse_procs, coarse_steps = restrict_arrays(quotient, procs, supersteps)
    return BspSchedule(quotient.dag, machine, coarse_procs, coarse_steps)
