"""Acyclicity-preserving DAG coarsening (paper §4.5, Appendix A.5).

The multilevel scheduler repeatedly contracts single edges of the DAG.  An
edge ``(u, v)`` may be contracted only when there is no *other* directed
path from ``u`` to ``v`` (otherwise the contraction would create a cycle).
Among the contractable candidates the selection rule of the paper is used:
sort all edges by the combined work weight ``w(u) + w(v)``, restrict to the
lightest third, and among those pick the edge whose source has the largest
communication weight ``c(u)`` (a heavy output that we would like to keep on
one processor).  The contracted node accumulates both the work and the
communication weights of its two endpoints.

The full contraction history is recorded in a :class:`CoarseningSequence`
so the uncoarsening phase can rebuild the DAG at any intermediate level (a
*quotient* DAG over the current clusters) and project schedules between
levels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...core.csr import dedupe_edges
from ...core.dag import ComputationalDAG
from ...core.exceptions import DagError

__all__ = ["ContractionRecord", "QuotientDag", "CoarseningSequence", "coarsen_dag"]


@dataclass(frozen=True)
class ContractionRecord:
    """One edge contraction: node ``removed`` was merged into node ``kept``."""

    kept: int
    removed: int


@dataclass
class QuotientDag:
    """The DAG obtained by merging every cluster of original nodes into one node."""

    dag: ComputationalDAG
    #: original node index -> coarse node index
    orig_to_coarse: np.ndarray
    #: coarse node index -> representative original node index
    coarse_to_rep: list[int]


@dataclass
class CoarseningSequence:
    """The original DAG plus the ordered list of contractions applied to it."""

    original: ComputationalDAG
    records: list[ContractionRecord] = field(default_factory=list)

    @property
    def num_contractions(self) -> int:
        """Total number of contraction steps recorded."""
        return len(self.records)

    def representative_map(self, num_contractions: int | None = None) -> np.ndarray:
        """Map every original node to its cluster representative.

        Only the first ``num_contractions`` records are applied (all of them
        by default), which is how the uncoarsening phase walks back towards
        the original DAG.
        """
        if num_contractions is None:
            num_contractions = self.num_contractions
        if not 0 <= num_contractions <= self.num_contractions:
            raise DagError(
                f"num_contractions must be in [0, {self.num_contractions}]"
            )
        parent = np.arange(self.original.num_nodes, dtype=np.int64)
        for record in self.records[:num_contractions]:
            parent[record.removed] = record.kept
        # path compression: resolve chains (removed nodes may point at nodes
        # that were themselves removed later)
        for v in range(len(parent)):
            root = v
            while parent[root] != root:
                root = parent[root]
            while parent[v] != root:
                parent[v], v = root, int(parent[v])
        return parent

    def quotient(self, num_contractions: int | None = None) -> QuotientDag:
        """Build the quotient DAG after the first ``num_contractions`` contractions.

        Fully vectorized: the original edge arrays are mapped through the
        cluster relabelling, intra-cluster edges are masked out, and the
        remaining multi-edges are deduplicated keeping the first occurrence
        (the historical edge order), then handed to the CSR container in
        one shot.
        """
        rep = self.representative_map(num_contractions)
        reps = np.unique(rep)
        num_coarse = int(reps.size)
        coarse_index = np.full(self.original.num_nodes, -1, dtype=np.int64)
        coarse_index[reps] = np.arange(num_coarse, dtype=np.int64)
        orig_to_coarse = coarse_index[rep]

        work = np.zeros(num_coarse, dtype=np.float64)
        comm = np.zeros(num_coarse, dtype=np.float64)
        np.add.at(work, orig_to_coarse, self.original.work_weights)
        np.add.at(comm, orig_to_coarse, self.original.comm_weights)

        src, dst = self.original.edge_arrays()
        cu = orig_to_coarse[src]
        cv = orig_to_coarse[dst]
        cross = cu != cv
        cu, cv = dedupe_edges(num_coarse, cu[cross], cv[cross])
        quotient = ComputationalDAG.from_edge_arrays(
            num_coarse,
            cu,
            cv,
            work,
            comm,
            name=f"{self.original.name}_coarse{num_coarse}",
            validate=False,
        )
        return QuotientDag(
            dag=quotient,
            orig_to_coarse=orig_to_coarse,
            coarse_to_rep=reps.tolist(),
        )


class _MutableGraph:
    """Working representation used while contracting edges."""

    def __init__(self, dag: ComputationalDAG) -> None:
        self.succ: dict[int, set[int]] = {
            v: set(dag.succ(v).tolist()) for v in dag.nodes()
        }
        self.pred: dict[int, set[int]] = {
            v: set(dag.pred(v).tolist()) for v in dag.nodes()
        }
        self.work: dict[int, float] = dict(enumerate(dag.work_weights.tolist()))
        self.comm: dict[int, float] = dict(enumerate(dag.comm_weights.tolist()))

    @property
    def num_nodes(self) -> int:
        return len(self.succ)

    def edges(self) -> list[tuple[int, int]]:
        return [(u, v) for u, targets in self.succ.items() for v in targets]

    def is_contractable(self, u: int, v: int) -> bool:
        """True when the only ``u -> v`` path is the direct edge."""
        stack = [w for w in self.succ[u] if w != v]
        seen = set(stack)
        while stack:
            x = stack.pop()
            for w in self.succ[x]:
                if w == v:
                    return False
                if w not in seen:
                    seen.add(w)
                    stack.append(w)
        return True

    def contract(self, u: int, v: int) -> None:
        """Merge ``v`` into ``u`` (the edge ``(u, v)`` must exist and be contractable)."""
        self.succ[u].discard(v)
        self.pred[v].discard(u)
        for w in self.succ.pop(v):
            self.pred[w].discard(v)
            if w != u:
                self.succ[u].add(w)
                self.pred[w].add(u)
        for w in self.pred.pop(v):
            self.succ[w].discard(v)
            if w != u:
                self.pred[u].add(w)
                self.succ[w].add(u)
        self.work[u] += self.work.pop(v)
        self.comm[u] += self.comm.pop(v)


def coarsen_dag(
    dag: ComputationalDAG,
    target_nodes: int,
    light_fraction: float = 1.0 / 3.0,
) -> CoarseningSequence:
    """Contract edges until at most ``target_nodes`` nodes remain.

    The paper's selection rule is applied at every step (lightest third by
    merged work weight, then largest source communication weight).  The
    procedure stops early when no contractable edge exists (e.g. the graph
    has become edgeless).
    """
    if target_nodes < 1:
        raise DagError("target_nodes must be >= 1")
    sequence = CoarseningSequence(original=dag)
    graph = _MutableGraph(dag)

    while graph.num_nodes > target_nodes:
        edges = graph.edges()
        if not edges:
            break
        edges.sort(key=lambda edge: (graph.work[edge[0]] + graph.work[edge[1]], edge))
        cutoff = max(1, int(np.ceil(len(edges) * light_fraction)))
        light = edges[:cutoff]
        light.sort(key=lambda edge: (-graph.comm[edge[0]], edge))
        chosen: tuple[int, int] | None = None
        for candidate in light:
            if graph.is_contractable(*candidate):
                chosen = candidate
                break
        if chosen is None:
            # fall back to scanning the remaining edges (rare)
            for candidate in edges[cutoff:]:
                if graph.is_contractable(*candidate):
                    chosen = candidate
                    break
        if chosen is None:
            break
        graph.contract(*chosen)
        sequence.records.append(ContractionRecord(kept=chosen[0], removed=chosen[1]))
    return sequence
