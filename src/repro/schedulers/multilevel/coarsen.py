"""Acyclicity-preserving DAG coarsening (paper §4.5, Appendix A.5).

The multilevel scheduler repeatedly contracts single edges of the DAG.  An
edge ``(u, v)`` may be contracted only when there is no *other* directed
path from ``u`` to ``v`` (otherwise the contraction would create a cycle).
Among the contractable candidates the selection rule of the paper is used:
restrict to the lightest third of the edges by combined work weight
``w(u) + w(v)``, and among those pick the edge whose source has the largest
communication weight ``c(u)`` (a heavy output that we would like to keep on
one processor).  The contracted node accumulates both the work and the
communication weights of its two endpoints.

The full contraction history is recorded in a :class:`CoarseningSequence`
so the uncoarsening phase can rebuild the DAG at any intermediate level (a
*quotient* DAG over the current clusters) and project schedules between
levels.

Implementation notes
--------------------
The seed implementation re-listed and re-sorted the full edge set on every
contraction (O(m log m) per step).  :func:`coarsen_dag` instead keeps the
candidate edges in a :class:`_BucketQueue` — buckets keyed by the merged
work weight, each bucket a lazy max-heap over the source communication
weight — so one contraction only re-keys the edges incident to the merged
endpoints and a selection touches the few lightest buckets, which makes
coarsening near-linear on bounded-degree DAGs.  Two deliberate rule
refinements over the seed (both covered by tests):

* ties at the lightest-third boundary are resolved by including the whole
  boundary bucket (the seed cut tie groups apart at an arbitrary edge id);
* when no edge of the light set is contractable, the heavier remainder is
  scanned in the same largest-``c(u)`` order as the light set — the paper's
  selection rule — instead of the seed's ascending-work order.

The seed path is retained verbatim as :func:`coarsen_dag_reference` for
differential tests and the scaling benchmark in
``benchmarks/bench_dag_kernels.py``.
"""

from __future__ import annotations

import heapq
import math
from bisect import insort
from dataclasses import dataclass, field

import numpy as np

from ...core import kernels
from ...core.csr import dedupe_edges
from ...core.dag import ComputationalDAG
from ...core.exceptions import DagError

__all__ = [
    "ContractionRecord",
    "QuotientDag",
    "CoarseningSequence",
    "coarsen_dag",
    "coarsen_dag_reference",
]


@dataclass(frozen=True)
class ContractionRecord:
    """One edge contraction: node ``removed`` was merged into node ``kept``."""

    kept: int
    removed: int


@dataclass
class QuotientDag:
    """The DAG obtained by merging every cluster of original nodes into one node."""

    dag: ComputationalDAG
    #: original node index -> coarse node index
    orig_to_coarse: np.ndarray
    #: coarse node index -> representative original node index
    coarse_to_rep: list[int]


@dataclass
class CoarseningSequence:
    """The original DAG plus the ordered list of contractions applied to it."""

    original: ComputationalDAG
    records: list[ContractionRecord] = field(default_factory=list)

    @property
    def num_contractions(self) -> int:
        """Total number of contraction steps recorded."""
        return len(self.records)

    def representative_map(self, num_contractions: int | None = None) -> np.ndarray:
        """Map every original node to its cluster representative.

        Only the first ``num_contractions`` records are applied (all of them
        by default), which is how the uncoarsening phase walks back towards
        the original DAG.
        """
        if num_contractions is None:
            num_contractions = self.num_contractions
        if not 0 <= num_contractions <= self.num_contractions:
            raise DagError(
                f"num_contractions must be in [0, {self.num_contractions}]"
            )
        parent = np.arange(self.original.num_nodes, dtype=np.int64)
        for record in self.records[:num_contractions]:
            parent[record.removed] = record.kept
        # path compression: resolve chains (removed nodes may point at nodes
        # that were themselves removed later)
        for v in range(len(parent)):
            root = v
            while parent[root] != root:
                root = parent[root]
            while parent[v] != root:
                parent[v], v = root, int(parent[v])
        return parent

    def quotient(self, num_contractions: int | None = None) -> QuotientDag:
        """Build the quotient DAG after the first ``num_contractions`` contractions.

        Fully vectorized: the original edge arrays are mapped through the
        cluster relabelling, intra-cluster edges are masked out, and the
        remaining multi-edges are deduplicated keeping the first occurrence
        (the historical edge order), then handed to the CSR container in
        one shot.
        """
        rep = self.representative_map(num_contractions)
        reps = np.unique(rep)
        num_coarse = int(reps.size)
        coarse_index = np.full(self.original.num_nodes, -1, dtype=np.int64)
        coarse_index[reps] = np.arange(num_coarse, dtype=np.int64)
        orig_to_coarse = coarse_index[rep]

        work = np.zeros(num_coarse, dtype=np.float64)
        comm = np.zeros(num_coarse, dtype=np.float64)
        np.add.at(work, orig_to_coarse, self.original.work_weights)
        np.add.at(comm, orig_to_coarse, self.original.comm_weights)

        src, dst = self.original.edge_arrays()
        cu = orig_to_coarse[src]
        cv = orig_to_coarse[dst]
        cross = cu != cv
        cu, cv = dedupe_edges(num_coarse, cu[cross], cv[cross])
        quotient = ComputationalDAG.from_edge_arrays(
            num_coarse,
            cu,
            cv,
            work,
            comm,
            name=f"{self.original.name}_coarse{num_coarse}",
            validate=False,
        )
        return QuotientDag(
            dag=quotient,
            orig_to_coarse=orig_to_coarse,
            coarse_to_rep=reps.tolist(),
        )


class _MutableGraph:
    """Working representation used while contracting edges."""

    def __init__(self, dag: ComputationalDAG) -> None:
        self.succ: dict[int, set[int]] = {
            v: set(dag.succ(v).tolist()) for v in dag.nodes()
        }
        self.pred: dict[int, set[int]] = {
            v: set(dag.pred(v).tolist()) for v in dag.nodes()
        }
        self.work: dict[int, float] = dict(enumerate(dag.work_weights.tolist()))
        self.comm: dict[int, float] = dict(enumerate(dag.comm_weights.tolist()))

    @property
    def num_nodes(self) -> int:
        return len(self.succ)

    def node_ids(self) -> list[int]:
        return list(self.succ)

    def edge_iter(self):
        return ((u, v) for u, targets in self.succ.items() for v in targets)

    def edges(self) -> list[tuple[int, int]]:
        return [(u, v) for u, targets in self.succ.items() for v in targets]

    def incident_edges(self, v: int) -> set[tuple[int, int]]:
        """All current edges with ``v`` as an endpoint."""
        return {(v, w) for w in self.succ[v]} | {(w, v) for w in self.pred[v]}

    def is_contractable(self, u: int, v: int, budget: int | None = None) -> bool:
        """True when the only ``u -> v`` path is the direct edge.

        Two exact fast paths cover the common cases in O(1): when ``v`` is
        the only successor of ``u`` every alternative path would have to
        leave ``u`` through ``v``, and when ``u`` is the only predecessor of
        ``v`` every alternative path would have to enter ``v`` through
        ``u``.  Otherwise a DFS over the descendants of ``u`` looks for
        another route to ``v``; with a ``budget``, edges whose verification
        would expand more than that many nodes are conservatively treated as
        *not* contractable (never unsafe — a skipped edge can only delay
        coarsening, a false positive could create a cycle).
        """
        succ_u = self.succ[u]
        if len(succ_u) == 1:
            return True
        if len(self.pred[v]) == 1:
            return True
        stack = [w for w in succ_u if w != v]
        seen = set(stack)
        while stack:
            x = stack.pop()
            if budget is not None:
                budget -= 1
                if budget < 0:
                    return False
            for w in self.succ[x]:
                if w == v:
                    return False
                if w not in seen:
                    seen.add(w)
                    stack.append(w)
        return True

    def contract(self, u: int, v: int) -> None:
        """Merge ``v`` into ``u`` (the edge ``(u, v)`` must exist and be contractable)."""
        self.succ[u].discard(v)
        self.pred[v].discard(u)
        for w in self.succ.pop(v):
            self.pred[w].discard(v)
            if w != u:
                self.succ[u].add(w)
                self.pred[w].add(u)
        for w in self.pred.pop(v):
            self.succ[w].discard(v)
            if w != u:
                self.pred[u].add(w)
                self.succ[w].add(u)
        self.work[u] += self.work.pop(v)
        self.comm[u] += self.comm.pop(v)


class _FlatGraph:
    """Flat-array working graph for the contraction loop.

    The same mutable-graph contract as :class:`_MutableGraph`, but with the
    adjacency kept as *pooled sorted rows* (``succ_pool``/``succ_start``/
    ``succ_len`` and the predecessor mirror) instead of dict-of-sets.  The
    flat successor arrays are exactly what the dispatched acyclicity probe
    (:func:`repro.core.kernels.coarsen_reach`) walks — a compiled DFS over
    int64 buffers with reusable stamp/stack scratch, no per-call Python set
    allocation.  A contraction merges rows as sorted duplicate-free sets
    (plain Python set-union — far cheaper than a numpy set op on the short
    rows of bounded-degree DAGs); a merged row that outgrows its slot is
    re-appended at the pool tail (per-row capacities, doubling pools), and
    neighbour rows only ever *replace* the removed endpoint by the kept one,
    which can never grow them.
    """

    def __init__(self, dag: ComputationalDAG, use_order: bool = False) -> None:
        n = dag.num_nodes
        self.succ_pool, self.succ_start, self.succ_len = self._sorted_rows(
            dag.succ_indptr, dag.succ_indices, n
        )
        self.pred_pool, self.pred_start, self.pred_len = self._sorted_rows(
            dag.pred_indptr, dag.pred_indices, n
        )
        self.succ_cap = self.succ_len.copy()
        self.pred_cap = self.pred_len.copy()
        self._succ_used = int(self.succ_pool.size)
        self._pred_used = int(self.pred_pool.size)
        self.work = dag.work_weights.astype(np.float64, copy=True)
        self.comm = dag.comm_weights.astype(np.float64, copy=True)
        self.alive = np.ones(n, dtype=bool)
        self._live = n
        # reusable DFS scratch for the dispatched reachability probe
        self.dfs_stack = np.empty(max(n, 1), dtype=np.int64)
        self.dfs_seen = np.zeros(max(n, 1), dtype=np.int64)
        self._stamp = 0
        # Pearce–Kelly dynamic topological order (node -> position; dead
        # nodes leave permanent holes — only relative order matters) plus
        # the forward/backward region scratch of the pk_order kernel
        self.order = None
        self.f_buf = None
        self.b_buf = None
        if use_order:
            topo = np.asarray(dag.topological_order(), dtype=np.int64)
            self.order = np.empty(max(n, 1), dtype=np.int64)
            self.order[topo] = np.arange(n, dtype=np.int64)
            self.f_buf = np.empty(max(n, 1), dtype=np.int64)
            self.b_buf = np.empty(max(n, 1), dtype=np.int64)

    @staticmethod
    def _sorted_rows(indptr, indices, n):
        row_ids = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
        order = np.lexsort((indices, row_ids))
        pool = np.ascontiguousarray(indices[order], dtype=np.int64)
        return pool, indptr[:-1].astype(np.int64), np.diff(indptr).astype(np.int64)

    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return self._live

    def node_ids(self) -> list[int]:
        return np.flatnonzero(self.alive).tolist()

    def succ_row(self, u: int) -> np.ndarray:
        b = self.succ_start[u]
        return self.succ_pool[b : b + self.succ_len[u]]

    def pred_row(self, v: int) -> np.ndarray:
        b = self.pred_start[v]
        return self.pred_pool[b : b + self.pred_len[v]]

    def edge_iter(self):
        for u in self.node_ids():
            for w in self.succ_row(u).tolist():
                yield u, w

    def incident_edges(self, v: int) -> set[tuple[int, int]]:
        """All current edges with ``v`` as an endpoint."""
        out = {(v, w) for w in self.succ_row(v).tolist()}
        out |= {(w, v) for w in self.pred_row(v).tolist()}
        return out

    def next_stamp(self) -> int:
        self._stamp += 1
        return self._stamp

    # ------------------------------------------------------------------ #
    def is_contractable(self, u: int, v: int, budget: int | None = None) -> bool:
        """True when the only ``u -> v`` path is the direct edge.

        Same contract as :meth:`_MutableGraph.is_contractable`: two O(1)
        fast paths, then the reachability probe; a probe stopped by the
        ``budget`` conservatively reports *not* contractable.  With a
        maintained dynamic order (``use_order=True``) and no budget, the
        probe is the Pearce–Kelly kernel pruned to the position strip
        ``order < order[v]`` — exact, and on dense DAGs a small fraction
        of the descendant set the plain DFS walks.
        """
        if self.succ_len[u] == 1:
            return True
        if self.pred_len[v] == 1:
            return True
        if self.order is not None and budget is None:
            return kernels.pk_order(self, 0, u, v) == 0
        return kernels.coarsen_reach(self, u, v, budget) == 0

    def contract(self, u: int, v: int) -> None:
        """Merge ``v`` into ``u`` (the edge ``(u, v)`` must exist and be contractable)."""
        su = self.succ_row(u).tolist()
        sv = self.succ_row(v).tolist()
        pu = self.pred_row(u).tolist()
        pv = self.pred_row(v).tolist()
        new_succ = sorted({w for w in su if w != v} | {w for w in sv if w != u})
        new_pred = sorted({w for w in pu if w != v} | {w for w in pv if w != u})
        for w in sv:
            if w != u:
                self._replace(self.pred_pool, self.pred_start, self.pred_len, w, v, u)
        for w in pv:
            if w != u:
                self._replace(self.succ_pool, self.succ_start, self.succ_len, w, v, u)
        self._write_row("succ", u, new_succ)
        self._write_row("pred", u, new_pred)
        self.succ_len[v] = 0
        self.pred_len[v] = 0
        self.work[u] += self.work[v]
        self.comm[u] += self.comm[v]
        self.alive[v] = False
        self._live -= 1
        if self.order is not None:
            # Restore order validity.  The merge can only violate in-edges
            # of u: v's successors sit above order[v] > order[u], and every
            # other row kept its endpoints.  Each violated edge is repaired
            # by one Pearce–Kelly insertion; insertions never invalidate a
            # currently-valid edge (the F/B regions are DFS closures), so
            # repairing them in sequence — re-reading order[u], since one
            # repair may fix later violations — restores a fully valid
            # order.  The cycle branch cannot trigger: the adjacency is
            # already merged and acyclic (the contraction was checked).
            order = self.order
            for x in new_pred:
                if order[x] > order[u]:
                    kernels.pk_order(self, 1, x, u)

    @staticmethod
    def _replace(pool, start, length, w, old, new) -> None:
        """In row ``w``: drop ``old``, add ``new``, keep sorted-unique.

        Removal always applies (``old`` is in the row by construction), so
        the merged row never exceeds the old length — in-place rewrite.
        """
        b = start[w]
        row = pool[b : b + length[w]].tolist()
        merged = sorted({x for x in row if x != old} | {new})
        pool[b : b + len(merged)] = merged
        length[w] = len(merged)

    def _write_row(self, side: str, u: int, row: list[int]) -> None:
        pool = self.succ_pool if side == "succ" else self.pred_pool
        start = self.succ_start if side == "succ" else self.pred_start
        length = self.succ_len if side == "succ" else self.pred_len
        cap = self.succ_cap if side == "succ" else self.pred_cap
        m = len(row)
        if m <= cap[u]:
            b = start[u]
            pool[b : b + m] = row
            length[u] = m
            return
        used = self._succ_used if side == "succ" else self._pred_used
        if used + m > pool.size:
            grown = np.empty(max(pool.size * 2, used + m), dtype=np.int64)
            grown[:used] = pool[:used]
            pool = grown
            if side == "succ":
                self.succ_pool = grown
            else:
                self.pred_pool = grown
        pool[used : used + m] = row
        start[u] = used
        cap[u] = m
        length[u] = m
        if side == "succ":
            self._succ_used = used + m
        else:
            self._pred_used = used + m


class _BucketQueue:
    """Bucketed lazy priority structure over the merged work weight.

    Every candidate edge ``(u, v)`` lives in the bucket of its merged work
    weight ``w(u) + w(v)``; each bucket is a max-heap over the selection
    tiebreak ``(-c(u), (u, v))``.  Entries are invalidated *lazily* through
    per-node version counters: a contraction bumps the versions of the two
    merged endpoints, which strands every entry mentioning them (their key
    or comm column changed, or the edge disappeared — all three can only
    happen through a contraction touching an endpoint), and re-inserts the
    merged node's incident edges under their new keys.  Stale entries are
    skipped (and dropped) whenever they surface at the top of a bucket, and
    per-bucket live counts keep the lightest-third cutoff exact, so one
    contraction costs O((deg(u) + deg(v)) · log) bookkeeping instead of the
    seed's full O(m log m) rescan-and-sort.
    """

    def __init__(self, graph: "_MutableGraph | _FlatGraph") -> None:
        self.graph = graph
        self.version: dict[int, int] = dict.fromkeys(graph.node_ids(), 0)
        self.buckets: dict[float, list[tuple]] = {}
        self.live: dict[float, int] = {}
        self.keys: list[float] = []  # ascending; may contain emptied keys
        self.total = 0
        for u, v in graph.edge_iter():
            self.insert(u, v)

    # ------------------------------------------------------------------ #
    def insert(self, u: int, v: int) -> None:
        """Account the edge under its current merged work weight."""
        graph = self.graph
        key = graph.work[u] + graph.work[v]
        if key not in self.live:
            self.live[key] = 0
            self.buckets[key] = []
            insort(self.keys, key)
        heapq.heappush(
            self.buckets[key],
            (-graph.comm[u], (u, v), self.version[u], self.version[v]),
        )
        self.live[key] += 1
        self.total += 1

    def discard(self, u: int, v: int) -> None:
        """Unaccount the edge at its *current* key; its heap entry goes stale.

        Must run before the endpoint weights change.
        """
        key = self.graph.work[u] + self.graph.work[v]
        self.live[key] -= 1
        self.total -= 1

    def contract(self, u: int, v: int) -> None:
        """Contract ``(u, v)`` in the graph and re-key the affected entries."""
        graph = self.graph
        affected = graph.incident_edges(u) | graph.incident_edges(v)
        for a, b in affected:
            self.discard(a, b)
        self.version[u] += 1
        del self.version[v]
        graph.contract(u, v)
        for a, b in graph.incident_edges(u):
            self.insert(a, b)

    # ------------------------------------------------------------------ #
    def _is_live(self, entry: tuple) -> bool:
        _, (u, v), version_u, version_v = entry
        return (
            self.version.get(u) == version_u and self.version.get(v) == version_v
        )

    def _live_top(self, key: float) -> tuple | None:
        bucket = self.buckets[key]
        while bucket and not self._is_live(bucket[0]):
            heapq.heappop(bucket)
        return bucket[0] if bucket else None

    def _first_contractable(self, keys: list[float], is_contractable) -> tuple | None:
        """First contractable edge over ``keys`` in ``(-c(u), (u, v))`` order."""
        merge = []
        for key in keys:
            top = self._live_top(key)
            if top is not None:
                merge.append((top, key))
        heapq.heapify(merge)
        popped: list[tuple] = []  # live entries pulled out, restored on exit
        chosen: tuple | None = None
        while merge:
            entry, key = heapq.heappop(merge)
            heapq.heappop(self.buckets[key])  # `entry` is still this bucket's top
            u, v = entry[1]
            if is_contractable(u, v):
                chosen = (u, v)  # consumed by the upcoming contraction
                break
            popped.append((entry, key))
            refill = self._live_top(key)
            if refill is not None:
                heapq.heappush(merge, (refill, key))
        for entry, key in popped:
            heapq.heappush(self.buckets[key], entry)
        return chosen

    def select(self, light_fraction: float, is_contractable) -> tuple | None:
        """The paper's selection rule over the current candidate set.

        Walks the buckets in ascending key order until the lightest
        ``light_fraction`` of the live edges is covered (whole boundary
        bucket included), picks the max-``c(u)`` contractable edge among
        them, and falls back to the heavier remainder in the same comm-major
        order when the light set has no contractable edge.
        """
        if self.total == 0:
            return None
        cutoff = max(1, math.ceil(self.total * light_fraction))
        light_keys: list[float] = []
        covered = 0
        dead = 0
        boundary = len(self.keys)
        for index, key in enumerate(self.keys):
            count = self.live.get(key, 0)
            if count == 0:
                dead += 1
                continue
            light_keys.append(key)
            covered += count
            if covered >= cutoff:
                boundary = index + 1
                break
        chosen = self._first_contractable(light_keys, is_contractable)
        if chosen is None:
            rest = [k for k in self.keys[boundary:] if self.live.get(k, 0) > 0]
            chosen = self._first_contractable(rest, is_contractable)
        if dead > len(self.keys) // 2:
            self._compact()
        return chosen

    def _compact(self) -> None:
        """Drop emptied buckets so the ascending key walk stays short."""
        for key in list(self.live):
            if self.live[key] == 0:
                del self.live[key]
                del self.buckets[key]
        self.keys = sorted(self.live)


def coarsen_dag(
    dag: ComputationalDAG,
    target_nodes: int,
    light_fraction: float = 1.0 / 3.0,
    search_budget: int | None = None,
    method: str = "auto",
) -> CoarseningSequence:
    """Contract edges until at most ``target_nodes`` nodes remain.

    The paper's selection rule is applied at every step (lightest third by
    merged work weight, then largest source communication weight; the same
    comm-major order decides the fallback over the heavier edges when the
    light set has no contractable candidate).  The procedure stops early
    when no contractable edge exists (e.g. the graph has become edgeless).

    ``method`` selects the acyclicity machinery.  ``"pk"`` maintains a
    Pearce–Kelly dynamic topological order: every probe is pruned to the
    position strip between the endpoints and every contraction repairs the
    order incrementally — exact, with the same contract/skip decisions as
    the DFS, but near-linear growth on dense DAGs where the plain DFS
    re-walks large descendant sets.  ``"dfs"`` is the per-contraction DFS
    probe (:func:`repro.core.kernels.coarsen_reach`), retained as the
    pinned differential reference.  ``"auto"`` (default) uses ``"pk"``
    exactly when the check is exact, i.e. no ``search_budget`` is set.

    ``search_budget`` bounds the per-edge acyclicity DFS; edges whose
    verification would expand more nodes are conservatively skipped (see
    :meth:`_FlatGraph.is_contractable`).  ``None`` (the default) keeps the
    check exact.  A budget requires the DFS method — its accounting is
    defined in expanded DFS nodes — so combining it with ``method="pk"``
    is an error.
    """
    if target_nodes < 1:
        raise DagError("target_nodes must be >= 1")
    if method not in ("auto", "pk", "dfs"):
        raise DagError(f"unknown coarsening method {method!r}")
    if method == "pk" and search_budget is not None:
        raise DagError("search_budget is a DFS-node budget; use method='dfs'")
    use_order = method == "pk" or (method == "auto" and search_budget is None)
    sequence = CoarseningSequence(original=dag)
    graph = _FlatGraph(dag, use_order=use_order)
    queue = _BucketQueue(graph)

    def check(u: int, v: int) -> bool:
        return graph.is_contractable(u, v, search_budget)

    while graph.num_nodes > target_nodes:
        chosen = queue.select(light_fraction, check)
        if chosen is None:
            break
        queue.contract(*chosen)
        sequence.records.append(ContractionRecord(kept=chosen[0], removed=chosen[1]))
    return sequence


def coarsen_dag_reference(
    dag: ComputationalDAG,
    target_nodes: int,
    light_fraction: float = 1.0 / 3.0,
) -> CoarseningSequence:
    """The seed coarsener: full edge rescan-and-sort on every contraction.

    Retained for differential tests and the scaling benchmark
    (``benchmarks/bench_dag_kernels.py``).  Note the two documented rule
    deviations of the seed relative to :func:`coarsen_dag`: tie groups at
    the lightest-third boundary are cut at an arbitrary edge id, and the
    fallback over the heavier edges scans in ascending work order rather
    than the paper's comm-weight order.
    """
    if target_nodes < 1:
        raise DagError("target_nodes must be >= 1")
    sequence = CoarseningSequence(original=dag)
    graph = _MutableGraph(dag)

    while graph.num_nodes > target_nodes:
        edges = graph.edges()
        if not edges:
            break
        edges.sort(key=lambda edge: (graph.work[edge[0]] + graph.work[edge[1]], edge))
        cutoff = max(1, int(np.ceil(len(edges) * light_fraction)))
        light = edges[:cutoff]
        light.sort(key=lambda edge: (-graph.comm[edge[0]], edge))
        chosen: tuple[int, int] | None = None
        for candidate in light:
            if graph.is_contractable(*candidate):
                chosen = candidate
                break
        if chosen is None:
            # fall back to scanning the remaining edges (rare)
            for candidate in edges[cutoff:]:
                if graph.is_contractable(*candidate):
                    chosen = candidate
                    break
        if chosen is None:
            break
        graph.contract(*chosen)
        sequence.records.append(ContractionRecord(kept=chosen[0], removed=chosen[1]))
    return sequence
