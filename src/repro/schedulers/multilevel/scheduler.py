"""The multilevel (coarsen–solve–refine) scheduler (paper §4.5, Appendix A.5).

Pipeline (Figure 4 of the paper):

1. **Coarsen** the DAG by repeated acyclicity-preserving edge contractions
   down to a fraction of its original size (the paper evaluates 15% and
   30% and keeps the better result, which is also the default here).
2. **Solve** the BSP scheduling problem on the coarse DAG with a base
   scheduler (by default the framework pipeline of Figure 3, without the
   final communication-schedule ILP).
3. **Uncoarsen and refine**: undo the contractions a few at a time; after
   every batch of uncontractions, refine the projected schedule with a short
   burst of hill climbing on the current (partially uncoarsened) quotient
   DAG.
4. After full uncoarsening, re-optimise the communication schedule on the
   original DAG (``HCcs`` and, when enabled, ``ILPcs``).
"""

from __future__ import annotations

from ...core.dag import ComputationalDAG
from ...core.machine import BspMachine
from ...core.schedule import BspSchedule
from ..base import Scheduler, ScheduleImprover, TimeBudget, best_schedule
from ..comm_hill_climbing import CommScheduleHillClimbing
from ..hill_climbing import HillClimbingImprover
from .coarsen import coarsen_dag
from .refine import project_arrays, project_to_original, restrict_arrays

__all__ = ["MultilevelScheduler"]


class MultilevelScheduler(Scheduler):
    """Coarsen–solve–refine scheduling for communication-dominated instances.

    Parameters
    ----------
    base_scheduler:
        Scheduler used on the coarse DAG.  Defaults to the framework's base
        pipeline (constructed lazily to avoid a circular import).
    coarsening_ratios:
        Fractions of the original node count to coarsen to; the best result
        over all ratios is returned (paper: 0.30 and 0.15).
    refine_interval:
        Number of uncontraction steps between two refinement bursts (paper: 5).
    refine_max_steps:
        Maximum number of accepted hill-climbing moves per refinement burst
        (paper: 100).
    refine_rounds:
        Number of hill-climbing bursts run at every uncoarsening level.  The
        paper runs one; additional rounds reuse the level's cost tracker, so
        they cost only the extra accepted moves, not a tracker rebuild.
    comm_improvers:
        Improvers applied to the fully uncoarsened schedule (default:
        ``HCcs``; the pipeline variant also appends ``ILPcs``).
    min_nodes:
        Instances smaller than this are scheduled directly by the base
        scheduler (coarsening a tiny DAG is pointless, as the paper notes).
    """

    name = "multilevel"

    def __init__(
        self,
        base_scheduler: Scheduler | None = None,
        coarsening_ratios: tuple[float, ...] = (0.3, 0.15),
        refine_interval: int = 5,
        refine_max_steps: int = 100,
        refine_rounds: int = 1,
        comm_improvers: tuple[ScheduleImprover, ...] | None = None,
        min_nodes: int = 16,
    ) -> None:
        self.base_scheduler = base_scheduler
        self.coarsening_ratios = coarsening_ratios
        self.refine_interval = max(1, refine_interval)
        self.refine_max_steps = refine_max_steps
        self.refine_rounds = max(1, refine_rounds)
        self.comm_improvers = (
            comm_improvers if comm_improvers is not None else (CommScheduleHillClimbing(),)
        )
        self.min_nodes = min_nodes

    # ------------------------------------------------------------------ #
    def _resolve_base(self) -> Scheduler:
        if self.base_scheduler is not None:
            return self.base_scheduler
        from ..pipeline import SchedulingPipeline  # local import: avoids circularity

        return SchedulingPipeline.default(use_ilp=True, use_comm_ilp=False)

    # ------------------------------------------------------------------ #
    def schedule(
        self,
        dag: ComputationalDAG,
        machine: BspMachine,
        budget: TimeBudget | None = None,
    ) -> BspSchedule:
        budget = budget or TimeBudget.unlimited()
        base = self._resolve_base()
        if dag.num_nodes < self.min_nodes:
            return base.schedule(dag, machine, budget)

        candidates: list[BspSchedule] = []
        per_ratio = budget.fraction(1.0 / max(len(self.coarsening_ratios), 1))
        for ratio in self.coarsening_ratios:
            per_ratio.restart()
            candidates.append(self._run_one_ratio(dag, machine, base, ratio, per_ratio))
        return best_schedule(*candidates)

    # ------------------------------------------------------------------ #
    def _run_one_ratio(
        self,
        dag: ComputationalDAG,
        machine: BspMachine,
        base: Scheduler,
        ratio: float,
        budget: TimeBudget,
    ) -> BspSchedule:
        target = max(2, int(round(dag.num_nodes * ratio)))
        sequence = coarsen_dag(dag, target_nodes=target)

        # solve on the fully coarsened DAG
        full_quotient = sequence.quotient()
        coarse_schedule = base.schedule(full_quotient.dag, machine, budget.fraction(0.5))
        procs, supersteps = project_to_original(full_quotient, coarse_schedule)

        # Gradual uncoarsening with refinement bursts.  Every level works on
        # raw assignment arrays: the cluster-constant projection of a valid
        # schedule is valid by construction, so no schedule object is built
        # and no validation runs per burst; the level's cost tracker is
        # built once and reused across all bursts of that level.  After the
        # bursts, supersteps emptied by the moves are compacted away (the
        # seed path compacted per level too — without it, the ±1-superstep
        # move neighbourhood cannot bridge the gaps at later levels).
        refiner = HillClimbingImprover(max_steps=self.refine_max_steps)
        total = sequence.num_contractions
        level = total - self.refine_interval
        while level > 0:
            if budget.expired():
                break
            quotient = sequence.quotient(level)
            coarse_procs, coarse_steps = restrict_arrays(quotient, procs, supersteps)
            tracker = None
            for _ in range(self.refine_rounds):
                if budget.expired():
                    break
                tracker, accepted = refiner.refine_assignment(
                    quotient.dag,
                    machine,
                    coarse_procs if tracker is None else tracker.procs,
                    coarse_steps if tracker is None else tracker.supersteps,
                    budget=budget.fraction(0.1),
                    tracker=tracker,
                )
                if accepted == 0:
                    break  # converged: further rounds would only re-scan
            if tracker is not None:
                coarse_procs, coarse_steps, _ = tracker.compacted_assignment()
            procs, supersteps = project_arrays(quotient, coarse_procs, coarse_steps)
            level -= self.refine_interval

        # final refinement and communication optimisation on the original DAG
        schedule = BspSchedule(dag, machine, procs, supersteps).compacted()
        schedule = refiner.improve(schedule, budget.fraction(0.2))
        for improver in self.comm_improvers:
            if budget.expired():
                break
            schedule = improver.improve(schedule, budget.fraction(0.2))
        return schedule
