"""Multilevel (coarsen-solve-refine) scheduling (paper §4.5)."""

from .coarsen import (
    CoarseningSequence,
    ContractionRecord,
    QuotientDag,
    coarsen_dag,
    coarsen_dag_reference,
)
from .refine import project_arrays, project_to_original, restrict_arrays, restrict_to_quotient
from .scheduler import MultilevelScheduler

__all__ = [
    "CoarseningSequence",
    "ContractionRecord",
    "MultilevelScheduler",
    "QuotientDag",
    "coarsen_dag",
    "coarsen_dag_reference",
    "project_arrays",
    "project_to_original",
    "restrict_arrays",
    "restrict_to_quotient",
]
