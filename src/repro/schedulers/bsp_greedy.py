"""The BSPg greedy initialisation heuristic (paper §4.2, Appendix A.2, Algorithm 1).

BSPg builds a BSP schedule directly, superstep by superstep, while still
simulating concrete start/finish times inside each computation phase so that
the per-processor work stays balanced.  The rules are:

* a processor may only be assigned a node ``v`` when all of ``v``'s direct
  predecessors are already available to it *within the current superstep*
  (computed on the same processor, or in an earlier superstep);
* nodes that became ready but have predecessors on several processors in the
  current superstep are parked in a global ``ready_all`` set and only become
  assignable (to anybody) when the next superstep starts;
* when at least half of the processors are idle and nothing in ``ready_all``
  can be assigned without communication, the computation phase is closed and
  the next superstep begins;
* tie-breaking between assignable nodes uses a communication-saving score:
  a candidate ``v`` is preferred when its predecessors ``u`` (or their
  direct successors) already live on the target processor, weighted by
  ``c(u) / outdeg(u)``.

Communication steps are not constructed explicitly; the resulting schedule
uses the lazy communication schedule.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..core.dag import ComputationalDAG
from ..core.machine import BspMachine
from ..core.schedule import BspSchedule
from .base import Scheduler, TimeBudget

__all__ = ["BspGreedyScheduler"]


class BspGreedyScheduler(Scheduler):
    """Greedy BSP-tailored initialisation heuristic (``BSPg``).

    Parameters
    ----------
    idle_fraction:
        The computation phase of the current superstep is closed once at
        least this fraction of the processors is idle and cannot receive
        further work without communication (the paper uses one half).
    """

    name = "bsp_greedy"

    def __init__(self, idle_fraction: float = 0.5) -> None:
        self.idle_fraction = idle_fraction

    # ------------------------------------------------------------------ #
    def schedule(
        self,
        dag: ComputationalDAG,
        machine: BspMachine,
        budget: TimeBudget | None = None,
    ) -> BspSchedule:
        n = dag.num_nodes
        num_procs = machine.num_procs
        procs = np.zeros(n, dtype=np.int64)
        supersteps = np.zeros(n, dtype=np.int64)
        if n == 0:
            return BspSchedule(dag, machine, procs, supersteps)

        assigned = np.zeros(n, dtype=bool)
        finished = np.zeros(n, dtype=bool)
        remaining_preds = dag.in_degrees()
        outdeg = np.maximum(dag.out_degrees(), 1)

        ready: set[int] = set(dag.sources())
        ready_all: set[int] = set(ready)
        ready_proc: list[set[int]] = [set() for _ in range(num_procs)]
        free = [True] * num_procs

        superstep = 0
        end_step = False
        unassigned = n
        # Heap of (finish_time, node); a sentinel node of -1 marks the
        # "time 0" entry that opens every superstep.
        finish_events: list[tuple[float, int]] = [(0.0, -1)]
        idle_threshold = max(1, int(np.ceil(self.idle_fraction * num_procs)))

        def choose_node(proc: int) -> int | None:
            """Pick the best assignable node for ``proc`` (Appendix A.2 score)."""
            pool = ready_proc[proc] if ready_proc[proc] else ready_all
            if not pool:
                return None
            best_node = None
            best_score = -1.0
            for v in pool:
                score = 0.0
                for u in dag.pred(v).tolist():
                    on_proc = assigned[u] and procs[u] == proc
                    if not on_proc:
                        on_proc = any(
                            assigned[w] and procs[w] == proc
                            for w in dag.succ(u).tolist()
                        )
                    if on_proc:
                        score += dag.comm(u) / outdeg[u]
                if score > best_score or (score == best_score and (best_node is None or v < best_node)):
                    best_score = score
                    best_node = v
            return best_node

        def assignable(proc: int) -> bool:
            return free[proc] and bool(ready_proc[proc] or ready_all)

        while unassigned > 0:
            if end_step and not finish_events:
                # open the next superstep: everything that is ready becomes
                # available to every processor
                for pool in ready_proc:
                    pool.clear()
                ready_all = set(ready)
                superstep += 1
                end_step = False
                finish_events = [(0.0, -1)]

            if not finish_events:
                # Nothing running and the step was not explicitly closed:
                # force a new superstep (can happen when every ready node
                # needs cross-processor data).
                end_step = True
                continue

            time_now, _ = finish_events[0]
            # process *all* nodes finishing at this time
            while finish_events and finish_events[0][0] == time_now:
                _, node = heapq.heappop(finish_events)
                if node < 0:
                    continue
                finished[node] = True
                free[int(procs[node])] = True
                for succ in dag.succ(node).tolist():
                    remaining_preds[succ] -= 1
                    if remaining_preds[succ] == 0:
                        ready.add(succ)
                        # can `succ` still be computed inside this superstep
                        # on the finishing node's processor?
                        proc = int(procs[node])
                        if all(
                            (assigned[u] and (procs[u] == proc or supersteps[u] < superstep))
                            for u in dag.pred(succ).tolist()
                        ):
                            ready_proc[proc].add(succ)

            if not end_step:
                progress = True
                while progress:
                    progress = False
                    for proc in range(num_procs):
                        if not assignable(proc):
                            continue
                        node = choose_node(proc)
                        if node is None:
                            continue
                        ready.discard(node)
                        ready_all.discard(node)
                        for pool in ready_proc:
                            pool.discard(node)
                        procs[node] = proc
                        supersteps[node] = superstep
                        assigned[node] = True
                        unassigned -= 1
                        free[proc] = False
                        heapq.heappush(finish_events, (time_now + dag.work(node), node))
                        progress = True

            idle_procs = sum(
                1 for proc in range(num_procs) if free[proc] and not ready_proc[proc]
            )
            if not ready_all and idle_procs >= idle_threshold:
                end_step = True

        return BspSchedule(dag, machine, procs, supersteps)
