"""ILP-based scheduling methods: ILPfull, ILPpart, ILPcs and ILPinit (paper §4.4)."""

from .backend import MilpProblem, MilpSolution
from .commsched import IlpCommScheduleImprover
from .full import IlpFullImprover
from .init import IlpInitScheduler
from .partial import IlpPartialImprover
from .window import WindowIlp, WindowIlpResult, estimate_window_variables

__all__ = [
    "IlpCommScheduleImprover",
    "IlpFullImprover",
    "IlpInitScheduler",
    "IlpPartialImprover",
    "MilpProblem",
    "MilpSolution",
    "WindowIlp",
    "WindowIlpResult",
    "estimate_window_variables",
]
