"""Retained seed model builder for the superstep-window ILP.

:func:`build_window_model_reference` constructs the window MILP exactly the
way the pre-batching implementation did — per-variable ``add_binary`` calls
and per-constraint Python dicts over ``dag.predecessors`` / ``successors``
lists.  It exists purely as the ground truth the batched construction in
:meth:`repro.schedulers.ilp.window.WindowIlp.solve` is pinned against: the
differential test (``tests/test_ilp_methods.py``) asserts that both paths
emit the *same model* — variable count, objective, bounds, integrality,
row bounds and the sparse constraint matrix — on randomized instances.

Like :mod:`repro.schedulers.reference`, this module is test surface, not
part of the production pipeline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from .backend import MilpProblem

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .window import WindowIlp

__all__ = ["build_window_model_reference"]


def build_window_model_reference(ilp: "WindowIlp") -> MilpProblem:
    """Build the window MILP with the seed per-dict construction."""
    dag, machine = ilp.dag, ilp.machine
    s_lo, s_hi = ilp.window
    window_steps = list(range(s_lo, s_hi + 1))
    num_procs = machine.num_procs
    reassign_set = set(ilp.reassign)

    # boundary predecessors: fixed nodes feeding the reassigned ones
    boundary: list[int] = []
    for v in ilp.reassign:
        for u in dag.predecessors(v):
            if u not in reassign_set and u not in boundary:
                boundary.append(u)
    model_nodes = ilp.reassign + boundary

    problem = MilpProblem(name="window_ilp")

    # --- variables -------------------------------------------------- #
    comp: dict[tuple[int, int, int], int] = {}
    for v in ilp.reassign:
        for p in range(num_procs):
            for s in window_steps:
                comp[(v, p, s)] = problem.add_binary()

    send: dict[tuple[int, int, int, int], int] = {}
    for v in model_nodes:
        sources = (
            range(num_procs) if v in reassign_set else [int(ilp.fixed_procs[v])]
        )
        for p1 in sources:
            for p2 in range(num_procs):
                if p1 == p2:
                    continue
                for s in window_steps:
                    send[(v, p1, p2, s)] = problem.add_binary()

    pres: dict[tuple[int, int, int], int] = {}
    for v in model_nodes:
        for p in range(num_procs):
            for s in window_steps:
                pres[(v, p, s)] = problem.add_continuous(0.0, 1.0)

    work_max = {
        s: problem.add_continuous(0.0, np.inf, objective=1.0) for s in window_steps
    }
    comm_max = {
        s: problem.add_continuous(0.0, np.inf, objective=machine.g)
        for s in window_steps
    }

    # --- fixed context constants ------------------------------------ #
    pres0 = _initial_presence(ilp, boundary, reassign_set)
    base_work, base_send, base_recv = _base_loads(ilp, reassign_set, set(boundary))

    # --- constraints -------------------------------------------------#
    # (1) every reassigned node computed exactly once
    for v in ilp.reassign:
        problem.add_eq(
            {comp[(v, p, s)]: 1.0 for p in range(num_procs) for s in window_steps},
            1.0,
        )

    # (2) presence recurrence
    for v in model_nodes:
        for p in range(num_procs):
            for s in window_steps:
                coefficients = {pres[(v, p, s)]: 1.0}
                constant = 0.0
                if s > s_lo:
                    coefficients[pres[(v, p, s - 1)]] = -1.0
                    for p1 in range(num_procs):
                        key = (v, p1, p, s - 1)
                        if key in send:
                            coefficients[send[key]] = -1.0
                else:
                    constant = pres0.get((v, p), 0.0)
                if v in reassign_set:
                    coefficients[comp[(v, p, s)]] = -1.0
                problem.add_le(coefficients, constant)

    # (3) sending requires presence on the source
    for (v, p1, p2, s), send_var in send.items():
        problem.add_le({send_var: 1.0, pres[(v, p1, s)]: -1.0}, 0.0)

    # (4) precedence: computing v needs every predecessor available
    boundary_set = set(boundary)
    for v in ilp.reassign:
        for u in dag.predecessors(v):
            if u not in reassign_set and u not in boundary_set:
                continue
            for p in range(num_procs):
                for s in window_steps:
                    problem.add_le(
                        {comp[(v, p, s)]: 1.0, pres[(u, p, s)]: -1.0}, 0.0
                    )

    # (5) values needed by fixed successors after the window must reach
    #     their processor by the end of the window
    for v in ilp.reassign:
        needed_procs = set()
        for w in dag.successors(v):
            if w in reassign_set:
                continue
            step = int(ilp.fixed_supersteps[w])
            if step > s_hi:
                needed_procs.add(int(ilp.fixed_procs[w]))
        for q in sorted(needed_procs):
            coefficients = {pres[(v, q, s_hi)]: 1.0}
            for p1 in range(num_procs):
                key = (v, p1, q, s_hi)
                if key in send:
                    coefficients[send[key]] = 1.0
            problem.add_ge(coefficients, 1.0)

    # (6) work maxima
    for s in window_steps:
        for p in range(num_procs):
            coefficients = {work_max[s]: 1.0}
            for v in ilp.reassign:
                coefficients[comp[(v, p, s)]] = -dag.work(v)
            problem.add_ge(coefficients, base_work.get((s, p), 0.0))

    # (7) communication maxima (send side and receive side)
    numa = machine.numa
    outgoing: dict[tuple[int, int], dict[int, float]] = {}
    incoming: dict[tuple[int, int], dict[int, float]] = {}
    for (v, p1, p2, step), send_var in send.items():
        volume = dag.comm(v) * numa[p1, p2]
        outgoing.setdefault((step, p1), {})[send_var] = -volume
        incoming.setdefault((step, p2), {})[send_var] = -volume
    for s in window_steps:
        for p in range(num_procs):
            send_coeffs = {comm_max[s]: 1.0, **outgoing.get((s, p), {})}
            recv_coeffs = {comm_max[s]: 1.0, **incoming.get((s, p), {})}
            problem.add_ge(send_coeffs, base_send.get((s, p), 0.0))
            problem.add_ge(recv_coeffs, base_recv.get((s, p), 0.0))

    return problem


def _initial_presence(
    ilp: "WindowIlp", boundary: list[int], reassign_set: set[int]
) -> dict[tuple[int, int], float]:
    """Presence constants at the start of the window for boundary predecessors."""
    s_lo, _ = ilp.window
    pres0: dict[tuple[int, int], float] = {}
    for u in boundary:
        pres0[(u, int(ilp.fixed_procs[u]))] = 1.0
    for step in ilp.context_comm:
        if step.node in reassign_set:
            continue
        if step.node in set(boundary) and step.superstep < s_lo:
            pres0[(step.node, step.target)] = 1.0
    return pres0


def _base_loads(
    ilp: "WindowIlp", reassign_set: set[int], boundary_set: set[int]
) -> tuple[dict, dict, dict]:
    """Constant work/send/recv loads inside the window from nodes outside the model."""
    s_lo, s_hi = ilp.window
    base_work: dict[tuple[int, int], float] = {}
    base_send: dict[tuple[int, int], float] = {}
    base_recv: dict[tuple[int, int], float] = {}
    for v in ilp.dag.nodes():
        if v in reassign_set:
            continue
        step = int(ilp.fixed_supersteps[v])
        if s_lo <= step <= s_hi and int(ilp.fixed_procs[v]) >= 0:
            key = (step, int(ilp.fixed_procs[v]))
            base_work[key] = base_work.get(key, 0.0) + ilp.dag.work(v)
    numa = ilp.machine.numa
    for step in ilp.context_comm:
        if step.node in reassign_set or step.node in boundary_set:
            continue
        if not s_lo <= step.superstep <= s_hi:
            continue
        volume = ilp.dag.comm(step.node) * numa[step.source, step.target]
        send_key = (step.superstep, step.source)
        recv_key = (step.superstep, step.target)
        base_send[send_key] = base_send.get(send_key, 0.0) + volume
        base_recv[recv_key] = base_recv.get(recv_key, 0.0) + volume
    return base_work, base_send, base_recv
