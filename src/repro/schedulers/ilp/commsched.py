"""``ILPcs``: ILP optimisation of the communication schedule (paper §4.4).

With the node assignment ``(π, τ)`` fixed, every required transfer of a
value ``v`` to a target processor has a feasible window of communication
phases (``[τ(v), first-need - 1]``).  ``ILPcs`` chooses one phase per
transfer so that the sum of per-superstep h-relation costs is minimised.
As in the paper (and in ``HCcs``), values are always sent directly from the
processor that computes them.

The model has one binary variable per (transfer, feasible phase) pair and a
continuous h-relation variable per superstep — small enough to be solved on
the entire DAG even when the assignment ILPs are not.
"""

from __future__ import annotations

import numpy as np

from ...core.comm import CommStep
from ...core.schedule import BspSchedule
from ..base import ScheduleImprover, TimeBudget, budget_limits
from .backend import MilpProblem

__all__ = ["IlpCommScheduleImprover"]

_EPS = 1e-9


class IlpCommScheduleImprover(ScheduleImprover):
    """Exact (time-limited) optimisation of transfer-to-phase placement.

    Parameters
    ----------
    time_limit:
        Wall-clock limit for the MILP solver (seconds).
    max_transfers:
        Safety bound: instances with more required transfers than this are
        left to the hill-climbing variant (``HCcs``).
    node_limit:
        Deterministic branch-and-bound node cap; a
        :class:`~repro.schedulers.Budget` with ``ilp_node_limit`` overrides
        it per invocation.
    """

    name = "ilp_commsched"

    def __init__(
        self,
        time_limit: float | None = 30.0,
        max_transfers: int = 5000,
        node_limit: int | None = None,
    ) -> None:
        self.time_limit = time_limit
        self.max_transfers = max_transfers
        self.node_limit = node_limit

    def improve(
        self,
        schedule: BspSchedule,
        budget: TimeBudget | None = None,
    ) -> BspSchedule:
        windows = schedule.comm_windows()
        if not windows or len(windows) > self.max_transfers:
            return schedule
        budget = budget or TimeBudget.unlimited()
        time_limit = self.time_limit
        if budget.seconds is not None:
            time_limit = min(time_limit or budget.remaining, budget.remaining)
        _, node_limit = budget_limits(budget)
        if node_limit is None:
            node_limit = self.node_limit

        machine = schedule.machine
        dag = schedule.dag
        num_supersteps = schedule.num_supersteps
        problem = MilpProblem(name="ilp_commsched")

        h_vars = [
            problem.add_continuous(0.0, np.inf, objective=1.0)
            for _ in range(num_supersteps)
        ]
        choice_vars: list[dict[int, int]] = []
        for window in windows:
            phases = {
                s: problem.add_binary() for s in range(window.earliest, window.latest + 1)
            }
            problem.add_eq({var: 1.0 for var in phases.values()}, 1.0)
            choice_vars.append(phases)

        # h-relation constraints: for every superstep and processor, the sent
        # and received volume must stay below H[s]
        send_terms: dict[tuple[int, int], dict[int, float]] = {}
        recv_terms: dict[tuple[int, int], dict[int, float]] = {}
        for window, phases in zip(windows, choice_vars):
            volume = dag.comm(window.node) * machine.numa[window.source, window.target]
            for s, var in phases.items():
                send_terms.setdefault((s, window.source), {})[var] = -volume
                recv_terms.setdefault((s, window.target), {})[var] = -volume
        for (s, _proc), coefficients in send_terms.items():
            problem.add_ge({h_vars[s]: 1.0, **coefficients}, 0.0)
        for (s, _proc), coefficients in recv_terms.items():
            problem.add_ge({h_vars[s]: 1.0, **coefficients}, 0.0)

        solution = problem.solve(time_limit=time_limit, node_limit=node_limit)
        if not solution.feasible:
            return schedule

        steps = []
        for window, phases in zip(windows, choice_vars):
            chosen = None
            for s, var in phases.items():
                if solution.is_one(var):
                    chosen = s
                    break
            if chosen is None:
                chosen = window.latest
            steps.append(CommStep(window.node, window.source, window.target, chosen))
        candidate = schedule.with_comm_schedule(frozenset(steps))
        return candidate if candidate.cost() < schedule.cost() - _EPS else schedule
