"""``ILPfull``: the whole scheduling problem as one ILP (paper §4.4).

The formulation follows the FS model of [28] via the shared window
formulation (:mod:`repro.schedulers.ilp.window`) with the window spanning
every superstep of the incumbent schedule and ``V0`` containing every node.
As in the paper, the method is only attempted when the estimated number of
variables stays below a threshold (20 000 by default); larger instances are
left to ``ILPpart``.
"""

from __future__ import annotations

from ...core.schedule import BspSchedule
from ..base import ScheduleImprover, TimeBudget, budget_limits
from .window import WindowIlp, estimate_window_variables

__all__ = ["IlpFullImprover"]

_EPS = 1e-9


class IlpFullImprover(ScheduleImprover):
    """Re-optimise the entire assignment with a single window ILP.

    Parameters
    ----------
    max_variables:
        Skip the solve when ``n · S · P²`` exceeds this bound (paper: 20 000).
    time_limit:
        Wall-clock limit handed to the MILP solver (seconds).
    node_limit:
        Deterministic branch-and-bound node cap (``None`` = unlimited); a
        :class:`~repro.schedulers.Budget` with ``ilp_node_limit`` overrides
        it per invocation.
    """

    name = "ilp_full"

    def __init__(
        self,
        max_variables: int = 20000,
        time_limit: float | None = 60.0,
        node_limit: int | None = None,
    ) -> None:
        self.max_variables = max_variables
        self.time_limit = time_limit
        self.node_limit = node_limit

    def applicable(self, schedule: BspSchedule) -> bool:
        """Whether the instance is small enough for the full ILP."""
        estimate = estimate_window_variables(
            schedule.dag.num_nodes,
            max(schedule.num_supersteps, 1),
            schedule.machine.num_procs,
        )
        return estimate <= self.max_variables

    def improve(
        self,
        schedule: BspSchedule,
        budget: TimeBudget | None = None,
    ) -> BspSchedule:
        if schedule.dag.num_nodes == 0 or not self.applicable(schedule):
            return schedule
        budget = budget or TimeBudget.unlimited()
        time_limit = self.time_limit
        if budget.seconds is not None:
            time_limit = min(time_limit or budget.remaining, budget.remaining)
        _, node_limit = budget_limits(budget)
        if node_limit is None:
            node_limit = self.node_limit

        window = (0, max(schedule.num_supersteps - 1, 0))
        ilp = WindowIlp(
            schedule.dag,
            schedule.machine,
            schedule.procs,
            schedule.supersteps,
            reassign=list(schedule.dag.nodes()),
            window=window,
            context_comm=schedule.comm_schedule,
        )
        result = ilp.solve(time_limit=time_limit, node_limit=node_limit)
        if not result.feasible:
            return schedule
        procs = schedule.procs.copy()
        supersteps = schedule.supersteps.copy()
        for v, p in result.procs.items():
            procs[v] = p
        for v, s in result.supersteps.items():
            supersteps[v] = s
        candidate = BspSchedule(
            schedule.dag, schedule.machine, procs, supersteps
        ).compacted()
        return candidate if candidate.cost() < schedule.cost() - _EPS else schedule
