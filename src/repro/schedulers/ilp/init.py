"""``ILPinit``: batch-by-batch ILP construction of an initial schedule (paper §4.2, A.4).

The DAG is processed in topological order.  Every batch of nodes is assigned
by one window ILP spanning three fresh supersteps; the batch size is grown
until the estimated model size ``|V0| · 3 · P²`` reaches a threshold (2 000
in the paper).  Nodes of earlier batches are fixed; successors of the
current batch are not assigned yet and are simply ignored by the window
formulation, exactly as the paper describes.

Should an individual batch ILP fail (time-out without a feasible point), the
batch falls back to placing all of its nodes on one processor in the first
superstep of its window — always valid because every predecessor lives in an
earlier superstep and intra-batch edges stay on the same processor.
"""

from __future__ import annotations

import numpy as np

from ...core.comm import CommStep
from ...core.dag import ComputationalDAG
from ...core.machine import BspMachine
from ...core.schedule import BspSchedule
from ..base import Scheduler, TimeBudget, budget_limits
from .window import WindowIlp, estimate_window_variables

__all__ = ["IlpInitScheduler"]


class IlpInitScheduler(Scheduler):
    """ILP-based initialisation heuristic.

    Parameters
    ----------
    max_variables:
        Estimated-size threshold used when growing a batch (paper: 2 000).
    supersteps_per_batch:
        Number of fresh supersteps each batch may use (paper: 3).
    time_limit_per_batch:
        MILP time limit per batch (seconds).
    node_limit:
        Deterministic branch-and-bound node cap per batch solve; a
        :class:`~repro.schedulers.Budget` with ``ilp_node_limit`` overrides
        it per invocation.
    """

    name = "ilp_init"

    def __init__(
        self,
        max_variables: int = 2000,
        supersteps_per_batch: int = 3,
        time_limit_per_batch: float | None = 15.0,
        node_limit: int | None = None,
    ) -> None:
        self.max_variables = max_variables
        self.supersteps_per_batch = supersteps_per_batch
        self.time_limit_per_batch = time_limit_per_batch
        self.node_limit = node_limit

    # ------------------------------------------------------------------ #
    def _batches(self, dag: ComputationalDAG, num_procs: int) -> list[list[int]]:
        """Split the topological order into batches below the size threshold."""
        order = dag.topological_order()
        batches: list[list[int]] = []
        current: list[int] = []
        for node in order:
            current.append(node)
            estimate = estimate_window_variables(
                len(current) + 1, self.supersteps_per_batch, num_procs
            )
            if estimate > self.max_variables:
                batches.append(current)
                current = []
        if current:
            batches.append(current)
        return batches

    @staticmethod
    def _partial_context_comm(
        dag: ComputationalDAG,
        procs: np.ndarray,
        supersteps: np.ndarray,
        assigned: np.ndarray,
    ) -> list[CommStep]:
        """Lazy transfers among already-assigned nodes (seeds boundary presence)."""
        steps: list[CommStep] = []
        for u in dag.nodes():
            if not assigned[u]:
                continue
            for w in dag.successors(u):
                if not assigned[w]:
                    continue
                if procs[u] != procs[w]:
                    steps.append(
                        CommStep(u, int(procs[u]), int(procs[w]), int(supersteps[w]) - 1)
                    )
        return steps

    # ------------------------------------------------------------------ #
    def schedule(
        self,
        dag: ComputationalDAG,
        machine: BspMachine,
        budget: TimeBudget | None = None,
    ) -> BspSchedule:
        n = dag.num_nodes
        if n == 0:
            return BspSchedule(dag, machine, np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
        budget = budget or TimeBudget.unlimited()
        _, node_limit = budget_limits(budget)
        if node_limit is None:
            node_limit = self.node_limit

        procs = np.full(n, -1, dtype=np.int64)
        supersteps = np.full(n, -1, dtype=np.int64)
        assigned = np.zeros(n, dtype=bool)

        for batch_index, batch in enumerate(self._batches(dag, machine.num_procs)):
            window_low = batch_index * self.supersteps_per_batch
            window_high = window_low + self.supersteps_per_batch - 1
            solved = False
            if not budget.expired():
                time_limit = self.time_limit_per_batch
                if budget.seconds is not None:
                    time_limit = min(time_limit or budget.remaining, budget.remaining)
                context = self._partial_context_comm(dag, procs, supersteps, assigned)
                ilp = WindowIlp(
                    dag,
                    machine,
                    procs,
                    supersteps,
                    reassign=batch,
                    window=(window_low, window_high),
                    context_comm=context,
                )
                result = ilp.solve(time_limit=time_limit, node_limit=node_limit)
                if result.feasible:
                    for v in batch:
                        procs[v] = result.procs[v]
                        supersteps[v] = result.supersteps[v]
                        assigned[v] = True
                    solved = True
            if not solved:
                # fallback: whole batch on processor 0 in the window's first superstep
                for v in batch:
                    procs[v] = 0
                    supersteps[v] = window_low
                    assigned[v] = True

        return BspSchedule(dag, machine, procs, supersteps).compacted()
