"""``ILPpart``: iterative window-by-window ILP improvement (paper §4.4, Appendix A.4).

The supersteps of the incumbent schedule are split into disjoint intervals,
built from back to front; each interval is grown until the estimated ILP
size ``|V0| · |S0| · P²`` exceeds a threshold (4 000 in the paper).  The
nodes of every interval are then re-optimised by one window ILP, keeping the
rest of the schedule fixed, and the result is accepted only when the exact
evaluated cost improves.
"""

from __future__ import annotations

from ...core.schedule import BspSchedule
from ..base import ScheduleImprover, TimeBudget, budget_limits
from .window import WindowIlp, estimate_window_variables

__all__ = ["IlpPartialImprover"]

_EPS = 1e-9


class IlpPartialImprover(ScheduleImprover):
    """Superstep-interval ILP polishing.

    Parameters
    ----------
    max_variables:
        Size threshold used when growing an interval (paper: 4 000).
    time_limit_per_window:
        MILP time limit for every interval (seconds).
    max_rounds:
        How many sweeps over the whole schedule to perform.
    node_limit:
        Deterministic branch-and-bound node cap per interval solve; a
        :class:`~repro.schedulers.Budget` with ``ilp_node_limit`` overrides
        it per invocation.
    """

    name = "ilp_partial"

    def __init__(
        self,
        max_variables: int = 4000,
        time_limit_per_window: float | None = 20.0,
        max_rounds: int = 1,
        node_limit: int | None = None,
    ) -> None:
        self.max_variables = max_variables
        self.time_limit_per_window = time_limit_per_window
        self.max_rounds = max_rounds
        self.node_limit = node_limit

    # ------------------------------------------------------------------ #
    def _intervals(self, schedule: BspSchedule) -> list[tuple[int, int]]:
        """Disjoint superstep intervals, grown from the back until the size bound."""
        num_procs = schedule.machine.num_procs
        nodes_per_step = [
            len(schedule.nodes_in_superstep(s)) for s in range(schedule.num_supersteps)
        ]
        intervals: list[tuple[int, int]] = []
        high = schedule.num_supersteps - 1
        while high >= 0:
            low = high
            node_count = nodes_per_step[high]
            while low - 1 >= 0:
                candidate_nodes = node_count + nodes_per_step[low - 1]
                estimate = estimate_window_variables(
                    candidate_nodes, high - (low - 1) + 1, num_procs
                )
                if estimate > self.max_variables:
                    break
                low -= 1
                node_count = candidate_nodes
            intervals.append((low, high))
            high = low - 1
        return intervals

    # ------------------------------------------------------------------ #
    def improve(
        self,
        schedule: BspSchedule,
        budget: TimeBudget | None = None,
    ) -> BspSchedule:
        if schedule.dag.num_nodes == 0 or schedule.num_supersteps == 0:
            return schedule
        budget = budget or TimeBudget.unlimited()
        _, node_limit = budget_limits(budget)
        if node_limit is None:
            node_limit = self.node_limit
        incumbent = schedule

        for _ in range(self.max_rounds):
            if budget.expired():
                break
            improved_this_round = False
            for low, high in self._intervals(incumbent):
                if budget.expired():
                    break
                reassign = [
                    v
                    for v in incumbent.dag.nodes()
                    if low <= incumbent.superstep_of(v) <= high
                ]
                if not reassign:
                    continue
                estimate = estimate_window_variables(
                    len(reassign), high - low + 1, incumbent.machine.num_procs
                )
                if estimate > 4 * self.max_variables:
                    continue  # a single superstep can already be too large; skip it
                time_limit = self.time_limit_per_window
                if budget.seconds is not None:
                    time_limit = min(time_limit or budget.remaining, budget.remaining)
                ilp = WindowIlp(
                    incumbent.dag,
                    incumbent.machine,
                    incumbent.procs,
                    incumbent.supersteps,
                    reassign=reassign,
                    window=(low, high),
                    context_comm=incumbent.comm_schedule,
                )
                result = ilp.solve(time_limit=time_limit, node_limit=node_limit)
                if not result.feasible:
                    continue
                procs = incumbent.procs.copy()
                supersteps = incumbent.supersteps.copy()
                for v, p in result.procs.items():
                    procs[v] = p
                for v, s in result.supersteps.items():
                    supersteps[v] = s
                candidate = BspSchedule(
                    incumbent.dag, incumbent.machine, procs, supersteps
                )
                if candidate.cost() < incumbent.cost() - _EPS:
                    incumbent = candidate
                    improved_this_round = True
            if not improved_this_round:
                break

        compacted = incumbent.compacted()
        return compacted if compacted.cost() < schedule.cost() - _EPS else schedule
