"""Thin MILP backend used by all ILP-based scheduling methods.

The paper uses the CBC solver through its Python interface; this repository
substitutes ``scipy.optimize.milp`` (the HiGHS solver shipped with SciPy),
hidden behind :class:`MilpProblem` so the formulations do not depend on the
solver API.  See DESIGN.md for the substitution rationale.

:class:`MilpProblem` is a small incremental model builder: variables are
added one by one (binary or continuous, with objective coefficients), linear
constraints are stored as sparse triples, and :meth:`solve` assembles the
sparse constraint matrix and calls HiGHS with a time limit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from ...core.exceptions import SolverError

__all__ = ["MilpProblem", "MilpSolution"]


@dataclass
class MilpSolution:
    """Result of a MILP solve."""

    values: np.ndarray
    objective: float
    status: int
    message: str

    @property
    def feasible(self) -> bool:
        """Whether a feasible (not necessarily optimal) solution was found."""
        return self.values is not None and self.values.size > 0

    def value(self, index: int) -> float:
        """Value of variable ``index``."""
        return float(self.values[index])

    def is_one(self, index: int, threshold: float = 0.5) -> bool:
        """Whether binary variable ``index`` is set in the solution."""
        return self.values[index] > threshold


class MilpProblem:
    """Incremental mixed-integer linear program builder (minimisation)."""

    def __init__(self, name: str = "milp") -> None:
        self.name = name
        self._objective: list[float] = []
        self._lower: list[float] = []
        self._upper: list[float] = []
        self._integrality: list[int] = []
        # constraints as sparse triples
        self._rows: list[int] = []
        self._cols: list[int] = []
        self._vals: list[float] = []
        self._row_lower: list[float] = []
        self._row_upper: list[float] = []

    # ------------------------------------------------------------------ #
    @property
    def num_variables(self) -> int:
        """Number of variables added so far."""
        return len(self._objective)

    @property
    def num_constraints(self) -> int:
        """Number of linear constraints added so far."""
        return len(self._row_lower)

    def add_binary(self, objective: float = 0.0) -> int:
        """Add a binary variable; returns its index."""
        return self._add_var(0.0, 1.0, objective, integer=True)

    def add_continuous(
        self, lower: float = 0.0, upper: float = np.inf, objective: float = 0.0
    ) -> int:
        """Add a continuous variable; returns its index."""
        return self._add_var(lower, upper, objective, integer=False)

    def add_binary_block(self, count: int) -> int:
        """Append ``count`` binary variables at once; returns the first index.

        Equivalent to ``count`` calls of :meth:`add_binary` — the batched
        model builders allocate whole variable families with one call and
        address them by index arithmetic.
        """
        first = self.num_variables
        self._objective.extend([0.0] * count)
        self._lower.extend([0.0] * count)
        self._upper.extend([1.0] * count)
        self._integrality.extend([1] * count)
        return first

    def add_continuous_block(
        self,
        count: int,
        lower: float = 0.0,
        upper: float = np.inf,
        objective: float = 0.0,
    ) -> int:
        """Append ``count`` identical continuous variables; returns the first index."""
        first = self.num_variables
        self._objective.extend([float(objective)] * count)
        self._lower.extend([float(lower)] * count)
        self._upper.extend([float(upper)] * count)
        self._integrality.extend([0] * count)
        return first

    def add_rows(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        lower: np.ndarray | float,
        upper: np.ndarray | float,
        num_rows: int | None = None,
    ) -> None:
        """Append a whole block of constraints from parallel coefficient arrays.

        ``rows`` are block-local (``0 .. num_rows - 1``); ``lower``/``upper``
        are scalars or arrays of length ``num_rows``.  One call replaces a
        Python loop of :meth:`add_constraint` invocations — the coefficient
        triples are validated and appended vectorized.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        vals = np.asarray(vals, dtype=np.float64)
        if not rows.size and num_rows in (None, 0):
            return
        if num_rows is None:
            num_rows = int(rows.max()) + 1
        if rows.size:
            if rows.min() < 0 or rows.max() >= num_rows:
                raise SolverError("constraint block references a row out of range")
            if cols.min() < 0 or cols.max() >= self.num_variables:
                raise SolverError("constraint block references an unknown variable")
        base = self.num_constraints
        self._rows.extend((rows + base).tolist())
        self._cols.extend(cols.tolist())
        self._vals.extend(vals.tolist())
        lower_arr = np.broadcast_to(np.asarray(lower, dtype=np.float64), (num_rows,))
        upper_arr = np.broadcast_to(np.asarray(upper, dtype=np.float64), (num_rows,))
        self._row_lower.extend(lower_arr.tolist())
        self._row_upper.extend(upper_arr.tolist())

    def _add_var(self, lower: float, upper: float, objective: float, integer: bool) -> int:
        self._objective.append(float(objective))
        self._lower.append(float(lower))
        self._upper.append(float(upper))
        self._integrality.append(1 if integer else 0)
        return len(self._objective) - 1

    def add_constraint(
        self,
        coefficients: dict[int, float],
        lower: float = -np.inf,
        upper: float = np.inf,
    ) -> None:
        """Add the constraint ``lower <= Σ coeff_i x_i <= upper``."""
        if not coefficients:
            raise SolverError("constraint must reference at least one variable")
        row = self.num_constraints
        for col, value in coefficients.items():
            if not 0 <= col < self.num_variables:
                raise SolverError(f"constraint references unknown variable {col}")
            self._rows.append(row)
            self._cols.append(col)
            self._vals.append(float(value))
        self._row_lower.append(float(lower))
        self._row_upper.append(float(upper))

    def add_le(self, coefficients: dict[int, float], upper: float) -> None:
        """Add ``Σ coeff_i x_i <= upper``."""
        self.add_constraint(coefficients, -np.inf, upper)

    def add_ge(self, coefficients: dict[int, float], lower: float) -> None:
        """Add ``Σ coeff_i x_i >= lower``."""
        self.add_constraint(coefficients, lower, np.inf)

    def add_eq(self, coefficients: dict[int, float], value: float) -> None:
        """Add ``Σ coeff_i x_i == value``."""
        self.add_constraint(coefficients, value, value)

    # ------------------------------------------------------------------ #
    def solve(
        self,
        time_limit: float | None = None,
        mip_rel_gap: float = 0.0,
        node_limit: int | None = None,
    ) -> MilpSolution:
        """Solve the model with HiGHS; returns a (possibly infeasible) solution object.

        A ``time_limit`` of ``None`` lets the solver run to optimality.  When
        no feasible point is found, :attr:`MilpSolution.feasible` is false.
        ``node_limit`` caps the branch-and-bound node count — unlike the
        wall-clock limit it is *deterministic*, so two runs with the same
        node limit stop at the same incumbent regardless of machine load.
        """
        if self.num_variables == 0:
            return MilpSolution(np.zeros(0), 0.0, 0, "empty model")
        c = np.asarray(self._objective, dtype=np.float64)
        bounds = Bounds(np.asarray(self._lower), np.asarray(self._upper))
        integrality = np.asarray(self._integrality, dtype=np.int64)
        constraints = None
        if self.num_constraints:
            matrix = sparse.csr_matrix(
                (self._vals, (self._rows, self._cols)),
                shape=(self.num_constraints, self.num_variables),
            )
            constraints = LinearConstraint(
                matrix, np.asarray(self._row_lower), np.asarray(self._row_upper)
            )
        options: dict[str, float | bool] = {"disp": False}
        if time_limit is not None:
            options["time_limit"] = max(float(time_limit), 0.05)
        if mip_rel_gap:
            options["mip_rel_gap"] = float(mip_rel_gap)
        if node_limit is not None:
            options["node_limit"] = max(int(node_limit), 1)
        result = milp(
            c=c,
            constraints=constraints,
            integrality=integrality,
            bounds=bounds,
            options=options,
        )
        values = result.x if result.x is not None else np.zeros(0)
        objective = float(result.fun) if result.fun is not None else float("inf")
        return MilpSolution(
            values=np.asarray(values),
            objective=objective,
            status=int(result.status),
            message=str(result.message),
        )
