"""Shared "superstep window" ILP formulation (paper §4.4, Appendix A.4).

All three assignment-optimising ILP methods of the paper — ``ILPfull``,
``ILPpart`` and ``ILPinit`` — are instances of the same problem: reassign a
set of nodes ``V0`` to processors and to supersteps inside a window
``S0 = [s_lo, s_hi]``, with the rest of the schedule fixed.  This module
implements that formulation once:

Variables
---------
* ``comp[v,p,s]``  (binary)      — node ``v ∈ V0`` computed on ``p`` in ``s``;
* ``send[v,p1,p2,s]`` (binary)   — value of ``v`` sent ``p1 → p2`` in the
  communication phase of ``s``; for boundary predecessors (values computed
  before the window) only ``p1 = π(v)`` is allowed, as in the paper;
* ``pres[v,p,s]`` (continuous)   — value of ``v`` available on ``p`` during
  superstep ``s`` (for computing successors or for sending);
* ``W[s]``, ``H[s]`` (continuous) — work and h-relation maxima per superstep.

Constraints ensure each ``V0`` node is computed exactly once, precedence
through availability, send-only-if-present, availability recurrences
anchored at the fixed context, presence of values needed by fixed successors
after the window, and the max-constraints defining ``W`` and ``H`` on top of
the fixed base traffic/work of nodes outside the model.  The objective is
``Σ_s W[s] + g · H[s]`` (latency is constant for a fixed window).

Model construction is **batched**: variable families are allocated as whole
blocks addressed by index arithmetic, the edge-indexed constraint families
(precedence, presence recurrences, send-presence coupling, work/communication
maxima) are emitted as flat coefficient arrays assembled with numpy over the
DAG's CSR edge slices, and the per-window Python dict building of the seed
implementation is gone.  The seed builder is retained as
:func:`repro.schedulers.ilp.reference.build_window_model_reference` and a
differential test pins both paths to the *same model* — variable count,
objective, bounds, integrality, row bounds and constraint matrix.  Only
construction is batched — the solver loop (HiGHS via :class:`MilpProblem`)
is untouched.

Simplifications relative to the paper (documented in DESIGN.md): no extra
communication phase before the window, and cost savings from deleting fixed
transfers outside the window are ignored — both match the paper's own
pragmatic restrictions.  The surrounding pipeline re-derives the lazy
communication schedule after extraction and only accepts the result when the
exact evaluated cost improves, so these approximations never compromise
correctness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ...core.comm import CommStep
from ...core.csr import gather_rows
from ...core.dag import ComputationalDAG
from ...core.exceptions import SolverError
from ...core.machine import BspMachine
from .backend import MilpProblem

__all__ = ["WindowIlp", "WindowIlpResult", "estimate_window_variables"]

_INT = np.int64


def estimate_window_variables(
    num_reassigned: int, num_supersteps: int, num_procs: int
) -> int:
    """The paper's size estimate ``|V0| · |S0| · P²`` for a window ILP."""
    return num_reassigned * num_supersteps * num_procs * num_procs


@dataclass
class WindowIlpResult:
    """Result of a window ILP solve."""

    feasible: bool
    procs: dict[int, int]
    supersteps: dict[int, int]
    objective: float
    message: str = ""


class WindowIlp:
    """Builds and solves one superstep-window ILP.

    Parameters
    ----------
    dag, machine:
        Problem instance.
    fixed_procs, fixed_supersteps:
        Assignment arrays for the *whole* DAG; entries for nodes being
        reassigned (and nodes not yet assigned, for ``ILPinit``) are ignored
        and may be ``-1``.
    reassign:
        The nodes ``V0`` to (re)assign.
    window:
        Inclusive superstep window ``(s_lo, s_hi)``.
    context_comm:
        Communication steps of the fixed context (typically the incumbent's
        lazy schedule).  Steps of nodes being reassigned are ignored; steps
        of boundary predecessors delivered *before* the window seed the
        initial presence; steps of unrelated nodes inside the window become
        constant base traffic.
    """

    def __init__(
        self,
        dag: ComputationalDAG,
        machine: BspMachine,
        fixed_procs: Sequence[int] | np.ndarray,
        fixed_supersteps: Sequence[int] | np.ndarray,
        reassign: Sequence[int],
        window: tuple[int, int],
        context_comm: Iterable[CommStep] = (),
    ) -> None:
        self.dag = dag
        self.machine = machine
        self.fixed_procs = np.asarray(fixed_procs, dtype=np.int64)
        self.fixed_supersteps = np.asarray(fixed_supersteps, dtype=np.int64)
        self.reassign = list(dict.fromkeys(int(v) for v in reassign))
        self.window = (int(window[0]), int(window[1]))
        if self.window[0] < 0 or self.window[1] < self.window[0]:
            raise SolverError(f"invalid superstep window {window}")
        self.context_comm = list(context_comm)

        # shared per-instance arrays, hoisted out of the model build: the
        # reassign mask, the CSR neighbour gathers, the boundary-predecessor
        # set and the node -> model-position map depend only on (dag,
        # reassign), so repeated ``build_model`` calls (and the context
        # validation below) reuse them instead of reallocating per build
        self._reassign_arr = np.asarray(self.reassign, dtype=_INT)
        self._reassign_mask = np.zeros(dag.num_nodes, dtype=bool)
        self._reassign_mask[self._reassign_arr] = True
        self._pred_flat, self._pred_offsets = gather_rows(
            dag.pred_indptr, dag.pred_indices, self._reassign_arr
        )
        self._succ_flat, self._succ_offsets = gather_rows(
            dag.succ_indptr, dag.succ_indices, self._reassign_arr
        )
        # boundary predecessors: fixed nodes feeding the reassigned ones, in
        # first-occurrence order over the CSR predecessor slices
        outside_preds = self._pred_flat[~self._reassign_mask[self._pred_flat]]
        if outside_preds.size:
            _, first = np.unique(outside_preds, return_index=True)
            self._boundary = outside_preds[np.sort(first)]
        else:
            self._boundary = np.empty(0, dtype=_INT)
        self._model_nodes = np.concatenate((self._reassign_arr, self._boundary))
        self._model_pos = np.full(dag.num_nodes, -1, dtype=_INT)
        self._model_pos[self._model_nodes] = np.arange(
            self._model_nodes.size, dtype=_INT
        )
        self._validate_context()

    # ------------------------------------------------------------------ #
    def _in_model_mask(self, nodes: np.ndarray) -> np.ndarray:
        return self._reassign_mask[nodes]

    def _validate_context(self) -> None:
        """Check the structural assumptions the formulation relies on.

        Vectorized over the reassigned nodes' CSR neighbour slices: fixed
        predecessors must be assigned before the window, fixed successors
        after it (or left unassigned).
        """
        if not self.reassign:
            return
        s_lo, s_hi = self.window
        nodes = self._reassign_arr

        preds, pred_offsets = self._pred_flat, self._pred_offsets
        outside = ~self._in_model_mask(preds)
        bad = outside & (
            (self.fixed_supersteps[preds] < 0) | (self.fixed_supersteps[preds] >= s_lo)
        )
        if bad.any():
            at = int(np.argmax(bad))
            v = int(nodes[np.searchsorted(pred_offsets, at, side="right") - 1])
            u = int(preds[at])
            raise SolverError(
                f"fixed predecessor {u} of reassigned node {v} must be "
                f"assigned before the window (superstep {int(self.fixed_supersteps[u])})"
            )

        succs, succ_offsets = self._succ_flat, self._succ_offsets
        outside = ~self._in_model_mask(succs)
        steps = self.fixed_supersteps[succs]
        bad = outside & (steps >= 0) & (steps <= s_hi)
        if bad.any():
            at = int(np.argmax(bad))
            v = int(nodes[np.searchsorted(succ_offsets, at, side="right") - 1])
            w = int(succs[at])
            raise SolverError(
                f"fixed successor {w} of reassigned node {v} must be "
                "assigned after the window or left unassigned"
            )

    # ------------------------------------------------------------------ #
    def build_model(self) -> tuple[MilpProblem, np.ndarray]:
        """Assemble the MILP from batched coefficient arrays.

        Returns the problem plus the ``(nr, P, W)`` ``comp`` variable index
        block used to extract the assignment.  Exposed separately from
        :meth:`solve` so the differential test can compare the emitted model
        against the retained seed dict builder
        (:func:`repro.schedulers.ilp.reference.build_window_model_reference`).
        """
        dag, machine = self.dag, self.machine
        s_lo, s_hi = self.window
        W = s_hi - s_lo + 1
        P = machine.num_procs
        nr = len(self.reassign)

        # hoisted in __init__: reassign array/mask, neighbour gathers,
        # boundary predecessors and the node -> model-position map
        reassign_arr = self._reassign_arr
        pred_flat, pred_offsets = self._pred_flat, self._pred_offsets
        boundary = self._boundary
        nb = boundary.size
        model_nodes = self._model_nodes
        n_model = nr + nb
        model_pos = self._model_pos

        problem = MilpProblem(name="window_ilp")

        # --- variable blocks (index arithmetic replaces per-var dicts) --- #
        comp0 = problem.add_binary_block(nr * P * W)
        comp_idx = comp0 + np.arange(nr * P * W, dtype=_INT).reshape(nr, P, W)

        # send[v, p1, p2, s]: reassigned nodes get all P sources, boundary
        # nodes only their fixed processor; -1 marks non-existent slots
        send_idx = np.full((n_model, P, P, W), -1, dtype=_INT)
        send_r0 = problem.add_binary_block(nr * P * (P - 1) * W)
        if nr and P > 1:
            block = send_r0 + np.arange(nr * P * (P - 1) * W, dtype=_INT).reshape(
                nr, P, P - 1, W
            )
            for p1 in range(P):
                others = [p2 for p2 in range(P) if p2 != p1]
                send_idx[:nr, p1, others, :] = block[:, p1]
        send_b0 = problem.add_binary_block(nb * (P - 1) * W)
        if nb and P > 1:
            block = send_b0 + np.arange(nb * (P - 1) * W, dtype=_INT).reshape(
                nb, P - 1, W
            )
            for bi in range(nb):
                p1 = int(self.fixed_procs[boundary[bi]])
                others = [p2 for p2 in range(P) if p2 != p1]
                send_idx[nr + bi, p1, others, :] = block[bi]

        pres0_var = problem.add_continuous_block(n_model * P * W, 0.0, 1.0)
        pres_idx = pres0_var + np.arange(n_model * P * W, dtype=_INT).reshape(
            n_model, P, W
        )

        work_var0 = problem.add_continuous_block(W, 0.0, np.inf, objective=1.0)
        comm_var0 = problem.add_continuous_block(W, 0.0, np.inf, objective=machine.g)
        work_idx = work_var0 + np.arange(W, dtype=_INT)
        comm_idx = comm_var0 + np.arange(W, dtype=_INT)

        # --- fixed context constants ------------------------------------ #
        init_pres = self._initial_presence_table()
        base_work, base_send, base_recv = self._base_loads()

        # --- (1) every reassigned node computed exactly once ------------- #
        problem.add_rows(
            np.repeat(np.arange(nr, dtype=_INT), P * W),
            comp_idx.ravel(),
            np.ones(nr * P * W),
            1.0,
            1.0,
            num_rows=nr,
        )

        # --- (2) presence recurrence ------------------------------------- #
        # one row per (model node, processor, window step); si is the last
        # axis of pres_idx, so "previous step" is plain index - 1
        n_rows = n_model * P * W
        rows_parts = [np.arange(n_rows, dtype=_INT)]
        cols_parts = [pres_idx.ravel()]
        vals_parts = [np.ones(n_rows)]
        if W > 1:
            prev_rows = np.arange(n_rows, dtype=_INT).reshape(n_model, P, W)[:, :, 1:]
            rows_parts.append(prev_rows.ravel())
            cols_parts.append((pres_idx[:, :, 1:] - 1).ravel())
            vals_parts.append(np.full(prev_rows.size, -1.0))
            incoming = send_idx.transpose(0, 2, 1, 3)  # (node, p2, p1, si)
            mi, p2, p1, si = np.nonzero(incoming[:, :, :, : W - 1] >= 0)
            rows_parts.append((mi * P + p2) * W + si + 1)
            cols_parts.append(incoming[mi, p2, p1, si])
            vals_parts.append(np.full(mi.size, -1.0))
        rows_parts.append(np.arange(nr * P * W, dtype=_INT))
        cols_parts.append(comp_idx.ravel())
        vals_parts.append(np.full(nr * P * W, -1.0))
        upper = np.zeros((n_model, P, W))
        upper[:, :, 0] = init_pres
        problem.add_rows(
            np.concatenate(rows_parts),
            np.concatenate(cols_parts),
            np.concatenate(vals_parts),
            -np.inf,
            upper.ravel(),
            num_rows=n_rows,
        )

        # --- (3) sending requires presence on the source ----------------- #
        mi, p1, p2, si = np.nonzero(send_idx >= 0)
        n_send = mi.size
        problem.add_rows(
            np.tile(np.arange(n_send, dtype=_INT), 2),
            np.concatenate((send_idx[mi, p1, p2, si], pres_idx[mi, p1, si])),
            np.concatenate((np.ones(n_send), -np.ones(n_send))),
            -np.inf,
            0.0,
            num_rows=n_send,
        )

        # --- (4) precedence: computing v needs every predecessor --------- #
        in_model = model_pos[pred_flat] >= 0
        edge_v = np.repeat(np.arange(nr, dtype=_INT), np.diff(pred_offsets))[in_model]
        edge_u = model_pos[pred_flat[in_model]]
        n_edges = edge_v.size
        if n_edges:
            rows = np.arange(n_edges * P * W, dtype=_INT)
            problem.add_rows(
                np.tile(rows, 2),
                np.concatenate(
                    (comp_idx[edge_v].ravel(), pres_idx[edge_u].ravel())
                ),
                np.concatenate(
                    (np.ones(n_edges * P * W), -np.ones(n_edges * P * W))
                ),
                -np.inf,
                0.0,
                num_rows=n_edges * P * W,
            )

        # --- (5) values needed by fixed successors after the window ------ #
        succ_flat, succ_offsets = self._succ_flat, self._succ_offsets
        succ_v = np.repeat(np.arange(nr, dtype=_INT), np.diff(succ_offsets))
        fixed_after = (model_pos[succ_flat] < 0) & (
            self.fixed_supersteps[succ_flat] > s_hi
        )
        if fixed_after.any():
            need_v = succ_v[fixed_after]
            need_q = self.fixed_procs[succ_flat[fixed_after]]
            pairs = np.unique(need_v * _INT(P) + need_q)
            need_v, need_q = pairs // P, pairs % P
            k = need_v.size
            # pres[v, q, s_hi] + Σ_p1 send[v, p1, q, s_hi] >= 1
            sends = send_idx[need_v, :, need_q, W - 1]  # (k, P)
            rk, pk = np.nonzero(sends >= 0)
            problem.add_rows(
                np.concatenate((np.arange(k, dtype=_INT), rk)),
                np.concatenate((pres_idx[need_v, need_q, W - 1], sends[rk, pk])),
                np.ones(k + rk.size),
                1.0,
                np.inf,
                num_rows=k,
            )

        # --- (6) work maxima --------------------------------------------- #
        rows_grid = np.arange(W * P, dtype=_INT)  # row (si, p) = si * P + p
        comp_rows = np.tile(
            (np.arange(P, dtype=_INT)[:, None] + np.arange(W, dtype=_INT)[None, :] * P)
            .ravel(),
            nr,
        )
        problem.add_rows(
            np.concatenate((rows_grid, comp_rows)),
            np.concatenate(
                (np.repeat(work_idx, P), comp_idx.ravel())
            ),
            np.concatenate(
                (
                    np.ones(W * P),
                    -np.repeat(dag.work_weights[reassign_arr], P * W),
                )
            ),
            base_work.ravel(),
            np.inf,
            num_rows=W * P,
        )

        # --- (7) communication maxima (send side and receive side) ------- #
        volumes = dag.comm_weights[model_nodes[mi]] * machine.numa[p1, p2]
        rows_comm = np.arange(W * P, dtype=_INT) * 2  # send side; recv side is +1
        lower = np.empty(W * P * 2)
        lower[0::2] = base_send.ravel()
        lower[1::2] = base_recv.ravel()
        problem.add_rows(
            np.concatenate(
                (
                    rows_comm,
                    rows_comm + 1,
                    (si * P + p1) * 2,
                    (si * P + p2) * 2 + 1,
                )
            ),
            np.concatenate(
                (
                    np.repeat(comm_idx, P),
                    np.repeat(comm_idx, P),
                    send_idx[mi, p1, p2, si],
                    send_idx[mi, p1, p2, si],
                )
            ),
            np.concatenate(
                (np.ones(W * P), np.ones(W * P), -volumes, -volumes)
            ),
            lower,
            np.inf,
            num_rows=W * P * 2,
        )

        return problem, comp_idx

    def solve(
        self, time_limit: float | None = None, node_limit: int | None = None
    ) -> WindowIlpResult:
        """Build the batched model and run the backend.

        ``node_limit`` is the deterministic branch-and-bound cap (see
        :meth:`MilpProblem.solve`); the ILP improvers thread it through from
        :class:`repro.schedulers.Budget.ilp_node_limit`.
        """
        s_lo, s_hi = self.window
        W = s_hi - s_lo + 1
        P = self.machine.num_procs
        nr = len(self.reassign)
        problem, comp_idx = self.build_model()
        solution = problem.solve(time_limit=time_limit, node_limit=node_limit)
        if not solution.feasible:
            return WindowIlpResult(False, {}, {}, float("inf"), solution.message)

        chosen = solution.values[comp_idx.reshape(nr, P * W)] > 0.5
        new_procs: dict[int, int] = {}
        new_steps: dict[int, int] = {}
        for vi, v in enumerate(self.reassign):
            slots = np.flatnonzero(chosen[vi])
            if slots.size:
                p, s_off = divmod(int(slots[0]), W)
                new_procs[v] = p
                new_steps[v] = s_lo + s_off
        missing = [v for v in self.reassign if v not in new_procs]
        if missing:
            return WindowIlpResult(
                False, {}, {}, float("inf"), f"nodes without assignment: {missing}"
            )
        return WindowIlpResult(True, new_procs, new_steps, solution.objective, solution.message)

    # ------------------------------------------------------------------ #
    def _initial_presence_table(self) -> np.ndarray:
        """Dense ``(n_model, P)`` presence constants at the window start."""
        s_lo, _ = self.window
        nr = len(self.reassign)
        boundary, model_pos = self._boundary, self._model_pos
        init = np.zeros((nr + boundary.size, self.machine.num_procs))
        if boundary.size:
            init[nr + np.arange(boundary.size), self.fixed_procs[boundary]] = 1.0
        for step in self.context_comm:
            pos = int(model_pos[step.node]) if step.node < model_pos.size else -1
            if pos >= nr and step.superstep < s_lo:  # boundary predecessor
                init[pos, step.target] = 1.0
        return init

    def _base_loads(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Constant work/send/recv loads inside the window from nodes outside the model.

        Dense ``(W, P)`` tables, filled with vectorized scatters over the
        whole assignment arrays instead of a per-node Python sweep.
        """
        s_lo, s_hi = self.window
        W = s_hi - s_lo + 1
        P = self.machine.num_procs
        base_work = np.zeros((W, P))
        base_send = np.zeros((W, P))
        base_recv = np.zeros((W, P))

        model_pos = self._model_pos
        reassign_mask = self._reassign_mask
        steps = self.fixed_supersteps
        in_window = (
            ~reassign_mask
            & (steps >= s_lo)
            & (steps <= s_hi)
            & (self.fixed_procs >= 0)
        )
        if in_window.any():
            nodes = np.flatnonzero(in_window)
            np.add.at(
                base_work,
                (steps[nodes] - s_lo, self.fixed_procs[nodes]),
                self.dag.work_weights[nodes],
            )

        numa = self.machine.numa
        nr = len(self.reassign)
        for step in self.context_comm:
            pos = int(model_pos[step.node]) if step.node < model_pos.size else -1
            if pos >= 0:  # reassigned or boundary: modelled by send variables
                continue
            if not s_lo <= step.superstep <= s_hi:
                continue
            volume = self.dag.comm(step.node) * numa[step.source, step.target]
            base_send[step.superstep - s_lo, step.source] += volume
            base_recv[step.superstep - s_lo, step.target] += volume
        return base_work, base_send, base_recv
