"""Shared "superstep window" ILP formulation (paper §4.4, Appendix A.4).

All three assignment-optimising ILP methods of the paper — ``ILPfull``,
``ILPpart`` and ``ILPinit`` — are instances of the same problem: reassign a
set of nodes ``V0`` to processors and to supersteps inside a window
``S0 = [s_lo, s_hi]``, with the rest of the schedule fixed.  This module
implements that formulation once:

Variables
---------
* ``comp[v,p,s]``  (binary)      — node ``v ∈ V0`` computed on ``p`` in ``s``;
* ``send[v,p1,p2,s]`` (binary)   — value of ``v`` sent ``p1 → p2`` in the
  communication phase of ``s``; for boundary predecessors (values computed
  before the window) only ``p1 = π(v)`` is allowed, as in the paper;
* ``pres[v,p,s]`` (continuous)   — value of ``v`` available on ``p`` during
  superstep ``s`` (for computing successors or for sending);
* ``W[s]``, ``H[s]`` (continuous) — work and h-relation maxima per superstep.

Constraints ensure each ``V0`` node is computed exactly once, precedence
through availability, send-only-if-present, availability recurrences
anchored at the fixed context, presence of values needed by fixed successors
after the window, and the max-constraints defining ``W`` and ``H`` on top of
the fixed base traffic/work of nodes outside the model.  The objective is
``Σ_s W[s] + g · H[s]`` (latency is constant for a fixed window).

Simplifications relative to the paper (documented in DESIGN.md): no extra
communication phase before the window, and cost savings from deleting fixed
transfers outside the window are ignored — both match the paper's own
pragmatic restrictions.  The surrounding pipeline re-derives the lazy
communication schedule after extraction and only accepts the result when the
exact evaluated cost improves, so these approximations never compromise
correctness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ...core.comm import CommStep
from ...core.dag import ComputationalDAG
from ...core.exceptions import SolverError
from ...core.machine import BspMachine
from .backend import MilpProblem

__all__ = ["WindowIlp", "WindowIlpResult", "estimate_window_variables"]


def estimate_window_variables(
    num_reassigned: int, num_supersteps: int, num_procs: int
) -> int:
    """The paper's size estimate ``|V0| · |S0| · P²`` for a window ILP."""
    return num_reassigned * num_supersteps * num_procs * num_procs


@dataclass
class WindowIlpResult:
    """Result of a window ILP solve."""

    feasible: bool
    procs: dict[int, int]
    supersteps: dict[int, int]
    objective: float
    message: str = ""


class WindowIlp:
    """Builds and solves one superstep-window ILP.

    Parameters
    ----------
    dag, machine:
        Problem instance.
    fixed_procs, fixed_supersteps:
        Assignment arrays for the *whole* DAG; entries for nodes being
        reassigned (and nodes not yet assigned, for ``ILPinit``) are ignored
        and may be ``-1``.
    reassign:
        The nodes ``V0`` to (re)assign.
    window:
        Inclusive superstep window ``(s_lo, s_hi)``.
    context_comm:
        Communication steps of the fixed context (typically the incumbent's
        lazy schedule).  Steps of nodes being reassigned are ignored; steps
        of boundary predecessors delivered *before* the window seed the
        initial presence; steps of unrelated nodes inside the window become
        constant base traffic.
    """

    def __init__(
        self,
        dag: ComputationalDAG,
        machine: BspMachine,
        fixed_procs: Sequence[int] | np.ndarray,
        fixed_supersteps: Sequence[int] | np.ndarray,
        reassign: Sequence[int],
        window: tuple[int, int],
        context_comm: Iterable[CommStep] = (),
    ) -> None:
        self.dag = dag
        self.machine = machine
        self.fixed_procs = np.asarray(fixed_procs, dtype=np.int64)
        self.fixed_supersteps = np.asarray(fixed_supersteps, dtype=np.int64)
        self.reassign = list(dict.fromkeys(int(v) for v in reassign))
        self.window = (int(window[0]), int(window[1]))
        if self.window[0] < 0 or self.window[1] < self.window[0]:
            raise SolverError(f"invalid superstep window {window}")
        self.context_comm = list(context_comm)
        self._validate_context()

    # ------------------------------------------------------------------ #
    def _validate_context(self) -> None:
        """Check the structural assumptions the formulation relies on."""
        s_lo, s_hi = self.window
        reassign_set = set(self.reassign)
        for v in self.reassign:
            for u in self.dag.predecessors(v):
                if u in reassign_set:
                    continue
                step = int(self.fixed_supersteps[u])
                if step < 0 or step >= s_lo:
                    raise SolverError(
                        f"fixed predecessor {u} of reassigned node {v} must be "
                        f"assigned before the window (superstep {step})"
                    )
            for w in self.dag.successors(v):
                if w in reassign_set:
                    continue
                step = int(self.fixed_supersteps[w])
                if 0 <= step <= s_hi:
                    raise SolverError(
                        f"fixed successor {w} of reassigned node {v} must be "
                        "assigned after the window or left unassigned"
                    )

    # ------------------------------------------------------------------ #
    def solve(self, time_limit: float | None = None) -> WindowIlpResult:
        """Build the MILP, run the backend and extract the new assignment."""
        dag, machine = self.dag, self.machine
        s_lo, s_hi = self.window
        window_steps = list(range(s_lo, s_hi + 1))
        num_procs = machine.num_procs
        reassign_set = set(self.reassign)

        # boundary predecessors: fixed nodes feeding the reassigned ones
        boundary: list[int] = []
        for v in self.reassign:
            for u in dag.predecessors(v):
                if u not in reassign_set and u not in boundary:
                    boundary.append(u)
        model_nodes = self.reassign + boundary

        problem = MilpProblem(name="window_ilp")

        # --- variables -------------------------------------------------- #
        comp: dict[tuple[int, int, int], int] = {}
        for v in self.reassign:
            for p in range(num_procs):
                for s in window_steps:
                    comp[(v, p, s)] = problem.add_binary()

        send: dict[tuple[int, int, int, int], int] = {}
        for v in model_nodes:
            sources = (
                range(num_procs)
                if v in reassign_set
                else [int(self.fixed_procs[v])]
            )
            for p1 in sources:
                for p2 in range(num_procs):
                    if p1 == p2:
                        continue
                    for s in window_steps:
                        send[(v, p1, p2, s)] = problem.add_binary()

        pres: dict[tuple[int, int, int], int] = {}
        for v in model_nodes:
            for p in range(num_procs):
                for s in window_steps:
                    pres[(v, p, s)] = problem.add_continuous(0.0, 1.0)

        work_max = {s: problem.add_continuous(0.0, np.inf, objective=1.0) for s in window_steps}
        comm_max = {
            s: problem.add_continuous(0.0, np.inf, objective=machine.g)
            for s in window_steps
        }

        # --- fixed context constants ------------------------------------ #
        pres0 = self._initial_presence(boundary, reassign_set)
        base_work, base_send, base_recv = self._base_loads(reassign_set, set(boundary))

        # --- constraints -------------------------------------------------#
        # (1) every reassigned node computed exactly once
        for v in self.reassign:
            problem.add_eq(
                {comp[(v, p, s)]: 1.0 for p in range(num_procs) for s in window_steps},
                1.0,
            )

        # (2) presence recurrence
        for v in model_nodes:
            for p in range(num_procs):
                for s in window_steps:
                    coefficients = {pres[(v, p, s)]: 1.0}
                    constant = 0.0
                    if s > s_lo:
                        coefficients[pres[(v, p, s - 1)]] = -1.0
                        for p1 in range(num_procs):
                            key = (v, p1, p, s - 1)
                            if key in send:
                                coefficients[send[key]] = -1.0
                    else:
                        constant = pres0.get((v, p), 0.0)
                    if v in reassign_set:
                        coefficients[comp[(v, p, s)]] = -1.0
                    problem.add_le(coefficients, constant)

        # (3) sending requires presence on the source
        for (v, p1, p2, s), send_var in send.items():
            problem.add_le({send_var: 1.0, pres[(v, p1, s)]: -1.0}, 0.0)

        # (4) precedence: computing v needs every predecessor available
        boundary_set = set(boundary)
        for v in self.reassign:
            for u in dag.predecessors(v):
                if u not in reassign_set and u not in boundary_set:
                    continue
                for p in range(num_procs):
                    for s in window_steps:
                        problem.add_le(
                            {comp[(v, p, s)]: 1.0, pres[(u, p, s)]: -1.0}, 0.0
                        )

        # (5) values needed by fixed successors after the window must reach
        #     their processor by the end of the window
        for v in self.reassign:
            needed_procs = set()
            for w in dag.successors(v):
                if w in reassign_set:
                    continue
                step = int(self.fixed_supersteps[w])
                if step > s_hi:
                    needed_procs.add(int(self.fixed_procs[w]))
            for q in needed_procs:
                coefficients = {pres[(v, q, s_hi)]: 1.0}
                for p1 in range(num_procs):
                    key = (v, p1, q, s_hi)
                    if key in send:
                        coefficients[send[key]] = 1.0
                problem.add_ge(coefficients, 1.0)

        # (6) work maxima
        for s in window_steps:
            for p in range(num_procs):
                coefficients = {work_max[s]: 1.0}
                for v in self.reassign:
                    coefficients[comp[(v, p, s)]] = -dag.work(v)
                problem.add_ge(coefficients, base_work.get((s, p), 0.0))

        # (7) communication maxima (send side and receive side)
        numa = machine.numa
        outgoing: dict[tuple[int, int], dict[int, float]] = {}
        incoming: dict[tuple[int, int], dict[int, float]] = {}
        for (v, p1, p2, step), send_var in send.items():
            volume = dag.comm(v) * numa[p1, p2]
            outgoing.setdefault((step, p1), {})[send_var] = -volume
            incoming.setdefault((step, p2), {})[send_var] = -volume
        for s in window_steps:
            for p in range(num_procs):
                send_coeffs = {comm_max[s]: 1.0, **outgoing.get((s, p), {})}
                recv_coeffs = {comm_max[s]: 1.0, **incoming.get((s, p), {})}
                problem.add_ge(send_coeffs, base_send.get((s, p), 0.0))
                problem.add_ge(recv_coeffs, base_recv.get((s, p), 0.0))

        solution = problem.solve(time_limit=time_limit)
        if not solution.feasible:
            return WindowIlpResult(False, {}, {}, float("inf"), solution.message)

        new_procs: dict[int, int] = {}
        new_steps: dict[int, int] = {}
        for (v, p, s), var in comp.items():
            if solution.is_one(var):
                new_procs[v] = p
                new_steps[v] = s
        missing = [v for v in self.reassign if v not in new_procs]
        if missing:
            return WindowIlpResult(
                False, {}, {}, float("inf"), f"nodes without assignment: {missing}"
            )
        return WindowIlpResult(True, new_procs, new_steps, solution.objective, solution.message)

    # ------------------------------------------------------------------ #
    def _initial_presence(
        self, boundary: list[int], reassign_set: set[int]
    ) -> dict[tuple[int, int], float]:
        """Presence constants at the start of the window for boundary predecessors."""
        s_lo, _ = self.window
        pres0: dict[tuple[int, int], float] = {}
        for u in boundary:
            pres0[(u, int(self.fixed_procs[u]))] = 1.0
        for step in self.context_comm:
            if step.node in reassign_set:
                continue
            if step.node in set(boundary) and step.superstep < s_lo:
                pres0[(step.node, step.target)] = 1.0
        return pres0

    def _base_loads(
        self, reassign_set: set[int], boundary_set: set[int]
    ) -> tuple[dict, dict, dict]:
        """Constant work/send/recv loads inside the window from nodes outside the model."""
        s_lo, s_hi = self.window
        base_work: dict[tuple[int, int], float] = {}
        base_send: dict[tuple[int, int], float] = {}
        base_recv: dict[tuple[int, int], float] = {}
        for v in self.dag.nodes():
            if v in reassign_set:
                continue
            step = int(self.fixed_supersteps[v])
            if s_lo <= step <= s_hi and int(self.fixed_procs[v]) >= 0:
                key = (step, int(self.fixed_procs[v]))
                base_work[key] = base_work.get(key, 0.0) + self.dag.work(v)
        numa = self.machine.numa
        for step in self.context_comm:
            if step.node in reassign_set or step.node in boundary_set:
                continue
            if not s_lo <= step.superstep <= s_hi:
                continue
            volume = self.dag.comm(step.node) * numa[step.source, step.target]
            send_key = (step.superstep, step.source)
            recv_key = (step.superstep, step.target)
            base_send[send_key] = base_send.get(send_key, 0.0) + volume
            base_recv[recv_key] = base_recv.get(recv_key, 0.0) + volume
        return base_work, base_send, base_recv
