"""Name-based registry of schedulers (baselines, heuristics and pipelines).

The service API and the examples refer to schedulers by the short names
used throughout the paper (``cilk``, ``hdagg``, ``bsp_greedy``,
``framework``, ``multilevel``, ...).  The canonical construction path is
the declarative :class:`repro.api.SchedulerSpec` (registry name + validated
params); :func:`create_scheduler` is retained as a thin back-compat shim
over it.
"""

from __future__ import annotations

from typing import Callable

from .base import Scheduler
from .bsp_greedy import BspGreedyScheduler
from .cilk import CilkScheduler
from .clustering import LinearClusteringScheduler
from .hdagg import HDaggScheduler
from .ilp import IlpInitScheduler
from .listsched import BlEstScheduler, EtfScheduler
from .pipeline import MultilevelPipeline, SchedulingPipeline
from .source_heuristic import SourceScheduler
from .trivial import RoundRobinScheduler, TrivialScheduler

__all__ = ["SCHEDULER_FACTORIES", "available_schedulers", "create_scheduler"]

SCHEDULER_FACTORIES: dict[str, Callable[..., Scheduler]] = {
    "trivial": TrivialScheduler,
    "round_robin": RoundRobinScheduler,
    "cilk": CilkScheduler,
    "bl_est": BlEstScheduler,
    "etf": EtfScheduler,
    "hdagg": HDaggScheduler,
    "clustering": LinearClusteringScheduler,
    "bsp_greedy": BspGreedyScheduler,
    "source": SourceScheduler,
    "ilp_init": IlpInitScheduler,
    "framework": SchedulingPipeline,
    "framework_heuristics": SchedulingPipeline.heuristics_only,
    "multilevel": MultilevelPipeline,
}


def available_schedulers() -> list[str]:
    """Sorted list of registered scheduler names."""
    return sorted(SCHEDULER_FACTORIES)


def create_scheduler(name: str, **kwargs) -> Scheduler:
    """Instantiate a scheduler by its registry name (back-compat shim).

    Delegates to :class:`repro.api.SchedulerSpec`, which validates the
    parameters against the factory signature before construction.  New code
    should build specs directly — they serialise, fingerprint and travel
    through :class:`repro.api.SchedulingService`.
    """
    from ..api.spec import SchedulerSpec  # deferred: the spec layer sits above

    return SchedulerSpec(name, kwargs).build()
