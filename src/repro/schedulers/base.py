"""Scheduler and improver base classes plus shared helpers.

Two kinds of algorithms make up the framework (paper Figure 3):

* :class:`Scheduler` — builds a BSP schedule from scratch for a
  ``(DAG, machine)`` instance (the baselines and initialisation heuristics);
* :class:`ScheduleImprover` — takes an existing schedule and returns one of
  equal or lower cost (local search, the ILP improvement methods and the
  communication-schedule optimisers).

Every algorithm accepts an optional budget.  Two regimes exist:

* :class:`TimeBudget` — a cooperative wall-clock allowance; algorithms
  check it inside their main loops, so runs remain deterministic apart
  from the point at which they stop.
* :class:`Budget` — the unified model of the service API: the wall-clock
  allowance plus the *deterministic* limits (``max_steps`` for the
  hill-climbing refiners, ``ilp_node_limit`` for the branch-and-bound
  solver).  A budget with ``seconds=None`` and only deterministic limits
  makes every algorithm reproducible bit-for-bit regardless of machine
  load — the regime the batched/parallel entry points rely on.

``Budget`` subclasses ``TimeBudget``, so every ``budget:`` parameter in the
framework accepts either; algorithms that understand the deterministic
limits read them via :func:`budget_limits`.
"""

from __future__ import annotations

import math
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..core.dag import ComputationalDAG
from ..core.machine import BspMachine
from ..core.schedule import BspSchedule

__all__ = [
    "Budget",
    "Scheduler",
    "ScheduleImprover",
    "TimeBudget",
    "best_schedule",
    "budget_limits",
]


@dataclass
class TimeBudget:
    """A cooperative wall-clock budget.

    ``TimeBudget(None)`` (or :meth:`unlimited`) never expires.  Algorithms
    call :meth:`expired` inside their main loops and stop gracefully once the
    budget is exhausted, always returning the best solution found so far.
    """

    seconds: float | None = None

    def __post_init__(self) -> None:
        self._start = time.perf_counter()

    @classmethod
    def unlimited(cls) -> "TimeBudget":
        """A budget that never expires."""
        return cls(None)

    def restart(self) -> None:
        """Restart the clock (useful when a budget object is reused)."""
        self._start = time.perf_counter()

    @property
    def elapsed(self) -> float:
        """Seconds elapsed since the budget was created or restarted."""
        return time.perf_counter() - self._start

    @property
    def remaining(self) -> float:
        """Seconds remaining (``inf`` for an unlimited budget)."""
        if self.seconds is None:
            return math.inf
        return max(0.0, self.seconds - self.elapsed)

    def expired(self) -> bool:
        """Whether the budget is exhausted."""
        return self.seconds is not None and self.elapsed >= self.seconds

    def fraction(self, ratio: float) -> "TimeBudget":
        """A fresh budget worth ``ratio`` of this budget's total allowance."""
        if self.seconds is None:
            return TimeBudget(None)
        return TimeBudget(self.seconds * ratio)


@dataclass
class Budget(TimeBudget):
    """The unified budget model: wall-clock plus deterministic limits.

    Parameters
    ----------
    seconds:
        Cooperative wall-clock allowance (``None`` = unlimited), exactly as
        in :class:`TimeBudget`.
    max_steps:
        Deterministic cap on *accepted* local-search moves per improver
        invocation (HC and HCcs honour it).
    ilp_node_limit:
        Deterministic cap on branch-and-bound nodes per ILP solve (threaded
        through :class:`~repro.schedulers.ilp.WindowIlp` and the ILP
        improvers down to the HiGHS backend).

    A budget whose only limits are deterministic (``seconds is None``)
    yields bit-identical runs regardless of machine load; this is what the
    service API's ``solve_many`` relies on for parallel == serial replay.
    """

    max_steps: int | None = None
    ilp_node_limit: int | None = None

    @property
    def deterministic(self) -> bool:
        """Whether the budget is free of wall-clock limits."""
        return self.seconds is None

    def started(self) -> "Budget":
        """A fresh copy with the clock restarted (for deserialized budgets)."""
        return Budget(
            seconds=self.seconds,
            max_steps=self.max_steps,
            ilp_node_limit=self.ilp_node_limit,
        )

    def to_dict(self) -> dict:
        """JSON-compatible representation (inverse of :meth:`from_dict`)."""
        return {
            "seconds": None if self.seconds is None else float(self.seconds),
            "max_steps": None if self.max_steps is None else int(self.max_steps),
            "ilp_node_limit": (
                None if self.ilp_node_limit is None else int(self.ilp_node_limit)
            ),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Budget":
        """Rebuild a budget from :meth:`to_dict` output."""
        seconds = data.get("seconds")
        max_steps = data.get("max_steps")
        node_limit = data.get("ilp_node_limit")
        return cls(
            seconds=None if seconds is None else float(seconds),
            max_steps=None if max_steps is None else int(max_steps),
            ilp_node_limit=None if node_limit is None else int(node_limit),
        )


def budget_limits(budget: TimeBudget | None) -> tuple[int | None, int | None]:
    """The ``(max_steps, ilp_node_limit)`` carried by a budget, if any.

    Plain :class:`TimeBudget` objects (and ``None``) carry no deterministic
    limits; algorithm code calls this instead of type-sniffing inline.
    """
    if isinstance(budget, Budget):
        return budget.max_steps, budget.ilp_node_limit
    return None, None


class Scheduler(ABC):
    """Builds a BSP schedule for a DAG on a machine."""

    #: Short name used in reports, tables and the registry.
    name: str = "scheduler"

    @abstractmethod
    def schedule(
        self,
        dag: ComputationalDAG,
        machine: BspMachine,
        budget: TimeBudget | None = None,
    ) -> BspSchedule:
        """Return a valid BSP schedule of ``dag`` on ``machine``."""

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}(name={self.name!r})"


class ScheduleImprover(ABC):
    """Improves an existing BSP schedule without ever making it worse."""

    name: str = "improver"

    @abstractmethod
    def improve(
        self,
        schedule: BspSchedule,
        budget: TimeBudget | None = None,
    ) -> BspSchedule:
        """Return a schedule whose cost is at most that of ``schedule``."""

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}(name={self.name!r})"


def best_schedule(*schedules: BspSchedule | None) -> BspSchedule:
    """The lowest-cost schedule among the given ones (``None`` entries skipped)."""
    candidates = [s for s in schedules if s is not None]
    if not candidates:
        raise ValueError("best_schedule requires at least one schedule")
    return min(candidates, key=lambda s: s.cost())
