"""Scheduler and improver base classes plus shared helpers.

Two kinds of algorithms make up the framework (paper Figure 3):

* :class:`Scheduler` — builds a BSP schedule from scratch for a
  ``(DAG, machine)`` instance (the baselines and initialisation heuristics);
* :class:`ScheduleImprover` — takes an existing schedule and returns one of
  equal or lower cost (local search, the ILP improvement methods and the
  communication-schedule optimisers).

Every algorithm accepts an optional wall-clock time budget through a
:class:`TimeBudget`; algorithms check it cooperatively so that runs remain
deterministic apart from the point at which they stop.
"""

from __future__ import annotations

import math
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..core.dag import ComputationalDAG
from ..core.machine import BspMachine
from ..core.schedule import BspSchedule

__all__ = ["Scheduler", "ScheduleImprover", "TimeBudget", "best_schedule"]


@dataclass
class TimeBudget:
    """A cooperative wall-clock budget.

    ``TimeBudget(None)`` (or :meth:`unlimited`) never expires.  Algorithms
    call :meth:`expired` inside their main loops and stop gracefully once the
    budget is exhausted, always returning the best solution found so far.
    """

    seconds: float | None = None

    def __post_init__(self) -> None:
        self._start = time.perf_counter()

    @classmethod
    def unlimited(cls) -> "TimeBudget":
        """A budget that never expires."""
        return cls(None)

    def restart(self) -> None:
        """Restart the clock (useful when a budget object is reused)."""
        self._start = time.perf_counter()

    @property
    def elapsed(self) -> float:
        """Seconds elapsed since the budget was created or restarted."""
        return time.perf_counter() - self._start

    @property
    def remaining(self) -> float:
        """Seconds remaining (``inf`` for an unlimited budget)."""
        if self.seconds is None:
            return math.inf
        return max(0.0, self.seconds - self.elapsed)

    def expired(self) -> bool:
        """Whether the budget is exhausted."""
        return self.seconds is not None and self.elapsed >= self.seconds

    def fraction(self, ratio: float) -> "TimeBudget":
        """A fresh budget worth ``ratio`` of this budget's total allowance."""
        if self.seconds is None:
            return TimeBudget(None)
        return TimeBudget(self.seconds * ratio)


class Scheduler(ABC):
    """Builds a BSP schedule for a DAG on a machine."""

    #: Short name used in reports, tables and the registry.
    name: str = "scheduler"

    @abstractmethod
    def schedule(
        self,
        dag: ComputationalDAG,
        machine: BspMachine,
        budget: TimeBudget | None = None,
    ) -> BspSchedule:
        """Return a valid BSP schedule of ``dag`` on ``machine``."""

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}(name={self.name!r})"


class ScheduleImprover(ABC):
    """Improves an existing BSP schedule without ever making it worse."""

    name: str = "improver"

    @abstractmethod
    def improve(
        self,
        schedule: BspSchedule,
        budget: TimeBudget | None = None,
    ) -> BspSchedule:
        """Return a schedule whose cost is at most that of ``schedule``."""

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}(name={self.name!r})"


def best_schedule(*schedules: BspSchedule | None) -> BspSchedule:
    """The lowest-cost schedule among the given ones (``None`` entries skipped)."""
    candidates = [s for s in schedules if s is not None]
    if not candidates:
        raise ValueError("best_schedule requires at least one schedule")
    return min(candidates, key=lambda s: s.cost())
