"""Trivial reference schedulers.

* :class:`TrivialScheduler` — everything on one processor in one superstep.
  This is the "trivial solution" the paper compares against in the
  communication-dominated regime (§7.3): it pays no communication or
  latency beyond a single superstep, only the full serial work.
* :class:`RoundRobinScheduler` — a deliberately naive level-by-level
  round-robin assignment, useful as a sanity baseline in tests.
"""

from __future__ import annotations

import numpy as np

from ..core.dag import ComputationalDAG
from ..core.machine import BspMachine
from ..core.schedule import BspSchedule
from .base import Scheduler, TimeBudget

__all__ = ["TrivialScheduler", "RoundRobinScheduler"]


class TrivialScheduler(Scheduler):
    """Assigns every node to processor 0 in superstep 0."""

    name = "trivial"

    def schedule(
        self,
        dag: ComputationalDAG,
        machine: BspMachine,
        budget: TimeBudget | None = None,
    ) -> BspSchedule:
        return BspSchedule.trivial(dag, machine)


class RoundRobinScheduler(Scheduler):
    """One superstep per DAG level, nodes distributed round-robin within the level."""

    name = "round_robin"

    def schedule(
        self,
        dag: ComputationalDAG,
        machine: BspMachine,
        budget: TimeBudget | None = None,
    ) -> BspSchedule:
        levels = dag.levels()
        procs = np.zeros(dag.num_nodes, dtype=np.int64)
        counter = 0
        for v in dag.topological_order():
            procs[v] = counter % machine.num_procs
            counter += 1
        return BspSchedule(dag, machine, procs, levels)
