"""Declarative scheduler specification (registry name + validated params).

A :class:`SchedulerSpec` is the serializable counterpart of a constructed
:class:`~repro.schedulers.Scheduler`: the registry name plus plain keyword
parameters.  Specs are validated against the factory signature at
construction time (not at build time), so a malformed request fails fast at
the service boundary, and they round-trip losslessly through plain dicts —
the property the queued/cached/sharded execution model relies on.

Rich parameter values are normalised to the wire form on ``to_dict`` and
re-hydrated on ``build``:

* ``config`` — a :class:`~repro.schedulers.PipelineConfig` (or its dict
  form) for the pipeline factories;
* tuples/lists — JSON turns tuples into lists; ``build`` converts list
  values back to tuples (every tuple-valued factory parameter in the
  registry, e.g. ``coarsening_ratios``, is order-only).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..core.exceptions import ConfigurationError
from ..schedulers.base import Scheduler
from ..schedulers.pipeline import PipelineConfig

__all__ = ["SchedulerSpec"]


def _factory(name: str):
    from ..schedulers.registry import SCHEDULER_FACTORIES, available_schedulers

    try:
        return SCHEDULER_FACTORIES[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown scheduler {name!r}; available: {', '.join(available_schedulers())}"
        ) from exc


def _accepted_parameters(factory) -> tuple[set[str] | None, set[str]]:
    """``(accepted, seedable)`` parameter names; ``accepted=None`` = **kwargs."""
    signature = inspect.signature(factory)
    names: set[str] = set()
    for parameter in signature.parameters.values():
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            return None, names
        if parameter.kind in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        ):
            names.add(parameter.name)
    return names, names


@dataclass(frozen=True)
class SchedulerSpec:
    """A frozen, serializable recipe for building a registry scheduler.

    Parameters
    ----------
    name:
        Registry name (see :func:`repro.schedulers.available_schedulers`).
    params:
        Keyword arguments for the factory.  Values may be plain JSON types
        or the rich in-memory forms (:class:`PipelineConfig`, tuples);
        :meth:`to_dict` normalises them to the wire form either way.
    """

    name: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", dict(self.params))
        factory = _factory(self.name)  # fails fast on unknown names
        accepted, _ = _accepted_parameters(factory)
        if accepted is not None:
            unknown = sorted(set(self.params) - accepted)
            if unknown:
                raise ConfigurationError(
                    f"scheduler {self.name!r} does not accept parameter(s) "
                    f"{', '.join(unknown)}; accepted: {', '.join(sorted(accepted))}"
                )

    # ------------------------------------------------------------------ #
    def build(self, default_seed: int | None = None) -> Scheduler:
        """Instantiate the scheduler.

        ``default_seed`` is injected as the factory's ``seed`` parameter
        when the factory accepts one and the spec does not already pin it
        (this is how :class:`~repro.api.ScheduleRequest.seed` reaches the
        randomised schedulers).
        """
        factory = _factory(self.name)
        params: dict[str, Any] = {}
        for key, value in self.params.items():
            if key == "config" and isinstance(value, dict):
                value = PipelineConfig.from_dict(value)
            elif isinstance(value, list):
                value = tuple(value)
            params[key] = value
        if default_seed is not None and "seed" not in params:
            _, seedable = _accepted_parameters(factory)
            if "seed" in seedable:
                params["seed"] = default_seed
        return factory(**params)

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """Plain JSON-compatible representation (inverse of :meth:`from_dict`)."""
        params: dict[str, Any] = {}
        for key, value in self.params.items():
            if isinstance(value, PipelineConfig):
                value = value.to_dict()
            elif isinstance(value, tuple):
                value = list(value)
            params[key] = value
        return {"name": self.name, "params": params}

    @classmethod
    def from_dict(cls, data: dict) -> "SchedulerSpec":
        """Rebuild (and re-validate) a spec from :meth:`to_dict` output."""
        try:
            name = str(data["name"])
            params = dict(data.get("params", {}))
        except (KeyError, TypeError) as exc:
            raise ConfigurationError(f"malformed scheduler spec: {exc}") from exc
        return cls(name=name, params=params)
