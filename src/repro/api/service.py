"""The batched scheduling-service facade.

:class:`SchedulingService` is the single entry point every caller funnels
through — the CLI, the experiment harness and the examples all build
:class:`~repro.api.ScheduleRequest` objects and hand them here.

* :meth:`~SchedulingService.solve` runs one request: resolve the DAG and
  machine, build the scheduler from its declarative spec, restart the
  budget clock, run, and wrap the outcome in a self-contained
  :class:`~repro.api.ScheduleResult` (with the per-stage cost trace when
  the scheduler is a pipeline).
* :meth:`~SchedulingService.solve_many` fans a batch out over the shared
  process-pool machinery (:mod:`repro.core.parallel`, the same contract as
  the experiment grid): results come back in request order, pool failures
  degrade to serial execution, and for deterministic-budget requests the
  parallel canonical payloads are bit-identical to serial ones.
* Results are cached **content-addressed**: the cache key is the request
  fingerprint (DAG content + machine + spec + budget + seed), so a replayed
  request is answered without recomputation — across ``solve`` and
  ``solve_many`` alike.  Cache hits are flagged (``result.cache_hit``) and
  counted (:meth:`cache_info`).
* With ``store=`` the cache gains a **persistent tier**: misses of the
  in-memory LRU consult a content-addressed on-disk store
  (:class:`repro.store.ResultStore`) shared across processes and CI runs,
  and every computed result is persisted there.  Re-running any workload
  against a warm store performs zero scheduler invocations.
* ``solve_many``'s process executor ships **each distinct DAG once per
  worker**, not once per request: misses are grouped by DAG content
  fingerprint, the deduplicated DAG table rides the pool initializer, and
  both requests and returned payloads cross the pipe DAG-free (results
  come back in dag_ref mode and are re-embedded on the parent side, so
  callers still observe fully self-contained payloads, bit-identical to a
  serial run).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, replace
from pathlib import Path

from ..core.parallel import parallel_map
from ..core.serialization import dag_to_dict, schedule_to_dict
from ..schedulers.pipeline import SchedulingPipeline
from .request import ScheduleRequest, dag_fingerprint
from .result import ScheduleResult

__all__ = ["SchedulingService"]


def _coerce_request(request: ScheduleRequest | dict) -> ScheduleRequest:
    if isinstance(request, dict):
        return ScheduleRequest.from_dict(request)
    return request


@dataclass(frozen=True)
class _SharedDag:
    """Placeholder DAG reference inside a request crossing the worker pipe.

    The actual DAG travels once per worker in the pool payload table,
    keyed by its content fingerprint; the worker substitutes it back
    before solving.
    """

    ref: str


def _solve_request(request: ScheduleRequest) -> ScheduleResult:
    """Run one request to completion (no cache; shared by solve paths)."""
    fingerprint = request.fingerprint()
    started = time.perf_counter()
    dag = request.resolve_dag()
    machine = request.build_machine()
    scheduler = request.scheduler.build(default_seed=request.seed)
    budget = None if request.budget is None else request.budget.started()
    prepared = time.perf_counter()
    stages = None
    if isinstance(scheduler, SchedulingPipeline):
        pipeline_result = scheduler.schedule_with_stages(dag, machine, budget)
        schedule = pipeline_result.schedule
        stages = pipeline_result.stages
    else:
        schedule = scheduler.schedule(dag, machine, budget)
    finished = time.perf_counter()
    return ScheduleResult.from_schedule(
        schedule,
        scheduler=request.scheduler.name,
        fingerprint=fingerprint,
        stages=stages,
        timings={
            "prepare_seconds": prepared - started,
            "solve_seconds": finished - prepared,
            "total_seconds": finished - started,
        },
    )


def _solve_task(
    shared_dags: dict[str, object], request: ScheduleRequest
) -> ScheduleResult:
    """Module-level pool handler (see :func:`repro.core.parallel.parallel_map`).

    ``shared_dags`` is the per-worker DAG table (shipped once by the pool
    initializer); a request carrying a :class:`_SharedDag` placeholder gets
    its DAG substituted from it.  Results for such requests return in
    dag_ref mode — the parent re-embeds from its own copy of the DAG — so
    the (potentially huge) instance never crosses the pipe per task in
    either direction.
    """
    shared_ref = None
    if isinstance(request.dag, _SharedDag):
        shared_ref = request.dag.ref
        request = replace(request, dag=shared_dags[shared_ref])
    result = _solve_request(request)
    # serialise eagerly in the worker and ship only the wire dict: the live
    # schedule object would carry the whole instance across the pipe a
    # second time, and the parent can rebuild it lazily via to_schedule()
    if shared_ref is not None:
        # shared-DAG request: return in dag_ref mode without ever building
        # the (dominant-cost) DAG payload; the parent re-embeds its copy
        payload = schedule_to_dict(result.to_schedule(), include_dag=False)
        payload["dag_ref"] = shared_ref
        return replace(result, _schedule=None, _schedule_dict=payload)
    result.schedule_dict()
    return replace(result, _schedule=None)


def _solve_task_thread(_payload: None, request: ScheduleRequest) -> ScheduleResult:
    """Thread-pool handler: no pipe, so the live schedule object is kept."""
    return _solve_request(request)


class SchedulingService:
    """Stateless solve facade with batched fan-out and content-addressed caching.

    Parameters
    ----------
    cache_size:
        Maximum number of results kept in memory (LRU).  ``0`` disables
        the in-memory tier, ``None`` means unbounded.  The cache is keyed
        by the request fingerprint, so only bit-identical requests (same
        DAG content, machine, spec, budget, seed) ever share an entry.
        Note that wall-clock-budget requests are cacheable but not
        deterministic — a replay may legitimately return the cached
        (different-depth) result; deterministic-budget requests replay
        exactly.
    store:
        Optional persistent tier: a :class:`repro.store.ResultStore` or a
        store root path.  In-memory misses consult it before computing,
        and every computed result is persisted to it — so the cache is
        shared across processes, worker fleets and CI runs, and a warm
        store answers whole replayed workloads with zero scheduler
        invocations.  ``cache_size=0`` with a store still uses (and
        fills) the persistent tier.
    """

    def __init__(self, cache_size: int | None = 256, store=None) -> None:
        self.cache_size = cache_size
        if isinstance(store, (str, Path)):
            from ..store.results import ResultStore

            store = ResultStore(store)
        self.store = store
        self._cache: OrderedDict[str, ScheduleResult] = OrderedDict()
        self._memory_hits = 0
        self._store_hits = 0
        self._misses = 0

    # ------------------------------------------------------------------ #
    # cache plumbing
    # ------------------------------------------------------------------ #
    def cache_info(self) -> dict[str, int]:
        """Hit/miss counters and the current entry count.

        ``hits``/``misses``/``size`` keep their historical meaning (a hit
        from *either* tier counts; ``misses`` is exactly the number of
        scheduler invocations performed).  With a persistent store
        attached, the per-tier breakdown and the store entry count are
        reported additionally.
        """
        info = {
            "hits": self._memory_hits + self._store_hits,
            "misses": self._misses,
            "size": len(self._cache),
        }
        if self.store is not None:
            info["memory_hits"] = self._memory_hits
            info["store_hits"] = self._store_hits
            info["store_size"] = len(self.store)
        return info

    def clear_cache(self) -> None:
        """Drop the in-memory tier (counters included); the store persists."""
        self._cache.clear()
        self._memory_hits = 0
        self._store_hits = 0
        self._misses = 0

    def _cache_get(self, fingerprint: str) -> ScheduleResult | None:
        if self.cache_size != 0:
            result = self._cache.get(fingerprint)
            if result is not None:
                self._cache.move_to_end(fingerprint)
                self._memory_hits += 1
                # hits are flagged on a shallow copy so the cached entry
                # itself stays pristine for the next caller
                return replace(result, cache_hit=True)
        if self.store is not None:
            stored = self.store.get(fingerprint)
            if stored is not None:
                self._store_hits += 1
                self._memory_put(fingerprint, stored)
                return replace(stored, cache_hit=True)
        self._misses += 1
        return None

    def _memory_put(self, fingerprint: str, result: ScheduleResult) -> None:
        if self.cache_size == 0:
            return
        self._cache[fingerprint] = result
        self._cache.move_to_end(fingerprint)
        if self.cache_size is not None:
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)

    def _cache_put(self, fingerprint: str, result: ScheduleResult) -> None:
        self._memory_put(fingerprint, result)
        if self.store is not None:
            self.store.put(fingerprint, result)

    def _record_trial(self, request: ScheduleRequest, result: ScheduleResult) -> None:
        """Append one trial record for an actual scheduler invocation.

        Only store-backed computes are recorded (cache and store hits are
        answers, not trials), so the ``trials.jsonl`` table next to the
        store is exactly the history of performed work — what the report
        subsystem (:mod:`repro.analysis.report`) aggregates.
        """
        if self.store is None:
            return
        from ..store.trials import TrialRecord

        self.store.trials.append_trial(TrialRecord.from_solve(request, result))

    # ------------------------------------------------------------------ #
    def solve(self, request: ScheduleRequest | dict) -> ScheduleResult:
        """Solve one request (dict-form requests are deserialized first)."""
        request = _coerce_request(request)
        fingerprint = request.fingerprint()
        cached = self._cache_get(fingerprint)
        if cached is not None:
            return cached
        result = _solve_request(request)
        self._cache_put(fingerprint, result)
        self._record_trial(request, result)
        return result

    def solve_many(
        self,
        requests: list[ScheduleRequest | dict],
        workers: int | None = None,
        executor: str = "process",
    ) -> list[ScheduleResult]:
        """Solve a batch, optionally pool-parallel; results in request order.

        Cached requests are answered without touching the pool; only the
        misses fan out.  ``workers=None`` reads ``REPRO_WORKERS`` (default
        1 = serial).  For deterministic-budget requests a parallel batch
        returns canonical payloads bit-identical to a serial one; see
        :mod:`repro.core.parallel` for the pool degradation contract.

        ``executor="thread"`` fans out over a thread pool instead of a
        process pool: requests and results never cross a pickle boundary
        (a batch sharing one large in-memory DAG ships it zero times
        instead of once per request), and the hot loops release the GIL
        under the compiled kernel backend.  With the numpy backend threads
        still interleave under the GIL — prefer processes there unless the
        batch is dominated by serialization.

        The process executor groups misses by DAG content fingerprint:
        each distinct in-memory DAG crosses the worker pipe once per
        worker (in the pool payload), not once per request, and results
        travel back DAG-free (re-embedded on this side) — a whole machine
        grid over one instance ships it O(workers) times instead of
        O(requests) times in each direction.
        """
        coerced = [_coerce_request(request) for request in requests]
        fingerprints = [request.fingerprint() for request in coerced]
        results: list[ScheduleResult | None] = [None] * len(coerced)
        # content-addressed within the batch too: identical requests are
        # solved once, whether answered by the cache or freshly computed
        unique_misses: dict[str, int] = {}
        duplicate_of: dict[int, str] = {}
        for index, fingerprint in enumerate(fingerprints):
            cached = self._cache_get(fingerprint)
            if cached is not None:
                results[index] = cached
            elif fingerprint in unique_misses:
                duplicate_of[index] = fingerprint
            else:
                unique_misses[fingerprint] = index
        if unique_misses:
            misses = [coerced[i] for i in unique_misses.values()]
            if executor == "process":
                solved = self._solve_misses_process(misses, workers)
            else:
                solved = parallel_map(
                    _solve_task_thread, None, misses, workers, executor=executor
                )
            by_fingerprint = dict(zip(unique_misses, solved))
            for fingerprint, result in by_fingerprint.items():
                self._cache_put(fingerprint, result)
                self._record_trial(coerced[unique_misses[fingerprint]], result)
                results[unique_misses[fingerprint]] = result
            for index, fingerprint in duplicate_of.items():
                results[index] = replace(by_fingerprint[fingerprint], cache_hit=True)
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    def _solve_misses_process(
        self, misses: list[ScheduleRequest], workers: int | None
    ) -> list[ScheduleResult]:
        """Pool-solve the cache misses with DAG-sharing (see :meth:`solve_many`).

        In-memory/inline DAGs are deduplicated into a ``{fingerprint: dag}``
        table that rides the pool initializer (once per worker); the
        per-task requests carry only a :class:`_SharedDag` placeholder.
        File-reference requests stay references — each worker reads the
        file itself.  Returned dag_ref payloads are re-embedded here, so
        callers observe the same self-contained results a serial run
        produces.
        """
        shared: dict[str, object] = {}
        tasks: list[ScheduleRequest] = []
        for request in misses:
            if isinstance(request.dag, (str, Path)):
                tasks.append(request)
                continue
            dag = request.resolve_dag()
            ref = dag_fingerprint(dag)
            shared.setdefault(ref, dag)
            tasks.append(
                replace(
                    request,
                    dag=_SharedDag(ref),
                    _resolved_dag=None,
                    _fingerprint=request.fingerprint(),
                )
            )
        solved = parallel_map(_solve_task, shared, tasks, workers, executor="process")
        embedded_dags: dict[str, dict] = {}
        for index, result in enumerate(solved):
            payload = result.schedule_dict()
            ref = payload.get("dag_ref")
            if ref is None or ref not in shared:
                continue
            if ref not in embedded_dags:
                embedded_dags[ref] = dag_to_dict(shared[ref])
            # rebuild in schedule_to_dict key order so the payload is
            # indistinguishable from a serially produced one
            restored = {"dag": embedded_dags[ref]}
            restored.update((k, v) for k, v in payload.items() if k != "dag_ref")
            solved[index] = replace(result, _schedule_dict=restored)
        return solved
