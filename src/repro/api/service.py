"""The batched scheduling-service facade.

:class:`SchedulingService` is the single entry point every caller funnels
through — the CLI, the experiment harness and the examples all build
:class:`~repro.api.ScheduleRequest` objects and hand them here.

* :meth:`~SchedulingService.solve` runs one request: resolve the DAG and
  machine, build the scheduler from its declarative spec, restart the
  budget clock, run, and wrap the outcome in a self-contained
  :class:`~repro.api.ScheduleResult` (with the per-stage cost trace when
  the scheduler is a pipeline).
* :meth:`~SchedulingService.solve_many` fans a batch out over the shared
  process-pool machinery (:mod:`repro.core.parallel`, the same contract as
  the experiment grid): results come back in request order, pool failures
  degrade to serial execution, and for deterministic-budget requests the
  parallel canonical payloads are bit-identical to serial ones.
* Results are cached **content-addressed**: the cache key is the request
  fingerprint (DAG content + machine + spec + budget + seed), so a replayed
  request is answered without recomputation — across ``solve`` and
  ``solve_many`` alike.  Cache hits are flagged (``result.cache_hit``) and
  counted (:meth:`cache_info`).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import replace

from ..core.parallel import parallel_map
from ..schedulers.pipeline import SchedulingPipeline
from .request import ScheduleRequest
from .result import ScheduleResult

__all__ = ["SchedulingService"]


def _coerce_request(request: ScheduleRequest | dict) -> ScheduleRequest:
    if isinstance(request, dict):
        return ScheduleRequest.from_dict(request)
    return request


def _solve_request(request: ScheduleRequest) -> ScheduleResult:
    """Run one request to completion (no cache; shared by solve paths)."""
    fingerprint = request.fingerprint()
    started = time.perf_counter()
    dag = request.resolve_dag()
    machine = request.build_machine()
    scheduler = request.scheduler.build(default_seed=request.seed)
    budget = None if request.budget is None else request.budget.started()
    prepared = time.perf_counter()
    stages = None
    if isinstance(scheduler, SchedulingPipeline):
        pipeline_result = scheduler.schedule_with_stages(dag, machine, budget)
        schedule = pipeline_result.schedule
        stages = pipeline_result.stages
    else:
        schedule = scheduler.schedule(dag, machine, budget)
    finished = time.perf_counter()
    return ScheduleResult.from_schedule(
        schedule,
        scheduler=request.scheduler.name,
        fingerprint=fingerprint,
        stages=stages,
        timings={
            "prepare_seconds": prepared - started,
            "solve_seconds": finished - prepared,
            "total_seconds": finished - started,
        },
    )


def _solve_task(_payload: None, request: ScheduleRequest) -> ScheduleResult:
    """Module-level pool handler (see :func:`repro.core.parallel.parallel_map`)."""
    result = _solve_request(request)
    # serialise eagerly in the worker and ship only the wire dict: the live
    # schedule object would carry the whole instance across the pipe a
    # second time, and the parent can rebuild it lazily via to_schedule()
    result.schedule_dict()
    return replace(result, _schedule=None)


def _solve_task_thread(_payload: None, request: ScheduleRequest) -> ScheduleResult:
    """Thread-pool handler: no pipe, so the live schedule object is kept."""
    return _solve_request(request)


class SchedulingService:
    """Stateless solve facade with batched fan-out and content-addressed caching.

    Parameters
    ----------
    cache_size:
        Maximum number of results kept (LRU).  ``0`` disables caching,
        ``None`` means unbounded.  The cache is keyed by the request
        fingerprint, so only bit-identical requests (same DAG content,
        machine, spec, budget, seed) ever share an entry.  Note that
        wall-clock-budget requests are cacheable but not deterministic —
        a replay may legitimately return the cached (different-depth)
        result; deterministic-budget requests replay exactly.
    """

    def __init__(self, cache_size: int | None = 256) -> None:
        self.cache_size = cache_size
        self._cache: OrderedDict[str, ScheduleResult] = OrderedDict()
        self._hits = 0
        self._misses = 0

    # ------------------------------------------------------------------ #
    # cache plumbing
    # ------------------------------------------------------------------ #
    def cache_info(self) -> dict[str, int]:
        """Hit/miss counters and the current entry count."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "size": len(self._cache),
        }

    def clear_cache(self) -> None:
        """Drop every cached result (counters included)."""
        self._cache.clear()
        self._hits = 0
        self._misses = 0

    def _cache_get(self, fingerprint: str) -> ScheduleResult | None:
        if self.cache_size == 0:
            return None
        result = self._cache.get(fingerprint)
        if result is None:
            self._misses += 1
            return None
        self._cache.move_to_end(fingerprint)
        self._hits += 1
        # hits are flagged on a shallow copy so the cached entry itself
        # stays pristine for the next caller
        return replace(result, cache_hit=True)

    def _cache_put(self, fingerprint: str, result: ScheduleResult) -> None:
        if self.cache_size == 0:
            return
        self._cache[fingerprint] = result
        self._cache.move_to_end(fingerprint)
        if self.cache_size is not None:
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)

    # ------------------------------------------------------------------ #
    def solve(self, request: ScheduleRequest | dict) -> ScheduleResult:
        """Solve one request (dict-form requests are deserialized first)."""
        request = _coerce_request(request)
        fingerprint = request.fingerprint()
        cached = self._cache_get(fingerprint)
        if cached is not None:
            return cached
        result = _solve_request(request)
        self._cache_put(fingerprint, result)
        return result

    def solve_many(
        self,
        requests: list[ScheduleRequest | dict],
        workers: int | None = None,
        executor: str = "process",
    ) -> list[ScheduleResult]:
        """Solve a batch, optionally pool-parallel; results in request order.

        Cached requests are answered without touching the pool; only the
        misses fan out.  ``workers=None`` reads ``REPRO_WORKERS`` (default
        1 = serial).  For deterministic-budget requests a parallel batch
        returns canonical payloads bit-identical to a serial one; see
        :mod:`repro.core.parallel` for the pool degradation contract.

        ``executor="thread"`` fans out over a thread pool instead of a
        process pool: requests and results never cross a pickle boundary
        (a batch sharing one large in-memory DAG ships it zero times
        instead of once per request), and the hot loops release the GIL
        under the compiled kernel backend.  With the numpy backend threads
        still interleave under the GIL — prefer processes there unless the
        batch is dominated by serialization.
        """
        coerced = [_coerce_request(request) for request in requests]
        fingerprints = [request.fingerprint() for request in coerced]
        results: list[ScheduleResult | None] = [None] * len(coerced)
        # content-addressed within the batch too: identical requests are
        # solved once, whether answered by the cache or freshly computed
        unique_misses: dict[str, int] = {}
        duplicate_of: dict[int, str] = {}
        for index, fingerprint in enumerate(fingerprints):
            cached = self._cache_get(fingerprint)
            if cached is not None:
                results[index] = cached
            elif fingerprint in unique_misses:
                duplicate_of[index] = fingerprint
            else:
                unique_misses[fingerprint] = index
        if unique_misses:
            solved = parallel_map(
                _solve_task if executor == "process" else _solve_task_thread,
                None,
                [coerced[i] for i in unique_misses.values()],
                workers,
                executor=executor,
            )
            by_fingerprint = dict(zip(unique_misses, solved))
            for fingerprint, result in by_fingerprint.items():
                self._cache_put(fingerprint, result)
                results[unique_misses[fingerprint]] = result
            for index, fingerprint in duplicate_of.items():
                results[index] = replace(by_fingerprint[fingerprint], cache_hit=True)
        return results  # type: ignore[return-value]
