"""The stateless scheduling request: instance + machine + spec + budget.

A :class:`ScheduleRequest` bundles everything one ``solve`` needs:

* the DAG — an in-memory :class:`~repro.core.dag.ComputationalDAG`, an
  inline wire dict (:func:`~repro.core.serialization.dag_to_dict` form), or
  a path reference to a DAG file in any on-disk format: hyperDAG text,
  memory-mapped ``.hdagb`` binary (loaded zero-copy, fingerprint read from
  the header), or ``.json`` stored ``dag_to_dict`` payloads — the
  content-addressed store's ``dags/`` entries — so queued requests can
  reference a shared DAG instead of embedding it;
* the machine — a declarative :class:`~repro.core.machine.MachineSpec` or a
  fully materialised :class:`~repro.core.machine.BspMachine`;
* the scheduler — a :class:`~repro.api.SchedulerSpec`;
* an optional unified :class:`~repro.schedulers.Budget` and a seed.

Requests are serializable (``to_dict``/``from_dict``/``to_json``) and
**content-addressed**: :meth:`ScheduleRequest.fingerprint` hashes the
resolved DAG content, the machine, the spec, the budget and the seed into a
stable hex digest — identical requests produce identical fingerprints in
any process, which is what the service cache and replay guarantees key on.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from ..core.dag import ComputationalDAG
from ..core.exceptions import ReproError
from ..core.machine import BspMachine, MachineSpec
from ..core.serialization import (
    dag_from_dict,
    dag_to_dict,
    machine_from_dict,
    machine_to_dict,
)
from ..schedulers.base import Budget
from .spec import SchedulerSpec

__all__ = ["ScheduleRequest", "dag_fingerprint"]


def dag_fingerprint(dag: ComputationalDAG) -> str:
    """Stable content hash of a DAG (structure + weights), memoized.

    Hashes the canonical buffers (node count, float64 weight vectors, int64
    edge arrays in insertion order) rather than a JSON rendering, so the
    digest is cheap even for million-edge DAGs and identical across
    processes.  The memo lives on the DAG and is dropped by every mutation
    (see ``ComputationalDAG._invalidate`` and the weight setters).
    """
    cached = getattr(dag, "_content_fingerprint", None)
    if cached is not None:
        return cached
    sources, targets = dag.edge_arrays()
    hasher = hashlib.sha256(b"repro-dag-v1")
    hasher.update(np.int64(dag.num_nodes).tobytes())
    hasher.update(np.ascontiguousarray(dag.work_weights, dtype=np.float64).tobytes())
    hasher.update(np.ascontiguousarray(dag.comm_weights, dtype=np.float64).tobytes())
    hasher.update(np.ascontiguousarray(sources, dtype=np.int64).tobytes())
    hasher.update(np.ascontiguousarray(targets, dtype=np.int64).tobytes())
    digest = hasher.hexdigest()
    dag._content_fingerprint = digest
    return digest


def _canonical_json(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass
class ScheduleRequest:
    """One self-contained, serializable scheduling problem.

    Parameters
    ----------
    dag:
        :class:`ComputationalDAG`, inline dict, or a hyperDAG file path.
    machine:
        :class:`MachineSpec` (declarative) or :class:`BspMachine` (explicit
        NUMA matrix).
    scheduler:
        The declarative scheduler recipe.
    budget:
        Optional unified budget; the service restarts its clock at solve
        time, so a request can sit in a queue without consuming it.
    seed:
        Default seed injected into seed-accepting schedulers whose spec
        does not pin one.

    Requests are treated as immutable once built (the resolved DAG and the
    fingerprint are memoized); construct a new request instead of mutating
    fields in place.
    """

    dag: ComputationalDAG | dict | str | Path
    machine: MachineSpec | BspMachine
    scheduler: SchedulerSpec
    budget: Budget | None = None
    seed: int = 0
    _resolved_dag: ComputationalDAG | None = field(
        default=None, repr=False, compare=False
    )
    _fingerprint: str | None = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------ #
    def resolve_dag(self) -> ComputationalDAG:
        """The materialised DAG (loaded/rebuilt once, then memoized)."""
        if self._resolved_dag is None:
            if isinstance(self.dag, ComputationalDAG):
                self._resolved_dag = self.dag
            elif isinstance(self.dag, dict):
                self._resolved_dag = dag_from_dict(self.dag)
            elif isinstance(self.dag, (str, Path)):
                # extension dispatch with a magic-bytes fallback: .hdagb
                # binary (zero-copy mapped load — the fingerprint comes
                # straight from the header, so file-reference requests
                # never touch the payload), .json stored dag_to_dict
                # payloads (the content-addressed store's dags/ entries —
                # lossless, unlike the %g-formatted hyperDAG text
                # weights), anything else hyperDAG text
                from ..io.hdagb import load_dag

                self._resolved_dag = load_dag(self.dag)
            else:
                raise ReproError(
                    f"unsupported DAG reference of type {type(self.dag).__name__}"
                )
        return self._resolved_dag

    def build_machine(self) -> BspMachine:
        """The materialised machine."""
        if isinstance(self.machine, BspMachine):
            return self.machine
        return self.machine.build()

    # ------------------------------------------------------------------ #
    def fingerprint(self) -> str:
        """Content-addressed identity of this request (stable across processes)."""
        if self._fingerprint is None:
            payload = {
                "dag": dag_fingerprint(self.resolve_dag()),
                "machine": self._machine_dict(),
                "scheduler": self.scheduler.to_dict(),
                "budget": None if self.budget is None else self.budget.to_dict(),
                "seed": int(self.seed),
            }
            self._fingerprint = hashlib.sha256(
                b"repro-request-v1" + _canonical_json(payload).encode("utf-8")
            ).hexdigest()
        return self._fingerprint

    def _machine_dict(self) -> dict:
        if isinstance(self.machine, BspMachine):
            return machine_to_dict(self.machine)
        return self.machine.to_dict()

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """JSON-compatible wire form (inverse of :meth:`from_dict`).

        File references stay references (``dag_ref``); in-memory and inline
        DAGs are embedded (``dag``), so a request shipped to another worker
        or machine is self-contained.
        """
        data: dict[str, Any] = {}
        if isinstance(self.dag, (str, Path)):
            data["dag_ref"] = str(self.dag)
        elif isinstance(self.dag, dict):
            data["dag"] = self.dag
        else:
            data["dag"] = dag_to_dict(self.dag)
        data["machine"] = self._machine_dict()
        data["scheduler"] = self.scheduler.to_dict()
        data["budget"] = None if self.budget is None else self.budget.to_dict()
        data["seed"] = int(self.seed)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ScheduleRequest":
        """Rebuild a request from :meth:`to_dict` output."""
        try:
            if "dag_ref" in data:
                dag: dict | str = str(data["dag_ref"])
            else:
                dag = dict(data["dag"])
            machine_data = data["machine"]
            # an explicit NUMA matrix marks a materialised machine; the
            # four-scalar form is a declarative spec
            if "numa" in machine_data:
                machine: MachineSpec | BspMachine = machine_from_dict(machine_data)
            else:
                machine = MachineSpec.from_dict(machine_data)
            scheduler = SchedulerSpec.from_dict(data["scheduler"])
            budget_data = data.get("budget")
            budget = None if budget_data is None else Budget.from_dict(budget_data)
            seed = int(data.get("seed", 0))
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"malformed schedule request: {exc}") from exc
        return cls(
            dag=dag, machine=machine, scheduler=scheduler, budget=budget, seed=seed
        )

    def to_json(self, indent: int | None = None) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, payload: str) -> "ScheduleRequest":
        """Deserialise from :meth:`to_json` output."""
        return cls.from_dict(json.loads(payload))
