"""The serializable scheduling result: schedule + costs + provenance.

A :class:`ScheduleResult` is the wire-format answer to one
:class:`~repro.api.ScheduleRequest`:

* the schedule itself (the :func:`~repro.core.serialization.schedule_to_dict`
  payload, self-contained with its instance);
* the exact cost and its work/comm/latency breakdown;
* the per-stage cost trace when the scheduler was a pipeline;
* provenance — the request fingerprint and scheduler name, so a result can
  be matched back to (and replayed from) the request that produced it;
* volatile run metadata — wall-clock timings and the cache-hit flag.

``to_dict``/``from_dict`` round-trip losslessly.  :meth:`canonical_dict`
strips the volatile metadata; it is the payload two runs of the same
deterministic-budget request must agree on bit-for-bit (what the
``solve_many`` parallel == serial guarantee and the content-addressed cache
compare).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..core.exceptions import ReproError
from ..core.schedule import BspSchedule
from ..core.serialization import schedule_from_dict, schedule_to_dict
from ..schedulers.pipeline import StageCosts

__all__ = ["ScheduleResult"]


@dataclass
class ScheduleResult:
    """The outcome of one service solve (serializable, self-contained)."""

    scheduler: str
    fingerprint: str
    cost: float
    breakdown: dict[str, float]
    num_supersteps: int
    stages: StageCosts | None = None
    timings: dict[str, float] = field(default_factory=dict)
    cache_hit: bool = False
    _schedule_dict: dict | None = field(default=None, repr=False)
    _schedule: BspSchedule | None = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_schedule(
        cls,
        schedule: BspSchedule,
        *,
        scheduler: str,
        fingerprint: str,
        stages: StageCosts | None = None,
        timings: dict[str, float] | None = None,
    ) -> "ScheduleResult":
        """Build a result from an in-memory schedule (serialisation is lazy)."""
        breakdown = schedule.cost_breakdown()
        return cls(
            scheduler=scheduler,
            fingerprint=fingerprint,
            cost=float(breakdown.total),
            breakdown={
                "total": float(breakdown.total),
                "work": float(breakdown.work),
                "comm": float(breakdown.comm),
                "latency": float(breakdown.latency),
            },
            num_supersteps=int(schedule.num_supersteps),
            stages=stages,
            timings=dict(timings or {}),
            _schedule=schedule,
        )

    # ------------------------------------------------------------------ #
    def schedule_dict(self) -> dict:
        """The schedule's wire payload (serialised once, then memoized)."""
        if self._schedule_dict is None:
            if self._schedule is None:
                raise ReproError("result carries neither a schedule nor its dict")
            self._schedule_dict = schedule_to_dict(self._schedule)
        return self._schedule_dict

    def to_schedule(self) -> BspSchedule:
        """The materialised (re-validated) :class:`BspSchedule`."""
        if self._schedule is None:
            self._schedule = schedule_from_dict(self.schedule_dict())
        return self._schedule

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """JSON-compatible wire form (inverse of :meth:`from_dict`)."""
        return {
            "schema": 1,
            "scheduler": self.scheduler,
            "fingerprint": self.fingerprint,
            "cost": float(self.cost),
            "breakdown": {k: float(v) for k, v in self.breakdown.items()},
            "num_supersteps": int(self.num_supersteps),
            "schedule": self.schedule_dict(),
            "stages": None if self.stages is None else self.stages.to_dict(),
            "timings": {k: float(v) for k, v in self.timings.items()},
            "cache_hit": bool(self.cache_hit),
        }

    def canonical_dict(self) -> dict:
        """The deterministic payload: :meth:`to_dict` minus volatile metadata."""
        data = self.to_dict()
        del data["timings"]
        del data["cache_hit"]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ScheduleResult":
        """Rebuild a result from :meth:`to_dict` output."""
        try:
            stages_data = data.get("stages")
            return cls(
                scheduler=str(data["scheduler"]),
                fingerprint=str(data["fingerprint"]),
                cost=float(data["cost"]),
                breakdown={
                    str(k): float(v) for k, v in data.get("breakdown", {}).items()
                },
                num_supersteps=int(data["num_supersteps"]),
                stages=(
                    None if stages_data is None else StageCosts.from_dict(stages_data)
                ),
                timings={
                    str(k): float(v) for k, v in data.get("timings", {}).items()
                },
                cache_hit=bool(data.get("cache_hit", False)),
                _schedule_dict=dict(data["schedule"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"malformed schedule result: {exc}") from exc

    def to_json(self, indent: int | None = None) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, payload: str) -> "ScheduleResult":
        """Deserialise from :meth:`to_json` output."""
        return cls.from_dict(json.loads(payload))
